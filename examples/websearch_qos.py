#!/usr/bin/env python3
"""Adaptive mapping protecting WebSearch's tail latency (Sec. 5.2).

WebSearch serves queries from core 0 under a 0.5 s p90 SLA while batch
co-runners fill the other seven cores.  The heavy co-runner's chip-wide
activity drags the adaptive-guardbanding frequency — and with it the
query tail — below the SLA.  The adaptive-mapping scheduler detects the
violations, consults its MIPS-based frequency predictor, and swaps in a
QoS-safe co-runner.

Run:  python examples/websearch_qos.py
"""

from repro import build_server
from repro.analysis.figures import fig16_mips_predictor
from repro.core import AdaptiveMappingScheduler, QosSpec
from repro.workloads.synthetic import throttled_corunner
from repro.workloads.websearch import WebSearchModel


def main() -> None:
    server = build_server()
    websearch = WebSearchModel()

    print("Training the MIPS-based frequency predictor on the full catalog...")
    training = fig16_mips_predictor()
    print(
        f"  fitted: f = {training.predictor.intercept / 1e6:.0f} MHz "
        f"{training.predictor.slope:+.0f} Hz/MIPS "
        f"(RMSE {training.relative_rmse:.2%})"
    )

    scheduler = AdaptiveMappingScheduler(
        server=server,
        critical=websearch.profile(),
        spec=QosSpec(latency_target=0.5, violation_threshold=0.10),
        candidates=[throttled_corunner(l) for l in ("light", "medium", "heavy")],
        predictor=training.predictor,
        latency_model=websearch,
        windows_per_quantum=100,
    )

    print()
    print("Co-runner classes at steady state:")
    for level in ("light", "medium", "heavy"):
        corunner = throttled_corunner(level)
        frequency = scheduler.settle(corunner)
        violations = websearch.violation_rate(frequency, n_windows=300)
        print(
            f"  {level:>6}: WebSearch core at {frequency / 1e6:.0f} MHz, "
            f"p90 violations {violations:.1%}"
        )

    print()
    print("Adaptive mapping, starting blindly colocated with the heavy class:")
    for decision in scheduler.run("corunner_heavy", quanta=4):
        action = (
            f"swap to {decision.next_corunner}" if decision.swapped else "keep"
        )
        print(
            f"  quantum: {decision.corunner:>16} "
            f"viol={decision.violation_rate:>5.1%} "
            f"f={decision.frequency / 1e6:.0f} MHz  p90={decision.mean_tail_latency * 1000:.0f} ms"
            f"  -> {action}"
        )

    print()
    print("paper: violation rate drops from >25% (heavy) to <7% (light),")
    print("       and query tail latency improves (5.2% in the paper's run).")


if __name__ == "__main__":
    main()
