#!/usr/bin/env python3
"""A day in the life of one server: trace-driven AGS vs consolidation.

Replays a diurnal demand trace (threads requested per hour) through the
AGS facade and the conventional consolidation baseline, printing the
hour-by-hour power and the day's energy bill — the energy-proportionality
view the paper's TCO argument (Sec. 3.3, citing Barroso & Hölzle) implies.

Run:  python examples/diurnal_energy_proportionality.py
"""

from repro import build_server, get_profile
from repro.core import DynamicAgsDriver, diurnal_trace


def main() -> None:
    server = build_server()
    driver = DynamicAgsDriver(
        server,
        get_profile("raytrace"),
        interval_seconds=3600.0,  # hourly intervals
    )
    trace = diurnal_trace(n_intervals=24, low=1, high=8)
    result = driver.replay(trace)

    print("Hourly power under a diurnal load (raytrace service)")
    print(f"{'hour':>5} {'demand':>7} {'baseline W':>11} {'AGS W':>7} {'saving':>8}")
    for interval in result.intervals:
        marker = "*" if interval.rescheduled else " "
        print(
            f"{interval.index:>5} {interval.demand:>7} "
            f"{interval.baseline_power:>11.1f} {interval.ags_power:>7.1f} "
            f"{interval.saving_fraction:>8.1%} {marker}"
        )

    print()
    print(f"reschedules: {result.n_reschedules} (hysteresis on flat hours)")
    print(
        f"day's chip energy: baseline {result.baseline_energy / 3.6e6:.2f} kWh, "
        f"AGS {result.ags_energy / 3.6e6:.2f} kWh "
        f"({result.energy_saving_fraction:.1%} saved)"
    )


if __name__ == "__main__":
    main()
