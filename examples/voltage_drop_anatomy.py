#!/usr/bin/env python3
"""Anatomy of the on-chip voltage drop (Sec. 4's root-cause analysis).

Uses the telemetry stack exactly the way the paper's authors used AMESTER:
CPMs as voltage "performance counters" (sample and sticky modes), the VRM
current sensor, and the heuristic decomposition into loadline, IR drop,
typical-case and worst-case di/dt.

Run:  python examples/voltage_drop_anatomy.py
"""

from repro import GuardbandMode, build_server, get_profile, measure
from repro.pdn import DropDecomposer
from repro.telemetry import Amester, CpmReadMode


def main() -> None:
    server = build_server()
    profile = get_profile("raytrace")
    decomposer = DropDecomposer(server.config.pdn)

    print("Voltage drop decomposition for raytrace (static guardband, core 0)")
    print(
        f"{'cores':>6} {'total %':>8} {'loadline %':>10} {'IR %':>6} "
        f"{'typ di/dt %':>11} {'worst di/dt %':>13}"
    )
    for n_cores in (1, 2, 4, 8):
        result = measure(
            profile, mode=GuardbandMode.UNDERVOLT, n_threads=n_cores, server=server
        )
        solution = result.static.point.socket_point(0).solution

        # Read the platform the measured way: AMESTER sticky/sample CPMs.
        amester = Amester(server.sockets[0], seed=3)
        records = amester.poll_many(solution, 40)
        sample_codes = [min(r.cpm_sample) for r in records]
        sticky_codes = [min(r.cpm_sticky) for r in records]

        setpoint = solution.drops.setpoint
        sample_drop = setpoint - solution.core_voltages[0]
        # The deepest sticky dip over the observation converts to volts via
        # the CPM step size.
        bits_dipped = max(s - t for s, t in zip(sample_codes, sticky_codes))
        mv_per_bit = server.config.chip.cpm_mv_per_bit
        sticky_drop = sample_drop + bits_dipped * mv_per_bit

        decomposed = decomposer.decompose(
            chip_current=solution.total_current,
            sample_mode_drop=sample_drop,
            sticky_mode_drop=sticky_drop,
            local_ir=solution.drops.ir_local[0],
        ).as_percent_of(setpoint)
        print(
            f"{n_cores:>6} {decomposed.total:>8.2f} {decomposed.loadline:>10.2f} "
            f"{decomposed.ir_drop:>6.2f} {decomposed.typical_didt:>11.2f} "
            f"{decomposed.worst_didt:>13.2f}"
        )

    print()
    print("Passive drop (loadline + IR) grows with the current draw and is")
    print("what erodes adaptive guardbanding at high core counts (Sec. 4.3).")
    _ = CpmReadMode  # imported for discoverability in the example


if __name__ == "__main__":
    main()
