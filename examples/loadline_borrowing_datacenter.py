#!/usr/bin/env python3
"""Loadline borrowing for a lightly utilized enterprise server (Sec. 5.1).

A datacenter operator keeps eight of sixteen cores powered for instant
responsiveness.  Conventional wisdom consolidates the load on one socket so
the other can sleep; loadline borrowing spreads it so each socket's
delivery path carries half the current and each firmware instance can
undervolt deeper.

The script schedules a mixed batch queue both ways and prints the power
and energy outcomes per workload, plus the AGS facade's policy decisions.

Run:  python examples/loadline_borrowing_datacenter.py
"""

from repro import GuardbandMode, build_server, get_profile, measure
from repro.core import AdaptiveGuardbandScheduler, ConsolidationScheduler

#: A plausible batch queue: compute-bound, balanced, and bandwidth-bound.
BATCH_QUEUE = [
    ("lu_cb", 8),
    ("raytrace", 4),
    ("radix", 8),
    ("mcf", 8),
    ("swaptions", 2),
]


def main() -> None:
    server = build_server()
    ags = AdaptiveGuardbandScheduler(server.config)
    consolidation = ConsolidationScheduler(server.config)

    print("AGS loadline borrowing vs consolidation (8 of 16 cores powered)")
    print(
        f"{'workload':>10} {'thr':>4} {'policy':>20} {'cons W':>8} "
        f"{'AGS W':>8} {'power':>7} {'energy':>7}"
    )
    total_cons = total_ags = 0.0
    for name, n_threads in BATCH_QUEUE:
        profile = get_profile(name)
        policy = ags.classify(n_threads)
        cons = measure(
            profile,
            mode=GuardbandMode.UNDERVOLT,
            schedule=consolidation.schedule(profile, n_threads, total_cores_on=8),
            server=server,
        )
        borrowed = measure(
            profile,
            mode=GuardbandMode.UNDERVOLT,
            schedule=ags.schedule_batch(profile, n_threads, total_cores_on=8),
            server=server,
        )
        p_cons = cons.adaptive.chip_power
        p_ags = borrowed.adaptive.chip_power
        e_cons = cons.adaptive.energy
        e_ags = borrowed.adaptive.energy
        total_cons += p_cons
        total_ags += p_ags
        print(
            f"{name:>10} {n_threads:>4} {policy.value:>20} {p_cons:>8.1f} "
            f"{p_ags:>8.1f} {1 - p_ags / p_cons:>7.1%} {1 - e_ags / e_cons:>7.1%}"
        )

    print()
    print(
        f"queue-average chip power: consolidation {total_cons / len(BATCH_QUEUE):.1f} W,"
        f" AGS {total_ags / len(BATCH_QUEUE):.1f} W"
        f" ({1 - total_ags / total_cons:.1%} saved)"
    )
    print("paper (Fig. 14): 6.2% average power reduction at full utilization")


if __name__ == "__main__":
    main()
