#!/usr/bin/env python3
"""Power capping composed with adaptive guardbanding.

An EnergyScale-style firmware enforces a socket power budget by walking
the DVFS table down.  With adaptive guardbanding, every candidate clock
first harvests the unused guardband (deeper undervolt at lower current),
so the same budget supports a higher frequency than a static-guardband
system — capping is where the harvested margin becomes *performance
under a power constraint*.

Run:  python examples/power_capping.py
"""

from repro import build_server, get_profile
from repro.guardband import PowerCapPolicy


def main() -> None:
    server = build_server()
    server.place(0, get_profile("lu_cb"), 8)
    socket = server.sockets[0]
    policy = PowerCapPolicy(server.config)

    print("Power capping lu_cb on eight cores (socket budget sweep)")
    print(
        f"{'cap W':>7} {'static MHz':>11} {'adaptive MHz':>13} "
        f"{'clock gain':>11}"
    )
    for cap in (150.0, 130.0, 115.0, 100.0, 90.0):
        static = policy.enforce(socket, cap, adaptive=False)
        adaptive = policy.enforce(socket, cap, adaptive=True)
        gain = adaptive.frequency / static.frequency - 1
        print(
            f"{cap:>7.0f} {static.frequency / 1e6:>11.0f} "
            f"{adaptive.frequency / 1e6:>13.0f} {gain:>11.1%}"
        )

    print()
    print("Harvested guardband turns into clock frequency under every budget")
    print("— the capping-mode face of the paper's efficiency argument.")


if __name__ == "__main__":
    main()
