#!/usr/bin/env python3
"""Watching the undervolting firmware converge, 32 ms tick by tick.

The steady-state figures hide the control dynamics: starting from the
static rail, the firmware creeps the VRM setpoint down between droop
events, backs off when a droop dips the DPLL below target, and latches a
floor at the deepest event it has seen.

Run:  python examples/firmware_transient.py
"""

from repro import GuardbandMode, build_server, get_profile
from repro.sim.engine import TransientEngine


def main() -> None:
    server = build_server()
    server.place(0, get_profile("raytrace"), 4)
    engine = TransientEngine(
        server.sockets[0], GuardbandMode.UNDERVOLT, seed=17
    )

    print("Undervolting firmware transient (raytrace on 4 cores)")
    print(f"{'tick':>5} {'t ms':>7} {'setpoint mV':>12} {'power W':>8} {'event':>22}")
    results = engine.run(90)
    for i, tick in enumerate(results):
        if i % 6 and not tick.violation:
            continue  # print every 6th quiet tick, every violation
        event = (
            f"droop {tick.observed_droop * 1000:.0f} mV -> back off"
            if tick.violation
            else ("droop ridden out" if tick.observed_droop > 0 else "")
        )
        print(
            f"{i:>5} {tick.time * 1000:>7.0f} {tick.setpoint * 1000:>12.2f} "
            f"{tick.solution.chip_power:>8.1f} {event:>22}"
        )

    start, end = results[0], results[-1]
    saved = start.solution.chip_power - end.solution.chip_power
    print()
    print(
        f"converged from {start.setpoint * 1000:.1f} mV to "
        f"{end.setpoint * 1000:.1f} mV, saving {saved:.1f} W "
        f"({saved / start.solution.chip_power:.1%})"
    )


if __name__ == "__main__":
    main()
