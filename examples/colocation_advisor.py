#!/usr/bin/env python3
"""Which batch jobs may share the chip with my latency-critical service?

Trains the MIPS-based frequency predictor once, then ranks the *entire*
benchmark catalog as candidate co-runners for WebSearch under a frequency
requirement, verifying borderline calls on the simulator — the placement-
time view of the paper's adaptive mapping.

Run:  python examples/colocation_advisor.py
"""

from repro import build_server
from repro.analysis.figures import fig16_mips_predictor
from repro.core.advisor import ColocationAdvisor
from repro.workloads import all_profiles
from repro.workloads.websearch import WebSearchModel

#: Frequency the WebSearch frequency-QoS model demands for its SLA (Hz).
REQUIRED_FREQUENCY = 4.50e9


def main() -> None:
    print("Training the MIPS-based frequency predictor...")
    training = fig16_mips_predictor()
    server = build_server()
    advisor = ColocationAdvisor(
        server, WebSearchModel().profile(), training.predictor
    )

    verdicts = advisor.rank(
        all_profiles(), REQUIRED_FREQUENCY, verify_margin=30e6
    )
    safe = [v for v in verdicts if v.predicted_safe]
    unsafe = [v for v in verdicts if not v.predicted_safe]

    print()
    print(
        f"requirement: WebSearch core >= {REQUIRED_FREQUENCY/1e6:.0f} MHz "
        f"(predictor RMSE {training.relative_rmse:.2%})"
    )
    print()
    print(f"safe co-runners ({len(safe)}):")
    for v in safe[:8]:
        mark = " (verified)" if v.verified else ""
        print(
            f"  {v.candidate:>16}: predicted {v.predicted_frequency/1e6:.0f} MHz"
            f"{mark}"
        )
    if len(safe) > 8:
        print(f"  ... and {len(safe) - 8} more")
    print()
    print(f"malicious co-runners ({len(unsafe)}), worst first:")
    for v in unsafe[-6:][::-1]:
        print(
            f"  {v.candidate:>16}: predicted {v.predicted_frequency/1e6:.0f} MHz"
        )
    print()
    print("The scheduler admits only the safe set next to the critical")
    print("workload — Fig. 18's co-runner selection at placement time.")


if __name__ == "__main__":
    main()
