#!/usr/bin/env python3
"""Cluster-level AGS: the paper's future-work sketch, implemented.

Sec. 5.1.1: consolidate workloads onto as few *servers* as possible first
(idle servers power off entirely, peripherals included), then apply
loadline borrowing *within* each powered server.  This example schedules a
rack-level job mix under all four policy combinations and prints the
cluster power bill.

Run:  python examples/cluster_scheduling.py
"""

from repro.core import ClusterScheduler, Job
from repro.workloads import get_profile

#: A morning's batch arrivals on a four-server rack.  The mix does not
#: fill the packed servers completely, so the within-server policy still
#: has spare cores to gate and borrow against.
JOB_MIX = [
    ("raytrace", 6),
    ("lu_cb", 8),
    ("mcf", 4),
    ("radix", 6),
    ("swaptions", 2),
]


def main() -> None:
    scheduler = ClusterScheduler(n_servers=4)
    jobs = [Job(get_profile(name), n) for name, n in JOB_MIX]
    total_threads = sum(j.n_threads for j in jobs)

    print(
        f"Scheduling {len(jobs)} jobs ({total_threads} threads) on a "
        f"4-server rack ({scheduler.server_capacity} threads/server)"
    )
    print()
    print(f"{'across':>12} {'within':>14} {'servers on':>11} "
          f"{'chip W':>8} {'cluster W':>10}")
    results = {}
    for across in ("spread", "consolidate"):
        for within in ("consolidation", "borrowing"):
            plan = scheduler.schedule(jobs, within=within, across=across)
            measured = scheduler.evaluate(plan)
            results[(across, within)] = measured
            print(
                f"{across:>12} {within:>14} {plan.n_servers_on:>11} "
                f"{measured.cluster_chip_power:>8.1f} "
                f"{measured.cluster_power:>10.1f}"
            )

    worst = results[("spread", "consolidation")]
    best = results[("consolidate", "borrowing")]
    print()
    print(
        f"two-level AGS saves {1 - best.cluster_power / worst.cluster_power:.1%} "
        "of cluster power vs naive spreading:"
    )
    print("  - powering off whole servers removes their peripheral draw;")
    print("  - borrowing inside each powered server deepens its undervolt.")


if __name__ == "__main__":
    main()
