#!/usr/bin/env python3
"""Quickstart: measure adaptive guardbanding on the simulated POWER7+.

Builds the default two-socket Power 720-class server, runs raytrace on one
to eight cores, and prints what the paper's Fig. 3 measures: chip power
under the static guardband vs the adaptive undervolting mode.

Run:  python examples/quickstart.py
"""

from repro import build_server, measure


def main() -> None:
    server = build_server()

    print("Adaptive guardbanding on a simulated POWER7+ (raytrace)")
    print(f"{'cores':>6} {'static W':>10} {'adaptive W':>11} {'saving':>8} {'EDP gain':>9}")
    for n_cores in range(1, 9):
        result = measure(
            "raytrace", n_threads=n_cores, mode="undervolt", server=server
        )
        static_w = result.static.point.socket_point(0).chip_power
        adaptive_w = result.adaptive.point.socket_point(0).chip_power
        saving = 1 - adaptive_w / static_w
        print(
            f"{n_cores:>6} {static_w:>10.1f} {adaptive_w:>11.1f} "
            f"{saving:>8.1%} {result.edp_improvement_fraction:>9.1%}"
        )

    print()
    print("The benefit decays with active cores — the paper's central")
    print("observation (Sec. 3.2): passive voltage drop eats the guardband.")


if __name__ == "__main__":
    main()
