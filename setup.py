"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine's offline toolchain (setuptools 65,
no ``wheel``) cannot build PEP 660 editable wheels; ``python setup.py
develop`` installs the same editable layout without needing wheel.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
