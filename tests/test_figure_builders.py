"""Structural tests of the figure builders (shapes, keys, determinism)."""

import pytest

from repro.analysis import figures
from repro.guardband import GuardbandMode


class TestCoreScalingSeries:
    def test_fig3_series_lengths(self):
        series = figures.fig3_core_scaling_power(core_counts=(1, 4, 8))
        assert series.core_counts == (1, 4, 8)
        assert len(series.static_power) == 3
        assert len(series.adaptive_edp) == 3

    def test_fig3_mode_is_undervolt(self):
        series = figures.fig3_core_scaling_power(core_counts=(1,))
        assert series.mode is GuardbandMode.UNDERVOLT

    def test_fig4_mode_is_overclock(self):
        series = figures.fig4_core_scaling_frequency(core_counts=(1,))
        assert series.mode is GuardbandMode.OVERCLOCK

    def test_deterministic_across_builds(self):
        a = figures.fig3_core_scaling_power(core_counts=(2,))
        b = figures.fig3_core_scaling_power(core_counts=(2,))
        assert a.static_power == b.static_power
        assert a.adaptive_power == b.adaptive_power


class TestHeterogeneitySeries:
    def test_fig5_covers_requested_workloads(self):
        series = figures.fig5_workload_heterogeneity(
            GuardbandMode.UNDERVOLT,
            workloads=("raytrace", "radix"),
            core_counts=(1, 8),
        )
        assert set(series.improvements) == {"raytrace", "radix"}
        assert len(series.improvements["radix"]) == 2

    def test_average_and_spread(self):
        series = figures.fig5_workload_heterogeneity(
            GuardbandMode.UNDERVOLT,
            workloads=("raytrace", "radix"),
            core_counts=(1,),
        )
        values = [series.improvements[w][0] for w in ("raytrace", "radix")]
        assert series.average(0) == pytest.approx(sum(values) / 2)
        assert series.spread(0) == pytest.approx(max(values) - min(values))


class TestCpmMapping:
    def test_fig6_lines_per_frequency(self):
        result = figures.fig6_cpm_voltage_mapping(n_frequencies=3, n_voltages=5)
        assert len(result.frequencies) == 3
        assert set(result.lines) == set(result.frequencies)
        voltages, codes = result.lines[result.frequencies[0]]
        assert len(voltages) == 5
        assert len(codes) == 5

    def test_fig6_codes_monotone_in_voltage(self):
        result = figures.fig6_cpm_voltage_mapping(n_frequencies=2, n_voltages=8)
        for voltages, codes in result.lines.values():
            assert all(b >= a - 1e-9 for a, b in zip(codes, codes[1:]))

    def test_fig6_lower_frequency_line_sits_left(self):
        """Same mean code is reached at lower voltage when running slower."""
        result = figures.fig6_cpm_voltage_mapping(n_frequencies=2, n_voltages=8)
        slow_f, fast_f = result.frequencies[0], result.frequencies[-1]
        slow_v, slow_c = result.lines[slow_f]
        fast_v, fast_c = result.lines[fast_f]
        # Compare voltage needed for mean code ~5 on each line.
        import numpy as np

        v_slow = np.interp(5.0, slow_c, slow_v)
        v_fast = np.interp(5.0, fast_c, fast_v)
        assert v_slow < v_fast

    def test_fig6_core_sensitivities_spread(self):
        result = figures.fig6_cpm_voltage_mapping(n_frequencies=2, n_voltages=5)
        assert len(set(round(s, 2) for s in result.core_sensitivity_mv)) > 1


class TestVoltageDropSeries:
    def test_fig7_per_core_coverage(self):
        out = figures.fig7_voltage_drop_scaling(
            workloads=("raytrace",), core_counts=(1, 2)
        )
        series = out["raytrace"]
        assert set(series.drops_percent) == set(range(8))
        assert len(series.drops_percent[0]) == 2


class TestDecomposition:
    def test_fig9_total_helper(self):
        out = figures.fig9_drop_decomposition(
            workloads=("raytrace",), core_counts=(1, 8)
        )
        series = out["raytrace"]
        assert series.total(0) == pytest.approx(
            series.loadline[0]
            + series.ir_drop[0]
            + series.typical_didt[0]
            + series.worst_didt[0]
        )


class TestFig10:
    def test_row_per_workload(self):
        result = figures.fig10_passive_drop_correlation(
            workloads=("raytrace", "mcf", "lu_cb")
        )
        assert [r.workload for r in result.rows] == ["raytrace", "mcf", "lu_cb"]

    def test_column_extraction(self):
        result = figures.fig10_passive_drop_correlation(workloads=("raytrace", "mcf"))
        assert result.column("chip_power") == [
            result.rows[0].chip_power,
            result.rows[1].chip_power,
        ]


class TestSchedulingFigures:
    def test_fig12_improvement_accessors(self):
        series = figures.fig12_borrowing_scaling(core_counts=(1, 8))
        assert series.improvement_percent(1, "borrowing") >= series.improvement_percent(
            1, "baseline"
        ) - 0.5

    def test_fig13_tables_cover_workloads(self):
        series = figures.fig13_borrowing_all_workloads(
            workloads=("raytrace",), core_counts=(1, 8)
        )
        assert set(series.baseline) == {"raytrace"}
        assert set(series.borrowing) == {"raytrace"}

    def test_fig14_rows_sorted_by_energy(self):
        result = figures.fig14_borrowing_energy(
            workloads=("raytrace", "lu_ncb", "lbm")
        )
        improvements = [r.energy_improvement_percent for r in result.rows]
        assert improvements == sorted(improvements)

    def test_fig14_row_lookup(self):
        result = figures.fig14_borrowing_energy(workloads=("raytrace",))
        assert result.row("raytrace").workload == "raytrace"
        with pytest.raises(KeyError):
            result.row("doom")

    def test_fig15_point_grid(self):
        points = figures.fig15_colocation_frequency(others=("mcf",))
        assert len(points) == 8
        assert all(p.n_coremark + p.n_other == 8 for p in points)

    def test_fig16_samples_cover_catalog(self):
        result = figures.fig16_mips_predictor(workloads=("raytrace", "mcf", "lu_cb"))
        assert {s.workload for s in result.samples} == {"raytrace", "mcf", "lu_cb"}
        assert result.predictor.fitted
