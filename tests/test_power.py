"""Power model: CV²f dynamics, leakage scaling, gating, breakdown sums."""

import pytest

from repro.chip.power import PowerBreakdown, PowerModel


@pytest.fixture
def model(chip_config):
    return PowerModel(chip_config)


def _uniform_chip(model, activity=1.0, voltage=1.2, frequency=4.2e9, gated=False,
                  temperature=35.0):
    n = model.config.n_cores
    return model.chip_power(
        activities=[activity] * n,
        voltages=[voltage] * n,
        frequencies=[frequency] * n,
        gated=[gated] * n,
        temperature=temperature,
    )


class TestCoreDynamic:
    def test_scales_linearly_with_activity(self, model):
        p1 = model.core_dynamic(0.5, 1.2, 4.2e9)
        p2 = model.core_dynamic(1.0, 1.2, 4.2e9)
        assert p2 == pytest.approx(2 * p1)

    def test_scales_quadratically_with_voltage(self, model):
        p1 = model.core_dynamic(1.0, 1.0, 4.2e9)
        p2 = model.core_dynamic(1.0, 1.2, 4.2e9)
        assert p2 / p1 == pytest.approx(1.44)

    def test_scales_linearly_with_frequency(self, model):
        p1 = model.core_dynamic(1.0, 1.2, 2.1e9)
        p2 = model.core_dynamic(1.0, 1.2, 4.2e9)
        assert p2 == pytest.approx(2 * p1)

    def test_raytrace_class_core_near_10w(self, model):
        """Calibration anchor: Fig. 3a's ~10 W per active core."""
        assert model.core_dynamic(1.0, 1.22, 4.2e9) == pytest.approx(10.3, rel=0.05)

    def test_rejects_negative_activity(self, model):
        with pytest.raises(ValueError):
            model.core_dynamic(-0.1, 1.2, 4.2e9)


class TestCoreLeakage:
    def test_grows_with_voltage(self, model):
        assert model.core_leakage(1.25, 35.0, False) > model.core_leakage(
            1.10, 35.0, False
        )

    def test_cubic_voltage_exponent(self, model):
        p1 = model.core_leakage(1.2, 35.0, False)
        p2 = model.core_leakage(1.08, 35.0, False)
        assert p2 / p1 == pytest.approx(0.9**3, rel=1e-6)

    def test_grows_with_temperature(self, model):
        assert model.core_leakage(1.2, 60.0, False) > model.core_leakage(
            1.2, 30.0, False
        )

    def test_gated_core_keeps_small_residual(self, model, chip_config):
        gated = model.core_leakage(1.2, 35.0, True)
        on = model.core_leakage(1.2, 35.0, False)
        assert gated == pytest.approx(on * chip_config.power_gate_residual)

    def test_nominal_at_reference_point(self, model, chip_config):
        assert model.core_leakage(1.2, chip_config.leakage_temp_ref, False) == (
            pytest.approx(chip_config.core_leakage_nominal)
        )


class TestChipPower:
    def test_breakdown_total_is_sum(self, model):
        bd = _uniform_chip(model)
        expected = (
            sum(bd.core_dynamic)
            + sum(bd.core_leakage)
            + bd.uncore_dynamic
            + bd.uncore_leakage
        )
        assert bd.total == pytest.approx(expected)

    def test_idle_chip_near_60w(self, model, chip_config):
        """Calibration anchor: Fig. 3a's ~60 W idle intercept."""
        bd = _uniform_chip(model, activity=chip_config.idle_activity, voltage=1.22)
        assert 50 < bd.total < 70

    def test_busy_chip_well_above_idle(self, model, chip_config):
        idle = _uniform_chip(model, activity=chip_config.idle_activity)
        busy = _uniform_chip(model, activity=1.0)
        assert busy.total > idle.total + 60

    def test_gated_chip_much_cheaper(self, model):
        on = _uniform_chip(model, activity=0.1)
        gated = _uniform_chip(model, activity=0.1, gated=True)
        assert gated.total < on.total / 4

    def test_gated_cores_have_zero_dynamic(self, model):
        bd = _uniform_chip(model, gated=True)
        assert all(p == 0.0 for p in bd.core_dynamic)

    def test_core_power_accessor(self, model):
        bd = _uniform_chip(model)
        assert bd.core_power(0) == pytest.approx(
            bd.core_dynamic[0] + bd.core_leakage[0]
        )

    def test_uncore_grows_with_active_cores(self, model):
        low = model.uncore_power(1, 1.2, 4.2e9, 35.0)
        high = model.uncore_power(8, 1.2, 4.2e9, 35.0)
        assert high[0] > low[0]

    def test_rejects_mismatched_lengths(self, model):
        with pytest.raises(ValueError):
            model.chip_power(
                activities=[1.0],
                voltages=[1.2] * 8,
                frequencies=[4.2e9] * 8,
                gated=[False] * 8,
                temperature=35.0,
            )


class TestPowerBreakdownDataclass:
    def test_core_total(self):
        bd = PowerBreakdown(
            core_dynamic=(1.0, 2.0),
            core_leakage=(0.5, 0.5),
            uncore_dynamic=1.0,
            uncore_leakage=2.0,
        )
        assert bd.core_total == pytest.approx(4.0)
        assert bd.total == pytest.approx(7.0)
