"""The ``repro scenario`` subcommand and the ScenarioError exit code."""

import pytest

from repro.cli import ERROR_EXIT_CODES, build_parser, exit_code_for, main
from repro.errors import ReproError, ScenarioError

TINY = """\
[scenario]
name = "cli_tiny"
seed = 3

[traffic]
duration_seconds = 1800.0
jobs_per_hour = 40.0
diurnal_amplitude = 0.2
peak_time_seconds = 900.0
lc_fraction = 0.2

[mix]
lc_service_mean = 300.0
batch_service_mean = 600.0
service_floor = 60.0

[topology]
[[topology.groups]]
name = "only"
servers = 1

[policy]
policy = "ags"
"""


@pytest.fixture
def tiny_path(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY)
    return str(path)


class TestExitCode:
    def test_scenario_error_maps_to_12(self):
        assert exit_code_for(ScenarioError("x")) == 12

    def test_scenario_error_checked_before_base_repro_error(self):
        # ScenarioError is a ReproError; the table must match the
        # subclass first or every scenario failure would exit 11.
        codes = [code for _, code in ERROR_EXIT_CODES]
        families = [exc for exc, _ in ERROR_EXIT_CODES]
        assert families.index(ScenarioError) < families.index(ReproError)
        assert len(set(codes)) == len(codes)

    def test_validate_without_files_exits_12(self, capsys):
        assert main(["scenario", "validate"]) == 12
        err = capsys.readouterr().err
        assert err.startswith("error: ScenarioError:")
        assert err.count("\n") == 1

    def test_run_without_files_exits_12(self):
        assert main(["scenario", "run"]) == 12

    def test_missing_file_exits_12(self, tmp_path, capsys):
        assert main(
            ["scenario", "validate", str(tmp_path / "absent.toml")]
        ) == 12
        assert "absent.toml" in capsys.readouterr().err

    def test_unknown_key_exits_12_and_names_it(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(TINY + "\n[traffic.extra]\nx = 1\n")
        assert main(["scenario", "validate", str(path)]) == 12
        assert "extra" in capsys.readouterr().err


class TestParserDefaults:
    def test_scenario_defaults(self):
        args = build_parser().parse_args(["scenario", "check"])
        assert args.action == "check"
        assert args.files == []
        assert args.catalog_dir is None
        assert args.shards == 1
        assert args.skip_slow is False
        assert args.trace_out is None
        # Shared runner options ride along from the common parent parser.
        assert args.workers == 1
        assert args.seed == 7
        assert args.metrics_out is None

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "explode"])


class TestActions:
    def test_validate_reports_shape(self, tiny_path, capsys):
        assert main(["scenario", "validate", tiny_path]) == 0
        out = capsys.readouterr().out
        assert "cli_tiny" in out
        assert "1 server(s)" in out

    def test_list_reads_files(self, tiny_path, capsys):
        assert main(["scenario", "list", tiny_path]) == 0
        out = capsys.readouterr().out
        assert "cli_tiny" in out
        assert "no" in out  # golden column: no golden block

    def test_run_prints_summary_and_hash(self, tiny_path, capsys):
        assert main(["scenario", "run", tiny_path]) == 0
        out = capsys.readouterr().out
        assert "scenario cli_tiny" in out
        assert "event log:" in out

    def test_run_seed_changes_hash(self, tiny_path, capsys):
        def hash_line(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return [l for l in out.splitlines() if "event log:" in l]

        base = hash_line(["scenario", "run", tiny_path])
        same = hash_line(["scenario", "run", tiny_path])
        other = hash_line(["scenario", "run", tiny_path, "--seed", "11"])
        assert base == same
        assert base != other

    def test_run_shards_keep_the_hash(self, tiny_path, capsys):
        assert main(["scenario", "run", tiny_path]) == 0
        base = capsys.readouterr().out
        assert main(
            ["scenario", "run", tiny_path, "--shards", "2", "--workers", "2"]
        ) == 0
        assert capsys.readouterr().out == base

    def test_trace_out_writes_jsonl(self, tiny_path, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main(
            ["scenario", "run", tiny_path, "--trace-out", str(trace)]
        ) == 0
        lines = trace.read_text().splitlines()
        assert lines
        assert all(line.startswith("{") for line in lines)

    def test_check_without_goldens_exits_12(self, tiny_path, capsys):
        assert main(["scenario", "check", tiny_path]) == 12
        assert "golden" in capsys.readouterr().err

    def test_check_adjudicates_failure_as_exit_1(self, tmp_path, capsys):
        path = tmp_path / "pinned.toml"
        path.write_text(
            TINY + "\n[golden]\nevent_log_hash = \"" + "0" * 64 + "\"\n"
        )
        assert main(["scenario", "check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "event_log_hash" in out
