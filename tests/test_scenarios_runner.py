"""Lowering scenarios onto the fleet engine, and golden adjudication.

The determinism contract is the one the whole fleet stack carries: the
event-log hash of a scenario run is a pure function of the scenario and
the seed — shard count and worker count must not leak in.
"""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    FaultPlanSpec,
    FaultWindowSpec,
    GoldenSpec,
    PolicySpec,
    Scenario,
    ServerGroupSpec,
    TopologySpec,
    TrafficSpec,
    WorkloadMixSpec,
    check_result,
    check_scenario,
    lower_scenario,
    run_scenario,
    traffic_config,
)


def tiny_scenario(**overrides) -> Scenario:
    """A two-group scenario small enough to simulate in a test."""
    defaults = dict(
        name="tiny",
        seed=3,
        traffic=TrafficSpec(
            duration_seconds=1800.0,
            jobs_per_hour=40.0,
            diurnal_amplitude=0.2,
            peak_time_seconds=900.0,
            lc_fraction=0.2,
        ),
        mix=WorkloadMixSpec(
            lc_service_mean=300.0,
            batch_service_mean=600.0,
            service_floor=60.0,
        ),
        topology=TopologySpec(
            groups=(
                ServerGroupSpec(name="fresh", servers=1),
                ServerGroupSpec(name="old", servers=1, age_years=8.0),
            )
        ),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestLowering:
    def test_groups_become_cells_with_offsets(self):
        lowered = lower_scenario(tiny_scenario())
        assert [c.label for c in lowered.cells] == ["fresh", "old"]
        assert [c.index for c in lowered.cells] == [0, 1]
        assert [c.offset for c in lowered.cells] == [0, 1]

    def test_aging_shrinks_old_groups_guardband(self):
        lowered = lower_scenario(tiny_scenario())
        fresh, old = lowered.cells
        assert (
            old.config.server_config.guardband.static_guardband
            < fresh.config.server_config.guardband.static_guardband
        )

    def test_groups_get_distinct_die_seeds(self):
        lowered = lower_scenario(tiny_scenario())
        seeds = {cell.config.seed for cell in lowered.cells}
        assert len(seeds) == len(lowered.cells)
        # The traffic seed is the scenario seed, not any group's die seed.
        assert lowered.trace_seed == 3

    def test_seed_override_replaces_scenario_seed(self):
        lowered = lower_scenario(tiny_scenario(), seed=99)
        assert lowered.trace_seed == 99

    def test_cell_split_follows_cell_servers(self):
        scenario = tiny_scenario(
            topology=TopologySpec(
                groups=(ServerGroupSpec(name="g", servers=3, cell_servers=2),)
            )
        )
        lowered = lower_scenario(scenario)
        assert [c.config.n_servers for c in lowered.cells] == [2, 1]
        assert [c.offset for c in lowered.cells] == [0, 2]

    def test_group_faults_rebase_to_cell_local_ids(self):
        scenario = tiny_scenario(
            topology=TopologySpec(
                groups=(
                    ServerGroupSpec(name="a", servers=1),
                    ServerGroupSpec(name="b", servers=1),
                )
            ),
            faults=FaultPlanSpec(
                windows=(
                    FaultWindowSpec(
                        kind="server_crash",
                        start_seconds=600.0,
                        group="b",
                        repair_seconds=300.0,
                    ),
                )
            ),
        )
        lowered = lower_scenario(scenario)
        cell_a, cell_b = lowered.cells
        assert cell_a.fault_plan is None
        assert cell_b.fault_plan is not None
        (spec,) = cell_b.fault_plan.specs
        assert spec.server_id == 0  # cell-local, offset re-applied on merge

    def test_traffic_config_merges_traffic_and_mix(self):
        scenario = tiny_scenario()
        config = traffic_config(scenario)
        assert config.duration_seconds == 1800.0
        assert config.lc_fraction == 0.2
        assert config.service_floor == 60.0


class TestDeterminism:
    def test_hash_invariant_across_shards_and_workers(self):
        scenario = tiny_scenario()
        base = run_scenario(scenario)
        for kwargs in ({"n_shards": 2}, {"workers": 2},
                       {"n_shards": 2, "workers": 2}):
            again = run_scenario(scenario, **kwargs)
            assert (
                again.summary["event_log_hash"]
                == base.summary["event_log_hash"]
            ), kwargs
            assert again.summary == base.summary, kwargs

    def test_seed_changes_the_run(self):
        scenario = tiny_scenario()
        a = run_scenario(scenario)
        b = run_scenario(scenario, seed=4)
        assert a.summary["event_log_hash"] != b.summary["event_log_hash"]

    def test_summary_job_conservation(self):
        result = run_scenario(tiny_scenario())
        assert result.fleet.conserved
        assert result.summary["n_arrivals"] > 0
        assert {g.name for g in result.groups} == {"fresh", "old"}
        assert sum(g.n_arrivals for g in result.groups) == (
            result.summary["n_arrivals"]
        )


class TestGoldenAdjudication:
    def test_matching_golden_passes(self):
        scenario = tiny_scenario()
        summary = run_scenario(scenario).summary
        pinned = dataclasses.replace(
            scenario,
            golden=GoldenSpec(
                event_log_hash=summary["event_log_hash"],
                n_arrivals=summary["n_arrivals"],
                n_completions=summary["n_completions"],
                qos_violations_max=summary["qos_violations"],
            ),
        )
        verdict = check_scenario(pinned)
        assert verdict.passed
        assert verdict.failures == ()

    def test_mismatched_golden_fails_with_named_fields(self):
        scenario = tiny_scenario()
        result = run_scenario(scenario)
        pinned = dataclasses.replace(
            scenario,
            golden=GoldenSpec(
                event_log_hash="0" * 64,
                n_arrivals=result.summary["n_arrivals"] + 1,
                qos_violations_max=0,
            ),
        )
        verdict = check_result(
            dataclasses.replace(result, scenario=pinned)
        )
        assert not verdict.passed
        text = "\n".join(verdict.failures)
        assert "event_log_hash" in text
        assert "n_arrivals" in text

    def test_check_without_golden_is_an_error(self):
        with pytest.raises(ScenarioError, match="golden"):
            check_scenario(tiny_scenario())


class TestPowerCapAdjudication:
    def test_unreachable_cap_counts_zero(self):
        scenario = tiny_scenario(
            policy=PolicySpec(policy="ags", server_power_cap_w=100_000.0)
        )
        result = run_scenario(scenario)
        assert result.summary["cap_exceeded_epochs"] == 0

    def test_impossible_cap_counts_every_powered_epoch(self):
        scenario = tiny_scenario(
            policy=PolicySpec(policy="ags", server_power_cap_w=0.001)
        )
        result = run_scenario(scenario)
        assert result.summary["cap_exceeded_epochs"] > 0

    def test_no_cap_counts_nothing(self):
        # Without a cap there is nothing to adjudicate: the count is 0
        # by construction, not computed against some implicit default.
        result = run_scenario(tiny_scenario())
        assert result.summary["cap_exceeded_epochs"] == 0
