"""Metric arithmetic and linear fitting."""

import pytest

from repro.analysis import edp, energy, fit_linear, improvement_fraction, percent


class TestMetrics:
    def test_energy(self):
        assert energy(100.0, 10.0) == 1000.0

    def test_edp(self):
        assert edp(100.0, 10.0) == 10_000.0

    def test_improvement_positive_for_reduction(self):
        assert improvement_fraction(100.0, 90.0) == pytest.approx(0.1)

    def test_improvement_negative_for_regression(self):
        assert improvement_fraction(100.0, 110.0) == pytest.approx(-0.1)

    def test_percent(self):
        assert percent(0.062) == pytest.approx(6.2)

    def test_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            energy(-1.0, 10.0)

    def test_improvement_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_fraction(0.0, 1.0)


class TestFitLinear:
    def test_exact_line(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert fit.predict(5) == pytest.approx(11.0)

    def test_noisy_data_r_squared_below_one(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3.5, 4.5, 7])
        assert 0.9 < fit.r_squared < 1.0
        assert fit.rmse > 0

    def test_relative_rmse(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3.5, 4.5, 7])
        assert fit.relative_rmse(4.0) == pytest.approx(fit.rmse / 4.0)

    def test_relative_rmse_rejects_zero_reference(self):
        fit = fit_linear([0, 1], [1, 3])
        with pytest.raises(ValueError):
            fit.relative_rmse(0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_linear([2, 2, 2], [1, 2, 3])
