"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.config import ChipConfig, PdnConfig, ServerConfig
from repro.sim.run import build_server
from repro.workloads import get_profile


@pytest.fixture
def chip_config() -> ChipConfig:
    """The default chip configuration."""
    return ChipConfig()


@pytest.fixture
def pdn_config() -> PdnConfig:
    """The default power-delivery configuration."""
    return PdnConfig()


@pytest.fixture
def server_config() -> ServerConfig:
    """The default two-socket server configuration."""
    return ServerConfig()


@pytest.fixture
def server(server_config):
    """A fresh default server."""
    return build_server(server_config)


@pytest.fixture
def raytrace():
    """The raytrace profile — the paper's running example."""
    return get_profile("raytrace")


@pytest.fixture
def lu_cb():
    """The lu_cb profile — the paper's overclocking example."""
    return get_profile("lu_cb")
