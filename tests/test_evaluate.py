"""Placement evaluation with contention-adjusted activity."""

import pytest

from repro.core import ConsolidationScheduler, LoadlineBorrowingScheduler
from repro.core.evaluate import apply_with_contention, measure_scheduled
from repro.guardband import GuardbandMode
from repro.workloads import get_profile
from repro.workloads.scaling import RuntimeModel


class TestApplyWithContention:
    def test_uncontended_placement_keeps_profile_activity(self, server, raytrace):
        placement = ConsolidationScheduler(server.config).schedule(raytrace, 4, 8)
        apply_with_contention(server, placement, RuntimeModel())
        thread = server.sockets[0].chip.cores[0].threads[0]
        assert thread.activity == pytest.approx(raytrace.activity)

    def test_saturated_placement_reduces_activity(self, server):
        radix = get_profile("radix")
        placement = ConsolidationScheduler(server.config).schedule(
            radix, 32, 8, threads_per_core=4
        )
        apply_with_contention(server, placement, RuntimeModel())
        thread = server.sockets[0].chip.cores[0].threads[0]
        assert thread.activity < radix.activity

    def test_gating_applied(self, server, raytrace):
        placement = LoadlineBorrowingScheduler(server.config).schedule(raytrace, 4, 8)
        apply_with_contention(server, placement, RuntimeModel())
        for socket in server.sockets:
            assert sum(1 for c in socket.chip.cores if not c.gated) == 4


class TestMeasureScheduled:
    def test_returns_paired_measurement(self, server, raytrace):
        placement = ConsolidationScheduler(server.config).schedule(raytrace, 4, 8)
        result = measure_scheduled(
            server, placement, raytrace, GuardbandMode.UNDERVOLT
        )
        assert result.static.mode is GuardbandMode.STATIC
        assert result.adaptive.mode is GuardbandMode.UNDERVOLT
        assert result.power_saving_fraction > 0

    def test_borrowing_beats_consolidation_at_eight_cores(self, server, raytrace):
        cons = ConsolidationScheduler(server.config).schedule(raytrace, 8, 8)
        borr = LoadlineBorrowingScheduler(server.config).schedule(raytrace, 8, 8)
        p_cons = measure_scheduled(
            server, cons, raytrace, GuardbandMode.UNDERVOLT
        ).adaptive.chip_power
        p_borr = measure_scheduled(
            server, borr, raytrace, GuardbandMode.UNDERVOLT
        ).adaptive.chip_power
        assert p_borr < p_cons

    def test_sharing_heavy_kernel_slower_when_split(self, server):
        lu_ncb = get_profile("lu_ncb")
        cons = ConsolidationScheduler(server.config).schedule(lu_ncb, 8, 8)
        borr = LoadlineBorrowingScheduler(server.config).schedule(lu_ncb, 8, 8)
        t_cons = measure_scheduled(
            server, cons, lu_ncb, GuardbandMode.UNDERVOLT
        ).adaptive.execution_time
        t_borr = measure_scheduled(
            server, borr, lu_ncb, GuardbandMode.UNDERVOLT
        ).adaptive.execution_time
        assert t_borr > t_cons * 1.15

    def test_bandwidth_bound_rate_runs_faster_when_split(self, server):
        lbm = get_profile("lbm")
        cons = ConsolidationScheduler(server.config).schedule(lbm, 8, 8)
        borr = LoadlineBorrowingScheduler(server.config).schedule(lbm, 8, 8)
        t_cons = measure_scheduled(
            server, cons, lbm, GuardbandMode.UNDERVOLT
        ).adaptive.execution_time
        t_borr = measure_scheduled(
            server, borr, lbm, GuardbandMode.UNDERVOLT
        ).adaptive.execution_time
        assert t_borr < t_cons * 0.8
