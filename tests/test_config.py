"""Configuration dataclasses: defaults, derived values, validation."""

import dataclasses

import pytest

from repro.config import (
    ChipConfig,
    DidtConfig,
    GuardbandConfig,
    PdnConfig,
    ServerConfig,
)
from repro.errors import ConfigError


class TestChipConfigDefaults:
    def test_power7_core_count(self, chip_config):
        assert chip_config.n_cores == 8

    def test_smt4(self, chip_config):
        assert chip_config.smt_ways == 4

    def test_dvfs_range(self, chip_config):
        assert chip_config.f_min == pytest.approx(2.8e9)
        assert chip_config.f_nominal == pytest.approx(4.2e9)

    def test_frequency_step_28mhz(self, chip_config):
        assert chip_config.f_step == pytest.approx(28e6)

    def test_forty_cpms(self, chip_config):
        assert chip_config.n_cpms == 40

    def test_cpm_bit_near_21mv(self, chip_config):
        assert chip_config.cpm_mv_per_bit == pytest.approx(0.021)

    def test_vmin_at_nominal_frequency(self, chip_config):
        assert chip_config.vmin(4.2e9) == pytest.approx(1.050, abs=1e-3)

    def test_vmin_monotone_in_frequency(self, chip_config):
        assert chip_config.vmin(4.2e9) > chip_config.vmin(2.8e9)

    def test_fmax_inverts_vmin(self, chip_config):
        voltage = chip_config.vmin(3.5e9)
        assert chip_config.fmax_at(voltage) == pytest.approx(3.5e9)


class TestChipConfigValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            ChipConfig(n_cores=0)

    def test_rejects_inverted_frequency_range(self):
        with pytest.raises(ConfigError):
            ChipConfig(f_min=5e9, f_nominal=4.2e9)

    def test_rejects_ceiling_below_nominal(self):
        with pytest.raises(ConfigError):
            ChipConfig(f_ceiling=4.0e9)

    def test_rejects_negative_step(self):
        with pytest.raises(ConfigError):
            ChipConfig(f_step=-1.0)

    def test_rejects_negative_vmin_slope(self):
        with pytest.raises(ConfigError):
            ChipConfig(vmin_slope=-0.1)

    def test_rejects_gate_residual_above_one(self):
        with pytest.raises(ConfigError):
            ChipConfig(power_gate_residual=1.5)

    def test_rejects_zero_smt(self):
        with pytest.raises(ConfigError):
            ChipConfig(smt_ways=0)


class TestDidtConfig:
    def test_defaults_valid(self):
        DidtConfig()

    def test_rejects_negative_ripple(self):
        with pytest.raises(ConfigError):
            DidtConfig(ripple_single_core=-0.001)

    def test_rejects_negative_droop_rate(self):
        with pytest.raises(ConfigError):
            DidtConfig(droop_rate_per_core=-1.0)

    def test_rejects_negative_smoothing(self):
        with pytest.raises(ConfigError):
            DidtConfig(ripple_smoothing_exponent=-0.5)


class TestPdnConfig:
    def test_vrm_step_625_microvolt(self, pdn_config):
        assert pdn_config.vrm_step == pytest.approx(6.25e-3)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ConfigError):
            PdnConfig(r_loadline=-1e-3)

    def test_rejects_coupling_above_one(self):
        with pytest.raises(ConfigError):
            PdnConfig(ir_neighbour_coupling=1.5)

    def test_rejects_zero_vrm_step(self):
        with pytest.raises(ConfigError):
            PdnConfig(vrm_step=0.0)


class TestGuardbandConfig:
    def test_control_interval_32ms(self):
        assert GuardbandConfig().control_interval == pytest.approx(0.032)

    def test_calibration_code_2(self):
        assert GuardbandConfig().calibration_code == 2

    def test_rejects_zero_guardband(self):
        with pytest.raises(ConfigError):
            GuardbandConfig(static_guardband=0.0)

    def test_rejects_negative_calibration_code(self):
        with pytest.raises(ConfigError):
            GuardbandConfig(calibration_code=-1)


class TestServerConfig:
    def test_two_sockets(self, server_config):
        assert server_config.n_sockets == 2

    def test_sixteen_total_cores(self, server_config):
        assert server_config.total_cores == 16

    def test_static_vdd_near_1235mv(self, server_config):
        """Fig. 10b: adaptive Vdd selections of 1170–1220 mV imply a static
        rail around 1235 mV."""
        assert server_config.static_vdd == pytest.approx(1.235, abs=0.005)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ConfigError):
            ServerConfig(n_sockets=0)

    def test_rejects_negative_peripheral_power(self):
        with pytest.raises(ConfigError):
            ServerConfig(peripheral_power=-1.0)

    def test_configs_are_frozen(self, server_config):
        with pytest.raises(dataclasses.FrozenInstanceError):
            server_config.n_sockets = 4
