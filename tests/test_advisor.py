"""The colocation advisor."""

import pytest

from repro.analysis.figures import fig16_mips_predictor
from repro.core import MipsFrequencyPredictor
from repro.core.advisor import ColocationAdvisor
from repro.errors import SchedulingError
from repro.workloads import all_profiles, get_profile
from repro.workloads.websearch import WebSearchModel


@pytest.fixture(scope="module")
def predictor():
    return fig16_mips_predictor().predictor


@pytest.fixture
def advisor(server, predictor):
    return ColocationAdvisor(server, WebSearchModel().profile(), predictor)


class TestRanking:
    def test_light_candidates_rank_first(self, advisor):
        candidates = [get_profile(n) for n in ("mcf", "lu_cb", "raytrace")]
        verdicts = advisor.rank(candidates, required_frequency=4.40e9)
        assert verdicts[0].candidate == "mcf"
        assert verdicts[-1].candidate == "lu_cb"

    def test_requirement_splits_catalog(self, advisor):
        verdicts = advisor.rank(all_profiles(), required_frequency=4.50e9)
        safe = {v.candidate for v in verdicts if v.predicted_safe}
        unsafe = {v.candidate for v in verdicts if not v.predicted_safe}
        assert "mcf" in safe
        assert "lu_cb" in unsafe

    def test_loose_requirement_accepts_everyone(self, advisor):
        names = advisor.safe_candidates(all_profiles(), required_frequency=4.0e9)
        assert len(names) == len(all_profiles())

    def test_impossible_requirement_rejects_everyone(self, advisor):
        names = advisor.safe_candidates(all_profiles(), required_frequency=4.8e9)
        assert names == []

    def test_rejects_empty_candidates(self, advisor):
        with pytest.raises(SchedulingError):
            advisor.rank([], 4.4e9)

    def test_rejects_bad_requirement(self, advisor):
        with pytest.raises(SchedulingError):
            advisor.rank([get_profile("mcf")], 0.0)

    def test_rejects_unfitted_predictor(self, server):
        with pytest.raises(SchedulingError):
            ColocationAdvisor(
                server, WebSearchModel().profile(), MipsFrequencyPredictor()
            )


class TestVerification:
    def test_borderline_candidates_get_verified(self, advisor):
        candidates = [get_profile(n) for n in ("mcf", "raytrace", "lu_cb")]
        verdicts = advisor.rank(
            candidates, required_frequency=4.50e9, verify_margin=60e6
        )
        borderline = [
            v for v in verdicts
            if abs(v.predicted_frequency - 4.50e9) <= 60e6
        ]
        assert borderline
        assert all(v.verified for v in borderline)

    def test_clear_cases_skip_verification(self, advisor):
        verdicts = advisor.rank(
            [get_profile("mcf")], required_frequency=4.45e9, verify_margin=20e6
        )
        assert not verdicts[0].verified

    def test_verified_frequency_close_to_prediction(self, advisor):
        """The predictor's headline accuracy, exercised through the
        advisor's verification path."""
        verdicts = advisor.rank(
            [get_profile("raytrace")],
            required_frequency=4.50e9,
            verify_margin=200e6,
        )
        verdict = verdicts[0]
        assert verdict.verified
        assert verdict.verified_frequency == pytest.approx(
            verdict.predicted_frequency, rel=0.01
        )
