"""Graceful degradation of the guardband controller and the PDN hooks."""

import pytest

from repro.api import measure
from repro.errors import CalibrationError
from repro.faults import (
    CalibrationFault,
    CpmDropFault,
    CpmStuckFault,
    FaultPlan,
    LoadlineExcursionFault,
    StaleTelemetryFault,
    VrmDroopFault,
    injected,
)
from repro.guardband import GuardbandController, GuardbandMode
from repro.sim.server import Power720Server
from repro.telemetry.cpm_reader import CpmReader, CpmReadMode
from repro.workloads import get_profile


def fresh_controller(n_threads=4):
    server = Power720Server(seed=7)
    server.place(0, get_profile("raytrace"), n_threads)
    return GuardbandController(server.sockets[0])


class TestControllerFallback:
    def test_stuck_cpm_enters_fallback_and_serves_static(self):
        ctrl = fresh_controller()
        plan = FaultPlan(specs=(CpmStuckFault(socket_id=0, code=0),))
        with injected(plan):
            point = ctrl.operate(GuardbandMode.UNDERVOLT)
        assert ctrl.in_fallback
        assert ctrl.fallback_reason == "pinned_low"
        assert point.mode is GuardbandMode.STATIC
        assert point.undervolt == 0.0

    def test_dropped_cpm_enters_fallback(self):
        ctrl = fresh_controller()
        plan = FaultPlan(specs=(CpmDropFault(socket_id=0),))
        with injected(plan):
            point = ctrl.operate(GuardbandMode.UNDERVOLT)
        assert ctrl.fallback_reason == "dropped"
        assert point.mode is GuardbandMode.STATIC

    def test_hysteresis_rearms_after_window(self):
        ctrl = fresh_controller()
        plan = FaultPlan(
            specs=(
                CpmStuckFault(
                    socket_id=0, code=0, duration_seconds=100.0
                ),
            )
        )
        with injected(plan) as inj:
            assert ctrl.operate(GuardbandMode.UNDERVOLT).mode is (
                GuardbandMode.STATIC
            )
            inj.set_time(200.0)  # fault window over; telemetry healthy
            # Hysteresis: the first two healthy probes still serve static.
            for _ in range(ctrl.REARM_HEALTHY_OPERATES - 1):
                point = ctrl.operate(GuardbandMode.UNDERVOLT)
                assert ctrl.in_fallback
                assert point.mode is GuardbandMode.STATIC
            # The streak completes: adaptive mode re-arms immediately.
            point = ctrl.operate(GuardbandMode.UNDERVOLT)
        assert not ctrl.in_fallback
        assert point.mode is GuardbandMode.UNDERVOLT
        assert point.undervolt > 0.0

    def test_resumed_corruption_reenters_on_rearm_probe(self):
        ctrl = fresh_controller()
        # Two corruption windows with a healthy gap sized exactly to the
        # hysteresis: the re-arm probe lands back inside corruption.
        plan = FaultPlan(
            specs=(
                CpmStuckFault(socket_id=0, code=0, duration_seconds=10.0),
                CpmStuckFault(socket_id=0, code=0, start_seconds=20.0),
            )
        )
        with injected(plan) as inj:
            ctrl.operate(GuardbandMode.UNDERVOLT)
            assert ctrl.in_fallback
            inj.set_time(15.0)  # healthy gap
            for _ in range(ctrl.REARM_HEALTHY_OPERATES - 1):
                ctrl.operate(GuardbandMode.UNDERVOLT)
            inj.set_time(25.0)  # second window live at the re-arm probe
            point = ctrl.operate(GuardbandMode.UNDERVOLT)
        assert ctrl.in_fallback
        assert point.mode is GuardbandMode.STATIC

    def test_calibration_failure_falls_back_then_recovers(self):
        ctrl = fresh_controller()
        plan = FaultPlan(
            specs=(CalibrationFault(socket_id=0, duration_seconds=10.0),)
        )
        with injected(plan) as inj:
            point = ctrl.operate(GuardbandMode.UNDERVOLT)
            assert ctrl.fallback_reason == "calibration_failed"
            assert point.mode is GuardbandMode.STATIC
            # Fault clears; calibration retries, then hysteresis drains.
            inj.set_time(20.0)
            for _ in range(ctrl.REARM_HEALTHY_OPERATES):
                point = ctrl.operate(GuardbandMode.UNDERVOLT)
        assert not ctrl.in_fallback
        assert point.mode is GuardbandMode.UNDERVOLT

    def test_static_requests_untouched_by_fallback(self):
        ctrl = fresh_controller()
        plan = FaultPlan(specs=(CpmStuckFault(socket_id=0, code=0),))
        with injected(plan):
            ctrl.operate(GuardbandMode.UNDERVOLT)
            point = ctrl.operate(GuardbandMode.STATIC)
        assert point.mode is GuardbandMode.STATIC

    def test_rearm_hysteresis_validated(self):
        server = Power720Server(seed=7)
        with pytest.raises(ValueError):
            GuardbandController(server.sockets[0], rearm_healthy_operates=0)

    def test_calibration_error_surfaces_without_controller(self):
        from repro.guardband.calibration import calibrate_socket

        server = Power720Server(seed=7)
        server.place(0, get_profile("raytrace"), 2)
        plan = FaultPlan(specs=(CalibrationFault(socket_id=0),))
        with injected(plan):
            with pytest.raises(CalibrationError):
                calibrate_socket(
                    server.sockets[0].chip,
                    server.config.guardband,
                    socket_id=0,
                )


class TestPdnInjection:
    def test_vrm_droop_changes_settled_point(self):
        clean = measure("raytrace", n_threads=2)
        plan = FaultPlan(
            specs=(VrmDroopFault(socket_id=0, depth_volts=0.030),)
        )
        droopy = measure("raytrace", n_threads=2, fault_plan=plan)
        clean_v = clean.static.point.socket_point(0).solution.core_voltages[0]
        droopy_v = droopy.static.point.socket_point(0).solution.core_voltages[0]
        assert droopy_v < clean_v

    def test_loadline_excursion_deepens_drop(self):
        clean = measure("raytrace", n_threads=4)
        plan = FaultPlan(
            specs=(LoadlineExcursionFault(socket_id=0, factor=5.0),)
        )
        excursion = measure("raytrace", n_threads=4, fault_plan=plan)
        clean_v = clean.static.point.socket_point(0).solution.core_voltages[0]
        excursion_v = (
            excursion.static.point.socket_point(0).solution.core_voltages[0]
        )
        assert excursion_v < clean_v

    def test_stale_telemetry_replays_frozen_codes(self):
        server = Power720Server(seed=7)
        server.place(0, get_profile("raytrace"), 4)
        socket = server.sockets[0]
        plan = FaultPlan(
            specs=(StaleTelemetryFault(socket_id=0, start_seconds=10.0),)
        )
        with injected(plan) as inj:
            point = server.operate(GuardbandMode.STATIC)
            reader = CpmReader(socket)
            before = reader.worst_codes(
                point.socket_point(0).solution, CpmReadMode.SAMPLE
            )
            inj.set_time(20.0)
            # Resettle at a different load: fresh codes would differ, but
            # the stale window replays the frozen ones.
            server.clear()
            server.place(0, get_profile("raytrace"), 1)
            repoint = server.operate(GuardbandMode.STATIC)
            frozen = reader.worst_codes(
                repoint.socket_point(0).solution, CpmReadMode.SAMPLE
            )
            assert frozen == before
            assert inj.counts["cpm_stale"] >= 1


class TestZeroPerturbation:
    def test_empty_plan_measure_is_bit_identical(self):
        plain = measure("raytrace", n_threads=4)
        empty = measure("raytrace", n_threads=4, fault_plan=FaultPlan())
        for attr in ("static", "adaptive"):
            a = getattr(plain, attr).point.socket_point(0)
            b = getattr(empty, attr).point.socket_point(0)
            assert a.chip_power == b.chip_power
            assert a.frequency == b.frequency
            assert a.undervolt == b.undervolt

    def test_measure_without_plan_leaves_injector_untouched(self):
        from repro.faults import NULL_INJECTOR, fault_injector

        measure("raytrace", n_threads=1)
        assert fault_injector() is NULL_INJECTOR
