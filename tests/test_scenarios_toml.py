"""The in-repo TOML subset reader/writer behind scenario files.

The parser only has to carry the scenario schema (strings, numbers,
booleans, arrays, ``[table]`` and ``[[array-of-tables]]`` headers), but
within that subset it must agree with a real TOML implementation — when
:mod:`tomllib` is importable it is used as the oracle.
"""

import math

import pytest

from repro.errors import ReproError
from repro.scenarios import tomlio
from repro.scenarios.tomlio import TomlError

try:  # Python >= 3.11; the CI floor is 3.9.
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10
    tomllib = None


SAMPLE = """\
# A comment.
[scenario]
name = "sample"  # trailing comment
seed = 7
tags = ["slow", "x"]

[traffic]
duration_seconds = 14400.0
jobs_per_hour = 1_800.5
surges = [
    [3600.0, 600.0, 4.0],
    [7200.0, 600.0, 0.5],
]

[policy]
enabled = true
gated = false

[[faults.windows]]
kind = "server_crash"
start_seconds = 3600.0

[[faults.windows]]
kind = "job_kill"
job_id = 12
"""


class TestParse:
    def test_tables_and_scalars(self):
        doc = tomlio.loads(SAMPLE)
        assert doc["scenario"]["name"] == "sample"
        assert doc["scenario"]["seed"] == 7
        assert isinstance(doc["scenario"]["seed"], int)
        assert doc["scenario"]["tags"] == ["slow", "x"]
        assert doc["traffic"]["duration_seconds"] == 14400.0
        assert doc["traffic"]["jobs_per_hour"] == 1800.5
        assert doc["policy"]["enabled"] is True
        assert doc["policy"]["gated"] is False

    def test_multiline_array_and_array_of_tables(self):
        doc = tomlio.loads(SAMPLE)
        assert doc["traffic"]["surges"] == [
            [3600.0, 600.0, 4.0],
            [7200.0, 600.0, 0.5],
        ]
        kinds = [w["kind"] for w in doc["faults"]["windows"]]
        assert kinds == ["server_crash", "job_kill"]

    def test_empty_document(self):
        assert tomlio.loads("") == {}
        assert tomlio.loads("# only a comment\n") == {}

    @pytest.mark.parametrize(
        "text",
        [
            "a = 1\na = 2\n",              # duplicate key
            "[t]\n[t]\n",                  # duplicate table
            "a = nan\n",                   # non-finite number
            "a = inf\n",                   # non-finite number
            "a = \n",                      # missing value
            "a = 'single'\n",              # unsupported literal string
            "= 3\n",                       # missing key
            "[unclosed\n",                 # bad header
            'a = "unterminated\n',         # unterminated string
            "a = 1__0\n",                  # bad underscore grouping
        ],
    )
    def test_malformed_input_raises_toml_error(self, text):
        with pytest.raises(TomlError):
            tomlio.loads(text)

    def test_toml_error_is_a_repro_error(self):
        assert issubclass(TomlError, ReproError)

    def test_error_carries_line_number(self):
        with pytest.raises(TomlError, match="line 3"):
            tomlio.loads("a = 1\nb = 2\nc = oops\n")


class TestRoundTrip:
    def test_dump_parse_dump_is_stable(self):
        doc = tomlio.loads(SAMPLE)
        once = tomlio.dumps(doc)
        twice = tomlio.dumps(tomlio.loads(once))
        assert once == twice

    def test_round_trip_preserves_values(self):
        doc = tomlio.loads(SAMPLE)
        assert tomlio.loads(tomlio.dumps(doc)) == doc

    def test_string_escapes_survive(self):
        doc = {"t": {"s": 'quote " backslash \\ tab \t'}}
        assert tomlio.loads(tomlio.dumps(doc)) == doc

    def test_floats_keep_identity(self):
        doc = {"t": {"x": 0.1, "y": 1e-9, "z": 12345.678901234}}
        out = tomlio.loads(tomlio.dumps(doc))
        for key, value in doc["t"].items():
            assert math.isclose(out["t"][key], value, rel_tol=0, abs_tol=0)


@pytest.mark.skipif(tomllib is None, reason="tomllib needs Python >= 3.11")
class TestAgainstTomllib:
    def test_sample_matches_tomllib(self):
        ours = tomlio.loads(SAMPLE)
        theirs = tomllib.loads(SAMPLE)
        assert ours == theirs

    def test_catalog_matches_tomllib(self):
        from repro.scenarios import catalog_paths

        for path in catalog_paths():
            with open(path, "rb") as handle:
                theirs = tomllib.load(handle)
            assert tomlio.load(path) == theirs, path

    def test_dumps_output_is_valid_toml(self):
        doc = tomlio.loads(SAMPLE)
        assert tomllib.loads(tomlio.dumps(doc)) == doc
