"""Failure injection: pathological configurations must fail loudly.

The solver and firmware assert convergence and safety rather than
producing silently wrong figures; these tests pin those failure modes.
"""

import dataclasses

import pytest

from repro.config import (
    ChipConfig,
    DidtConfig,
    GuardbandConfig,
    PdnConfig,
    ServerConfig,
)
from repro.errors import ConvergenceError
from repro.guardband import GuardbandMode
from repro.sim.run import build_server, measure_consolidated
from repro.workloads import get_profile


class TestSolverFailures:
    def test_monster_loadline_cannot_converge(self):
        """A delivery path so resistive the chip starves must raise, not
        return a bogus operating point."""
        pdn = dataclasses.replace(PdnConfig(), r_loadline=0.050)  # 50 mOhm
        config = ServerConfig(pdn=pdn)
        server = build_server(config)
        server.place(0, get_profile("lu_cb"), 8)
        socket = server.sockets[0]
        socket.path.set_voltage(config.static_vdd)
        with pytest.raises(ConvergenceError):
            socket.solve(frequencies=[4.2e9] * 8)

    def test_reasonable_configs_always_converge(self):
        """2x resistance scaling stays inside the validated envelope."""
        base = PdnConfig()
        pdn = dataclasses.replace(
            base,
            r_loadline=base.r_loadline * 2,
            r_ir_shared=base.r_ir_shared * 2,
            r_ir_local=base.r_ir_local * 2,
        )
        server = build_server(ServerConfig(pdn=pdn))
        server.place(0, get_profile("lu_cb"), 8)
        socket = server.sockets[0]
        socket.path.set_voltage(server.config.static_vdd)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert solution.iterations < 300


class TestFirmwareDegradedModes:
    def test_undervolt_pins_at_rail_when_guardband_exhausted(self):
        """With droops deeper than the whole guardband, the firmware can
        only sit at the static rail — zero undervolt, no crash."""
        didt = dataclasses.replace(DidtConfig(), droop_single_core=0.200)
        config = ServerConfig(pdn=dataclasses.replace(PdnConfig(), didt=didt))
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), 4, GuardbandMode.UNDERVOLT
        )
        assert result.adaptive.point.socket_point(0).undervolt == 0.0

    def test_overclock_clamps_at_floor_under_huge_noise(self):
        didt = dataclasses.replace(DidtConfig(), droop_single_core=0.200)
        config = ServerConfig(pdn=dataclasses.replace(PdnConfig(), didt=didt))
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), 8, GuardbandMode.OVERCLOCK
        )
        freqs = result.adaptive.point.socket_point(0).solution.frequencies
        assert min(freqs) >= config.chip.f_min

    def test_tiny_guardband_yields_no_saving(self):
        """A 50 mV static guardband leaves nothing to harvest at load."""
        config = ServerConfig(guardband=GuardbandConfig(static_guardband=0.050))
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("lu_cb"), 8, GuardbandMode.UNDERVOLT
        )
        assert result.adaptive.point.socket_point(0).undervolt == 0.0


class TestReducedPlatforms:
    def test_four_core_chip_works(self):
        chip = dataclasses.replace(ChipConfig(), n_cores=4)
        config = ServerConfig(chip=chip)
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), 4, GuardbandMode.UNDERVOLT
        )
        assert 0 < result.power_saving_fraction < 0.3

    def test_single_socket_server_works(self):
        config = ServerConfig(n_sockets=1)
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), 2, GuardbandMode.UNDERVOLT
        )
        assert result.adaptive.chip_power < result.static.chip_power

    def test_single_cpm_per_core_works(self):
        chip = dataclasses.replace(ChipConfig(), cpms_per_core=1)
        server = build_server(ServerConfig(chip=chip))
        result = measure_consolidated(
            server, get_profile("raytrace"), 2, GuardbandMode.OVERCLOCK
        )
        assert result.frequency_boost_fraction > 0
