"""Workload profiles and the benchmark catalog."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    PARSEC_BENCHMARKS,
    SCALABLE_BENCHMARKS,
    SPEC_BENCHMARKS,
    SPLASH2_BENCHMARKS,
    all_profiles,
    get_profile,
    profile_names,
)
from repro.workloads.profile import WorkloadProfile


def _profile(**overrides):
    defaults = dict(
        name="test",
        suite="synthetic",
        activity=0.8,
        ipc=1.5,
        memory_intensity=0.3,
        bandwidth_demand=4.0,
        sharing_intensity=0.1,
        serial_fraction=0.02,
        ripple_scale=1.0,
        droop_scale=1.0,
        t1_seconds=100.0,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestProfileValidation:
    def test_valid_profile(self):
        _profile()

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            _profile(name="")

    def test_rejects_zero_activity(self):
        with pytest.raises(WorkloadError):
            _profile(activity=0.0)

    def test_rejects_memory_intensity_above_one(self):
        with pytest.raises(WorkloadError):
            _profile(memory_intensity=1.5)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(WorkloadError):
            _profile(bandwidth_demand=-1.0)

    def test_rejects_zero_runtime(self):
        with pytest.raises(WorkloadError):
            _profile(t1_seconds=0.0)


class TestProfileDerived:
    def test_frequency_sensitivity_of_core_bound(self):
        assert _profile(memory_intensity=0.0).frequency_sensitivity == 1.0

    def test_frequency_sensitivity_of_memory_bound(self):
        assert _profile(memory_intensity=1.0).frequency_sensitivity == pytest.approx(
            0.15
        )

    def test_thread_carries_traits(self):
        thread = _profile(activity=0.7, ipc=1.2).thread()
        assert thread.activity == 0.7
        assert thread.ipc == 1.2
        assert thread.workload == "test"

    def test_mips_per_thread(self):
        assert _profile(ipc=2.0).mips_per_thread(4.2e9) == pytest.approx(8400.0)

    def test_mips_rejects_bad_frequency(self):
        with pytest.raises(WorkloadError):
            _profile().mips_per_thread(0.0)

    def test_with_activity_copies(self):
        base = _profile(activity=0.8)
        modified = base.with_activity(0.4)
        assert modified.activity == 0.4
        assert base.activity == 0.8
        assert modified.ipc == base.ipc


class TestCatalog:
    def test_seventeen_scalable_benchmarks(self):
        """The paper uses 17 scalable PARSEC + SPLASH-2 workloads."""
        assert len(SCALABLE_BENCHMARKS) == 17

    def test_suites_partition(self):
        assert set(SCALABLE_BENCHMARKS) == set(PARSEC_BENCHMARKS) | set(
            SPLASH2_BENCHMARKS
        )

    def test_spec_catalog_size(self):
        """SPEC CPU2006 coverage near the paper's 27 SPECrate workloads."""
        assert len(SPEC_BENCHMARKS) >= 25

    def test_fig14_names_present(self):
        for name in ("lu_ncb", "radiosity", "radix", "zeusmp", "lbm", "fft",
                     "GemsFDTD", "mcf", "lu_cb", "raytrace", "swaptions"):
            get_profile(name)

    def test_unique_names(self):
        names = profile_names()
        assert len(names) == len(set(names))

    def test_spec_profiles_not_scalable(self):
        for name in SPEC_BENCHMARKS:
            profile = get_profile(name)
            assert not profile.scalable
            assert profile.sharing_intensity == 0.0

    def test_scalable_profiles_scalable(self):
        for name in SCALABLE_BENCHMARKS:
            assert get_profile(name).scalable

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(WorkloadError, match="lu_cb"):
            get_profile("lu_c")

    def test_unknown_name_without_hint(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_all_profiles_match_names(self):
        assert [p.name for p in all_profiles()] == profile_names()

    def test_communication_heavy_kernels_flagged(self):
        """lu_ncb and radiosity carry the highest sharing intensity — they
        are the Fig. 14 losers."""
        sharing = {p.name: p.sharing_intensity for p in all_profiles()}
        top_two = sorted(sharing, key=sharing.get, reverse=True)[:2]
        assert set(top_two) == {"lu_ncb", "radiosity"}

    def test_activity_correlates_with_ipc(self):
        """Power tracks MIPS to first order across the catalog (the Fig. 16
        predictor's premise)."""
        import numpy as np

        profiles = all_profiles()
        activity = [p.activity for p in profiles]
        ipc = [p.ipc for p in profiles]
        assert np.corrcoef(activity, ipc)[0, 1] > 0.95
