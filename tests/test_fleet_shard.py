"""Sharded fleet execution: cell layout, fault routing, digest identity.

The load-bearing property: the merged event-log SHA-256 depends only on
the *cell layout*, never on how many shard processes (or sweep workers)
executed it.  These tests run the same day under every shard/worker
combination and assert one digest.
"""

import dataclasses

import pytest

from repro.errors import FaultError, SchedulingError
from repro.faults.plan import FaultPlan
from repro.faults.spec import CpmStuckFault, JobKillFault, ServerCrashFault
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation
from repro.fleet.scheduler import AGS_POLICY
from repro.fleet.shard import (
    ENV_SHARD_FAULT,
    MAX_SHARD_RETRIES,
    CellLayout,
    CellSpec,
    _split_fault_plan,
    run_cell_specs,
    run_sharded,
)

#: Short but non-trivial day: queueing, completions, and power cycling
#: all occur, so the logs exercise every event kind.
DURATION = 2 * 3600.0


@pytest.fixture(scope="module")
def config():
    return FleetConfig(
        n_servers=8,
        traffic=TrafficConfig(
            duration_seconds=DURATION, jobs_per_hour=200, lc_fraction=0.2
        ),
        seed=5,
    )


class TestCellLayout:
    def test_even_partition(self):
        layout = CellLayout(n_servers=8, cell_servers=2)
        assert layout.n_cells == 4
        assert [layout.size(c) for c in range(4)] == [2, 2, 2, 2]
        assert [layout.offset(c) for c in range(4)] == [0, 2, 4, 6]

    def test_ragged_tail_cell(self):
        layout = CellLayout(n_servers=10, cell_servers=4)
        assert layout.n_cells == 3
        assert [layout.size(c) for c in range(3)] == [4, 4, 2]

    def test_single_cell_when_wider_than_fleet(self):
        layout = CellLayout(n_servers=4, cell_servers=100)
        assert layout.n_cells == 1
        assert layout.size(0) == 4

    def test_job_routing_covers_every_cell(self):
        layout = CellLayout(n_servers=8, cell_servers=2)
        routed = {layout.cell_of_job(j) for j in range(100)}
        assert routed == {0, 1, 2, 3}

    def test_server_routing(self):
        layout = CellLayout(n_servers=10, cell_servers=4)
        assert layout.cell_of_server(0) == 0
        assert layout.cell_of_server(7) == 1
        assert layout.cell_of_server(9) == 2
        with pytest.raises(SchedulingError):
            layout.cell_of_server(10)

    def test_rejects_bad_shapes(self):
        with pytest.raises(SchedulingError):
            CellLayout(n_servers=0, cell_servers=1)
        with pytest.raises(SchedulingError):
            CellLayout(n_servers=4, cell_servers=0)


class TestFaultRouting:
    LAYOUT = CellLayout(n_servers=8, cell_servers=2)

    def test_crash_spec_remaps_to_cell_local_id(self):
        plan = FaultPlan(
            specs=(
                ServerCrashFault(
                    start_seconds=10.0, server_id=5, repair_seconds=60.0
                ),
            )
        )
        routed = _split_fault_plan(plan, self.LAYOUT)
        assert set(routed) == {2}
        spec = routed[2].specs[0]
        assert spec.server_id == 1  # global 5 → cell 2, local 1
        assert spec.repair_seconds == 60.0

    def test_job_kill_routes_by_job_id(self):
        plan = FaultPlan(specs=(JobKillFault(start_seconds=5.0, job_id=7),))
        routed = _split_fault_plan(plan, self.LAYOUT)
        assert set(routed) == {7 % self.LAYOUT.n_cells}

    def test_socket_fault_remaps_server_keeps_socket(self):
        plan = FaultPlan(
            specs=(
                CpmStuckFault(
                    start_seconds=1.0,
                    duration_seconds=10.0,
                    server_id=6,
                    socket_id=1,
                ),
            )
        )
        routed = _split_fault_plan(plan, self.LAYOUT)
        spec = routed[3].specs[0]
        assert spec.server_id == 0
        assert spec.socket_id == 1

    def test_standalone_specs_are_rejected_under_sharding(self):
        plan = FaultPlan(
            specs=(CpmStuckFault(start_seconds=1.0, server_id=None),)
        )
        with pytest.raises(FaultError, match="standalone"):
            _split_fault_plan(plan, self.LAYOUT)

    def test_single_cell_passes_the_plan_through_untouched(self):
        plan = FaultPlan(
            specs=(CpmStuckFault(start_seconds=1.0, server_id=None),)
        )
        layout = CellLayout(n_servers=4, cell_servers=4)
        assert _split_fault_plan(plan, layout) == {0: plan}


class TestDigestIdentity:
    def test_single_cell_equals_the_plain_simulation(self, config):
        plain = FleetSimulation(config).run()
        sharded = run_sharded(config, n_shards=1)
        assert sharded.event_log_hash == plain.event_log_hash
        assert (
            sharded.adaptive_energy_joules == plain.adaptive_energy_joules
        )
        assert sharded.static_energy_joules == plain.static_energy_joules
        assert len(sharded.events) == len(plain.events)
        assert sharded.job_records == plain.job_records

    @pytest.mark.slow
    def test_digest_is_invariant_across_shards_and_workers(self, config):
        """The acceptance matrix: shards 1/2/4 x workers 1/2, one hash."""
        outcomes = {}
        for n_shards in (1, 2, 4):
            for workers in (1, 2):
                result = run_sharded(
                    config,
                    n_shards=n_shards,
                    cell_servers=2,
                    workers=workers,
                )
                outcomes[(n_shards, workers)] = result
        digests = {r.event_log_hash for r in outcomes.values()}
        assert len(digests) == 1, f"split digests: {digests}"
        energies = {
            r.adaptive_energy_joules for r in outcomes.values()
        }
        assert len(energies) == 1
        assert all(r.conserved for r in outcomes.values())

    def test_shard_count_does_not_change_the_digest(self, config):
        """The quick (not slow) core of the matrix: 1 vs 2 shards."""
        one = run_sharded(config, n_shards=1, cell_servers=4)
        two = run_sharded(config, n_shards=2, cell_servers=4)
        assert one.event_log_hash == two.event_log_hash
        assert one.n_completions == two.n_completions

    def test_cell_layout_is_part_of_the_identity(self, config):
        """Different cell widths are different runs — by design."""
        wide = run_sharded(config, n_shards=1, cell_servers=8)
        narrow = run_sharded(config, n_shards=1, cell_servers=2)
        assert wide.event_log_hash != narrow.event_log_hash

    def test_merged_log_reads_as_one_fleet(self, config):
        result = run_sharded(config, n_shards=2, cell_servers=2)
        server_ids = {
            entry["server_id"]
            for entry in result.events
            if "server_id" in entry
        }
        assert server_ids  # the day touched servers at all
        assert max(server_ids) >= 2  # beyond cell 0's local range
        assert all(0 <= s < config.n_servers for s in server_ids)
        times = [entry["time_ns"] for entry in result.events]
        assert times == sorted(times)


@pytest.mark.chaos
class TestShardedChaos:
    def test_conservation_under_sharded_crash_and_repair(self, config):
        plan = FaultPlan(
            specs=(
                ServerCrashFault(
                    start_seconds=600.0, server_id=1, repair_seconds=1200.0
                ),
                ServerCrashFault(start_seconds=900.0, server_id=6),
                JobKillFault(start_seconds=1800.0, job_id=3),
            )
        )
        results = [
            run_sharded(
                config, n_shards=shards, cell_servers=2, fault_plan=plan
            )
            for shards in (1, 2)
        ]
        assert results[0].event_log_hash == results[1].event_log_hash
        for result in results:
            assert result.conserved
            assert result.n_server_crashes == 2
            assert result.n_requeues >= 1

    def test_out_of_range_server_is_rejected_before_running(self, config):
        plan = FaultPlan(
            specs=(ServerCrashFault(start_seconds=1.0, server_id=99),)
        )
        with pytest.raises(SchedulingError):
            run_sharded(config, n_shards=1, cell_servers=2, fault_plan=plan)


def _pools_available() -> bool:
    """Whether this sandbox permits process pools at all."""
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except (OSError, PermissionError, NotImplementedError):
        return False


def _cells_for(config):
    layout = CellLayout(n_servers=config.n_servers, cell_servers=2)
    return tuple(
        CellSpec(
            index=cell_id,
            offset=layout.offset(cell_id),
            config=dataclasses.replace(
                config, n_servers=layout.size(cell_id)
            ),
        )
        for cell_id in range(layout.n_cells)
    )


@pytest.mark.chaos
class TestShardCrashRecovery:
    """Worker death never fails the run or moves its digest.

    The kill hook (:data:`~repro.fleet.shard.ENV_SHARD_FAULT`) makes the
    pool worker about to simulate a chosen cell die with ``os._exit`` on
    a chosen attempt — a deterministic stand-in for an OOM kill.  The
    recovery contract: failed cells re-execute (fresh pool, then
    in-process), the retry manifest names them, and the merged SHA-256
    is bit-identical to an unfaulted run.
    """

    @pytest.fixture(autouse=True)
    def _require_pools(self):
        if not _pools_available():
            pytest.skip("sandbox refuses process pools")

    def test_killed_worker_recovers_bit_identical(
        self, config, monkeypatch
    ):
        baseline = run_cell_specs(_cells_for(config), AGS_POLICY, n_shards=2)
        assert baseline.retries == ()
        monkeypatch.setenv(ENV_SHARD_FAULT, "kill:cell=1,attempt=0")
        recovered = run_cell_specs(
            _cells_for(config), AGS_POLICY, n_shards=2
        )
        assert (
            recovered.merged.event_log_hash
            == baseline.merged.event_log_hash
        )
        assert recovered.merged.job_records == baseline.merged.job_records
        # The kill takes down the whole batch, so every cell sharing the
        # dead worker re-executes; cell 1 is among them, on attempt 1,
        # recovered on a fresh pool.
        assert recovered.retries
        by_cell = {r.cell_index: r for r in recovered.retries}
        assert by_cell[1].attempt == 1
        assert by_cell[1].reason == "broken_pool"
        assert by_cell[1].recovered_via == "fresh_pool"

    def test_repeated_kills_fall_back_in_process(self, config, monkeypatch):
        baseline = run_cell_specs(_cells_for(config), AGS_POLICY, n_shards=2)
        # Kill cell 1's worker on every fresh-pool attempt (0, 1, 2);
        # the hook never fires in the parent, so the in-process last
        # resort always completes.
        for attempt in range(MAX_SHARD_RETRIES + 1):
            monkeypatch.setenv(
                ENV_SHARD_FAULT, f"kill:cell=1,attempt={attempt}"
            )
            recovered = run_cell_specs(
                _cells_for(config), AGS_POLICY, n_shards=2
            )
            assert (
                recovered.merged.event_log_hash
                == baseline.merged.event_log_hash
            )

    def test_scenario_result_carries_the_manifest(self, monkeypatch):
        from repro.scenarios import (
            Scenario,
            ServerGroupSpec,
            TopologySpec,
            TrafficSpec,
            run_scenario,
        )

        scenario = Scenario(
            name="shard_recovery_probe",
            seed=5,
            traffic=TrafficSpec(
                duration_seconds=3600.0, jobs_per_hour=60.0,
                lc_fraction=0.2,
            ),
            topology=TopologySpec(
                groups=(
                    ServerGroupSpec(
                        name="rack", servers=4, cell_servers=2
                    ),
                )
            ),
        )
        clean = run_scenario(scenario, n_shards=2)
        assert clean.retries == ()
        monkeypatch.setenv(ENV_SHARD_FAULT, "kill:cell=0,attempt=0")
        faulted = run_scenario(scenario, n_shards=2)
        assert faulted.retries
        assert 0 in {r.cell_index for r in faulted.retries}
        assert (
            faulted.fleet.event_log_hash == clean.fleet.event_log_hash
        )
