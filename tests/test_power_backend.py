"""Scalar vs numpy array power backends: selection rules and bit-identity.

The operating-point cache and the fleet event-log SHA-256 both hash exact
float values, so the two backends must agree to the last bit — not just to
a tolerance.  Every assertion here uses ``==`` on raw floats on purpose.
"""

import pytest

from repro.api import measure
from repro.chip.power import (
    ARRAY_BACKEND_MIN_CORES,
    BACKEND_ENV_VAR,
    PowerModel,
    power_backend_for,
    set_power_backend,
)
from repro.config import ChipConfig, ServerConfig
from repro.sim.server import Power720Server


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave no process-wide override behind, whatever a test does."""
    previous = set_power_backend(None)
    yield
    set_power_backend(previous)


class TestBackendSelection:
    def test_default_width_stays_scalar(self):
        assert power_backend_for(8) == "scalar"

    def test_wide_dies_use_the_array_backend(self):
        assert power_backend_for(ARRAY_BACKEND_MIN_CORES) == "array"
        assert power_backend_for(64) == "array"

    def test_override_beats_width(self):
        set_power_backend("array")
        assert power_backend_for(1) == "array"
        set_power_backend("scalar")
        assert power_backend_for(128) == "scalar"

    def test_override_returns_previous_value(self):
        assert set_power_backend("array") is None
        assert set_power_backend(None) == "array"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            set_power_backend("simd")

    def test_env_var_applies_when_no_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert power_backend_for(2) == "array"

    def test_programmatic_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        set_power_backend("scalar")
        assert power_backend_for(2) == "scalar"

    def test_garbage_env_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "avx512")
        assert power_backend_for(8) == "scalar"


class TestChipPowerBitIdentity:
    """Raw PowerModel.chip_power agreement across mixed occupancies."""

    CASES = [
        # (activities, voltages, frequencies, gated)
        (
            [0.9, 0.8, 0.02, 0.0, 0.6, 0.02, 0.7, 0.5],
            [1.05, 1.04, 1.06, 1.1, 1.03, 1.05, 1.02, 1.04],
            [4.0e9, 4.1e9, 3.6e9, 3.6e9, 4.2e9, 3.7e9, 4.0e9, 3.9e9],
            [False, False, False, True, False, False, False, False],
        ),
        (  # everything gated: uncore falls back to max(V) / f_min
            [0.0] * 8,
            [1.0, 1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07],
            [3.6e9] * 8,
            [True] * 8,
        ),
        (  # all busy, uniform
            [1.0] * 8,
            [1.1] * 8,
            [4.2e9] * 8,
            [False] * 8,
        ),
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_backends_agree_to_the_bit(self, case):
        activities, voltages, frequencies, gated = case
        model = PowerModel(ChipConfig())
        set_power_backend("scalar")
        scalar = model.chip_power(
            activities=activities,
            voltages=voltages,
            frequencies=frequencies,
            gated=gated,
            temperature=71.3,
        )
        set_power_backend("array")
        array = model.chip_power(
            activities=activities,
            voltages=voltages,
            frequencies=frequencies,
            gated=gated,
            temperature=71.3,
        )
        # Dataclass == compares every float exactly; spell out the fields
        # anyway so a mismatch pinpoints the component.
        assert scalar.core_dynamic == array.core_dynamic
        assert scalar.core_leakage == array.core_leakage
        assert scalar.uncore_dynamic == array.uncore_dynamic
        assert scalar.uncore_leakage == array.uncore_leakage

    def test_array_backend_validates_activity(self):
        model = PowerModel(ChipConfig())
        set_power_backend("array")
        with pytest.raises(ValueError, match="activity"):
            model.chip_power(
                activities=[-0.1] + [0.5] * 7,
                voltages=[1.05] * 8,
                frequencies=[4.0e9] * 8,
                gated=[False] * 8,
                temperature=70.0,
            )

    def test_gated_negative_activity_is_ignored_like_scalar(self):
        """The scalar loop never inspects a gated core's activity."""
        model = PowerModel(ChipConfig())
        kwargs = dict(
            activities=[-0.1] + [0.5] * 7,
            voltages=[1.05] * 8,
            frequencies=[4.0e9] * 8,
            gated=[True] + [False] * 7,
            temperature=70.0,
        )
        set_power_backend("scalar")
        scalar = model.chip_power(**kwargs)
        set_power_backend("array")
        assert model.chip_power(**kwargs) == scalar


class TestSettledStateBitIdentity:
    """End-to-end: settled operating points agree across backends."""

    @pytest.mark.parametrize("mode", ["undervolt", "overclock"])
    @pytest.mark.parametrize("n_threads", [1, 5, 8])
    def test_default_width_solutions_match(self, mode, n_threads):
        set_power_backend("scalar")
        scalar = measure("raytrace", n_threads=n_threads, mode=mode, seed=11)
        set_power_backend("array")
        array = measure("raytrace", n_threads=n_threads, mode=mode, seed=11)
        assert scalar.static == array.static
        assert scalar.adaptive == array.adaptive

    def test_wide_die_auto_array_matches_forced_scalar(self):
        config = ServerConfig(chip=ChipConfig(n_cores=ARRAY_BACKEND_MIN_CORES))
        assert power_backend_for(config.chip.n_cores) == "array"
        auto = measure(
            "raytrace", n_threads=12, mode="undervolt", config=config, seed=3
        )
        set_power_backend("scalar")
        scalar = measure(
            "raytrace", n_threads=12, mode="undervolt", config=config, seed=3
        )
        assert auto.static == scalar.static
        assert auto.adaptive == scalar.adaptive

    def test_wide_die_builds_and_solves(self):
        """Widths past the 2x4 POWER7+ grid grow the floorplan columns."""
        config = ServerConfig(chip=ChipConfig(n_cores=24))
        server = Power720Server(config=config, seed=5)
        result = measure(
            "raytrace", n_threads=20, mode="overclock", server=server
        )
        point = result.adaptive.point
        assert point.chip_power > 0
        voltages = [
            v for s in point.sockets for v in s.solution.core_voltages
        ]
        assert len(voltages) == 24 * len(point.sockets)
