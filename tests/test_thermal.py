"""Thermal RC model: steady states, exponential approach, stability."""

import pytest

from repro.chip.thermal import ThermalModel


class TestSteadyState:
    def test_idle_equals_ambient(self):
        model = ThermalModel(ambient=24.0)
        assert model.steady_state(0.0) == pytest.approx(24.0)

    def test_140w_lands_near_38c(self):
        """Sec. 4.1 reports 38C at peak load."""
        model = ThermalModel(ambient=24.0, resistance=0.10)
        assert model.steady_state(140.0) == pytest.approx(38.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ThermalModel().steady_state(-1.0)


class TestStep:
    def test_approaches_target_monotonically(self):
        model = ThermalModel(ambient=24.0, tau=4.0)
        temps = [model.step(100.0, 1.0) for _ in range(20)]
        assert all(b >= a for a, b in zip(temps, temps[1:]))
        assert temps[-1] == pytest.approx(model.steady_state(100.0), abs=0.1)

    def test_long_step_is_stable(self):
        """Exact exponential solution never overshoots, even for dt >> tau."""
        model = ThermalModel(ambient=24.0, tau=4.0)
        temp = model.step(100.0, 1000.0)
        assert temp == pytest.approx(model.steady_state(100.0))

    def test_zero_dt_is_noop(self):
        model = ThermalModel(ambient=24.0)
        before = model.temperature
        assert model.step(100.0, 0.0) == before

    def test_cooling_after_load_drop(self):
        model = ThermalModel(ambient=24.0, tau=4.0)
        model.settle(140.0)
        hot = model.temperature
        model.step(10.0, 2.0)
        assert model.temperature < hot

    def test_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            ThermalModel().step(10.0, -1.0)


class TestSettle:
    def test_settle_jumps_to_steady_state(self):
        model = ThermalModel(ambient=24.0)
        model.settle(100.0)
        assert model.temperature == pytest.approx(model.steady_state(100.0))


class TestValidation:
    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            ThermalModel(resistance=-0.1)

    def test_rejects_zero_tau(self):
        with pytest.raises(ValueError):
            ThermalModel(tau=0.0)
