"""The Vcs (storage) power domain."""

import pytest

from repro.chip.vcs import VcsDomain
from repro.config import VcsConfig
from repro.errors import ConfigError


@pytest.fixture
def vcs():
    return VcsDomain(VcsConfig())


class TestConfig:
    def test_defaults_valid(self):
        VcsConfig()

    def test_rejects_zero_voltage(self):
        with pytest.raises(ConfigError):
            VcsConfig(voltage=0.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigError):
            VcsConfig(leakage_nominal=-1.0)


class TestPower:
    def test_leakage_at_reference(self, vcs):
        assert vcs.leakage(35.0) == pytest.approx(VcsConfig().leakage_nominal)

    def test_leakage_grows_with_temperature(self, vcs):
        assert vcs.leakage(45.0) > vcs.leakage(30.0)

    def test_dynamic_grows_with_active_cores(self, vcs):
        assert vcs.dynamic(8) > vcs.dynamic(1) > vcs.dynamic(0)

    def test_idle_floor(self, vcs):
        assert vcs.dynamic(0) == pytest.approx(VcsConfig().dynamic_idle)

    def test_activity_scales_dynamic(self, vcs):
        assert vcs.dynamic(4, mean_activity=0.5) < vcs.dynamic(4, mean_activity=1.0)

    def test_power_is_sum(self, vcs):
        assert vcs.power(4, 35.0) == pytest.approx(
            vcs.leakage(35.0) + vcs.dynamic(4)
        )

    def test_current_at_rail_voltage(self, vcs):
        assert vcs.current(4, 35.0) == pytest.approx(
            vcs.power(4, 35.0) / VcsConfig().voltage
        )

    def test_rejects_negative_cores(self, vcs):
        with pytest.raises(ValueError):
            vcs.dynamic(-1)


class TestChipIntegration:
    def test_chip_exposes_vcs_power(self, server, raytrace):
        server.place(0, raytrace, 4)
        chip = server.sockets[0].chip
        busy = chip.vcs_power(temperature=35.0)
        server.clear()
        idle = server.sockets[0].chip.vcs_power(temperature=35.0)
        assert busy > idle

    def test_vcs_sensor_readable(self, server, raytrace):
        from repro.guardband import GuardbandMode
        from repro.telemetry import SocketSensors

        server.place(0, raytrace, 4)
        point = server.operate(GuardbandMode.STATIC)
        sensors = SocketSensors(server.sockets[0])
        reading = sensors.read("vcs_power", point.socket_point(0).solution)
        assert reading.value > 0
        assert reading.unit == "W"

    def test_vcs_small_next_to_vdd(self, server, raytrace):
        """The paper: the Vdd rail 'represents most of the total
        processor power'."""
        from repro.guardband import GuardbandMode

        server.place(0, raytrace, 8)
        point = server.operate(GuardbandMode.STATIC)
        vdd = point.socket_point(0).chip_power
        vcs = server.sockets[0].chip.vcs_power()
        assert vcs < vdd * 0.25
