"""The AGS facade: policy classification and dispatch."""

import pytest

from repro.core import AdaptiveGuardbandScheduler, AgsPolicy
from repro.core.predictor import MipsFrequencyPredictor, PredictorSample
from repro.core.qos import QosSpec
from repro.errors import SchedulingError
from repro.workloads.synthetic import throttled_corunner
from repro.workloads.websearch import WebSearchModel


@pytest.fixture
def ags(server_config):
    return AdaptiveGuardbandScheduler(server_config)


class TestClassification:
    def test_light_load_is_borrowing(self, ags):
        assert ags.classify(4) is AgsPolicy.LOADLINE_BORROWING

    def test_half_utilization_still_light(self, ags):
        assert ags.classify(8) is AgsPolicy.LOADLINE_BORROWING

    def test_heavy_load_is_mapping(self, ags):
        assert ags.classify(12) is AgsPolicy.ADAPTIVE_MAPPING

    def test_smt_counts_cores_not_threads(self, ags):
        assert ags.classify(32, threads_per_core=4) is AgsPolicy.LOADLINE_BORROWING

    def test_rejects_zero_threads(self, ags):
        with pytest.raises(SchedulingError):
            ags.classify(0)

    def test_rejects_bad_threshold(self, server_config):
        with pytest.raises(SchedulingError):
            AdaptiveGuardbandScheduler(server_config, utilization_threshold=0.0)


class TestBatchScheduling:
    def test_light_load_spreads(self, ags, raytrace):
        placement = ags.schedule_batch(raytrace, 6)
        assert placement.threads_on(0) == 3
        assert placement.threads_on(1) == 3

    def test_ags_off_consolidates(self, ags, raytrace):
        placement = ags.schedule_batch(raytrace, 6, use_ags=False)
        assert placement.threads_on(0) == 6
        assert placement.threads_on(1) == 0

    def test_reserve_forwarded(self, ags, raytrace):
        placement = ags.schedule_batch(raytrace, 4, total_cores_on=8)
        assert placement.keep_on == (4, 4)


class TestMappingFactory:
    def test_builds_working_scheduler(self, ags, server):
        websearch = WebSearchModel()
        predictor = MipsFrequencyPredictor().fit(
            [
                PredictorSample(chip_mips=m, frequency=4.62e9 - 2100 * m)
                for m in (10_000, 50_000)
            ]
        )
        scheduler = ags.mapping_scheduler(
            server=server,
            critical=websearch.profile(),
            spec=QosSpec(),
            candidates=[throttled_corunner("light")],
            predictor=predictor,
            windows_per_quantum=20,
        )
        decision = scheduler.step("corunner_light")
        assert decision.corunner == "corunner_light"
