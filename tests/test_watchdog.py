"""The invariant watchdog and the chaos campaign.

The watchdog is the robustness PR's tripwire: fault recovery (worker
re-execution, cache quarantine, budget re-decomposition) must never
*silently* corrupt a run.  These tests pin each check's trip condition,
the counting-vs-strict contract (strict raises
:class:`~repro.errors.WatchdogError`, CLI exit 13), the handle
install/restore mechanics, and that real fleet runs — fault-free and
faulted — stay violation-free.  The campaign tests drive
``repro chaos campaign`` machinery over a tiny inline scenario.
"""

import random

import pytest

from repro.errors import WatchdogError
from repro.faults.campaign import (
    CampaignReport,
    CampaignRow,
    campaign_seed,
    run_campaign,
)
from repro.faults.plan import FaultPlan
from repro.faults.spec import ServerCrashFault
from repro.faults.watchdog import (
    NULL_WATCHDOG,
    InvariantWatchdog,
    install_watchdog,
    watchdog,
    watched,
)
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation
from repro.scenarios import (
    Scenario,
    ServerGroupSpec,
    TopologySpec,
    TrafficSpec,
)


def strict_dog() -> InvariantWatchdog:
    return InvariantWatchdog(strict=True)


class TestConservation:
    def test_balanced_population_passes(self):
        dog = strict_dog()
        dog.conservation(10, 6, 3, 1)
        assert dog.violations == {}

    def test_lost_job_trips(self):
        with pytest.raises(WatchdogError, match="conservation"):
            strict_dog().conservation(10, 6, 2, 1)

    def test_counting_mode_counts_and_continues(self):
        dog = InvariantWatchdog(strict=False)
        dog.conservation(10, 5, 0, 0)
        dog.conservation(10, 5, 0, 0)
        assert dog.violations == {"conservation": 2}


class TestCapSum:
    ARGS = dict(fleet_cap_w=400.0, ceiling_w=1600.0, floor_w=50.0,
                quantum_w=1.0)
    BOTH_DRAWING = dict(measured_w=(150.0, 150.0), live=(True, True))

    def test_within_budget_passes(self):
        dog = strict_dog()
        dog.cap_sum((200.0, 200.0), **self.BOTH_DRAWING, **self.ARGS)
        assert dog.violations == {}

    def test_floor_and_quantization_allowance_is_honoured(self):
        # Two drawing servers may legitimately exceed the fleet cap by
        # up to floor + quantum each.
        strict_dog().cap_sum(
            (250.0, 250.0), **self.BOTH_DRAWING, **self.ARGS
        )

    def test_idle_servers_get_the_uniform_share(self):
        # One server drawing, one idle: the drawer can hold the whole
        # fleet cap while the idle server holds C / n_live.
        strict_dog().cap_sum(
            (400.0, 200.0),
            measured_w=(300.0, 0.0),
            live=(True, True),
            **self.ARGS,
        )

    def test_idle_server_above_uniform_share_trips(self):
        with pytest.raises(WatchdogError, match="uniform share"):
            strict_dog().cap_sum(
                (400.0, 250.0),
                measured_w=(300.0, 0.0),
                live=(True, True),
                **self.ARGS,
            )

    def test_overdistribution_trips(self):
        with pytest.raises(WatchdogError, match="cap_sum"):
            strict_dog().cap_sum(
                (400.0, 400.0), **self.BOTH_DRAWING, **self.ARGS
            )

    def test_negative_cap_trips(self):
        with pytest.raises(WatchdogError, match="negative"):
            strict_dog().cap_sum(
                (200.0, -1.0), **self.BOTH_DRAWING, **self.ARGS
            )

    def test_fleet_cap_above_ceiling_trips(self):
        with pytest.raises(WatchdogError, match="ceiling"):
            strict_dog().cap_sum(
                (0.0,), measured_w=(0.0,), live=(True,),
                fleet_cap_w=1601.0, ceiling_w=1600.0,
                floor_w=50.0, quantum_w=1.0,
            )

    def test_dead_server_handed_watts_trips(self):
        with pytest.raises(WatchdogError, match="dead server"):
            strict_dog().cap_sum(
                (200.0, 50.0),
                measured_w=(150.0, 0.0),
                live=(True, False),
                **self.ARGS,
            )

    def test_dead_server_at_zero_passes(self):
        dog = strict_dog()
        dog.cap_sum(
            (400.0, 0.0),
            measured_w=(150.0, 0.0),
            live=(True, False),
            **self.ARGS,
        )
        assert dog.violations == {}


class TestEnergyLedger:
    def test_monotone_passes(self):
        dog = strict_dog()
        dog.energy_ledger(100.0, 100.0)
        dog.energy_ledger(100.0, 250.0)
        assert dog.violations == {}

    def test_backwards_ledger_trips(self):
        with pytest.raises(WatchdogError, match="backwards"):
            strict_dog().energy_ledger(100.0, 99.0)

    def test_nan_trips(self):
        with pytest.raises(WatchdogError, match="energy_ledger"):
            strict_dog().energy_ledger(0.0, float("nan"))

    def test_infinity_trips(self):
        with pytest.raises(WatchdogError, match="energy_ledger"):
            strict_dog().energy_ledger(0.0, float("inf"))


class TestHeapGeneration:
    def test_current_or_stale_generation_passes(self):
        dog = strict_dog()
        dog.heap_generation(3, 1, 1)
        dog.heap_generation(3, 0, 1)  # stale event: legal, just ignored
        assert dog.violations == {}

    def test_future_generation_trips(self):
        with pytest.raises(WatchdogError, match="heap_generation"):
            strict_dog().heap_generation(3, 2, 1)


class TestHandle:
    def test_default_handle_counts_rather_than_raises(self):
        dog = watchdog()
        assert dog.enabled
        assert not dog.strict

    def test_null_watchdog_is_disabled_and_inert(self):
        assert not NULL_WATCHDOG.enabled
        NULL_WATCHDOG.conservation(1, 0, 0, 0)
        NULL_WATCHDOG.energy_ledger(10.0, 0.0)
        assert NULL_WATCHDOG.violations == {}

    def test_install_returns_previous_and_none_restores_default(self):
        mine = strict_dog()
        previous = install_watchdog(mine)
        try:
            assert watchdog() is mine
        finally:
            restored = install_watchdog(previous)
        assert restored is mine
        fresh = install_watchdog(None)
        try:
            assert watchdog().enabled and not watchdog().strict
        finally:
            install_watchdog(previous)

    def test_watched_installs_strict_and_restores_on_error(self):
        before = watchdog()
        with pytest.raises(RuntimeError):
            with watched() as dog:
                assert watchdog() is dog
                assert dog.strict
                raise RuntimeError("boom")
        assert watchdog() is before


class TestFleetIntegration:
    """Real runs hold every invariant — the watchdog stays silent."""

    TRAFFIC = TrafficConfig(
        duration_seconds=2 * 3600.0, jobs_per_hour=120.0, lc_fraction=0.2
    )

    def test_clean_run_is_violation_free(self):
        config = FleetConfig(n_servers=4, traffic=self.TRAFFIC, seed=11)
        with watched() as dog:
            result = FleetSimulation(config).run()
        assert result.n_arrivals > 0
        assert dog.violations == {}

    def test_budgeted_run_with_crash_is_violation_free(self):
        # Power capping plus a mid-run crash exercises all four checks:
        # cap_sum and energy_ledger every coordinator tick, requeue
        # generations, conservation at the horizon.
        config = FleetConfig(
            n_servers=4,
            traffic=self.TRAFFIC,
            seed=11,
            fleet_power_budget_w=1100.0,
        )
        plan = FaultPlan(
            specs=(
                ServerCrashFault(
                    server_id=1,
                    start_seconds=1800.0,
                    repair_seconds=1800.0,
                ),
            ),
            seed=2,
        )
        with watched() as dog:
            result = FleetSimulation(config, fault_plan=plan).run()
        assert result.n_server_crashes == 1
        assert dog.violations == {}

    def test_strict_watchdog_maps_to_exit_13(self):
        from repro.cli import exit_code_for

        assert exit_code_for(WatchdogError("x")) == 13


TINY_SCENARIO = Scenario(
    name="tiny_campaign",
    description="one small group, smoke-scale traffic",
    seed=5,
    traffic=TrafficSpec(duration_seconds=3600.0, jobs_per_hour=40.0,
                        lc_fraction=0.2),
    topology=TopologySpec(
        groups=(ServerGroupSpec(name="rack", servers=2),)
    ),
)


class TestCampaign:
    def test_seed_derivation_is_stable_across_processes(self):
        import zlib

        assert campaign_seed("x", 0) == zlib.crc32(b"x")
        assert campaign_seed("x", 3) != campaign_seed("y", 3)

    def test_campaign_over_tiny_scenario_conserves(self):
        report = run_campaign(scenarios=[TINY_SCENARIO], seed=1)
        assert isinstance(report, CampaignReport)
        assert report.passed
        (row,) = report.rows
        assert row.scenario == "tiny_campaign"
        assert row.n_windows == 3
        assert row.conserved
        assert row.watchdog_violations == 0
        assert row.n_server_crashes >= 1

    def test_campaign_is_deterministic(self):
        first = run_campaign(scenarios=[TINY_SCENARIO], seed=1)
        again = run_campaign(scenarios=[TINY_SCENARIO], seed=1)
        assert first.rows == again.rows

    def test_render_names_every_scenario_and_the_verdict(self):
        report = run_campaign(scenarios=[TINY_SCENARIO], seed=1)
        text = report.render()
        assert "tiny_campaign" in text
        assert "conserved" in text
        assert text.splitlines()[-1].startswith("campaign: 1/1 conserved")

    def test_campaign_restores_previous_watchdog(self):
        before = watchdog()
        run_campaign(scenarios=[TINY_SCENARIO], seed=1)
        assert watchdog() is before

    def test_smoke_shrinks_but_still_runs(self):
        big = Scenario(
            name="tiny_campaign_big",
            seed=5,
            traffic=TrafficSpec(
                duration_seconds=24 * 3600.0,
                jobs_per_hour=200.0,
                lc_fraction=0.2,
                surges=((8 * 3600.0, 3600.0, 2.0),),
            ),
            topology=TopologySpec(
                groups=(ServerGroupSpec(name="rack", servers=2),)
            ),
        )
        report = run_campaign(scenarios=[big], seed=1, smoke=True)
        assert report.smoke
        assert report.passed

    def test_row_failure_flows_into_report(self):
        row = CampaignRow(
            scenario="s", n_windows=3, baseline_energy_kwh=1.0,
            degraded_energy_kwh=1.1, qos_delta=0, n_server_crashes=1,
            n_job_kills=1, n_requeues=1, conserved=False,
            watchdog_violations=0,
        )
        report = CampaignReport(rows=(row,), seed=0, smoke=False)
        assert not report.passed
        assert "LOST JOBS" in report.render()
