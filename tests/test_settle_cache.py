"""The shared fleet settle cache: bounds, disk sharing, digest identity."""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import measure
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation, clear_fleet_memos
from repro.fleet.settle_cache import (
    BoundedMemo,
    FleetSettleCache,
    configure_fleet_settle_cache,
    ensure_settle_cache_dir,
    fleet_settle_cache,
)
from repro.sim.results import RunResult

#: Small but non-trivial fleet day for the identity tests.
TRAFFIC = TrafficConfig(
    duration_seconds=3600.0, jobs_per_hour=60.0, lc_fraction=0.15
)


@pytest.fixture(autouse=True)
def _restore_global_cache():
    """Every test leaves the process-global cache in its default state."""
    yield
    configure_fleet_settle_cache()
    clear_fleet_memos()


@pytest.fixture(scope="module")
def settled() -> RunResult:
    """One real settled measurement to cache (module-scoped: settle once)."""
    return measure("lu_cb", mode="undervolt", n_threads=4)


class TestBoundedMemo:
    def test_bound_holds_under_churn(self):
        memo = BoundedMemo(8)
        for i in range(1000):
            memo[("key", i)] = i
            assert len(memo) <= 8
        # The survivors are exactly the most recent eight.
        assert all(("key", i) in memo for i in range(992, 1000))

    def test_lru_eviction_order(self):
        memo = BoundedMemo(2)
        memo["a"] = 1
        memo["b"] = 2
        assert memo.get("a") == 1  # touch: "b" is now least recent
        memo["c"] = 3
        assert "a" in memo
        assert "b" not in memo

    def test_dict_idioms(self):
        memo = BoundedMemo(4)
        memo["k"] = "v"
        assert memo["k"] == "v"
        assert memo.get("missing") is None
        assert memo.get("missing", "d") == "d"
        memo.clear()
        assert len(memo) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BoundedMemo(0)


class TestFleetSettleCache:
    def test_memory_hit_returns_same_object(self, settled):
        cache = FleetSettleCache(max_entries=4)
        cache.put(("k",), settled)
        assert cache.get(("k",)) is settled
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_miss_counts(self):
        cache = FleetSettleCache(max_entries=4)
        assert cache.get(("nope",)) is None
        assert cache.stats.misses == 1

    def test_lru_bound_holds_under_churn(self, settled):
        cache = FleetSettleCache(max_entries=4)
        for i in range(64):
            cache.put(("k", i), settled)
            assert len(cache) <= 4
        assert cache.stats.evictions == 60

    def test_disk_round_trip_is_bit_identical(self, settled, tmp_path):
        writer = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        key = ("cfg", 7, "placement-stand-in", "undervolt", None)
        writer.put(key, settled)
        reader = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        loaded = reader.get(key)
        assert loaded is not None
        assert loaded is not settled
        assert loaded == settled  # frozen dataclasses: exact field equality
        assert (
            loaded.adaptive.point.server_power
            == settled.adaptive.point.server_power
        )
        assert reader.stats.disk_hits == 1
        # Second read is a memory hit — the decode happened once.
        assert reader.get(key) is loaded

    def test_corrupt_disk_file_counts_as_miss(self, settled, tmp_path):
        writer = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        key = ("corrupt",)
        writer.put(key, settled)
        (path,) = list(tmp_path.iterdir())
        path.write_text("{ not json")
        reader = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        assert reader.get(key) is None
        assert reader.stats.disk_errors == 1
        assert reader.stats.misses == 1

    def test_wrong_payload_type_counts_as_miss(self, settled, tmp_path):
        writer = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        key = ("wrong-type",)
        writer.put(key, settled)
        (path,) = list(tmp_path.iterdir())
        path.write_text(json.dumps({"result": 42}))
        reader = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        assert reader.get(key) is None
        assert reader.stats.disk_errors == 1

    def test_disabled_cache_never_stores_or_hits(self, settled, tmp_path):
        cache = FleetSettleCache(
            max_entries=4, disk_dir=str(tmp_path), enabled=False
        )
        cache.put(("k",), settled)
        assert len(cache) == 0
        assert cache.get(("k",)) is None
        assert cache.stats.lookups == 0
        assert list(tmp_path.iterdir()) == []

    def test_no_tmp_orphans_on_disk(self, settled, tmp_path):
        cache = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        for i in range(8):
            cache.put(("k", i), settled)
        names = [p.name for p in tmp_path.iterdir()]
        assert names
        assert all(name.endswith(".json") for name in names)


class TestGlobalConfiguration:
    def test_configure_replaces_the_global(self, tmp_path):
        cache = configure_fleet_settle_cache(
            max_entries=2, disk_dir=str(tmp_path)
        )
        assert fleet_settle_cache() is cache
        assert fleet_settle_cache().disk_dir == str(tmp_path)

    def test_ensure_dir_is_idempotent(self, tmp_path):
        configure_fleet_settle_cache(disk_dir=str(tmp_path))
        before = fleet_settle_cache()
        assert ensure_settle_cache_dir(str(tmp_path)) is before
        after = ensure_settle_cache_dir(None)
        assert after is not before
        assert after.disk_dir is None

    def test_clear_fleet_memos_drops_the_memory_layer(self, tmp_path):
        from repro.fleet.engine import _idle_power_memo, _job_rate_memo
        from repro.fleet.scheduler import (
            _freq_memo,
            _plan_memo,
            _predictor_memo,
        )

        cache = configure_fleet_settle_cache(disk_dir=str(tmp_path))
        settled = measure("lu_cb", mode="undervolt", n_threads=2)
        cache.put(("k",), settled)
        _idle_power_memo[("a",)] = 1
        _job_rate_memo[("b",)] = 2
        _freq_memo[("c",)] = 3
        _plan_memo[("d",)] = 4
        _predictor_memo["e"] = 5
        clear_fleet_memos()
        assert len(cache) == 0
        for memo in (
            _idle_power_memo,
            _job_rate_memo,
            _freq_memo,
            _plan_memo,
            _predictor_memo,
        ):
            assert len(memo) == 0
        # Disk files survive a memo clear — that is the shared layer.
        assert list(os.listdir(tmp_path))


class TestDigestInvariance:
    """The event-log SHA-256 must not depend on cache state."""

    CONFIG = dict(n_servers=2, traffic=TRAFFIC, seed=7)

    def _run_digest(self) -> str:
        return FleetSimulation(FleetConfig(**self.CONFIG)).run().event_log_hash

    def test_hash_identical_cold_hot_and_disabled(self):
        configure_fleet_settle_cache()
        clear_fleet_memos()
        cold = self._run_digest()
        hot = self._run_digest()  # warm memory layer
        assert fleet_settle_cache().stats.hits > 0
        configure_fleet_settle_cache(enabled=False)
        clear_fleet_memos()
        disabled = self._run_digest()
        assert cold == hot == disabled

    def test_hash_identical_through_the_disk_layer(self, tmp_path):
        configure_fleet_settle_cache(disk_dir=str(tmp_path))
        clear_fleet_memos()
        cold = self._run_digest()
        assert list(os.listdir(tmp_path))  # settles were persisted
        # Fresh cache, cold memory, warm disk: every settle replays.
        configure_fleet_settle_cache(disk_dir=str(tmp_path))
        clear_fleet_memos()
        warm = self._run_digest()
        assert warm == cold
        assert fleet_settle_cache().stats.disk_hits > 0


def _pools_available() -> bool:
    """Whether this sandbox permits process pools at all."""
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except (OSError, PermissionError, NotImplementedError):
        return False


def _hammer_shared_key(disk_dir: str, settled, n_writes: int) -> int:
    """Pool worker: rewrite one key into a shared dir as fast as possible.

    Module-level so the pool can pickle it; returns the worker's disk
    error count (any write fault would already be a failure).
    """
    cache = FleetSettleCache(max_entries=4, disk_dir=disk_dir)
    for _ in range(n_writes):
        cache.put(("raced",), settled)
    return cache.stats.disk_errors


class TestConcurrentWriters:
    """Shard workers share the disk layer; racing writers must be safe.

    The atomic-write protocol (pid-suffixed temp + ``os.replace``) is the
    only thing standing between two workers rewriting the same key and a
    reader decoding a half-written file.  Two processes hammer one key
    concurrently; the read-back must validate with zero corruption
    counters and leave no temp orphans behind.
    """

    @pytest.fixture(autouse=True)
    def _require_pools(self):
        if not _pools_available():
            pytest.skip("sandbox refuses process pools")

    def test_two_processes_racing_one_key_never_corrupt(
        self, settled, tmp_path
    ):
        from repro.obs import Observability, install, observability

        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_shared_key, str(tmp_path), settled, 50)
                for _ in range(2)
            ]
            assert [f.result(timeout=120) for f in futures] == [0, 0]
        previous = install(Observability(enabled=True))
        try:
            reader = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
            loaded = reader.get(("raced",))
            rendered = observability().metrics.render_text()
        finally:
            install(previous)
        assert loaded == settled  # a complete, checksum-valid entry won
        assert reader.stats.corrupt == 0
        assert reader.stats.disk_errors == 0
        # Counters are created on first increment: absence means zero.
        assert "fleet_settle_cache_corrupt_total" not in rendered
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["settle-{}.json".format(names[0][7:-5])]
        assert not any(n.endswith(".tmp") for n in names)


class TestArmedCorruption:
    """The ``cache_fault`` chaos hook: deterministic torn writes.

    While armed, every Nth disk write is truncated mid-payload.  The
    cache must detect the damage on read (checksum or JSON failure),
    quarantine the file, count it, and recompute — never serve it.
    """

    def test_arm_returns_previous_and_validates(self, tmp_path):
        cache = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        assert cache.arm_corruption(3) is None
        assert cache.arm_corruption(None) == 3
        with pytest.raises(ValueError):
            cache.arm_corruption(0)

    def test_torn_write_is_quarantined_and_counted(self, settled, tmp_path):
        from repro.obs import Observability, install, observability

        writer = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        writer.arm_corruption(1)
        writer.put(("torn",), settled)
        # The writer's own memory layer still hits — tearing only
        # damages the disk copy.
        assert writer.get(("torn",)) is settled
        reader = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        previous = install(Observability(enabled=True))
        try:
            assert reader.get(("torn",)) is None
            rendered = observability().metrics.render_text()
        finally:
            install(previous)
        assert reader.stats.corrupt == 1
        assert reader.stats.misses == 1
        assert "fleet_settle_cache_corrupt_total" in rendered
        names = [p.name for p in tmp_path.iterdir()]
        assert any(n.endswith(".corrupt") for n in names)
        assert not any(n.endswith(".json") for n in names)
        # A clean rewrite (reader is unarmed) heals the entry in place.
        reader.put(("torn",), settled)
        fresh = FleetSettleCache(max_entries=4, disk_dir=str(tmp_path))
        assert fresh.get(("torn",)) == settled
        assert fresh.stats.corrupt == 0

    def test_every_n_cadence_tears_exactly_the_nth_writes(
        self, settled, tmp_path
    ):
        writer = FleetSettleCache(max_entries=8, disk_dir=str(tmp_path))
        writer.arm_corruption(2)
        for i in range(4):
            writer.put(("k", i), settled)
        reader = FleetSettleCache(max_entries=8, disk_dir=str(tmp_path))
        served = [reader.get(("k", i)) for i in range(4)]
        # Writes 2 and 4 (1-indexed) were torn: exactly two survive.
        assert [r is not None for r in served] == [True, False, True, False]
        assert reader.stats.corrupt == 2


class TestCacheFaultDigestInvariance:
    """An armed ``cache_fault`` never moves a fleet run's digest."""

    CONFIG = dict(n_servers=2, traffic=TRAFFIC, seed=7)

    def _run_digest(self, fault_plan=None) -> str:
        sim = FleetSimulation(
            FleetConfig(**self.CONFIG), fault_plan=fault_plan
        )
        return sim.run().event_log_hash

    @pytest.mark.chaos
    def test_armed_tear_never_moves_the_digest(self, tmp_path):
        from repro.faults import CacheCorruptionFault, FaultPlan

        plan = FaultPlan(specs=(CacheCorruptionFault(every_n=1),))
        configure_fleet_settle_cache()
        clear_fleet_memos()
        clean = self._run_digest()
        # Every disk write torn: the run computes everything it needs
        # (memory layer is undamaged) and leaves a fully torn disk.
        configure_fleet_settle_cache(disk_dir=str(tmp_path))
        clear_fleet_memos()
        assert self._run_digest(fault_plan=plan) == clean
        # The engine restored the disarmed state after the run.
        assert fleet_settle_cache().arm_corruption(None) is None
        # Rerun cold over the damaged disk: every read quarantines,
        # recomputes, and the digest still never moves.
        configure_fleet_settle_cache(disk_dir=str(tmp_path))
        clear_fleet_memos()
        assert self._run_digest(fault_plan=plan) == clean
        assert fleet_settle_cache().stats.corrupt > 0
        assert any(
            name.endswith(".corrupt") for name in os.listdir(tmp_path)
        )
