"""Property-based tests on scheduler invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ServerConfig
from repro.core import (
    ClusterScheduler,
    ConsolidationScheduler,
    Job,
    LoadlineBorrowingScheduler,
)
from repro.errors import SchedulingError
from repro.workloads import SCALABLE_BENCHMARKS, get_profile

CONFIG = ServerConfig()

workload_names = st.sampled_from(list(SCALABLE_BENCHMARKS))
thread_counts = st.integers(min_value=1, max_value=8)


class TestBatchSchedulerProperties:
    @given(name=workload_names, n_threads=thread_counts)
    @settings(max_examples=60)
    def test_consolidation_conserves_threads(self, name, n_threads):
        placement = ConsolidationScheduler(CONFIG).schedule(
            get_profile(name), n_threads
        )
        assert placement.total_threads == n_threads
        assert placement.threads_on(1) == 0

    @given(name=workload_names, n_threads=thread_counts)
    @settings(max_examples=60)
    def test_borrowing_conserves_and_balances(self, name, n_threads):
        placement = LoadlineBorrowingScheduler(CONFIG).schedule(
            get_profile(name), n_threads
        )
        assert placement.total_threads == n_threads
        imbalance = abs(placement.threads_on(0) - placement.threads_on(1))
        assert imbalance <= 1

    @given(name=workload_names, n_threads=thread_counts)
    @settings(max_examples=60)
    def test_both_keep_same_powered_core_budget(self, name, n_threads):
        profile = get_profile(name)
        cons = ConsolidationScheduler(CONFIG).schedule(profile, n_threads, 8)
        borrow = LoadlineBorrowingScheduler(CONFIG).schedule(profile, n_threads, 8)
        assert sum(cons.keep_on) == sum(borrow.keep_on) == 8


class TestClusterSchedulerProperties:
    @given(
        jobs=st.lists(
            st.tuples(workload_names, st.integers(min_value=1, max_value=12)),
            min_size=1,
            max_size=6,
        ),
        across=st.sampled_from(["consolidate", "spread"]),
        within=st.sampled_from(["borrowing", "consolidation"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_invariants(self, jobs, across, within):
        scheduler = ClusterScheduler(CONFIG, n_servers=4)
        job_objects = [Job(get_profile(name), n) for name, n in jobs]
        total_demand = sum(j.n_threads for j in job_objects)
        try:
            plan = scheduler.schedule(job_objects, within=within, across=across)
        except SchedulingError:
            # Legitimate only under genuine pressure: when a job fails to
            # fit, every server already holds more than (capacity - s)
            # threads, so total demand must exceed 4*capacity - 3*s — the
            # bin-packing fragmentation bound.
            max_job = max(j.n_threads for j in job_objects)
            cluster_capacity = scheduler.server_capacity * 4
            assert (
                max_job > scheduler.server_capacity
                or total_demand > cluster_capacity - 3 * max_job
            )
            return
        # Every thread placed exactly once.
        placed = sum(
            placement.total_threads
            for placement in plan.placements
            if placement is not None
        )
        assert placed == total_demand
        # No server over capacity.
        for placement in plan.placements:
            if placement is not None:
                assert placement.total_threads <= scheduler.server_capacity
        # Powered-off servers host nothing.
        for jobs_on, placement in zip(plan.assignments, plan.placements):
            assert (placement is None) == (not jobs_on)

    @given(
        jobs=st.lists(
            st.tuples(workload_names, st.integers(min_value=1, max_value=8)),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_consolidate_never_uses_more_servers_than_spread(self, jobs):
        scheduler = ClusterScheduler(CONFIG, n_servers=4)
        job_objects = [Job(get_profile(name), n) for name, n in jobs]
        packed = scheduler.schedule(job_objects, across="consolidate")
        spread = scheduler.schedule(job_objects, across="spread")
        assert packed.n_servers_on <= spread.n_servers_on
