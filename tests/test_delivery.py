"""PowerDeliveryPath: end-to-end drop composition per socket."""

import pytest

from repro.floorplan import Floorplan
from repro.pdn import (
    DidtNoiseModel,
    PowerDeliveryPath,
    VoltageRegulatorModule,
)


@pytest.fixture
def path(pdn_config):
    vrm = VoltageRegulatorModule(pdn_config, n_rails=2)
    path = PowerDeliveryPath(pdn_config, Floorplan(8), vrm, rail=0)
    path.set_voltage(1.2375)
    return path


class TestDeliver:
    def test_voltages_below_setpoint_under_load(self, path):
        breakdown = path.deliver([8.0] * 8, uncore_current=5.0, n_active_cores=8)
        assert all(v < 1.2375 for v in breakdown.core_voltages)

    def test_zero_load_only_quantization(self, path):
        breakdown = path.deliver([0.0] * 8, uncore_current=0.0, n_active_cores=0)
        assert all(v == pytest.approx(path.setpoint) for v in breakdown.core_voltages)

    def test_loadline_tracks_total_current(self, path, pdn_config):
        breakdown = path.deliver([10.0] * 8, uncore_current=20.0, n_active_cores=8)
        assert breakdown.loadline == pytest.approx(pdn_config.r_loadline * 100.0)

    def test_records_current_on_vrm_sensor(self, path):
        path.deliver([10.0] * 8, uncore_current=20.0, n_active_cores=8)
        assert path.vrm.sensed_current(0) == pytest.approx(100.0)

    def test_uncore_current_contributes_no_local_drop(self, path):
        only_uncore = path.deliver([0.0] * 8, uncore_current=50.0, n_active_cores=0)
        assert all(local == 0.0 for local in only_uncore.ir_local)
        assert only_uncore.loadline > 0

    def test_rejects_negative_uncore_current(self, path):
        with pytest.raises(ValueError):
            path.deliver([0.0] * 8, uncore_current=-1.0, n_active_cores=0)

    def test_noise_model_swap_changes_ripple(self, path, pdn_config):
        base = path.deliver([8.0] * 8, 5.0, 8)
        path.set_noise(DidtNoiseModel(pdn_config.didt, ripple_scale=2.0))
        scaled = path.deliver([8.0] * 8, 5.0, 8)
        assert scaled.typical_didt == pytest.approx(2 * base.typical_didt)


class TestDropBreakdown:
    def test_passive_at_core(self, path):
        breakdown = path.deliver([8.0] * 8, 5.0, 8)
        expected = breakdown.loadline + breakdown.ir_shared + breakdown.ir_local[0]
        assert breakdown.passive_at(0) == pytest.approx(expected)

    def test_total_includes_typical_didt(self, path):
        breakdown = path.deliver([8.0] * 8, 5.0, 8)
        assert breakdown.total_at(0) == pytest.approx(
            breakdown.passive_at(0) + breakdown.typical_didt
        )

    def test_worst_total_includes_droop(self, path):
        breakdown = path.deliver([8.0] * 8, 5.0, 8)
        assert breakdown.worst_total_at(0) > breakdown.total_at(0)

    def test_worst_core_has_min_voltage(self, path):
        breakdown = path.deliver([4, 6, 8, 4, 6, 8, 4, 6], 5.0, 8)
        worst = breakdown.worst_core
        assert breakdown.core_voltages[worst] == breakdown.min_voltage

    def test_core_voltage_equals_setpoint_minus_drop(self, path):
        breakdown = path.deliver([8.0] * 8, 5.0, 8)
        for core_id, voltage in enumerate(breakdown.core_voltages):
            assert voltage == pytest.approx(
                breakdown.setpoint - breakdown.total_at(core_id)
            )
