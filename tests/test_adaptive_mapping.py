"""Adaptive mapping: the Fig. 18 loop and its learned models."""

import pytest

from repro.core import (
    AdaptiveMappingScheduler,
    MipsFrequencyPredictor,
    PredictorSample,
    QosSpec,
)
from repro.core.adaptive_mapping import FrequencyQosModel
from repro.errors import SchedulingError
from repro.workloads.synthetic import throttled_corunner
from repro.workloads.websearch import WebSearchModel


def _predictor():
    """A plausible platform predictor (matches the Fig. 16 fit shape)."""
    samples = [
        PredictorSample(chip_mips=m, frequency=4.62e9 - 2100.0 * m)
        for m in (10_000, 30_000, 50_000, 70_000)
    ]
    return MipsFrequencyPredictor().fit(samples)


@pytest.fixture
def scheduler(server):
    websearch = WebSearchModel()
    return AdaptiveMappingScheduler(
        server=server,
        critical=websearch.profile(),
        spec=QosSpec(violation_threshold=0.10),
        candidates=[throttled_corunner(l) for l in ("light", "medium", "heavy")],
        predictor=_predictor(),
        latency_model=websearch,
        windows_per_quantum=60,
    )


class TestFrequencyQosModel:
    def test_observation_logging(self):
        model = FrequencyQosModel()
        model.observe(4.5e9, 0.2)
        assert model.n_observations == 1

    def test_interpolation_between_points(self):
        model = FrequencyQosModel()
        model.observe(4.4e9, 0.4)
        model.observe(4.6e9, 0.0)
        assert model.predict_violation(4.5e9) == pytest.approx(0.2)

    def test_monotone_enforcement_is_conservative(self):
        """A noisy good window at low frequency must not hide the bad one."""
        model = FrequencyQosModel()
        model.observe(4.4e9, 0.30)
        model.observe(4.5e9, 0.05)
        model.observe(4.5e9, 0.20)
        assert model.predict_violation(4.4e9) == pytest.approx(0.30)
        assert model.predict_violation(4.5e9) == pytest.approx(0.20)

    def test_required_frequency_picks_lowest_compliant(self):
        model = FrequencyQosModel()
        model.observe(4.4e9, 0.4)
        model.observe(4.5e9, 0.08)
        model.observe(4.6e9, 0.01)
        assert model.required_frequency(0.10) == pytest.approx(4.5e9)

    def test_required_frequency_falls_back_to_best_known(self):
        model = FrequencyQosModel()
        model.observe(4.4e9, 0.5)
        assert model.required_frequency(0.10) == pytest.approx(4.4e9)

    def test_empty_model_raises(self):
        with pytest.raises(SchedulingError):
            FrequencyQosModel().predict_violation(4.5e9)
        with pytest.raises(SchedulingError):
            FrequencyQosModel().required_frequency(0.1)

    def test_rejects_bad_observation(self):
        model = FrequencyQosModel()
        with pytest.raises(SchedulingError):
            model.observe(0.0, 0.1)
        with pytest.raises(SchedulingError):
            model.observe(4.5e9, 1.5)


class TestSchedulerMechanics:
    def test_settle_places_critical_on_core0(self, scheduler, server):
        scheduler.settle(throttled_corunner("light"))
        assert server.sockets[0].chip.cores[0].threads[0].workload == "websearch"

    def test_settle_fills_remaining_cores(self, scheduler, server):
        scheduler.settle(throttled_corunner("heavy"))
        assert server.sockets[0].chip.n_active_cores() == 8

    def test_heavier_corunner_lower_frequency(self, scheduler):
        light = scheduler.settle(throttled_corunner("light"))
        heavy = scheduler.settle(throttled_corunner("heavy"))
        assert heavy < light

    def test_mix_mips_accounts_all_threads(self, scheduler):
        heavy = throttled_corunner("heavy")
        expected = scheduler.critical.mips_per_thread(4.2e9) + 7 * heavy.mips_per_thread(
            4.2e9
        )
        assert scheduler.mix_mips(heavy) == pytest.approx(expected)

    def test_step_rejects_unknown_corunner(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.step("corunner_nuclear")

    def test_run_rejects_zero_quanta(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.run("corunner_light", quanta=0)


class TestSchedulingBehavior:
    def test_heavy_corunner_triggers_swap(self, scheduler):
        decision = scheduler.step("corunner_heavy")
        assert decision.violation_rate > scheduler.spec.violation_threshold
        assert decision.swapped
        assert decision.next_corunner != "corunner_heavy"

    def test_run_converges_away_from_heavy(self, scheduler):
        decisions = scheduler.run("corunner_heavy", quanta=4)
        assert decisions[-1].corunner != "corunner_heavy"

    def test_final_tail_latency_improves(self, scheduler):
        decisions = scheduler.run("corunner_heavy", quanta=4)
        assert decisions[-1].mean_tail_latency < decisions[0].mean_tail_latency

    def test_frequency_insensitive_workload_never_swaps(self, server):
        websearch = WebSearchModel()
        scheduler = AdaptiveMappingScheduler(
            server=server,
            critical=websearch.profile(),
            spec=QosSpec(violation_threshold=0.10, frequency_sensitive=False),
            candidates=[throttled_corunner(l) for l in ("light", "heavy")],
            predictor=_predictor(),
            latency_model=websearch,
            windows_per_quantum=40,
        )
        decision = scheduler.step("corunner_heavy")
        assert not decision.swapped

    def test_requires_candidates(self, server):
        websearch = WebSearchModel()
        with pytest.raises(SchedulingError):
            AdaptiveMappingScheduler(
                server=server,
                critical=websearch.profile(),
                spec=QosSpec(),
                candidates=[],
                predictor=_predictor(),
            )
