"""Cluster-level AGS: two-level scheduling and evaluation."""

import pytest

from repro.core import ClusterScheduler, Job
from repro.errors import SchedulingError
from repro.workloads import get_profile


@pytest.fixture
def scheduler(server_config):
    return ClusterScheduler(server_config, n_servers=4)


def _jobs(*specs):
    return [Job(get_profile(name), n) for name, n in specs]


class TestJob:
    def test_rejects_zero_threads(self, raytrace):
        with pytest.raises(SchedulingError):
            Job(raytrace, 0)


class TestAcrossServerPacking:
    def test_consolidate_uses_fewest_servers(self, scheduler):
        jobs = _jobs(("raytrace", 8), ("lu_cb", 8))
        plan = scheduler.schedule(jobs, across="consolidate")
        assert plan.n_servers_on == 1

    def test_consolidate_spills_when_full(self, scheduler):
        jobs = _jobs(("raytrace", 12), ("lu_cb", 12))
        plan = scheduler.schedule(jobs, across="consolidate")
        assert plan.n_servers_on == 2

    def test_spread_uses_many_servers(self, scheduler):
        jobs = _jobs(("raytrace", 4), ("lu_cb", 4), ("mcf", 4), ("radix", 4))
        plan = scheduler.schedule(jobs, across="spread")
        assert plan.n_servers_on == 4

    def test_first_fit_decreasing_order(self, scheduler):
        """Big jobs place first, so a 12+4+4 mix packs into two servers."""
        jobs = _jobs(("raytrace", 4), ("lu_cb", 12), ("mcf", 4))
        plan = scheduler.schedule(jobs, across="consolidate")
        assert plan.n_servers_on <= 2

    def test_rejects_oversized_job(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.schedule(_jobs(("raytrace", 17)))

    def test_rejects_overflowing_cluster(self, server_config):
        small = ClusterScheduler(server_config, n_servers=1)
        with pytest.raises(SchedulingError):
            small.schedule(_jobs(("raytrace", 12), ("lu_cb", 12)))

    def test_rejects_unknown_policies(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.schedule(_jobs(("raytrace", 2)), within="magic")
        with pytest.raises(SchedulingError):
            scheduler.schedule(_jobs(("raytrace", 2)), across="everywhere")


class TestWithinServerPlacement:
    def test_borrowing_balances_sockets(self, scheduler):
        plan = scheduler.schedule(_jobs(("raytrace", 8)), within="borrowing")
        placement = plan.placements[0]
        assert placement.threads_on(0) == 4
        assert placement.threads_on(1) == 4

    def test_consolidation_packs_socket_zero(self, scheduler):
        plan = scheduler.schedule(_jobs(("raytrace", 8)), within="consolidation")
        placement = plan.placements[0]
        assert placement.threads_on(0) == 8
        assert placement.threads_on(1) == 0

    def test_multiple_jobs_share_a_server(self, scheduler):
        plan = scheduler.schedule(
            _jobs(("raytrace", 6), ("mcf", 6)), within="borrowing"
        )
        placement = plan.placements[0]
        assert placement.total_threads == 12
        assert set(placement.workloads()) == {"raytrace", "mcf"}

    def test_busy_cores_gated_exactly(self, scheduler):
        plan = scheduler.schedule(_jobs(("raytrace", 6)), within="borrowing")
        assert plan.placements[0].keep_on == (3, 3)

    def test_off_servers_have_no_placement(self, scheduler):
        plan = scheduler.schedule(_jobs(("raytrace", 2)))
        assert plan.placements[0] is not None
        assert all(p is None for p in plan.placements[1:])


class TestDeterministicOrdering:
    """FFD tie-breaking is content-only: input order never matters."""

    JOBS = [
        ("raytrace", 4),
        ("mcf", 4),
        ("lu_cb", 8),
        ("fft", 4),
        ("bzip2", 2),
        ("radix", 2),
    ]

    @pytest.mark.parametrize("within", ["borrowing", "consolidation"])
    @pytest.mark.parametrize("across", ["consolidate", "spread"])
    def test_permutations_produce_identical_plans(
        self, scheduler, within, across
    ):
        reference = scheduler.schedule(
            _jobs(*self.JOBS), within=within, across=across
        )
        for rotation in range(1, len(self.JOBS)):
            permuted = self.JOBS[rotation:] + self.JOBS[:rotation]
            plan = scheduler.schedule(
                _jobs(*permuted), within=within, across=across
            )
            assert plan.assignments == reference.assignments
            assert plan.placements == reference.placements

    def test_equal_size_ties_break_by_name(self, scheduler):
        """Same-size jobs order alphabetically, not by arrival."""
        forward = scheduler.schedule(_jobs(("raytrace", 4), ("mcf", 4)))
        backward = scheduler.schedule(_jobs(("mcf", 4), ("raytrace", 4)))
        assert forward.assignments == backward.assignments
        first_server = forward.assignments[0]
        assert [job.profile.name for job in first_server] == [
            "mcf",
            "raytrace",
        ]


class TestEvaluation:
    def test_off_servers_draw_nothing(self, scheduler):
        plan = scheduler.schedule(_jobs(("raytrace", 4)))
        measurement = scheduler.evaluate(plan)
        assert measurement.server_power[0] > 0
        assert all(p == 0.0 for p in measurement.server_power[1:])

    def test_consolidate_beats_spread_on_cluster_power(self, scheduler):
        """The paper's cluster wisdom: peripheral power dominates, so pack
        servers first."""
        jobs = _jobs(("raytrace", 4), ("lu_cb", 4), ("mcf", 4), ("radix", 4))
        packed = scheduler.evaluate(scheduler.schedule(jobs, across="consolidate"))
        spread = scheduler.evaluate(scheduler.schedule(jobs, across="spread"))
        assert packed.cluster_power < spread.cluster_power

    def test_borrowing_beats_consolidation_within_server(self, scheduler):
        jobs = _jobs(("raytrace", 8))
        borrowed = scheduler.evaluate(scheduler.schedule(jobs, within="borrowing"))
        packed = scheduler.evaluate(scheduler.schedule(jobs, within="consolidation"))
        assert borrowed.cluster_chip_power < packed.cluster_chip_power

    def test_two_level_policy_beats_both_single_levels(self, scheduler):
        """Consolidate across + borrow within <= any other combination."""
        jobs = _jobs(("raytrace", 6), ("mcf", 6))
        best = scheduler.evaluate(
            scheduler.schedule(jobs, within="borrowing", across="consolidate")
        )
        worst = scheduler.evaluate(
            scheduler.schedule(jobs, within="consolidation", across="spread")
        )
        assert best.cluster_power < worst.cluster_power

    def test_rejects_zero_servers(self, server_config):
        with pytest.raises(SchedulingError):
            ClusterScheduler(server_config, n_servers=0)
