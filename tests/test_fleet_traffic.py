"""Trace generators: seeded, validated, reproducible."""

import hashlib

import pytest

from repro.errors import SchedulingError
from repro.fleet.traffic import (
    BATCH,
    LATENCY_CRITICAL,
    JobSpec,
    TrafficConfig,
    constant_trace,
    generate_trace,
)


class TestTrafficConfig:
    def test_defaults_validate(self):
        config = TrafficConfig()
        assert config.duration_seconds == 86_400.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_seconds": 0.0},
            # NaN/inf pass ordered comparisons (nan <= 0 is False) and a
            # NaN duration used to hang generate_trace forever — the
            # config must reject non-finite values outright.
            {"duration_seconds": float("nan")},
            {"duration_seconds": float("inf")},
            {"jobs_per_hour": float("nan")},
            {"lc_fraction": float("nan")},
            {"diurnal_amplitude": float("nan")},
            {"jobs_per_hour": -1.0},
            {"diurnal_amplitude": 1.0},
            {"lc_fraction": 1.5},
            {"lc_profiles": ()},
            {"batch_threads": (0,)},
            {"batch_service_mean": 0.0},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(SchedulingError):
            TrafficConfig(**kwargs)

    def test_rate_peaks_at_peak_time(self):
        config = TrafficConfig(jobs_per_hour=36.0, diurnal_amplitude=0.5)
        peak = config.rate_at(config.peak_time_seconds)
        trough = config.rate_at(config.peak_time_seconds + 43_200.0)
        assert peak == pytest.approx(config.peak_rate)
        assert peak == pytest.approx(1.5 * 36.0 / 3600.0)
        assert trough == pytest.approx(0.5 * 36.0 / 3600.0)

    def test_flat_rate_without_amplitude(self):
        config = TrafficConfig(diurnal_amplitude=0.0)
        assert config.rate_at(0.0) == pytest.approx(config.rate_at(40_000.0))


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        config = TrafficConfig(duration_seconds=6 * 3600.0)
        assert generate_trace(config, 7) == generate_trace(config, 7)

    def test_different_seeds_differ(self):
        config = TrafficConfig(duration_seconds=6 * 3600.0)
        assert generate_trace(config, 7) != generate_trace(config, 8)

    def test_ids_are_dense_and_arrivals_sorted(self):
        trace = generate_trace(TrafficConfig(duration_seconds=12 * 3600.0), 3)
        assert [job.job_id for job in trace] == list(range(len(trace)))
        arrivals = [job.arrival_ns for job in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a for a in arrivals)

    def test_profiles_come_from_the_class_pools(self):
        config = TrafficConfig(duration_seconds=24 * 3600.0)
        for job in generate_trace(config, 11):
            if job.latency_critical:
                assert job.profile_name in config.lc_profiles
                assert job.n_threads in config.lc_threads
            else:
                assert job.profile_name in config.batch_profiles
                assert job.n_threads in config.batch_threads
            assert job.service_seconds >= config.service_floor

    def test_mean_arrival_count_tracks_the_rate(self):
        """Over a day at 18/h the law of large numbers should hold loosely."""
        trace = generate_trace(TrafficConfig(), 7)
        assert 300 <= len(trace) <= 560  # 432 expected

    def test_lc_fraction_zero_yields_batch_only(self):
        config = TrafficConfig(duration_seconds=12 * 3600.0, lc_fraction=0.0)
        assert all(job.job_class == BATCH for job in generate_trace(config, 5))

    def test_stream_is_pinned(self):
        """Sentinel digest of the default day at seed 7.

        The catalog ``[golden]`` event-log hashes all sit downstream of
        this stream, so an accidental change to the draw order (or to
        numpy's legacy ``RandomState`` distributions) must fail *here*,
        with an explicit repin, rather than surface as a pile of opaque
        scenario mismatches.
        """
        trace = generate_trace(TrafficConfig(), 7)
        digest = hashlib.sha256()
        for job in trace:
            digest.update(
                repr(
                    (
                        job.job_id,
                        job.arrival_ns,
                        job.job_class,
                        job.profile_name,
                        job.n_threads,
                        job.service_seconds,
                    )
                ).encode()
            )
        assert len(trace) == 405
        assert digest.hexdigest() == (
            "e9bc31fb6734cc224986806ce4f1230424c13b02513185e984b51951bd9c1c70"
        )


class TestConstantTrace:
    def test_even_spacing(self):
        trace = constant_trace(3, gap_seconds=10.0)
        assert [job.arrival_ns for job in trace] == [
            0,
            10_000_000_000,
            20_000_000_000,
        ]

    def test_job_class_passthrough(self):
        trace = constant_trace(1, job_class=LATENCY_CRITICAL)
        assert trace[0].latency_critical

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            constant_trace(0)

    def test_profile_lookup(self):
        spec = constant_trace(1, profile_name="mcf")[0]
        assert spec.profile().name == "mcf"


class TestJobSpec:
    def test_latency_critical_flag(self):
        spec = JobSpec(
            job_id=0,
            arrival_ns=0,
            job_class=LATENCY_CRITICAL,
            profile_name="perl",
            n_threads=1,
            service_seconds=100.0,
        )
        assert spec.latency_critical
