"""Fleet-level chaos: crashes, kills, fallback windows, determinism.

Every test here carries the ``chaos`` marker so CI can run the fault
suite on its own (``pytest -m chaos``).
"""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CpmStuckFault,
    FaultPlan,
    JobKillFault,
    ServerCrashFault,
    chaos_plan,
    run_chaos,
)
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation
from repro.fleet.scheduler import AGS_POLICY
from repro.fleet.traffic import generate_trace
from repro.obs import Observability, install
from repro.sim.batch import SweepRunner

pytestmark = pytest.mark.chaos

DURATION = 3600.0


@pytest.fixture(scope="module")
def runner():
    """One shared operating-point cache across the whole module."""
    return SweepRunner()


@pytest.fixture(scope="module")
def config():
    return FleetConfig(
        n_servers=2,
        traffic=TrafficConfig(duration_seconds=DURATION, jobs_per_hour=12.0),
        seed=7,
    )


class TestBitIdentity:
    def test_empty_plan_run_matches_no_plan_run(self, config, runner):
        trace = generate_trace(config.traffic, config.seed)
        plain = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace
        ).run()
        empty = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace,
            fault_plan=FaultPlan(),
        ).run()
        assert plain.event_log_hash == empty.event_log_hash
        assert plain.adaptive_energy_joules == empty.adaptive_energy_joules
        assert empty.n_server_crashes == 0
        assert empty.fallback_seconds == ()

    def test_instrumented_run_is_bit_identical(self, config, runner):
        """The observability layer and the disabled fault layer together
        must not move a single event — the zero-perturbation contract."""
        trace = generate_trace(config.traffic, config.seed)
        plain = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace
        ).run()
        previous = install(Observability(enabled=True))
        try:
            instrumented = FleetSimulation(
                config, AGS_POLICY, runner=runner, trace=trace,
                fault_plan=FaultPlan(),
            ).run()
        finally:
            install(previous)
        assert instrumented.event_log_hash == plain.event_log_hash


class TestChaosScenario:
    @pytest.fixture(scope="class")
    def report(self, config, runner):
        plan = chaos_plan(
            DURATION,
            crash_server=1,
            corrupt_server=0,
            corrupt_socket=0,
            seed=3,
        )
        return run_chaos(config, plan, runner=runner)

    def test_completes_without_crashing(self, report):
        assert report.degraded.n_server_crashes == 1
        assert report.degraded.event_log_hash != report.baseline.event_log_hash

    def test_zero_job_loss(self, report):
        assert report.zero_job_loss
        assert report.degraded.conserved

    def test_fallback_time_is_bounded(self, report, config):
        # The corruption window is 20% of the horizon; the engine re-arms
        # after the window plus the configured hysteresis dwell.
        bound = 0.2 * DURATION + config.fallback_rearm_seconds
        assert 0.0 < report.fallback_seconds <= bound

    def test_reports_energy_and_qos_cost(self, report):
        assert report.baseline.adaptive_energy_joules > 0
        assert isinstance(report.energy_delta_joules, float)
        assert isinstance(report.qos_delta, int)
        rendered = report.render()
        assert "degraded:" in rendered
        assert "static fallback" in rendered
        assert "conserved" in rendered

    def test_two_runs_are_identical(self, report, config):
        plan = chaos_plan(
            DURATION,
            crash_server=1,
            corrupt_server=0,
            corrupt_socket=0,
            seed=3,
        )
        again = run_chaos(config, plan, runner=SweepRunner())
        assert again.render() == report.render()
        assert again.degraded.event_log_hash == (
            report.degraded.event_log_hash
        )


class TestJobKill:
    def test_killed_job_requeues_and_conserves(self, config, runner):
        trace = generate_trace(config.traffic, config.seed)
        baseline = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace
        ).run()
        victim = next(
            r for r in baseline.job_records
            if r.completed and r.completion_ns - r.start_ns > 0
        )
        kill_at = (victim.start_ns + victim.completion_ns) / 2 / 1e9
        plan = FaultPlan(
            specs=(
                JobKillFault(start_seconds=kill_at, job_id=victim.job_id),
            )
        )
        degraded = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace, fault_plan=plan
        ).run()
        assert degraded.n_job_kills == 1
        assert degraded.n_requeues >= 1
        assert degraded.conserved
        assert degraded.n_arrivals == baseline.n_arrivals

    def test_kill_of_idle_job_is_noop(self, config, runner):
        trace = generate_trace(config.traffic, config.seed)
        plan = FaultPlan(
            specs=(JobKillFault(start_seconds=1.0, job_id=10_000),)
        )
        degraded = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace, fault_plan=plan
        ).run()
        assert degraded.n_job_kills == 0
        assert degraded.conserved


class TestPlanValidation:
    def test_out_of_range_crash_server_rejected(self, config, runner):
        plan = FaultPlan(
            specs=(ServerCrashFault(start_seconds=1.0, server_id=9),)
        )
        with pytest.raises(FaultError):
            FleetSimulation(config, AGS_POLICY, runner=runner, fault_plan=plan)

    def test_out_of_range_corrupt_server_rejected(self, config, runner):
        plan = FaultPlan(
            specs=(
                CpmStuckFault(
                    start_seconds=1.0, socket_id=0, server_id=5, code=0
                ),
            )
        )
        with pytest.raises(FaultError):
            FleetSimulation(config, AGS_POLICY, runner=runner, fault_plan=plan)


class TestUnrepairedCrash:
    def test_permanent_crash_still_conserves(self, config, runner):
        trace = generate_trace(config.traffic, config.seed)
        plan = FaultPlan(
            specs=(ServerCrashFault(start_seconds=900.0, server_id=1),)
        )
        degraded = FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace, fault_plan=plan
        ).run()
        assert degraded.n_server_crashes == 1
        assert degraded.conserved


class TestHeapCompaction:
    """Mid-run heap compaction must never move an event."""

    def _run(self, config, runner, trace, plan):
        return FleetSimulation(
            config, AGS_POLICY, runner=runner, trace=trace, fault_plan=plan
        )

    def test_digest_is_unchanged_by_compaction(
        self, config, runner, monkeypatch
    ):
        """Force a compaction sweep on every loop iteration and compare
        against a run with compaction disabled: the event-log hash (the
        run's identity) must be bit-identical despite heavy crash/requeue
        churn orphaning completion events all run long."""
        import repro.fleet.events as events_mod

        trace = generate_trace(config.traffic, config.seed)
        plan = chaos_plan(
            DURATION,
            crash_server=1,
            corrupt_server=0,
            corrupt_socket=0,
            seed=3,
        )

        monkeypatch.setattr(
            events_mod.EventQueue,
            "maybe_compact",
            lambda self, is_stale: 0,
        )
        lazy_sim = self._run(config, runner, trace, plan)
        lazy = lazy_sim.run()
        monkeypatch.undo()

        monkeypatch.setattr(
            events_mod.EventQueue,
            "maybe_compact",
            events_mod.EventQueue.compact,
        )
        eager_sim = self._run(config, runner, trace, plan)
        eager = eager_sim.run()

        assert eager_sim.events.compactions > 0  # sweeps actually ran
        assert eager.event_log_hash == lazy.event_log_hash
        assert eager.adaptive_energy_joules == lazy.adaptive_energy_joules
        assert eager.n_requeues == lazy.n_requeues
        assert eager.conserved

    def test_default_thresholds_match_the_lazy_baseline(
        self, config, runner
    ):
        trace = generate_trace(config.traffic, config.seed)
        plan = chaos_plan(
            DURATION,
            crash_server=1,
            corrupt_server=0,
            corrupt_socket=0,
            seed=3,
        )
        first = self._run(config, runner, trace, plan).run()
        second = self._run(config, runner, trace, plan).run()
        assert first.event_log_hash == second.event_log_hash
