"""Transient engine: firmware dynamics tick by tick."""

import pytest

from repro.errors import ReproError
from repro.guardband import GuardbandMode
from repro.sim.engine import TransientEngine


@pytest.fixture
def loaded_socket(server, raytrace):
    server.place(0, raytrace, 4)
    return server.sockets[0]


class TestStaticMode:
    def test_setpoint_never_moves(self, loaded_socket, server_config):
        engine = TransientEngine(loaded_socket, GuardbandMode.STATIC)
        results = engine.run(10)
        assert all(
            r.setpoint == pytest.approx(server_config.static_vdd, abs=0.007)
            for r in results
        )

    def test_no_violations_under_static_guardband(self, loaded_socket):
        engine = TransientEngine(loaded_socket, GuardbandMode.STATIC)
        assert not any(r.violation for r in engine.run(20))


class TestUndervoltMode:
    def test_setpoint_descends_from_static(self, loaded_socket, server_config):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT, seed=3)
        results = engine.run(40)
        assert results[-1].setpoint < server_config.static_vdd - 0.02

    def test_hovers_near_steady_state_policy(self, loaded_socket, server_config):
        """After enough windows to witness deep droop events, the transient
        loop hovers in the neighbourhood of the steady-state solution."""
        from repro.guardband.undervolt import UndervoltPolicy

        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT, seed=3)
        results = engine.run(250)
        late = [r.setpoint for r in results[-50:]]
        policy = UndervoltPolicy(server_config)
        steady = policy.converge(loaded_socket).setpoint
        step = server_config.pdn.vrm_step
        # Event-depth jitter (±20%) means the latched floor can sit a few
        # steps either side of the deterministic steady-state answer.
        assert min(late) >= steady - 6 * step
        assert max(late) <= steady + 6 * step

    def test_latched_floor_tightens_over_time(self, loaded_socket):
        """The hover band in the second half of a run is no wider than in
        the first half — the floor latch prevents deep re-probing."""
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT, seed=3)
        results = engine.run(240)
        early = [r.setpoint for r in results[40:140]]
        late = [r.setpoint for r in results[140:]]
        assert (max(late) - min(late)) <= (max(early) - min(early))

    def test_violation_triggers_backoff(self, loaded_socket):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT, seed=3)
        results = engine.run(80)
        for prev, curr in zip(results, results[1:]):
            if prev.violation:
                assert curr.setpoint >= prev.setpoint

    def test_never_exceeds_static_rail(self, loaded_socket, server_config):
        ceiling = server_config.static_vdd + server_config.pdn.vrm_step
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT, seed=3)
        for r in engine.run(60):
            assert r.setpoint <= ceiling


class TestOverclockMode:
    def test_boosts_above_nominal(self, loaded_socket, server_config):
        engine = TransientEngine(loaded_socket, GuardbandMode.OVERCLOCK)
        result = engine.tick()
        assert result.solution.mean_frequency > server_config.chip.f_nominal

    def test_setpoint_fixed(self, loaded_socket, server_config):
        engine = TransientEngine(loaded_socket, GuardbandMode.OVERCLOCK)
        results = engine.run(10)
        assert all(
            r.setpoint == pytest.approx(server_config.static_vdd, abs=0.007)
            for r in results
        )


class TestTelemetryIntegration:
    def test_trace_grows_per_tick(self, loaded_socket):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT)
        engine.run(5)
        assert len(engine.trace) == 5

    def test_time_advances_by_interval(self, loaded_socket, server_config):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT)
        engine.run(3)
        assert engine.time == pytest.approx(
            3 * server_config.guardband.control_interval
        )

    def test_power_series_recorded(self, loaded_socket):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT)
        engine.run(5)
        series = engine.trace.series("vdd_power")
        assert len(series) == 5
        assert all(p > 0 for p in series)

    def test_rejects_zero_ticks(self, loaded_socket):
        engine = TransientEngine(loaded_socket, GuardbandMode.UNDERVOLT)
        with pytest.raises(ReproError):
            engine.run(0)

    def test_seeded_runs_reproducible(self, server, raytrace):
        server.place(0, raytrace, 4)
        a = TransientEngine(server.sockets[0], GuardbandMode.UNDERVOLT, seed=9)
        trace_a = [r.setpoint for r in a.run(30)]
        server.clear()
        server.place(0, raytrace, 4)
        b = TransientEngine(server.sockets[0], GuardbandMode.UNDERVOLT, seed=9)
        trace_b = [r.setpoint for r in b.run(30)]
        assert trace_a == trace_b
