"""Aging model and its platform integration."""

import pytest

from repro.chip.aging import AgingModel, aged_chip_config, aged_server_config
from repro.config import ChipConfig, ServerConfig
from repro.errors import ConfigError
from repro.guardband import GuardbandMode
from repro.sim.run import build_server, measure_consolidated
from repro.workloads import get_profile


@pytest.fixture
def model():
    return AgingModel()


class TestAgingModel:
    def test_fresh_silicon_no_shift(self, model):
        assert model.shift(0.0) == 0.0

    def test_end_of_life_reaches_provisioned_shift(self, model):
        assert model.shift(10.0) == pytest.approx(model.end_of_life_shift)

    def test_shift_saturates_past_lifetime(self, model):
        assert model.shift(20.0) == pytest.approx(model.end_of_life_shift)

    def test_sublinear_early_drift(self, model):
        """Half the lifetime consumes far more than half... of nothing —
        the power law front-loads the drift."""
        assert model.shift(1.0) > model.end_of_life_shift * 0.4

    def test_shift_monotone(self, model):
        shifts = [model.shift(t) for t in (0, 1, 3, 5, 10)]
        assert all(b >= a for a, b in zip(shifts, shifts[1:]))

    def test_headroom_complements_shift(self, model):
        for years in (0.0, 2.0, 10.0):
            assert model.remaining_headroom(years) == pytest.approx(
                model.end_of_life_shift - model.shift(years)
            )

    def test_rejects_negative_years(self, model):
        with pytest.raises(ConfigError):
            model.shift(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            AgingModel(end_of_life_shift=-0.01)
        with pytest.raises(ConfigError):
            AgingModel(lifetime_years=0.0)
        with pytest.raises(ConfigError):
            AgingModel(exponent=0.0)


class TestAgedChipConfig:
    def test_wall_rises_with_age(self, model):
        base = ChipConfig()
        aged = aged_chip_config(base, model, years=5.0)
        assert aged.vmin(4.2e9) == pytest.approx(
            base.vmin(4.2e9) + model.shift(5.0)
        )

    def test_other_fields_untouched(self, model):
        base = ChipConfig()
        aged = aged_chip_config(base, model, years=5.0)
        assert aged.core_ceff == base.core_ceff
        assert aged.f_nominal == base.f_nominal


class TestAgedServerConfig:
    def test_static_rail_fixed_over_lifetime(self):
        base = ServerConfig()
        model = AgingModel()
        for years in (0.0, 3.0, 10.0):
            aged = aged_server_config(base, model, years)
            assert aged.static_vdd == pytest.approx(base.static_vdd)

    def test_guardband_shrinks_by_shift(self):
        base = ServerConfig()
        model = AgingModel()
        aged = aged_server_config(base, model, 10.0)
        assert aged.guardband.static_guardband == pytest.approx(
            base.guardband.static_guardband - model.end_of_life_shift
        )

    def test_mis_provisioned_design_rejected(self):
        base = ServerConfig()
        model = AgingModel(end_of_life_shift=0.300)
        with pytest.raises(ConfigError):
            aged_server_config(base, model, 10.0)


class TestLifetimeBehavior:
    def _saving_at(self, years: float) -> float:
        model = AgingModel()
        config = aged_server_config(ServerConfig(), model, years)
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), 2, GuardbandMode.UNDERVOLT
        )
        s0s = result.static.point.socket_point(0)
        s0a = result.adaptive.point.socket_point(0)
        return 1 - s0a.chip_power / s0s.chip_power

    def test_adaptive_benefit_shrinks_with_age(self):
        fresh = self._saving_at(0.0)
        old = self._saving_at(10.0)
        assert old < fresh

    def test_aged_machine_still_benefits(self):
        """Even at end of life, the non-aging guardband slices (droop,
        loadline provisioning) remain harvestable."""
        assert self._saving_at(10.0) > 0.05
