"""The fleet power-cap coordinator and the pluggable PDN backends.

Three layers under test:

* the :class:`~repro.fleet.powercap.PowerCapCoordinator` control law in
  isolation (integral tracking, proportional redistribution,
  quantization, anti-windup, budget decomposition);
* the PDN backend registry (`repro.pdn.backends`) and its facade
  plumbing through ``measure``/``sweep``;
* the budgeted fleet end to end — the coordinator ticking inside the
  event loop, caps enforced through the DVFS walk, and the event-log
  digest invariant across shard and worker counts.
"""

import pytest

from repro.api import measure, sweep
from repro.errors import ConfigError, SchedulingError
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation
from repro.fleet.powercap import (
    CapUpdate,
    PowerCapCoordinator,
    decompose_budget,
)
from repro.fleet.shard import run_sharded
from repro.pdn.backends import (
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
    register_backend,
)
from repro.workloads import get_profile

#: Short but binding fleet day for the integration tests: two servers,
#: an hour of load heavy enough that a 380 W budget throttles.
TRAFFIC = TrafficConfig(
    duration_seconds=3600.0, jobs_per_hour=60.0, lc_fraction=0.15
)


@pytest.fixture(scope="module")
def budgeted_result():
    config = FleetConfig(
        n_servers=2, traffic=TRAFFIC, seed=7, fleet_power_budget_w=380.0
    )
    return FleetSimulation(config).run()


class TestCoordinatorValidation:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(SchedulingError):
            PowerCapCoordinator(budget_w=0.0, n_servers=2)

    def test_rejects_zero_servers(self):
        with pytest.raises(SchedulingError):
            PowerCapCoordinator(budget_w=100.0, n_servers=0)

    def test_rejects_out_of_range_gain(self):
        for gain in (0.0, 2.5, -1.0):
            with pytest.raises(SchedulingError):
                PowerCapCoordinator(budget_w=100.0, n_servers=1, gain=gain)

    def test_rejects_measurement_length_mismatch(self):
        coordinator = PowerCapCoordinator(budget_w=100.0, n_servers=2)
        with pytest.raises(SchedulingError):
            coordinator.tick([50.0])


class TestCoordinatorControlLaw:
    def test_tracks_a_proportional_plant(self):
        """Against a plant that draws exactly its cap, the integral
        loop settles the measured total onto the budget."""
        coordinator = PowerCapCoordinator(
            budget_w=400.0, n_servers=2, floor_w=50.0
        )
        measured = [300.0, 300.0]  # demand above budget
        update = None
        for _ in range(30):
            update = coordinator.tick(measured)
            # The plant follows its cap but never draws above demand.
            measured = [min(300.0, cap) for cap in update.caps]
        assert update is not None
        assert sum(measured) == pytest.approx(400.0, rel=0.02)

    def test_distribution_is_proportional_to_demand(self):
        coordinator = PowerCapCoordinator(budget_w=300.0, n_servers=2)
        update = coordinator.tick([200.0, 100.0])
        assert update.caps[0] > update.caps[1]
        assert update.caps[0] == pytest.approx(
            2 * update.caps[1], abs=2 * coordinator.quantum_w
        )

    def test_zero_draw_servers_get_uniform_share(self):
        coordinator = PowerCapCoordinator(budget_w=300.0, n_servers=3)
        update = coordinator.tick([150.0, 0.0, 0.0])
        assert update.caps[1] == update.caps[2]
        assert update.caps[1] == pytest.approx(
            coordinator.fleet_cap_w / 3, abs=coordinator.quantum_w
        )

    def test_caps_are_quantized_and_floored(self):
        coordinator = PowerCapCoordinator(
            budget_w=120.0, n_servers=2, quantum_w=1.0, floor_w=50.0
        )
        update = coordinator.tick([1000.0, 1.0])
        for cap in update.caps:
            assert cap >= 50.0
            assert cap == pytest.approx(round(cap))

    def test_ceiling_bounds_windup(self):
        coordinator = PowerCapCoordinator(
            budget_w=100.0, n_servers=1, ceiling_factor=2.0
        )
        for _ in range(100):  # demand far below budget: error always +
            update = coordinator.tick([10.0])
        assert coordinator.fleet_cap_w <= 200.0
        assert update.fleet_cap_w <= 200.0

    def test_update_totals(self):
        coordinator = PowerCapCoordinator(budget_w=200.0, n_servers=2)
        update = coordinator.tick([80.0, 120.0])
        assert isinstance(update, CapUpdate)
        assert update.measured_w == pytest.approx(200.0)
        assert update.total_cap_w == pytest.approx(sum(update.caps))


class TestCoordinatorGains:
    def test_gains_length_must_match_servers(self):
        with pytest.raises(SchedulingError):
            PowerCapCoordinator(budget_w=100.0, n_servers=2, gains=(0.5,))

    def test_gains_entries_must_be_in_range(self):
        for bad in (0.0, -0.5, 2.5):
            with pytest.raises(SchedulingError):
                PowerCapCoordinator(
                    budget_w=100.0, n_servers=2, gains=(0.5, bad)
                )

    def test_uniform_gains_match_scalar_gain(self):
        scalar = PowerCapCoordinator(budget_w=400.0, n_servers=2, gain=0.7)
        vector = PowerCapCoordinator(
            budget_w=400.0, n_servers=2, gains=(0.7, 0.7)
        )
        for _ in range(5):
            expected = scalar.tick([300.0, 250.0])
            actual = vector.tick([300.0, 250.0])
            assert actual == expected

    def test_effective_gain_is_mean_of_live(self):
        # Kill the high-gain server: the loop must integrate with the
        # survivor's 0.2 gain, not the (0.2 + 1.0)/2 mean.
        coordinator = PowerCapCoordinator(
            budget_w=400.0, n_servers=2, gains=(0.2, 1.0)
        )
        # Zero-error tick establishes the one-survivor membership
        # without moving the integral state off the 400 W budget.
        coordinator.tick([400.0, 0.0], live=(True, False))
        # Now integrate a clean -100 W error at the survivor's gain.
        update = coordinator.tick([500.0, 0.0], live=(True, False))
        assert update.fleet_cap_w == pytest.approx(400.0 + 0.2 * -100.0)


class TestCoordinatorLiveMask:
    def test_all_live_mask_identical_to_no_mask(self):
        masked = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        bare = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        for _ in range(5):
            assert masked.tick(
                [300.0, 250.0], live=(True, True)
            ) == bare.tick([300.0, 250.0])

    def test_dead_servers_get_zero_cap(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=3)
        update = coordinator.tick([200.0, 0.0, 200.0], live=(True, False, True))
        assert update.caps[1] == 0.0
        assert update.caps[0] > 0.0 and update.caps[2] > 0.0

    def test_dead_watts_are_not_measured(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        update = coordinator.tick([200.0, 999.0], live=(True, False))
        assert update.measured_w == pytest.approx(200.0)

    def test_membership_change_resets_integral_state(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        for _ in range(20):  # wind the cap up against low demand
            coordinator.tick([10.0, 10.0])
        assert coordinator.fleet_cap_w > 400.0
        coordinator.tick([10.0, 0.0], live=(True, False))
        # Anti-windup: the wound-up error history tracked a two-server
        # plant; the crash restarts from zero prior error (one tick of
        # fresh integration on top of the reset budget).
        assert coordinator.fleet_cap_w == pytest.approx(
            400.0 + coordinator.gain * (400.0 - 10.0)
        )

    def test_all_dead_hands_out_nothing_and_learns_nothing(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        before = coordinator.fleet_cap_w
        update = coordinator.tick([0.0, 0.0], live=(False, False))
        assert update.caps == (0.0, 0.0)
        assert coordinator.fleet_cap_w == before

    def test_live_mask_length_mismatch_rejected(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        with pytest.raises(SchedulingError):
            coordinator.tick([100.0, 100.0], live=(True,))


class TestSetBudget:
    def test_retarget_resets_integral_state_and_ceiling(self):
        coordinator = PowerCapCoordinator(
            budget_w=400.0, n_servers=2, ceiling_factor=2.0
        )
        for _ in range(20):
            coordinator.tick([10.0, 10.0])
        assert coordinator.fleet_cap_w > 400.0
        coordinator.set_budget(300.0)
        assert coordinator.budget_w == 300.0
        assert coordinator.fleet_cap_w == 300.0
        assert coordinator.ceiling_w == 600.0

    def test_rejects_nonpositive_budget(self):
        coordinator = PowerCapCoordinator(budget_w=400.0, n_servers=2)
        with pytest.raises(SchedulingError):
            coordinator.set_budget(0.0)


class TestDecomposeBudget:
    def test_none_passes_through(self):
        assert decompose_budget(None, [2, 2]) == (None, None)

    def test_shares_sum_exactly(self):
        shares = decompose_budget(1000.0, [3, 2, 2])
        assert sum(shares) == 1000.0
        assert shares[0] > shares[1]
        # The last cell absorbs the float remainder (at most an ulp).
        assert shares[2] == pytest.approx(shares[1], abs=1e-9)

    def test_rounding_remainder_lands_on_last_cell(self):
        shares = decompose_budget(100.0, [1, 1, 1])
        assert sum(shares) == 100.0

    def test_single_cell_gets_the_whole_budget(self):
        assert decompose_budget(333.33, [5]) == (333.33,)

    def test_adversarial_splits_sum_exactly(self):
        # Ragged sizes whose proportional shares are non-terminating
        # binary fractions: the remainder must always land somewhere.
        for sizes in ([7, 3, 13, 1], [1] * 9, [3, 3, 3], [11, 13, 17, 19]):
            for budget in (100.0, 333.33, 1234.567, 50.0 * sum(sizes)):
                shares = decompose_budget(budget, sizes)
                assert sum(shares) == budget
                assert all(share > 0 for share in shares)

    def test_floor_holds_when_budget_covers_the_floor(self):
        # The proportional split hands every server budget/total W, so
        # the 50 W per-server floor is satisfiable in every cell exactly
        # when the budget covers 50 W x total servers.
        sizes = [7, 3, 13, 1]
        total = sum(sizes)
        shares = decompose_budget(50.0 * total, sizes)
        for share, size in zip(shares, sizes):
            assert share >= 50.0 * size - 1e-9

    def test_zero_servers_rejected(self):
        with pytest.raises(SchedulingError):
            decompose_budget(100.0, [])


class TestBudgetSchedule:
    def test_schedule_requires_a_budget(self):
        with pytest.raises(SchedulingError, match="needs a fleet budget"):
            FleetConfig(
                n_servers=2,
                traffic=TRAFFIC,
                fleet_power_budget_schedule=((60.0, 200.0),),
            )

    def test_budget_updates_land_in_the_log(self):
        config = FleetConfig(
            n_servers=2,
            traffic=TRAFFIC,
            seed=7,
            fleet_power_budget_w=380.0,
            fleet_power_budget_schedule=((1200.0, 300.0), (2400.0, 380.0)),
        )
        result = FleetSimulation(config).run()
        updates = [
            entry for entry in result.events
            if entry["kind"] == "budget_update"
        ]
        assert [u["budget_w"] for u in updates] == [300.0, 380.0]

    def test_no_op_schedule_entries_are_skipped(self):
        # An entry equal to the current budget emits nothing, so the
        # run stays bit-identical to the unscheduled one.
        base = FleetConfig(
            n_servers=2, traffic=TRAFFIC, seed=7,
            fleet_power_budget_w=380.0,
        )
        noop = FleetConfig(
            n_servers=2, traffic=TRAFFIC, seed=7,
            fleet_power_budget_w=380.0,
            fleet_power_budget_schedule=((1200.0, 380.0),),
        )
        assert (
            FleetSimulation(noop).run().event_log_hash
            == FleetSimulation(base).run().event_log_hash
        )


class TestBackendRegistry:
    def test_default_backend_registered(self):
        assert DEFAULT_BACKEND in backend_names()
        assert "flexwatts" in backend_names()

    def test_unknown_backend_names_the_registry(self):
        with pytest.raises(ConfigError, match="flexwatts"):
            get_backend("no-such-backend")

    def test_register_rejects_empty_name(self):
        from repro.pdn.backends import PdnBackend

        with pytest.raises(ConfigError):
            register_backend(
                PdnBackend(name="", description="d", transform=lambda c: c)
            )

    def test_power7_transform_is_identity(self):
        from repro.config import ServerConfig

        pdn = ServerConfig().pdn
        assert get_backend("power7").effective_config(pdn) == pdn

    def test_flexwatts_transform_differs(self):
        from repro.config import ServerConfig

        pdn = ServerConfig().pdn
        effective = get_backend("flexwatts").effective_config(pdn)
        assert effective.r_loadline < pdn.r_loadline
        assert effective.r_ir_shared > pdn.r_ir_shared


class TestFacadeKwargs:
    def test_pdn_backend_changes_the_operating_point(self):
        profile = get_profile("raytrace")
        base = measure(profile, mode="undervolt", n_threads=8)
        flex = measure(
            profile, mode="undervolt", n_threads=8, pdn_backend="flexwatts"
        )
        assert (
            flex.adaptive.point.server_power
            != base.adaptive.point.server_power
        )

    def test_explicit_default_backend_matches_no_backend(self):
        profile = get_profile("raytrace")
        base = measure(profile, mode="undervolt", n_threads=4)
        explicit = measure(
            profile, mode="undervolt", n_threads=4, pdn_backend="power7"
        )
        assert (
            explicit.adaptive.point.server_power
            == base.adaptive.point.server_power
        )

    def test_server_and_backend_kwargs_conflict(self):
        from repro.sim.run import build_server

        profile = get_profile("raytrace")
        server = build_server()
        with pytest.raises(SchedulingError):
            measure(
                profile,
                mode="undervolt",
                server=server,
                pdn_backend="flexwatts",
            )

    def test_sweep_power_cap_holds_every_point(self):
        profile = get_profile("raytrace")
        free = sweep(profile, mode="undervolt", core_counts=(4, 8))
        cap = max(
            r.adaptive.point.server_power for r in free
        ) - 10.0
        capped = sweep(
            profile, mode="undervolt", core_counts=(4, 8), power_cap=cap
        )
        for result in capped:
            assert result.adaptive.point.server_power <= cap


class TestBudgetedFleet:
    def test_coordinator_ticks_and_throttles(self, budgeted_result):
        assert budgeted_result.powercap_ticks == 60
        assert budgeted_result.cap_throttle_epochs > 0
        assert budgeted_result.cap_budget_w == 380.0
        assert budgeted_result.cap_measured_steady_w > 0

    def test_budget_events_in_log(self, budgeted_result):
        kinds = {entry["kind"] for entry in budgeted_result.events}
        assert "powercap" in kinds
        assert "cap_update" in kinds

    def test_uncapped_run_has_no_cap_artifacts(self):
        config = FleetConfig(n_servers=2, traffic=TRAFFIC, seed=7)
        result = FleetSimulation(config).run()
        for entry in result.events:
            assert entry["kind"] not in ("powercap", "cap_update")
            assert "cap_w" not in entry
        assert result.powercap_ticks == 0
        assert result.cap_budget_w == 0.0

    def test_budget_changes_the_run(self, budgeted_result):
        config = FleetConfig(n_servers=2, traffic=TRAFFIC, seed=7)
        uncapped = FleetSimulation(config).run()
        assert (
            uncapped.event_log_hash != budgeted_result.event_log_hash
        )

    def test_budgeted_digest_invariant_across_shards_and_workers(self):
        config = FleetConfig(
            n_servers=4,
            traffic=TRAFFIC,
            seed=7,
            fleet_power_budget_w=760.0,
        )
        digests = {
            run_sharded(
                config,
                cell_servers=2,
                n_shards=n_shards,
                workers=workers,
            ).event_log_hash
            for n_shards, workers in ((1, 1), (2, 1), (2, 2))
        }
        assert len(digests) == 1

    def test_tracking_error_property(self, budgeted_result):
        error = budgeted_result.cap_tracking_error
        assert error == pytest.approx(
            abs(budgeted_result.cap_measured_steady_w - 380.0) / 380.0
        )
