"""The fleet power-cap coordinator and the pluggable PDN backends.

Three layers under test:

* the :class:`~repro.fleet.powercap.PowerCapCoordinator` control law in
  isolation (integral tracking, proportional redistribution,
  quantization, anti-windup, budget decomposition);
* the PDN backend registry (`repro.pdn.backends`) and its facade
  plumbing through ``measure``/``sweep``;
* the budgeted fleet end to end — the coordinator ticking inside the
  event loop, caps enforced through the DVFS walk, and the event-log
  digest invariant across shard and worker counts.
"""

import pytest

from repro.api import measure, sweep
from repro.errors import ConfigError, SchedulingError
from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation
from repro.fleet.powercap import (
    CapUpdate,
    PowerCapCoordinator,
    decompose_budget,
)
from repro.fleet.shard import run_sharded
from repro.pdn.backends import (
    DEFAULT_BACKEND,
    backend_names,
    get_backend,
    register_backend,
)
from repro.workloads import get_profile

#: Short but binding fleet day for the integration tests: two servers,
#: an hour of load heavy enough that a 380 W budget throttles.
TRAFFIC = TrafficConfig(
    duration_seconds=3600.0, jobs_per_hour=60.0, lc_fraction=0.15
)


@pytest.fixture(scope="module")
def budgeted_result():
    config = FleetConfig(
        n_servers=2, traffic=TRAFFIC, seed=7, fleet_power_budget_w=380.0
    )
    return FleetSimulation(config).run()


class TestCoordinatorValidation:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(SchedulingError):
            PowerCapCoordinator(budget_w=0.0, n_servers=2)

    def test_rejects_zero_servers(self):
        with pytest.raises(SchedulingError):
            PowerCapCoordinator(budget_w=100.0, n_servers=0)

    def test_rejects_out_of_range_gain(self):
        for gain in (0.0, 2.5, -1.0):
            with pytest.raises(SchedulingError):
                PowerCapCoordinator(budget_w=100.0, n_servers=1, gain=gain)

    def test_rejects_measurement_length_mismatch(self):
        coordinator = PowerCapCoordinator(budget_w=100.0, n_servers=2)
        with pytest.raises(SchedulingError):
            coordinator.tick([50.0])


class TestCoordinatorControlLaw:
    def test_tracks_a_proportional_plant(self):
        """Against a plant that draws exactly its cap, the integral
        loop settles the measured total onto the budget."""
        coordinator = PowerCapCoordinator(
            budget_w=400.0, n_servers=2, floor_w=50.0
        )
        measured = [300.0, 300.0]  # demand above budget
        update = None
        for _ in range(30):
            update = coordinator.tick(measured)
            # The plant follows its cap but never draws above demand.
            measured = [min(300.0, cap) for cap in update.caps]
        assert update is not None
        assert sum(measured) == pytest.approx(400.0, rel=0.02)

    def test_distribution_is_proportional_to_demand(self):
        coordinator = PowerCapCoordinator(budget_w=300.0, n_servers=2)
        update = coordinator.tick([200.0, 100.0])
        assert update.caps[0] > update.caps[1]
        assert update.caps[0] == pytest.approx(
            2 * update.caps[1], abs=2 * coordinator.quantum_w
        )

    def test_zero_draw_servers_get_uniform_share(self):
        coordinator = PowerCapCoordinator(budget_w=300.0, n_servers=3)
        update = coordinator.tick([150.0, 0.0, 0.0])
        assert update.caps[1] == update.caps[2]
        assert update.caps[1] == pytest.approx(
            coordinator.fleet_cap_w / 3, abs=coordinator.quantum_w
        )

    def test_caps_are_quantized_and_floored(self):
        coordinator = PowerCapCoordinator(
            budget_w=120.0, n_servers=2, quantum_w=1.0, floor_w=50.0
        )
        update = coordinator.tick([1000.0, 1.0])
        for cap in update.caps:
            assert cap >= 50.0
            assert cap == pytest.approx(round(cap))

    def test_ceiling_bounds_windup(self):
        coordinator = PowerCapCoordinator(
            budget_w=100.0, n_servers=1, ceiling_factor=2.0
        )
        for _ in range(100):  # demand far below budget: error always +
            update = coordinator.tick([10.0])
        assert coordinator.fleet_cap_w <= 200.0
        assert update.fleet_cap_w <= 200.0

    def test_update_totals(self):
        coordinator = PowerCapCoordinator(budget_w=200.0, n_servers=2)
        update = coordinator.tick([80.0, 120.0])
        assert isinstance(update, CapUpdate)
        assert update.measured_w == pytest.approx(200.0)
        assert update.total_cap_w == pytest.approx(sum(update.caps))


class TestDecomposeBudget:
    def test_none_passes_through(self):
        assert decompose_budget(None, [2, 2]) == (None, None)

    def test_shares_sum_exactly(self):
        shares = decompose_budget(1000.0, [3, 2, 2])
        assert sum(shares) == 1000.0
        assert shares[0] > shares[1] == shares[2]

    def test_rounding_remainder_lands_on_largest_cell(self):
        shares = decompose_budget(100.0, [1, 1, 1])
        assert sum(shares) == 100.0

    def test_zero_servers_rejected(self):
        with pytest.raises(SchedulingError):
            decompose_budget(100.0, [])


class TestBackendRegistry:
    def test_default_backend_registered(self):
        assert DEFAULT_BACKEND in backend_names()
        assert "flexwatts" in backend_names()

    def test_unknown_backend_names_the_registry(self):
        with pytest.raises(ConfigError, match="flexwatts"):
            get_backend("no-such-backend")

    def test_register_rejects_empty_name(self):
        from repro.pdn.backends import PdnBackend

        with pytest.raises(ConfigError):
            register_backend(
                PdnBackend(name="", description="d", transform=lambda c: c)
            )

    def test_power7_transform_is_identity(self):
        from repro.config import ServerConfig

        pdn = ServerConfig().pdn
        assert get_backend("power7").effective_config(pdn) == pdn

    def test_flexwatts_transform_differs(self):
        from repro.config import ServerConfig

        pdn = ServerConfig().pdn
        effective = get_backend("flexwatts").effective_config(pdn)
        assert effective.r_loadline < pdn.r_loadline
        assert effective.r_ir_shared > pdn.r_ir_shared


class TestFacadeKwargs:
    def test_pdn_backend_changes_the_operating_point(self):
        profile = get_profile("raytrace")
        base = measure(profile, mode="undervolt", n_threads=8)
        flex = measure(
            profile, mode="undervolt", n_threads=8, pdn_backend="flexwatts"
        )
        assert (
            flex.adaptive.point.server_power
            != base.adaptive.point.server_power
        )

    def test_explicit_default_backend_matches_no_backend(self):
        profile = get_profile("raytrace")
        base = measure(profile, mode="undervolt", n_threads=4)
        explicit = measure(
            profile, mode="undervolt", n_threads=4, pdn_backend="power7"
        )
        assert (
            explicit.adaptive.point.server_power
            == base.adaptive.point.server_power
        )

    def test_server_and_backend_kwargs_conflict(self):
        from repro.sim.run import build_server

        profile = get_profile("raytrace")
        server = build_server()
        with pytest.raises(SchedulingError):
            measure(
                profile,
                mode="undervolt",
                server=server,
                pdn_backend="flexwatts",
            )

    def test_sweep_power_cap_holds_every_point(self):
        profile = get_profile("raytrace")
        free = sweep(profile, mode="undervolt", core_counts=(4, 8))
        cap = max(
            r.adaptive.point.server_power for r in free
        ) - 10.0
        capped = sweep(
            profile, mode="undervolt", core_counts=(4, 8), power_cap=cap
        )
        for result in capped:
            assert result.adaptive.point.server_power <= cap


class TestBudgetedFleet:
    def test_coordinator_ticks_and_throttles(self, budgeted_result):
        assert budgeted_result.powercap_ticks == 60
        assert budgeted_result.cap_throttle_epochs > 0
        assert budgeted_result.cap_budget_w == 380.0
        assert budgeted_result.cap_measured_steady_w > 0

    def test_budget_events_in_log(self, budgeted_result):
        kinds = {entry["kind"] for entry in budgeted_result.events}
        assert "powercap" in kinds
        assert "cap_update" in kinds

    def test_uncapped_run_has_no_cap_artifacts(self):
        config = FleetConfig(n_servers=2, traffic=TRAFFIC, seed=7)
        result = FleetSimulation(config).run()
        for entry in result.events:
            assert entry["kind"] not in ("powercap", "cap_update")
            assert "cap_w" not in entry
        assert result.powercap_ticks == 0
        assert result.cap_budget_w == 0.0

    def test_budget_changes_the_run(self, budgeted_result):
        config = FleetConfig(n_servers=2, traffic=TRAFFIC, seed=7)
        uncapped = FleetSimulation(config).run()
        assert (
            uncapped.event_log_hash != budgeted_result.event_log_hash
        )

    def test_budgeted_digest_invariant_across_shards_and_workers(self):
        config = FleetConfig(
            n_servers=4,
            traffic=TRAFFIC,
            seed=7,
            fleet_power_budget_w=760.0,
        )
        digests = {
            run_sharded(
                config,
                cell_servers=2,
                n_shards=n_shards,
                workers=workers,
            ).event_log_hash
            for n_shards, workers in ((1, 1), (2, 1), (2, 2))
        }
        assert len(digests) == 1

    def test_tracking_error_property(self, budgeted_result):
        error = budgeted_result.cap_tracking_error
        assert error == pytest.approx(
            abs(budgeted_result.cap_measured_steady_w - 380.0) / 380.0
        )
