"""Unit-conversion helpers."""

import pytest

from repro import units


class TestVoltageConversions:
    def test_mv_to_volts(self):
        assert units.mv(1235) == pytest.approx(1.235)

    def test_volts_to_mv(self):
        assert units.to_mv(1.235) == pytest.approx(1235.0)

    def test_mv_roundtrip(self):
        assert units.to_mv(units.mv(42.0)) == pytest.approx(42.0)


class TestFrequencyConversions:
    def test_mhz_to_hz(self):
        assert units.mhz(4200) == pytest.approx(4.2e9)

    def test_ghz_to_hz(self):
        assert units.ghz(2.8) == pytest.approx(2.8e9)

    def test_hz_to_mhz(self):
        assert units.to_mhz(4.2e9) == pytest.approx(4200.0)

    def test_hz_to_ghz(self):
        assert units.to_ghz(4.2e9) == pytest.approx(4.2)

    def test_mhz_ghz_consistency(self):
        assert units.mhz(1000) == pytest.approx(units.ghz(1))


class TestOtherConversions:
    def test_mohm(self):
        assert units.mohm(0.5) == pytest.approx(5e-4)

    def test_ms(self):
        assert units.ms(32) == pytest.approx(0.032)

    def test_to_ms(self):
        assert units.to_ms(0.032) == pytest.approx(32.0)

    def test_ns(self):
        assert units.ns(10) == pytest.approx(1e-8)

    def test_percent(self):
        assert units.percent(0.062) == pytest.approx(6.2)

    def test_fraction(self):
        assert units.fraction(6.2) == pytest.approx(0.062)

    def test_percent_fraction_roundtrip(self):
        assert units.fraction(units.percent(0.133)) == pytest.approx(0.133)
