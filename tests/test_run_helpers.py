"""High-level measurement helpers and result containers."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.guardband import GuardbandMode
from repro.sim.run import (
    _active_mean_frequency,
    active_mean_frequency,
    core_scaling_sweep,
    measure_consolidated,
    measure_placement,
)
from repro.workloads.scaling import SocketShare


class TestMeasureConsolidated:
    def test_pairs_static_and_adaptive(self, server, raytrace):
        result = measure_consolidated(server, raytrace, 2, GuardbandMode.UNDERVOLT)
        assert result.static.mode is GuardbandMode.STATIC
        assert result.adaptive.mode is GuardbandMode.UNDERVOLT
        assert result.n_active_cores == 2

    def test_undervolt_saves_power(self, server, raytrace):
        result = measure_consolidated(server, raytrace, 2, GuardbandMode.UNDERVOLT)
        assert 0 < result.power_saving_fraction < 0.25

    def test_overclock_boosts_frequency(self, server, raytrace):
        result = measure_consolidated(server, raytrace, 2, GuardbandMode.OVERCLOCK)
        assert 0 < result.frequency_boost_fraction < 0.12

    def test_execution_time_attached(self, server, raytrace):
        result = measure_consolidated(server, raytrace, 2, GuardbandMode.OVERCLOCK)
        assert result.static.execution_time > 0
        assert result.adaptive.execution_time < result.static.execution_time

    def test_energy_and_edp_derived(self, server, raytrace):
        result = measure_consolidated(server, raytrace, 2, GuardbandMode.UNDERVOLT)
        state = result.adaptive
        assert state.energy == pytest.approx(state.chip_power * state.execution_time)
        assert state.edp == pytest.approx(state.energy * state.execution_time)

    def test_smt_stacking_supported(self, server, raytrace):
        result = measure_consolidated(
            server, raytrace, 8, GuardbandMode.UNDERVOLT, threads_per_core=4
        )
        assert result.n_active_cores == 2


class TestCoreScalingSweep:
    def test_sweep_length(self, server, raytrace):
        results = core_scaling_sweep(
            server, raytrace, GuardbandMode.UNDERVOLT, core_counts=(1, 4, 8)
        )
        assert [r.n_active_cores for r in results] == [1, 4, 8]

    def test_power_monotone_in_cores(self, server, raytrace):
        results = core_scaling_sweep(
            server, raytrace, GuardbandMode.UNDERVOLT, core_counts=(1, 4, 8)
        )
        powers = [r.static.chip_power for r in results]
        assert powers[0] < powers[1] < powers[2]

    def test_saving_decays_with_cores(self, server, raytrace):
        """The paper's central Sec. 3 observation."""
        results = core_scaling_sweep(
            server, raytrace, GuardbandMode.UNDERVOLT, core_counts=(1, 8)
        )
        assert results[0].power_saving_fraction > results[1].power_saving_fraction


class TestMeasurePlacement:
    def test_balanced_placement_uses_both_sockets(self, server, raytrace):
        result = measure_placement(
            server,
            raytrace,
            SocketShare.balanced(4),
            GuardbandMode.UNDERVOLT,
            keep_on=[4, 4],
        )
        assert result.n_active_cores == 4
        for socket in server.sockets:
            assert socket.chip.n_active_cores() == 2

    def test_keep_on_gates_spares(self, server, raytrace):
        measure_placement(
            server,
            raytrace,
            SocketShare.consolidated(2),
            GuardbandMode.UNDERVOLT,
            keep_on=[8, 0],
        )
        assert all(c.gated for c in server.sockets[1].chip.cores)

    def test_borrowing_beats_consolidation_at_full_load(self, server, raytrace):
        """The headline Sec. 5.1 effect, end to end."""
        cons = measure_placement(
            server,
            raytrace,
            SocketShare.consolidated(8),
            GuardbandMode.UNDERVOLT,
            keep_on=[8, 0],
        )
        borr = measure_placement(
            server,
            raytrace,
            SocketShare.balanced(8),
            GuardbandMode.UNDERVOLT,
            keep_on=[4, 4],
        )
        assert borr.adaptive.chip_power < cons.adaptive.chip_power


class TestActiveMeanFrequency:
    @staticmethod
    def _synthetic_point(socket_freqs, socket_active_ids):
        sockets = tuple(
            SimpleNamespace(
                solution=SimpleNamespace(
                    frequencies=tuple(freqs), active_core_ids=tuple(ids)
                )
            )
            for freqs, ids in zip(socket_freqs, socket_active_ids)
        )
        return SimpleNamespace(sockets=sockets)

    def test_active_cores_only(self):
        point = self._synthetic_point(
            [(4.0e9, 2.0e9), (1.0e9, 1.0e9)], [(0,), ()]
        )
        assert active_mean_frequency(point) == 4.0e9

    def test_idle_server_averages_every_socket(self):
        """Regression: the idle fallback silently used socket 0 only.

        With the sockets parked at different clocks, the explicit idle
        frequency is the mean over *all* cores — 3 GHz here, where the old
        behavior reported socket 0's 4 GHz.
        """
        point = self._synthetic_point(
            [(4.0e9, 4.0e9), (2.0e9, 2.0e9)], [(), ()]
        )
        assert active_mean_frequency(point) == pytest.approx(3.0e9)

    def test_idle_contract_on_real_server(self, server):
        point = server.operate(GuardbandMode.STATIC)
        freqs = []
        for sp in point.sockets:
            freqs.extend(sp.solution.frequencies)
        assert active_mean_frequency(point) == pytest.approx(float(np.mean(freqs)))

    def test_backcompat_shim_ignores_server(self, server, raytrace):
        server.place(0, raytrace, 2)
        point = server.operate(GuardbandMode.UNDERVOLT)
        assert _active_mean_frequency(None, point) == active_mean_frequency(point)

    def test_point_is_self_contained(self, server, raytrace):
        """The settled point must not track later server mutations."""
        server.place(0, raytrace, 2)
        point = server.operate(GuardbandMode.UNDERVOLT)
        before = active_mean_frequency(point)
        server.clear()
        server.place(1, raytrace, 8)
        assert active_mean_frequency(point) == before


class TestRunResultGuards:
    def test_speedup_requires_runtimes(self, server, raytrace):
        from repro.sim.results import RunResult, SteadyState

        result = measure_consolidated(server, raytrace, 1, GuardbandMode.OVERCLOCK)
        stripped = RunResult(
            profile=result.profile,
            n_active_cores=1,
            static=SteadyState(
                workload="raytrace",
                mode=GuardbandMode.STATIC,
                n_active_cores=1,
                point=result.static.point,
            ),
            adaptive=result.adaptive,
        )
        with pytest.raises(ValueError):
            stripped.speedup_fraction
        assert stripped.static.energy is None
        assert stripped.static.edp is None
