"""The shipped scenario catalog: shape, round-trips, and goldens.

``repro scenario check`` is the regression suite for the catalog; here
the fastest scenario's golden runs unmarked so every test run exercises
the full load→lower→run→adjudicate path, while the rest ride behind the
``slow`` marker (CI's scenario job runs them all).
"""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    catalog_paths,
    check_scenario,
    codec,
    find_scenario,
    load_catalog,
)

EXPECTED_NAMES = {
    "dirty_power",
    "diurnal_batch_backfill",
    "flash_crowd",
    "heterogeneous_aging",
    "power_capped_consolidation",
    "regional_failover",
}


class TestCatalogShape:
    def test_catalog_holds_the_named_scenarios(self):
        names = {s.name for s in load_catalog()}
        assert EXPECTED_NAMES <= names

    def test_every_scenario_carries_a_golden_block(self):
        for scenario in load_catalog():
            assert not scenario.golden.is_empty, scenario.name
            assert scenario.golden.event_log_hash is not None, scenario.name

    def test_names_match_file_stems(self):
        import os

        for path in catalog_paths():
            stem = os.path.splitext(os.path.basename(path))[0]
            assert codec.load(path).name == stem

    def test_find_scenario(self):
        assert find_scenario("flash_crowd").traffic.surges
        with pytest.raises(ScenarioError, match="no catalog scenario"):
            find_scenario("does_not_exist")

    def test_missing_catalog_dir_is_an_error(self, tmp_path):
        with pytest.raises(ScenarioError):
            catalog_paths(str(tmp_path / "absent"))


class TestCatalogRoundTrip:
    def test_load_dump_load_is_identity(self):
        for path in catalog_paths():
            scenario = codec.load(path)
            assert codec.loads(codec.dumps(scenario)) == scenario, path

    def test_dump_is_stable(self):
        for path in catalog_paths():
            once = codec.dumps(codec.load(path))
            assert codec.dumps(codec.loads(once)) == once, path


def _by_speed():
    """Catalog scenarios, the single fastest one split out."""
    scenarios = sorted(
        load_catalog(),
        key=lambda s: s.traffic.duration_seconds
        * s.traffic.jobs_per_hour
        * s.topology.n_servers,
    )
    return scenarios[0], scenarios[1:]


FASTEST, REST = _by_speed()


class TestGoldens:
    def test_fastest_scenario_passes_its_golden(self):
        verdict = check_scenario(FASTEST)
        assert verdict.passed, verdict.failures

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "scenario", REST, ids=[s.name for s in REST]
    )
    def test_catalog_scenario_passes_its_golden(self, scenario):
        verdict = check_scenario(scenario)
        assert verdict.passed, verdict.failures

    @pytest.mark.slow
    def test_goldens_hold_under_sharded_execution(self):
        verdict = check_scenario(FASTEST, n_shards=2, workers=2)
        assert verdict.passed, verdict.failures
