"""Property-based tests (hypothesis) on the core physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.cpm import CriticalPathMonitor
from repro.chip.power import PowerModel
from repro.chip.timing import TimingModel
from repro.config import ChipConfig, DidtConfig, PdnConfig
from repro.floorplan import Floorplan
from repro.pdn import DidtNoiseModel, IrDropNetwork
from repro.pdn.decomposition import DropDecomposer
from repro.workloads.scaling import RuntimeModel, SocketShare
from repro.workloads import get_profile, profile_names

CONFIG = ChipConfig()
TIMING = TimingModel(CONFIG)
POWER = PowerModel(CONFIG)

voltages = st.floats(min_value=0.8, max_value=1.35)
frequencies = st.floats(min_value=2.8e9, max_value=4.66e9)
activities = st.floats(min_value=0.0, max_value=1.5)
core_counts = st.integers(min_value=0, max_value=8)
currents = st.lists(
    st.floats(min_value=0.0, max_value=20.0), min_size=8, max_size=8
)


class TestTimingProperties:
    @given(voltage=voltages, frequency=frequencies)
    def test_margin_plus_vmin_is_voltage(self, voltage, frequency):
        margin = TIMING.margin(voltage, frequency)
        assert margin + TIMING.vmin(frequency) == np.float64(voltage)

    @given(voltage=voltages, margin=st.floats(min_value=0.0, max_value=0.2))
    def test_frequency_for_margin_round_trips(self, voltage, margin):
        frequency = TIMING.frequency_for_margin(voltage, margin)
        assert abs(TIMING.margin(voltage, frequency) - margin) < 1e-9

    @given(frequency=frequencies)
    def test_quantize_never_raises_frequency(self, frequency):
        assert TIMING.quantize_frequency(frequency) <= frequency

    @given(frequency=st.floats(min_value=1e8, max_value=1e10))
    def test_clamp_always_in_range(self, frequency):
        clamped = TIMING.clamp_frequency(frequency)
        assert CONFIG.f_min <= clamped <= CONFIG.f_ceiling


class TestCpmProperties:
    @given(
        margin_a=st.floats(min_value=-0.1, max_value=0.3),
        margin_b=st.floats(min_value=-0.1, max_value=0.3),
        frequency=frequencies,
    )
    def test_code_monotone_in_margin(self, margin_a, margin_b, frequency):
        cpm = CriticalPathMonitor(CONFIG)
        if margin_a <= margin_b:
            assert cpm.read(margin_a, frequency) <= cpm.read(margin_b, frequency)

    @given(margin=st.floats(min_value=-0.5, max_value=0.5), frequency=frequencies)
    def test_code_always_in_detector_range(self, margin, frequency):
        cpm = CriticalPathMonitor(CONFIG)
        assert 0 <= cpm.read(margin, frequency) <= CONFIG.cpm_code_max


class TestPowerProperties:
    @given(activity=activities, voltage=voltages, frequency=frequencies)
    def test_dynamic_power_nonnegative(self, activity, voltage, frequency):
        assert POWER.core_dynamic(activity, voltage, frequency) >= 0

    @given(
        voltage_low=voltages,
        voltage_high=voltages,
        frequency=frequencies,
        activity=st.floats(min_value=0.1, max_value=1.2),
    )
    def test_power_monotone_in_voltage(
        self, voltage_low, voltage_high, frequency, activity
    ):
        if voltage_low > voltage_high:
            voltage_low, voltage_high = voltage_high, voltage_low
        p_low = POWER.core_dynamic(activity, voltage_low, frequency)
        p_high = POWER.core_dynamic(activity, voltage_high, frequency)
        assert p_low <= p_high

    @given(voltage=voltages, temperature=st.floats(min_value=20, max_value=90))
    def test_gated_leakage_below_ungated(self, voltage, temperature):
        gated = POWER.core_leakage(voltage, temperature, True)
        ungated = POWER.core_leakage(voltage, temperature, False)
        assert 0 <= gated < ungated


class TestPdnProperties:
    @given(core_currents=currents)
    def test_ir_drops_nonnegative(self, core_currents):
        network = IrDropNetwork(PdnConfig(), Floorplan(8))
        assert all(d >= 0 for d in network.core_drops(core_currents))

    @given(core_currents=currents, extra=st.integers(min_value=0, max_value=7))
    def test_adding_current_never_lowers_any_drop(self, core_currents, extra):
        network = IrDropNetwork(PdnConfig(), Floorplan(8))
        base = network.core_drops(core_currents)
        boosted = list(core_currents)
        boosted[extra] += 5.0
        more = network.core_drops(boosted)
        assert all(m >= b for m, b in zip(more, base))

    @given(n=core_counts)
    def test_droop_at_least_ripple_trend(self, n):
        noise = DidtNoiseModel(DidtConfig())
        assert noise.worst_droop(n) >= 0
        assert noise.typical_ripple(n) >= 0

    @given(
        current=st.floats(min_value=0, max_value=150),
        sample=st.floats(min_value=0, max_value=0.15),
        extra=st.floats(min_value=0, max_value=0.08),
    )
    def test_decomposition_components_nonnegative(self, current, sample, extra):
        decomposer = DropDecomposer(PdnConfig())
        result = decomposer.decompose(current, sample, sample + extra)
        assert result.loadline >= 0
        assert result.ir_drop >= 0
        assert result.typical_didt >= 0
        assert result.worst_didt >= 0


class TestRuntimeProperties:
    @given(
        name=st.sampled_from(profile_names()),
        threads=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_execution_time_positive(self, name, threads):
        runtime = RuntimeModel()
        profile = get_profile(name)
        time = runtime.execution_time(
            profile, SocketShare.consolidated(threads), 4.2e9, 4.2e9
        )
        assert time > 0

    @given(
        name=st.sampled_from(profile_names()),
        threads=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60)
    def test_contention_never_below_one(self, name, threads):
        runtime = RuntimeModel()
        profile = get_profile(name)
        for share in (SocketShare.consolidated(threads), SocketShare.balanced(threads)):
            assert runtime.contention_factor(profile, share) >= 1.0
            assert runtime.sharing_factor(profile, share) >= 1.0

    @given(
        name=st.sampled_from(profile_names()),
        threads=st.integers(min_value=1, max_value=32),
        tpc=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_effective_activity_bounded(self, name, threads, tpc):
        runtime = RuntimeModel()
        profile = get_profile(name)
        share = SocketShare.consolidated(threads)
        activity = runtime.effective_activity(profile, share, tpc)
        assert 0 < activity <= profile.activity


class TestVrmProperties:
    @given(voltage=st.floats(min_value=0.5, max_value=1.5))
    def test_quantize_never_lowers_and_stays_close(self, voltage):
        from repro.config import PdnConfig
        from repro.pdn import VoltageRegulatorModule

        vrm = VoltageRegulatorModule(PdnConfig())
        quantized = vrm.quantize(voltage)
        assert quantized >= voltage - 1e-9
        assert quantized - voltage < vrm.step + 1e-9

    @given(steps=st.integers(min_value=0, max_value=60))
    def test_grid_points_are_fixed_points(self, steps):
        """Walking down the grid never bounces a step back up (the
        regression the 1e-9 quantizer slack exists for).  The comparison
        allows the one-ulp drift of repeated float subtraction."""
        from repro.config import PdnConfig
        from repro.pdn import VoltageRegulatorModule

        vrm = VoltageRegulatorModule(PdnConfig())
        value = 1.2375 - steps * vrm.step
        assert abs(vrm.quantize(value) - value) < vrm.step * 1e-6


class TestDvfsProperties:
    @given(frequency=st.floats(min_value=2.8e9, max_value=4.2e9))
    def test_point_for_frequency_is_sufficient_and_tight(self, frequency):
        from repro.chip.dvfs import DvfsTable
        from repro.config import GuardbandConfig

        table = DvfsTable(CONFIG, GuardbandConfig())
        point = table.point_for_frequency(frequency)
        assert point.frequency >= frequency - 1e-3
        if point.index > 0:
            assert table[point.index - 1].frequency < frequency

    @given(budget=st.floats(min_value=1.0, max_value=1.3))
    def test_voltage_budget_result_fits(self, budget):
        from repro.chip.dvfs import DvfsTable
        from repro.config import GuardbandConfig
        from repro.errors import ConfigError

        table = DvfsTable(CONFIG, GuardbandConfig())
        try:
            point = table.point_for_voltage_budget(budget)
        except ConfigError:
            assert budget < table.pmin.voltage
            return
        assert point.voltage <= budget + 1e-9
        if point.index + 1 < len(table):
            assert table[point.index + 1].voltage > budget
