"""Telemetry: sensors, CPM read modes, the AMESTER poller."""

import pytest

from repro.errors import SensorError
from repro.guardband import GuardbandMode
from repro.telemetry import Amester, CpmReadMode, CpmReader, SocketSensors
from repro.telemetry.amester import MIN_INTERVAL


@pytest.fixture
def settled(server, raytrace):
    """A loaded socket with a settled static operating point."""
    server.place(0, raytrace, 4)
    point = server.operate(GuardbandMode.STATIC)
    return server.sockets[0], point.socket_point(0).solution


class TestSensors:
    def test_read_all_sensor_names(self, settled):
        socket, solution = settled
        readings = SocketSensors(socket).read_all(solution)
        assert set(readings) == set(SocketSensors.SENSORS)

    def test_power_sensor_matches_solution(self, settled):
        socket, solution = settled
        reading = SocketSensors(socket).read("vdd_power", solution)
        assert reading.value == pytest.approx(solution.chip_power)
        assert reading.unit == "W"

    def test_current_sensor(self, settled):
        socket, solution = settled
        reading = SocketSensors(socket).read("vdd_current", solution)
        assert reading.value == pytest.approx(solution.total_current)

    def test_unknown_sensor_raises(self, settled):
        socket, solution = settled
        with pytest.raises(SensorError):
            SocketSensors(socket).read("flux_capacitor", solution)

    def test_reading_str(self, settled):
        socket, solution = settled
        text = str(SocketSensors(socket).read("temperature", solution))
        assert "temperature=" in text


class TestCpmReader:
    def test_sample_mode_reads_typical_state(self, settled):
        socket, solution = settled
        reader = CpmReader(socket)
        codes = reader.read_core(solution, 0, CpmReadMode.SAMPLE)
        assert len(codes) == 5
        assert all(0 <= c <= 11 for c in codes)

    def test_sticky_never_above_sample(self, settled):
        socket, solution = settled
        reader = CpmReader(socket, seed=5)
        sample = reader.worst_codes(solution, CpmReadMode.SAMPLE)
        for _ in range(30):
            sticky = reader.worst_codes(solution, CpmReadMode.STICKY)
            assert all(s <= smp for s, smp in zip(sticky, sample))

    def test_sticky_sometimes_dips(self, settled):
        socket, solution = settled
        reader = CpmReader(socket, seed=5)
        sample = reader.worst_codes(solution, CpmReadMode.SAMPLE)
        dipped = False
        for _ in range(50):
            sticky = reader.worst_codes(solution, CpmReadMode.STICKY)
            if any(s < smp for s, smp in zip(sticky, sample)):
                dipped = True
                break
        assert dipped

    def test_estimate_drop_positive_under_load(self, settled):
        socket, solution = settled
        reader = CpmReader(socket)
        drop = reader.estimate_drop(solution, 0)
        assert drop > 0

    def test_estimate_drop_tracks_true_drop(self, settled):
        """The CPM-based estimate lands within ~2 bits of the true drop —
        the paper's 'CPMs as voltage counters' technique."""
        socket, solution = settled
        reader = CpmReader(socket)
        true_drop = solution.drops.setpoint - solution.core_voltages[0]
        estimate = reader.estimate_drop(solution, 0)
        assert estimate == pytest.approx(true_drop, abs=0.045)

    def test_rejects_bad_window(self, settled):
        socket, _ = settled
        with pytest.raises(ValueError):
            CpmReader(socket, window=0.0)


class TestAmester:
    def test_enforces_service_processor_floor(self, settled):
        socket, _ = settled
        with pytest.raises(SensorError):
            Amester(socket, interval=0.001)

    def test_default_interval_is_32ms(self, settled):
        socket, _ = settled
        assert Amester(socket).interval == MIN_INTERVAL

    def test_poll_records_everything(self, settled):
        socket, solution = settled
        amester = Amester(socket)
        record = amester.poll(solution)
        assert record.time == 0.0
        assert len(record.cpm_sample) == 8
        assert len(record.cpm_sticky) == 8
        assert record.sensor("vdd_power") > 0

    def test_poll_many_timestamps(self, settled):
        socket, solution = settled
        amester = Amester(socket)
        records = amester.poll_many(solution, 4)
        times = [r.time for r in records]
        assert times == pytest.approx([0.0, 0.032, 0.064, 0.096])

    def test_trace_series_extraction(self, settled):
        socket, solution = settled
        amester = Amester(socket)
        amester.poll_many(solution, 5)
        assert len(amester.trace.series("temperature")) == 5
        assert len(amester.trace.cpm_series(0, CpmReadMode.STICKY)) == 5

    def test_poll_many_rejects_zero(self, settled):
        socket, solution = settled
        with pytest.raises(SensorError):
            Amester(socket).poll_many(solution, 0)


class TestCsvExport:
    def test_empty_trace_is_empty_string(self, settled):
        socket, _ = settled
        assert Amester(socket).trace.to_csv() == ""

    def test_header_and_rows(self, settled):
        socket, solution = settled
        amester = Amester(socket)
        amester.poll_many(solution, 3)
        csv = amester.trace.to_csv()
        lines = csv.strip().split("\n")
        assert len(lines) == 4
        header = lines[0].split(",")
        assert header[0] == "time_s"
        assert "vdd_power" in header
        assert "cpm_sticky_c7" in header

    def test_rows_align_with_header(self, settled):
        socket, solution = settled
        amester = Amester(socket)
        amester.poll_many(solution, 2)
        lines = amester.trace.to_csv().strip().split("\n")
        width = len(lines[0].split(","))
        assert all(len(line.split(",")) == width for line in lines[1:])
