"""The zero-perturbation contract and the end-to-end observability wiring.

The load-bearing guarantee: enabling full instrumentation must not change
a single simulated decision.  The fleet engine's event log hashes every
event into a SHA-256 run identity, so "bit-identical event log" is a
one-line assertion.
"""

import json

import pytest

from repro.fleet import FleetConfig, FleetSimulation, TrafficConfig
from repro.obs import Observability, install, observability
from repro.sim.batch import SweepRunner
from repro.sim.cache import OperatingPointCache


@pytest.fixture
def restored_observability():
    """Install a fresh enabled Observability; always restore after."""
    obs = Observability(enabled=True)
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)


def _fleet_result():
    config = FleetConfig(
        n_servers=2,
        traffic=TrafficConfig(duration_seconds=7200.0),
        seed=7,
    )
    runner = SweepRunner(max_workers=1, cache=OperatingPointCache())
    return FleetSimulation(config, runner=runner).run()


class TestZeroPerturbation:
    def test_instrumented_fleet_run_is_bit_identical(self):
        baseline = _fleet_result()
        obs = Observability(enabled=True)
        previous = install(obs)
        try:
            instrumented = _fleet_result()
        finally:
            install(previous)
        assert instrumented.event_log_hash == baseline.event_log_hash
        assert len(instrumented.events) == len(baseline.events)
        # ... and the instrumentation actually ran.
        assert "fleet_epochs_total" in obs.metrics
        assert obs.tracer.find("fleet.run")

    def test_cli_level_zero_perturbation(self, capsys, tmp_path):
        from repro.cli import main

        argv = ["fleet", "--servers", "2", "--duration", "3600"]

        def run_hash(extra):
            assert main(argv + extra) == 0
            out = capsys.readouterr().out
            return next(
                line for line in out.splitlines()
                if line.startswith("event log:")
            )

        plain = run_hash([])
        instrumented = run_hash(
            ["--metrics-out", str(tmp_path / "m.json"),
             "--trace-spans", str(tmp_path / "s.jsonl")]
        )
        assert plain == instrumented


class TestFleetInstrumentation:
    def test_fleet_metrics_and_spans_populate(self, restored_observability):
        # A warm process can satisfy the whole day from the settle memo,
        # which (correctly) skips the guardband/opcache layers — this
        # test is about what a cold run emits.
        from repro.fleet.engine import clear_fleet_memos

        clear_fleet_memos()
        result = _fleet_result()
        obs = restored_observability
        arrived = obs.metrics.get("fleet_jobs_arrived_total")
        total = sum(child.value for _, child in arrived.children())
        assert total == result.n_arrivals
        assert obs.metrics.get("fleet_epochs_total") is not None
        assert obs.metrics.get("fleet_power_cycles_total") is not None
        assert obs.metrics.get("guardband_operate_total") is not None
        assert obs.metrics.get("opcache_lookups_total") is not None
        # the run span covers the whole horizon on the simulation clock
        (run_span,) = obs.tracer.find("fleet.run")
        assert run_span.start_sim_ns == 0
        assert run_span.end_sim_ns == 7200 * 10**9
        # epoch spans nest under the run span
        epochs = obs.tracer.find("fleet.epoch")
        assert epochs
        assert all(s.parent_id == run_span.span_id for s in epochs)

    def test_latency_histogram_counts_completions(self, restored_observability):
        result = _fleet_result()
        family = restored_observability.metrics.get("fleet_job_latency_seconds")
        total = sum(child.count for _, child in family.children())
        assert total == result.n_completions


class TestObservabilityHandle:
    def test_disabled_handle_records_nothing(self):
        obs = Observability(enabled=False)
        obs.count("x_total")
        obs.gauge("g", 1.0)
        obs.observe("h", 1.0)
        with obs.span("a") as span:
            span.annotate(k=1)
        assert len(obs.metrics) == 0
        assert len(obs.tracer) == 0

    def test_enabled_handle_records(self):
        obs = Observability(enabled=True)
        obs.count("x_total", 2, kind="a")
        obs.gauge("g", 3.0)
        obs.observe("h", 0.5)
        with obs.span("a"):
            pass
        assert obs.metrics.get("x_total").labels(kind="a").value == 2.0
        assert obs.metrics.get("g").value == 3.0
        ((_, histogram),) = obs.metrics.get("h").children()
        assert histogram.count == 1
        assert [s.name for s in obs.tracer.spans] == ["a"]

    def test_install_swaps_and_restores(self):
        mine = Observability(enabled=True)
        previous = install(mine)
        try:
            assert observability() is mine
        finally:
            install(previous)
        assert observability() is previous

    def test_install_none_resets_to_disabled(self):
        previous = install(None)
        try:
            assert observability().enabled is False
        finally:
            install(previous)


class TestCliObservabilityOutputs:
    def test_sweep_metrics_out_snapshot_loads(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs import load_metrics

        path = tmp_path / "m.json"
        assert main(["sweep", "raytrace", "--metrics-out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        registry = load_metrics(str(path))
        assert registry.get("sweep_batches_total") is not None
        assert registry.get("guardband_operate_total") is not None

    def test_fleet_trace_spans_jsonl(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "spans.jsonl"
        assert main(
            ["fleet", "--servers", "2", "--duration", "3600",
             "--trace-spans", str(path)]
        ) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        names = {r["name"] for r in records}
        assert "fleet.run" in names
        assert "fleet.epoch" in names

    def test_global_handle_is_restored_after_cli_run(self, capsys, tmp_path):
        from repro.cli import main

        before = observability()
        main(["measure", "raytrace", "--metrics-out", str(tmp_path / "m.json")])
        capsys.readouterr()
        assert observability() is before
