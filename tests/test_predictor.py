"""The MIPS-based frequency predictor."""

import pytest

from repro.core import MipsFrequencyPredictor, PredictorSample
from repro.errors import SchedulingError


def _samples():
    """A clean linear relation: f = 4.62 GHz - 2000 Hz/MIPS."""
    return [
        PredictorSample(chip_mips=m, frequency=4.62e9 - 2000.0 * m, workload=f"w{m}")
        for m in (10_000, 20_000, 40_000, 60_000, 80_000)
    ]


class TestFitting:
    def test_recovers_exact_line(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        assert predictor.slope == pytest.approx(-2000.0, rel=1e-9)
        assert predictor.intercept == pytest.approx(4.62e9, rel=1e-9)

    def test_rmse_zero_on_exact_data(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        assert predictor.rmse() == pytest.approx(0.0, abs=1e-9)

    def test_rmse_on_noisy_data(self):
        noisy = list(_samples())
        noisy[0] = PredictorSample(chip_mips=10_000, frequency=4.62e9 - 2000 * 10_000 + 50e6)
        predictor = MipsFrequencyPredictor().fit(noisy)
        assert predictor.rmse() > 0

    def test_rejects_single_sample(self):
        with pytest.raises(SchedulingError):
            MipsFrequencyPredictor().fit(_samples()[:1])

    def test_fit_returns_self(self):
        predictor = MipsFrequencyPredictor()
        assert predictor.fit(_samples()) is predictor


class TestPrediction:
    def test_predict_interpolates(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        assert predictor.predict(30_000) == pytest.approx(4.62e9 - 6.0e7)

    def test_unfitted_predict_raises(self):
        with pytest.raises(SchedulingError):
            MipsFrequencyPredictor().predict(1000)

    def test_rejects_negative_mips(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        with pytest.raises(SchedulingError):
            predictor.predict(-1.0)

    def test_fitted_flag(self):
        predictor = MipsFrequencyPredictor()
        assert not predictor.fitted
        predictor.fit(_samples())
        assert predictor.fitted


class TestMipsBudget:
    def test_budget_inverts_prediction(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        budget = predictor.max_mips_for(4.5e9)
        assert predictor.predict(budget) == pytest.approx(4.5e9)

    def test_higher_frequency_smaller_budget(self):
        predictor = MipsFrequencyPredictor().fit(_samples())
        assert predictor.max_mips_for(4.55e9) < predictor.max_mips_for(4.45e9)

    def test_budget_rejects_positive_slope(self):
        rising = [
            PredictorSample(chip_mips=m, frequency=4.2e9 + m) for m in (1e3, 2e3, 3e3)
        ]
        predictor = MipsFrequencyPredictor().fit(rising)
        with pytest.raises(SchedulingError):
            predictor.max_mips_for(4.3e9)
