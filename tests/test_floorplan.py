"""Floorplan geometry: positions, adjacency, coupling, CPM placement."""

import pytest

from repro.floorplan import CPM_UNITS, Floorplan


class TestPositions:
    def test_eight_cores_two_rows(self):
        plan = Floorplan(8)
        assert plan.position(0).row == 0
        assert plan.position(3).row == 0
        assert plan.position(4).row == 1
        assert plan.position(7).row == 1

    def test_columns_wrap_at_four(self):
        plan = Floorplan(8)
        assert plan.position(0).column == 0
        assert plan.position(5).column == 1

    def test_wide_dies_grow_columns_two_rows_deep(self):
        plan = Floorplan(16)
        assert plan.position(0).row == 0 and plan.position(0).column == 0
        assert plan.position(7).row == 0 and plan.position(7).column == 7
        assert plan.position(8).row == 1 and plan.position(8).column == 0
        assert plan.position(15).row == 1 and plan.position(15).column == 7

    def test_canonical_eight_core_layout_is_unchanged(self):
        plan = Floorplan(8)
        assert plan.position(3).row == 0 and plan.position(3).column == 3
        assert plan.position(4).row == 1 and plan.position(4).column == 0
        assert sorted(plan.neighbours(0)) == [1, 4]

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            Floorplan(0)

    def test_rejects_bad_core_id(self):
        with pytest.raises(ValueError):
            Floorplan(8).position(8)


class TestDistances:
    def test_horizontal_neighbours(self):
        assert Floorplan(8).distance(0, 1) == 1

    def test_vertical_neighbours(self):
        assert Floorplan(8).distance(0, 4) == 1

    def test_diagonal_is_two(self):
        assert Floorplan(8).distance(0, 5) == 2

    def test_corner_to_corner(self):
        assert Floorplan(8).distance(0, 7) == 4

    def test_distance_symmetric(self):
        plan = Floorplan(8)
        for a in range(8):
            for b in range(8):
                assert plan.distance(a, b) == plan.distance(b, a)

    def test_self_distance_zero(self):
        assert Floorplan(8).distance(3, 3) == 0


class TestNeighbours:
    def test_corner_core_has_two_neighbours(self):
        assert sorted(Floorplan(8).neighbours(0)) == [1, 4]

    def test_middle_core_has_three_neighbours(self):
        assert sorted(Floorplan(8).neighbours(1)) == [0, 2, 5]

    def test_bottom_row_neighbours(self):
        assert sorted(Floorplan(8).neighbours(6)) == [2, 5, 7]


class TestCouplingWeights:
    def test_diagonal_is_one(self):
        weights = Floorplan(8).coupling_weights(0.4)
        for i in range(8):
            assert weights[i][i] == 1.0

    def test_neighbour_weight_equals_coupling(self):
        weights = Floorplan(8).coupling_weights(0.4)
        assert weights[0][1] == pytest.approx(0.4)

    def test_weight_decays_geometrically(self):
        weights = Floorplan(8).coupling_weights(0.4)
        assert weights[0][2] == pytest.approx(0.4**2)
        assert weights[0][7] == pytest.approx(0.4**4)

    def test_zero_coupling_gives_identity(self):
        weights = Floorplan(8).coupling_weights(0.0)
        for i in range(8):
            for j in range(8):
                assert weights[i][j] == (1.0 if i == j else 0.0)

    def test_rejects_coupling_above_one(self):
        with pytest.raises(ValueError):
            Floorplan(8).coupling_weights(1.2)


class TestCpmLocations:
    def test_five_units_per_core(self):
        locations = Floorplan(8).cpm_locations(5)
        assert all(len(units) == 5 for units in locations.values())

    def test_units_drawn_from_catalog(self):
        locations = Floorplan(8).cpm_locations(5)
        assert set(locations[0]) <= set(CPM_UNITS)

    def test_every_core_covered(self):
        assert set(Floorplan(8).cpm_locations(5)) == set(range(8))

    def test_rejects_zero_cpms(self):
        with pytest.raises(ValueError):
            Floorplan(8).cpm_locations(0)
