"""Placement data structures and the two batch schedulers."""

import pytest

from repro.core import ConsolidationScheduler, LoadlineBorrowingScheduler
from repro.core.placement import Placement, ThreadGroup
from repro.errors import SchedulingError


class TestThreadGroup:
    def test_valid(self, raytrace):
        assert ThreadGroup(raytrace, 4).n_threads == 4

    def test_rejects_zero_threads(self, raytrace):
        with pytest.raises(SchedulingError):
            ThreadGroup(raytrace, 0)


class TestPlacement:
    def test_thread_accounting(self, raytrace):
        placement = Placement(
            groups=((ThreadGroup(raytrace, 3),), (ThreadGroup(raytrace, 2),)),
        )
        assert placement.threads_on(0) == 3
        assert placement.threads_on(1) == 2
        assert placement.total_threads == 5

    def test_share_of_workload(self, raytrace):
        placement = Placement(
            groups=((ThreadGroup(raytrace, 3),), (ThreadGroup(raytrace, 2),)),
        )
        assert placement.share_of("raytrace").threads_per_socket == (3, 2)

    def test_share_of_missing_workload_raises(self, raytrace):
        placement = Placement(groups=((ThreadGroup(raytrace, 1),), ()))
        with pytest.raises(SchedulingError):
            placement.share_of("lbm")

    def test_workloads_deduplicated(self, raytrace, lu_cb):
        placement = Placement(
            groups=(
                (ThreadGroup(raytrace, 1), ThreadGroup(lu_cb, 1)),
                (ThreadGroup(raytrace, 1),),
            ),
        )
        assert placement.workloads() == ("raytrace", "lu_cb")

    def test_rejects_keep_on_length_mismatch(self, raytrace):
        with pytest.raises(SchedulingError):
            Placement(groups=((ThreadGroup(raytrace, 1),), ()), keep_on=(4,))

    def test_apply_places_and_gates(self, server, raytrace):
        placement = Placement(
            groups=((ThreadGroup(raytrace, 2),), ()),
            keep_on=(4, 0),
        )
        placement.apply(server)
        assert server.sockets[0].chip.n_active_cores() == 2
        assert sum(1 for c in server.sockets[0].chip.cores if not c.gated) == 4
        assert all(c.gated for c in server.sockets[1].chip.cores)

    def test_apply_clears_previous_state(self, server, raytrace, lu_cb):
        Placement(groups=((ThreadGroup(lu_cb, 8),), ())).apply(server)
        Placement(groups=((ThreadGroup(raytrace, 1),), ())).apply(server)
        assert server.sockets[0].chip.n_active_cores() == 1


class TestConsolidationScheduler:
    def test_everything_on_socket_zero(self, server_config, raytrace):
        placement = ConsolidationScheduler(server_config).schedule(raytrace, 5, 8)
        assert placement.threads_on(0) == 5
        assert placement.threads_on(1) == 0
        assert placement.keep_on == (8, 0)

    def test_smt_depth_respected(self, server_config, raytrace):
        placement = ConsolidationScheduler(server_config).schedule(
            raytrace, 32, 8, threads_per_core=4
        )
        assert placement.threads_on(0) == 32
        assert placement.threads_per_core == 4

    def test_rejects_more_threads_than_one_socket(self, server_config, raytrace):
        with pytest.raises(SchedulingError):
            ConsolidationScheduler(server_config).schedule(raytrace, 9)

    def test_rejects_reserve_smaller_than_load(self, server_config, raytrace):
        with pytest.raises(SchedulingError):
            ConsolidationScheduler(server_config).schedule(raytrace, 6, total_cores_on=4)

    def test_rejects_reserve_exceeding_socket(self, server_config, raytrace):
        with pytest.raises(SchedulingError):
            ConsolidationScheduler(server_config).schedule(raytrace, 2, total_cores_on=12)


class TestLoadlineBorrowingScheduler:
    def test_even_split(self, server_config, raytrace):
        placement = LoadlineBorrowingScheduler(server_config).schedule(raytrace, 8, 8)
        assert placement.threads_on(0) == 4
        assert placement.threads_on(1) == 4
        assert placement.keep_on == (4, 4)

    def test_odd_split_front_loaded(self, server_config, raytrace):
        placement = LoadlineBorrowingScheduler(server_config).schedule(raytrace, 5, 8)
        assert placement.threads_on(0) == 3
        assert placement.threads_on(1) == 2

    def test_single_thread_stays_on_socket_zero(self, server_config, raytrace):
        placement = LoadlineBorrowingScheduler(server_config).schedule(raytrace, 1, 8)
        assert placement.threads_on(0) == 1
        assert placement.threads_on(1) == 0
        assert placement.keep_on == (4, 4)

    def test_smt_fig14_shape(self, server_config, raytrace):
        """32 threads borrow as 16+16 at SMT4: four busy cores per socket."""
        placement = LoadlineBorrowingScheduler(server_config).schedule(
            raytrace, 32, 8, threads_per_core=4
        )
        assert placement.threads_on(0) == 16
        assert placement.keep_on == (4, 4)

    def test_rejects_impossible_reserve(self, server_config, raytrace):
        with pytest.raises(SchedulingError):
            LoadlineBorrowingScheduler(server_config).schedule(
                raytrace, 2, total_cores_on=99
            )

    def test_rejects_threads_beyond_reserve(self, server_config, raytrace):
        with pytest.raises(SchedulingError):
            LoadlineBorrowingScheduler(server_config).schedule(
                raytrace, 16, total_cores_on=8
            )
