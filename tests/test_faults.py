"""The fault-injection layer: specs, plans, the injector and the gate."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    DROPPED_CODE,
    NULL_INJECTOR,
    CalibrationFault,
    CpmDropFault,
    CpmNoiseFault,
    CpmPlausibilityGate,
    CpmStuckFault,
    FaultInjector,
    FaultPlan,
    JobKillFault,
    LoadlineExcursionFault,
    ServerCrashFault,
    StaleTelemetryFault,
    VrmDroopFault,
    chaos_plan,
    fault_injector,
    injected,
    install_injector,
)


class TestSpecValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            CpmStuckFault(start_seconds=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultError):
            CpmStuckFault(duration_seconds=0.0)

    def test_negative_socket_rejected(self):
        with pytest.raises(FaultError):
            CpmDropFault(socket_id=-1)

    def test_negative_stuck_code_rejected(self):
        with pytest.raises(FaultError):
            CpmStuckFault(code=-1)

    def test_noise_amplitude_rejected(self):
        with pytest.raises(FaultError):
            CpmNoiseFault(amplitude_bits=0)

    def test_droop_depth_rejected(self):
        with pytest.raises(FaultError):
            VrmDroopFault(depth_volts=0.0)

    def test_loadline_factor_rejected(self):
        with pytest.raises(FaultError):
            LoadlineExcursionFault(factor=0.0)

    def test_crash_server_rejected(self):
        with pytest.raises(FaultError):
            ServerCrashFault(server_id=-1)

    def test_kill_job_rejected(self):
        with pytest.raises(FaultError):
            JobKillFault(job_id=-2)

    def test_activity_window(self):
        spec = CpmStuckFault(start_seconds=10.0, duration_seconds=5.0)
        assert not spec.active_at(9.9)
        assert spec.active_at(10.0)
        assert spec.active_at(14.9)
        assert not spec.active_at(15.0)

    def test_open_ended_window(self):
        spec = CpmStuckFault(start_seconds=10.0)
        assert spec.active_at(1e9)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan

    def test_standalone_vs_server_scoped_split(self):
        standalone = CpmStuckFault(socket_id=0)
        scoped = CpmStuckFault(socket_id=0, server_id=1)
        crash = ServerCrashFault(start_seconds=5.0, server_id=0)
        kill = JobKillFault(start_seconds=5.0, job_id=3)
        plan = FaultPlan(specs=(standalone, scoped, crash, kill))
        assert plan.standalone_specs() == (standalone,)
        assert plan.server_scoped_specs() == (scoped, crash, kill)

    def test_describe_names_every_spec(self):
        plan = chaos_plan(1000.0, kill_jobs=(4,))
        text = plan.describe()
        assert "server_crash" in text
        assert "cpm_stuck" in text
        assert "job 4" in text

    def test_chaos_plan_defaults(self):
        plan = chaos_plan(1000.0)
        kinds = [type(s) for s in plan.specs]
        assert kinds == [ServerCrashFault, CpmStuckFault]
        crash, stuck = plan.specs
        assert crash.start_seconds == 250.0
        assert crash.repair_seconds == 250.0
        assert stuck.start_seconds == 300.0
        assert stuck.duration_seconds == 200.0

    def test_chaos_plan_ingredients_droppable(self):
        assert chaos_plan(100.0, crash_server=None, corrupt_server=None).is_empty


class TestInjectorDisabled:
    def test_default_handle_is_disabled(self):
        handle = fault_injector()
        assert handle is NULL_INJECTOR
        assert not handle.enabled

    def test_disabled_hooks_are_identity(self):
        assert NULL_INJECTOR.transform_codes(0, 0, [5, 6]) == [5, 6]
        assert NULL_INJECTOR.rail_droop(0) == 0.0
        assert NULL_INJECTOR.loadline_scale(0) == 1.0
        assert not NULL_INJECTOR.stale_active(0)
        assert not NULL_INJECTOR.calibration_should_fail(0)

    def test_injected_restores_previous_handle(self):
        plan = FaultPlan(specs=(CpmStuckFault(socket_id=0),))
        with injected(plan) as inj:
            assert fault_injector() is inj
            assert inj.enabled
        assert fault_injector() is NULL_INJECTOR

    def test_injected_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with injected(FaultPlan()):
                raise RuntimeError("boom")
        assert fault_injector() is NULL_INJECTOR

    def test_install_returns_previous(self):
        inj = FaultInjector(FaultPlan())
        previous = install_injector(inj)
        try:
            assert previous is NULL_INJECTOR
            assert fault_injector() is inj
        finally:
            install_injector(previous)


class TestInjectorHooks:
    def test_stuck_pins_every_code(self):
        plan = FaultPlan(specs=(CpmStuckFault(socket_id=0, code=3),))
        inj = FaultInjector(plan)
        assert inj.transform_codes(0, 0, [10, 20, 30]) == [3, 3, 3]
        assert inj.counts["cpm_stuck"] == 1

    def test_stuck_respects_socket_and_core_scope(self):
        plan = FaultPlan(
            specs=(CpmStuckFault(socket_id=1, code=0, core_id=2),)
        )
        inj = FaultInjector(plan)
        assert inj.transform_codes(0, 2, [10]) == [10]
        assert inj.transform_codes(1, 0, [10]) == [10]
        assert inj.transform_codes(1, 2, [10]) == [0]

    def test_drop_returns_sentinel(self):
        plan = FaultPlan(specs=(CpmDropFault(socket_id=0),))
        inj = FaultInjector(plan)
        assert inj.transform_codes(0, 0, [10, 20]) == [DROPPED_CODE] * 2

    def test_noise_is_seed_deterministic(self):
        plan = FaultPlan(specs=(CpmNoiseFault(socket_id=0),), seed=11)
        a = FaultInjector(plan).transform_codes(0, 0, [50] * 8)
        b = FaultInjector(plan).transform_codes(0, 0, [50] * 8)
        assert a == b
        other = FaultPlan(specs=(CpmNoiseFault(socket_id=0),), seed=12)
        c = FaultInjector(other).transform_codes(0, 0, [50] * 8)
        assert a != c

    def test_clock_gates_activity(self):
        plan = FaultPlan(
            specs=(
                CpmStuckFault(
                    socket_id=0, code=0, start_seconds=100.0,
                    duration_seconds=50.0,
                ),
            )
        )
        inj = FaultInjector(plan)
        assert inj.transform_codes(0, 0, [9]) == [9]
        inj.set_time(120.0)
        assert inj.transform_codes(0, 0, [9]) == [0]
        inj.set_time(150.0)
        assert inj.transform_codes(0, 0, [9]) == [9]

    def test_rail_droop_sums_and_loadline_scales(self):
        plan = FaultPlan(
            specs=(
                VrmDroopFault(socket_id=0, depth_volts=0.02),
                VrmDroopFault(socket_id=0, depth_volts=0.01),
                LoadlineExcursionFault(socket_id=0, factor=2.0),
            )
        )
        inj = FaultInjector(plan)
        assert inj.rail_droop(0) == pytest.approx(0.03)
        assert inj.rail_droop(1) == 0.0
        assert inj.loadline_scale(0) == pytest.approx(2.0)
        assert inj.loadline_scale(1) == 1.0

    def test_calibration_failure_window(self):
        plan = FaultPlan(
            specs=(CalibrationFault(socket_id=0, duration_seconds=10.0),)
        )
        inj = FaultInjector(plan)
        assert inj.calibration_should_fail(0)
        assert not inj.calibration_should_fail(1)
        inj.set_time(11.0)
        assert not inj.calibration_should_fail(0)

    def test_stale_window_flag(self):
        plan = FaultPlan(specs=(StaleTelemetryFault(socket_id=1),))
        inj = FaultInjector(plan)
        assert inj.stale_active(1)
        assert not inj.stale_active(0)


class TestPlausibilityGate:
    def gate(self):
        return CpmPlausibilityGate(code_max=127, tolerance_bits=2)

    def test_healthy(self):
        verdict = self.gate().judge([10, 11, 12], [11, 11, 11])
        assert verdict.healthy
        assert verdict.reason == "ok"

    def test_missing(self):
        assert self.gate().judge([], []).reason == "missing"
        assert self.gate().judge([1, 2], [1]).reason == "missing"

    def test_dropped(self):
        assert self.gate().judge([10, -1], [10, 10]).reason == "dropped"

    def test_out_of_range(self):
        assert self.gate().judge([10, 200], [10, 10]).reason == "out_of_range"

    def test_pinned_low(self):
        assert self.gate().judge([0, 0, 0], [9, 10, 11]).reason == "pinned_low"

    def test_pinned_high(self):
        verdict = self.gate().judge([127, 127], [10, 10])
        assert verdict.reason == "pinned_high"

    def test_implausible(self):
        assert self.gate().judge([30, 10], [10, 10]).reason == "implausible"

    def test_all_zero_with_zero_expectation_is_healthy(self):
        assert self.gate().judge([0, 0], [1, 2]).healthy

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CpmPlausibilityGate(code_max=0)
        with pytest.raises(ValueError):
            CpmPlausibilityGate(code_max=127, tolerance_bits=-1)
