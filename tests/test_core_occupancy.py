"""Power7Core occupancy: SMT slots, gating, activity/IPC aggregation."""

import pytest

from repro.chip.core import (
    SMT_ACTIVITY_EXPONENT,
    SMT_YIELD_EXPONENT,
    CoreState,
    HardwareThread,
    Power7Core,
)


@pytest.fixture
def core(chip_config):
    return Power7Core(chip_config, core_id=0)


def _thread(activity=1.0, ipc=2.0, workload="w"):
    return HardwareThread(workload=workload, activity=activity, ipc=ipc)


class TestPlacement:
    def test_place_fills_slot(self, core):
        core.place(_thread())
        assert core.n_threads == 1
        assert core.free_slots == 3

    def test_smt4_capacity(self, core):
        for _ in range(4):
            core.place(_thread())
        with pytest.raises(ValueError):
            core.place(_thread())

    def test_evict_all(self, core):
        core.place(_thread(workload="a"))
        core.place(_thread(workload="b"))
        removed = core.evict()
        assert len(removed) == 2
        assert core.n_threads == 0

    def test_evict_by_workload(self, core):
        core.place(_thread(workload="a"))
        core.place(_thread(workload="b"))
        removed = core.evict("a")
        assert [t.workload for t in removed] == ["a"]
        assert core.n_threads == 1

    def test_thread_validation(self):
        with pytest.raises(ValueError):
            HardwareThread(workload="w", activity=-0.1, ipc=1.0)
        with pytest.raises(ValueError):
            HardwareThread(workload="w", activity=1.0, ipc=-1.0)


class TestGating:
    def test_gate_empty_core(self, core):
        core.gate()
        assert core.gated
        assert core.free_slots == 0

    def test_cannot_gate_busy_core(self, core):
        core.place(_thread())
        with pytest.raises(ValueError):
            core.gate()

    def test_cannot_place_on_gated_core(self, core):
        core.gate()
        with pytest.raises(ValueError):
            core.place(_thread())

    def test_ungate_restores_slots(self, core, chip_config):
        core.gate()
        core.ungate()
        assert core.free_slots == chip_config.smt_ways


class TestStateAggregation:
    def test_gated_state(self, core):
        core.gate()
        state = core.state()
        assert state == CoreState(gated=True, n_threads=0, activity=0.0, ipc=0.0)
        assert not state.active

    def test_idle_state_keeps_clock_activity(self, core, chip_config):
        state = core.state()
        assert state.activity == chip_config.idle_activity
        assert state.ipc == 0.0
        assert not state.active

    def test_single_thread_passthrough(self, core):
        core.place(_thread(activity=0.9, ipc=1.8))
        state = core.state()
        assert state.activity == pytest.approx(0.9)
        assert state.ipc == pytest.approx(1.8)
        assert state.active

    def test_smt_throughput_yield(self, core):
        for _ in range(4):
            core.place(_thread(activity=0.9, ipc=1.8))
        state = core.state()
        assert state.ipc == pytest.approx(1.8 * 4**SMT_YIELD_EXPONENT)

    def test_smt_activity_grows_slower_than_throughput(self, core):
        for _ in range(4):
            core.place(_thread(activity=0.9, ipc=1.8))
        state = core.state()
        assert state.activity == pytest.approx(0.9 * 4**SMT_ACTIVITY_EXPONENT)
        assert state.activity / 0.9 < state.ipc / 1.8

    def test_mixed_threads_average(self, core):
        core.place(_thread(activity=0.4, ipc=1.0))
        core.place(_thread(activity=0.8, ipc=2.0))
        state = core.state()
        assert state.activity == pytest.approx(0.6 * 2**SMT_ACTIVITY_EXPONENT)
        assert state.ipc == pytest.approx(1.5 * 2**SMT_YIELD_EXPONENT)

    def test_activity_floor_is_idle_level(self, core, chip_config):
        core.place(_thread(activity=0.001, ipc=0.01))
        assert core.state().activity == chip_config.idle_activity
