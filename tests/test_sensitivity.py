"""Parameter sensitivity (tornado) analysis."""

import pytest

from repro.analysis.sensitivity import (
    SWEPT_PARAMETERS,
    _perturbed_config,
    saving_metric,
    tornado,
    tornado_table,
)
from repro.config import PdnConfig
from repro.errors import ReproError


class TestPerturbedConfig:
    def test_pdn_parameter_scaled(self):
        config = _perturbed_config("r_loadline", 1.5)
        assert config.pdn.r_loadline == pytest.approx(PdnConfig().r_loadline * 1.5)

    def test_didt_parameter_scaled(self):
        config = _perturbed_config("droop_single_core", 0.5)
        assert config.pdn.didt.droop_single_core == pytest.approx(
            PdnConfig().didt.droop_single_core * 0.5
        )

    def test_other_parameters_untouched(self):
        config = _perturbed_config("r_loadline", 1.5)
        assert config.pdn.r_ir_local == PdnConfig().r_ir_local

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            _perturbed_config("flux_capacitance", 1.5)


class TestTornado:
    @pytest.fixture(scope="class")
    def rows(self):
        return tornado(metric=saving_metric(2), scale=0.25)

    def test_covers_all_parameters(self, rows):
        assert {r.parameter for r in rows} == set(SWEPT_PARAMETERS)

    def test_sorted_by_swing(self, rows):
        swings = [r.swing for r in rows]
        assert swings == sorted(swings, reverse=True)

    def test_major_parameters_matter(self, rows):
        """The drop-dominant parameters move the metric well beyond one
        VRM quantization step."""
        by_name = {r.parameter: r for r in rows}
        for name in ("droop_single_core", "r_loadline", "ripple_single_core"):
            assert by_name[name].swing > 0.5, name

    def test_alignment_matters_at_high_core_count(self):
        """droop_alignment_gain only bites when many cores are active —
        sub-quantum at two cores (the VRM steps in 6.25 mV), decisive at
        eight."""
        rows = tornado(
            metric=saving_metric(8),
            parameters=("droop_alignment_gain",),
            scale=0.25,
        )
        assert rows[0].swing > 0.5

    def test_resistances_pull_saving_down(self, rows):
        by_name = {r.parameter: r for r in rows}
        loadline = by_name["r_loadline"]
        assert loadline.high < loadline.low  # more resistance, less saving

    def test_nominal_consistent_across_rows(self, rows):
        nominals = {round(r.nominal, 6) for r in rows}
        assert len(nominals) == 1

    def test_rejects_bad_scale(self):
        with pytest.raises(ReproError):
            tornado(scale=0.0)


class TestTable:
    def test_renders_all_rows(self):
        rows = tornado(
            metric=saving_metric(1), parameters=("r_loadline",), scale=0.25
        )
        text = tornado_table(rows)
        assert "r_loadline" in text
        assert "swing" in text
