"""The frozen scenario config model: eager and cross-field validation."""

import dataclasses

import pytest

from repro.errors import ReproError, ScenarioError
from repro.scenarios import (
    FaultPlanSpec,
    FaultWindowSpec,
    GoldenSpec,
    PolicySpec,
    Scenario,
    ServerGroupSpec,
    TopologySpec,
    TrafficSpec,
    WorkloadMixSpec,
)


class TestScenarioError:
    def test_is_a_repro_error(self):
        assert issubclass(ScenarioError, ReproError)


class TestTrafficSpec:
    def test_defaults_validate(self):
        spec = TrafficSpec()
        assert spec.duration_seconds == 86_400.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_seconds": 0.0},
            {"duration_seconds": -1.0},
            {"duration_seconds": float("nan")},
            {"jobs_per_hour": 0.0},
            {"diurnal_amplitude": 1.0},
            {"diurnal_amplitude": -0.1},
            {"lc_fraction": 1.5},
            {"peak_time_seconds": -1.0},
        ],
    )
    def test_bad_scalars_rejected(self, kwargs):
        with pytest.raises(ScenarioError):
            TrafficSpec(**kwargs)

    def test_surge_normalized_to_tuples(self):
        spec = TrafficSpec(surges=[[100, 50, 2]])
        assert spec.surges == ((100.0, 50.0, 2.0),)

    @pytest.mark.parametrize(
        "surge",
        [
            (100.0, 50.0),               # wrong arity
            (-1.0, 50.0, 2.0),           # negative start
            (100.0, 0.0, 2.0),           # zero duration
            (100.0, 50.0, 0.0),          # zero multiplier
            (90_000.0, 50.0, 2.0),       # opens beyond the horizon
        ],
    )
    def test_bad_surges_rejected(self, surge):
        with pytest.raises(ScenarioError):
            TrafficSpec(duration_seconds=86_400.0, surges=(surge,))


class TestWorkloadMixSpec:
    def test_unknown_profile_rejected_with_known_list(self):
        with pytest.raises(ScenarioError, match="unknown workload profile"):
            WorkloadMixSpec(lc_profiles=("no_such_profile",))

    def test_empty_pools_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadMixSpec(batch_profiles=())
        with pytest.raises(ScenarioError):
            WorkloadMixSpec(lc_threads=())

    def test_zero_threads_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadMixSpec(batch_threads=(0, 2))


class TestTopologySpec:
    def test_cells_follow_cell_servers(self):
        group = ServerGroupSpec(name="g", servers=5, cell_servers=2)
        assert group.n_cells == 3  # 2 + 2 + 1
        assert ServerGroupSpec(name="g", servers=4).n_cells == 1

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(ScenarioError, match="unique"):
            TopologySpec(
                groups=(ServerGroupSpec(name="a"), ServerGroupSpec(name="a"))
            )

    def test_group_lookup(self):
        topo = TopologySpec(
            groups=(
                ServerGroupSpec(name="east", servers=2),
                ServerGroupSpec(name="west", servers=3),
            )
        )
        assert topo.n_servers == 5
        assert topo.group("west").servers == 3
        with pytest.raises(ScenarioError, match="no server group"):
            topo.group("north")

    def test_negative_age_rejected(self):
        with pytest.raises(ScenarioError):
            ServerGroupSpec(name="g", age_years=-1.0)


class TestPolicySpec:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ScenarioError, match="policy"):
            PolicySpec(policy="nonsense")

    def test_negative_cap_rejected(self):
        with pytest.raises(ScenarioError):
            PolicySpec(server_power_cap_w=-10.0)


class TestFaultWindowSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            FaultWindowSpec(kind="meteor_strike")

    def test_job_kill_needs_job_id(self):
        with pytest.raises(ScenarioError, match="job_id"):
            FaultWindowSpec(kind="job_kill")

    def test_job_kill_rejects_server_targets(self):
        with pytest.raises(ScenarioError, match="not a group or server"):
            FaultWindowSpec(kind="job_kill", job_id=3, group="east")

    def test_server_and_all_servers_exclusive(self):
        with pytest.raises(ScenarioError, match="exclusive"):
            FaultWindowSpec(kind="server_crash", server=0, all_servers=True)

    def test_kind_foreign_field_rejected(self):
        with pytest.raises(ScenarioError, match="repair_seconds"):
            FaultWindowSpec(kind="vrm_droop", repair_seconds=60.0)


class TestGoldenSpec:
    def test_malformed_hash_rejected(self):
        with pytest.raises(ScenarioError, match="hex"):
            GoldenSpec(event_log_hash="abc")
        with pytest.raises(ScenarioError, match="hex"):
            GoldenSpec(event_log_hash="Z" * 64)

    def test_inverted_bracket_rejected(self):
        with pytest.raises(ScenarioError, match="exceeds"):
            GoldenSpec(saving_fraction_min=0.5, saving_fraction_max=0.1)

    def test_is_empty(self):
        assert GoldenSpec().is_empty
        assert not GoldenSpec(n_arrivals=3).is_empty


class TestScenarioCrossFields:
    def test_fault_window_beyond_horizon_rejected(self):
        with pytest.raises(ScenarioError, match="beyond"):
            Scenario(
                traffic=TrafficSpec(duration_seconds=3600.0),
                faults=FaultPlanSpec(
                    windows=(
                        FaultWindowSpec(
                            kind="server_crash", start_seconds=7200.0
                        ),
                    )
                ),
            )

    def test_fault_server_beyond_group_rejected(self):
        with pytest.raises(ScenarioError, match="only"):
            Scenario(
                topology=TopologySpec(
                    groups=(ServerGroupSpec(name="g", servers=2),)
                ),
                faults=FaultPlanSpec(
                    windows=(
                        FaultWindowSpec(kind="server_crash", server=2),
                    )
                ),
            )

    def test_fault_unknown_group_rejected(self):
        with pytest.raises(ScenarioError, match="no server group"):
            Scenario(
                faults=FaultPlanSpec(
                    windows=(
                        FaultWindowSpec(kind="server_crash", group="ghost"),
                    )
                ),
            )

    def test_bad_name_rejected(self):
        with pytest.raises(ScenarioError, match="letters"):
            Scenario(name="has spaces")
        with pytest.raises(ScenarioError):
            Scenario(name="")

    def test_is_slow_reads_tags(self):
        assert Scenario(tags=("slow",)).is_slow
        assert not Scenario().is_slow

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Scenario().seed = 9
