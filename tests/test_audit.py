"""Reliability audit of settled operating points."""

import dataclasses

import pytest

from repro.config import DidtConfig, PdnConfig, ServerConfig
from repro.guardband import GuardbandMode, audit_operating_point
from repro.sim.run import build_server, measure_consolidated
from repro.workloads import get_profile


def _audit(server, profile_name, n_threads, mode):
    profile = get_profile(profile_name)
    result = measure_consolidated(server, profile, n_threads, mode)
    solution = result.adaptive.point.socket_point(0).solution
    return audit_operating_point(
        server.sockets[0],
        solution,
        server.config,
        frequency_is_servoed=(mode is GuardbandMode.OVERCLOCK),
    )


class TestSafeStatesPass:
    @pytest.mark.parametrize("workload", ["raytrace", "lu_cb", "mcf"])
    @pytest.mark.parametrize("n_threads", [1, 8])
    def test_undervolt_states_pass(self, server, workload, n_threads):
        report = _audit(server, workload, n_threads, GuardbandMode.UNDERVOLT)
        assert report.passed, report.failures()

    @pytest.mark.parametrize("workload", ["raytrace", "lu_cb"])
    def test_overclock_states_pass(self, server, workload):
        report = _audit(server, workload, 8, GuardbandMode.OVERCLOCK)
        assert report.passed, report.failures()

    def test_static_states_pass(self, server):
        report = _audit(server, "lu_cb", 8, GuardbandMode.STATIC)
        assert report.passed

    def test_undervolt_is_tight(self, server):
        """The converged undervolt leaves little droop slack — the audit
        proves safety, not over-provisioning."""
        report = _audit(server, "raytrace", 8, GuardbandMode.UNDERVOLT)
        margin = 0.045
        assert report.worst_droop_slack < margin + 0.02


class TestUnsafeStatesFail:
    def test_overdeep_setpoint_fails(self, server, raytrace):
        """Manually undervolting past the firmware's floor must be caught."""
        server.place(0, raytrace, 8)
        socket = server.sockets[0]
        socket.path.set_voltage(1.10)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        report = audit_operating_point(socket, solution, server.config)
        assert not report.passed

    def test_finding_fields_explain_failure(self, server, raytrace):
        server.place(0, raytrace, 8)
        socket = server.sockets[0]
        socket.path.set_voltage(1.10)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        report = audit_operating_point(socket, solution, server.config)
        failure = report.failures()[0]
        assert failure.droop_slack < 0 or failure.typical_slack < 0

    def test_monster_droops_fail_fixed_frequency(self, raytrace):
        """A platform with pathological droops cannot hold nominal clock
        at an aggressive setpoint."""
        didt = dataclasses.replace(DidtConfig(), droop_single_core=0.150)
        config = ServerConfig(pdn=dataclasses.replace(PdnConfig(), didt=didt))
        server = build_server(config)
        server.place(0, raytrace, 8)
        socket = server.sockets[0]
        socket.path.set_voltage(1.16)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        report = audit_operating_point(socket, solution, config)
        assert not report.passed
