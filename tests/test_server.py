"""Power720Server: placement, gating, noise scaling, operation."""

import pytest

from repro.errors import SchedulingError
from repro.guardband import GuardbandMode
from repro.workloads import get_profile


class TestPlacement:
    def test_place_fills_cores_in_order(self, server, raytrace):
        server.place(0, raytrace, 3)
        assert server.sockets[0].chip.active_core_ids() == [0, 1, 2]

    def test_place_smt_stacking(self, server, raytrace):
        server.place(0, raytrace, 8, threads_per_core=4)
        chip = server.sockets[0].chip
        assert chip.active_core_ids() == [0, 1]
        assert chip.cores[0].n_threads == 4

    def test_place_zero_threads_noop(self, server, raytrace):
        server.place(0, raytrace, 0)
        assert server.sockets[0].chip.n_active_cores() == 0

    def test_rejects_overflow(self, server, raytrace):
        with pytest.raises(SchedulingError):
            server.place(0, raytrace, 9, threads_per_core=1)

    def test_rejects_bad_socket(self, server, raytrace):
        with pytest.raises(SchedulingError):
            server.place(5, raytrace, 1)

    def test_rejects_bad_smt_depth(self, server, raytrace):
        with pytest.raises(SchedulingError):
            server.place(0, raytrace, 1, threads_per_core=5)

    def test_clear_resets_everything(self, server, raytrace):
        server.place(0, raytrace, 4)
        server.gate_unused([4, 0])
        server.clear()
        for socket in server.sockets:
            assert socket.chip.n_active_cores() == 0
            assert all(not c.gated for c in socket.chip.cores)

    def test_placed_profiles_tracked(self, server, raytrace):
        server.place(0, raytrace, 2)
        assert [p.name for p in server.placed_profiles(0)] == ["raytrace"] * 2

    def test_place_per_core(self, server, raytrace):
        lu_cb = get_profile("lu_cb")
        server.place_per_core(0, [raytrace, lu_cb, lu_cb])
        chip = server.sockets[0].chip
        assert chip.cores[0].threads[0].workload == "raytrace"
        assert chip.cores[1].threads[0].workload == "lu_cb"

    def test_place_per_core_rejects_too_many(self, server, raytrace):
        with pytest.raises(SchedulingError):
            server.place_per_core(0, [raytrace] * 9)

    def test_place_per_core_rejects_gated_core(self, server, raytrace):
        """Regression: placement used to land threads on power-gated cores."""
        chip = server.sockets[0].chip
        chip.gate_unused(1)  # only core 0 stays powered
        with pytest.raises(SchedulingError, match="power-gated"):
            server.place_per_core(0, [raytrace, raytrace])
        # Pre-validation means the rejected call placed nothing at all,
        # not even on the valid core 0.
        assert all(c.n_threads == 0 for c in chip.cores)
        assert server.placed_profiles(0) == []

    def test_place_per_core_rejects_full_smt(self, server, raytrace):
        """Regression: placement used to overflow a core's SMT slots."""
        chip = server.sockets[0].chip
        server.place(0, raytrace, chip.config.smt_ways, threads_per_core=chip.config.smt_ways)
        occupied = [c.n_threads for c in chip.cores]
        with pytest.raises(SchedulingError, match="SMT slot"):
            server.place_per_core(0, [raytrace, raytrace])
        assert [c.n_threads for c in chip.cores] == occupied


class TestGating:
    def test_gate_unused_per_socket(self, server, raytrace):
        server.place(0, raytrace, 2)
        server.gate_unused([4, 0])
        assert sum(1 for c in server.sockets[0].chip.cores if not c.gated) == 4
        assert all(c.gated for c in server.sockets[1].chip.cores)

    def test_gate_unused_rejects_wrong_length(self, server):
        with pytest.raises(SchedulingError):
            server.gate_unused([4])


class TestNoiseScaling:
    def test_noise_follows_workload(self, server):
        lu_cb = get_profile("lu_cb")
        server.place(0, lu_cb, 4)
        scaled = server.sockets[0].path.noise.worst_droop(4)
        server.clear()
        mcf = get_profile("mcf")
        server.place(0, mcf, 4)
        light = server.sockets[0].path.noise.worst_droop(4)
        assert scaled > light

    def test_clear_restores_default_noise(self, server, pdn_config):
        lu_cb = get_profile("lu_cb")
        server.place(0, lu_cb, 4)
        server.clear()
        noise = server.sockets[0].path.noise
        assert noise.worst_droop(1) == pytest.approx(
            pdn_config.didt.droop_single_core
        )


class TestOperate:
    def test_operates_both_sockets(self, server, raytrace):
        server.place(0, raytrace, 2)
        point = server.operate(GuardbandMode.STATIC)
        assert len(point.sockets) == 2

    def test_chip_power_sums_sockets(self, server, raytrace):
        server.place(0, raytrace, 2)
        point = server.operate(GuardbandMode.STATIC)
        assert point.chip_power == pytest.approx(
            sum(p.chip_power for p in point.sockets)
        )

    def test_server_power_adds_peripherals(self, server, raytrace, server_config):
        server.place(0, raytrace, 2)
        point = server.operate(GuardbandMode.STATIC)
        assert point.server_power == pytest.approx(
            point.chip_power + server_config.peripheral_power
        )

    def test_min_frequency_across_sockets(self, server, raytrace):
        server.place(0, raytrace, 2)
        server.place(1, raytrace, 1)
        point = server.operate(GuardbandMode.OVERCLOCK)
        freqs = []
        for sp in point.sockets:
            solution = sp.solution
            freqs.extend(
                solution.frequencies[i] for i in solution.active_core_ids
            )
        assert len(freqs) == 3
        assert point.min_frequency == min(freqs)


class TestMinFrequencyAggregation:
    """Regression: min_frequency used to aggregate idle and gated cores."""

    @staticmethod
    def _point(*sockets):
        from repro.sim.server import ServerOperatingPoint

        return ServerOperatingPoint(
            mode=GuardbandMode.STATIC, sockets=tuple(sockets), peripheral_power=0.0
        )

    @staticmethod
    def _socket(frequencies, active_ids):
        from types import SimpleNamespace

        return SimpleNamespace(
            solution=SimpleNamespace(
                frequencies=tuple(frequencies),
                active_core_ids=tuple(active_ids),
            )
        )

    def test_parked_cores_do_not_drag_minimum(self):
        """Idle cores sitting at a parked clock must not set the minimum."""
        busy = self._socket([4.2e9, 4.1e9, 1.0e9, 1.0e9], active_ids=(0, 1))
        idle = self._socket([1.0e9] * 4, active_ids=())
        assert self._point(busy, idle).min_frequency == 4.1e9

    def test_gated_placement_reports_active_pace(self, server, raytrace):
        server.place(0, raytrace, 2)
        server.gate_unused([2, 0])
        point = server.operate(GuardbandMode.OVERCLOCK)
        solution = point.socket_point(0).solution
        expected = min(solution.frequencies[i] for i in solution.active_core_ids)
        assert solution.active_core_ids == (0, 1)
        assert point.min_frequency == expected

    def test_fully_idle_falls_back_to_all_cores(self, server):
        point = server.operate(GuardbandMode.STATIC)
        freqs = []
        for sp in point.sockets:
            freqs.extend(sp.solution.frequencies)
        assert point.min_frequency == min(freqs)
