"""Per-core DPLL: slew limits, clamping, grid quantization."""

import pytest

from repro.chip.dpll import DigitalPll


@pytest.fixture
def dpll(chip_config):
    return DigitalPll(chip_config)


class TestInitialState:
    def test_starts_at_nominal(self, dpll, chip_config):
        assert dpll.frequency == pytest.approx(chip_config.f_nominal)

    def test_custom_initial_clamped(self, chip_config):
        dpll = DigitalPll(chip_config, initial_frequency=9e9)
        assert dpll.frequency == chip_config.f_ceiling


class TestSlewLimits:
    def test_seven_percent_in_ten_ns(self, dpll, chip_config):
        assert dpll.max_slew(chip_config.dpll_slew_interval) == pytest.approx(
            chip_config.dpll_slew_fraction
        )

    def test_slew_compounds_over_longer_windows(self, dpll, chip_config):
        assert dpll.max_slew(2 * chip_config.dpll_slew_interval) == pytest.approx(
            1.07**2 - 1.0
        )

    def test_zero_duration_means_no_move(self, dpll):
        assert dpll.max_slew(0.0) == pytest.approx(0.0)

    def test_rejects_negative_duration(self, dpll):
        with pytest.raises(ValueError):
            dpll.max_slew(-1.0)


class TestStep:
    def test_large_window_reaches_target(self, dpll):
        reached = dpll.step(4.48e9, duration=1e-6)
        assert reached
        assert dpll.frequency == pytest.approx(4.48e9, rel=0.01)

    def test_tiny_window_truncates_move(self, dpll, chip_config):
        start = dpll.frequency
        reached = dpll.step(chip_config.f_min, duration=chip_config.dpll_slew_interval)
        assert not reached
        assert dpll.frequency > chip_config.f_min
        assert dpll.frequency < start

    def test_step_clamps_to_ceiling(self, dpll, chip_config):
        dpll.step(9e9, duration=1.0)
        assert dpll.frequency <= chip_config.f_ceiling

    def test_result_lands_on_grid(self, dpll, chip_config):
        dpll.step(4.3331e9, duration=1.0)
        steps = dpll.frequency / chip_config.f_step
        assert steps == pytest.approx(round(steps))


class TestSetFrequency:
    def test_direct_set_quantizes(self, dpll, chip_config):
        dpll.set_frequency(4.211e9)
        assert dpll.frequency <= 4.211e9
        steps = dpll.frequency / chip_config.f_step
        assert steps == pytest.approx(round(steps))

    def test_direct_set_clamps(self, dpll, chip_config):
        dpll.set_frequency(1e9)
        assert dpll.frequency >= chip_config.f_min
