"""DVFS operating-point table."""

import pytest

from repro.chip.dvfs import DvfsTable
from repro.config import GuardbandConfig
from repro.errors import ConfigError


@pytest.fixture
def table(chip_config):
    return DvfsTable(chip_config, GuardbandConfig())


class TestConstruction:
    def test_spans_dvfs_range(self, table, chip_config):
        assert table.pmin.frequency == pytest.approx(chip_config.f_min)
        assert table.pmax.frequency == pytest.approx(chip_config.f_nominal)

    def test_28mhz_granularity(self, table, chip_config):
        expected = int((chip_config.f_nominal - chip_config.f_min) / chip_config.f_step) + 1
        assert len(table) == expected

    def test_step_multiple_coarsens(self, chip_config):
        fine = DvfsTable(chip_config, GuardbandConfig(), step_multiple=1)
        coarse = DvfsTable(chip_config, GuardbandConfig(), step_multiple=10)
        assert len(coarse) < len(fine)

    def test_voltages_are_wall_plus_guardband(self, table, chip_config):
        guardband = GuardbandConfig().static_guardband
        for point in table.points:
            assert point.voltage == pytest.approx(
                chip_config.vmin(point.frequency) + guardband
            )

    def test_voltage_monotone_in_frequency(self, table):
        voltages = [p.voltage for p in table.points]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))

    def test_indices_sequential(self, table):
        assert [p.index for p in table.points] == list(range(len(table)))

    def test_rejects_zero_step_multiple(self, chip_config):
        with pytest.raises(ConfigError):
            DvfsTable(chip_config, GuardbandConfig(), step_multiple=0)


class TestQueries:
    def test_point_for_frequency_rounds_up(self, table, chip_config):
        mid = chip_config.f_min + 1.5 * chip_config.f_step
        point = table.point_for_frequency(mid)
        assert point.frequency >= mid - 1e-3

    def test_point_for_exact_frequency(self, table, chip_config):
        point = table.point_for_frequency(chip_config.f_nominal)
        assert point is table.pmax

    def test_point_for_frequency_rejects_above_table(self, table):
        with pytest.raises(ConfigError):
            table.point_for_frequency(5.0e9)

    def test_voltage_budget_picks_fastest_affordable(self, table):
        budget = table.points[5].voltage + 1e-6
        point = table.point_for_voltage_budget(budget)
        assert point.index == 5

    def test_voltage_budget_rejects_below_pmin(self, table):
        with pytest.raises(ConfigError):
            table.point_for_voltage_budget(table.pmin.voltage - 0.01)

    def test_getitem(self, table):
        assert table[0] is table.pmin
