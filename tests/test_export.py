"""JSON export of figure data."""

import json

import pytest

from repro.analysis.export import EXPORTABLE, export_figure, figure_data
from repro.errors import ReproError


class TestFigureData:
    def test_fig3_structure(self):
        data = figure_data("fig3")
        assert data["figure"] == "fig3"
        series = data["data"]
        assert series["core_counts"] == list(range(1, 9))
        assert len(series["static_power"]) == 8
        assert series["mode"] == "undervolt"

    def test_fig15_points(self):
        data = figure_data("fig15")
        points = data["data"]
        assert len(points) == 16
        assert {"n_coremark", "n_other", "other", "coremark_frequency"} <= set(
            points[0]
        )

    def test_fig16_predictor_properties_exported(self):
        data = figure_data("fig16")
        assert "relative_rmse" in data["data"]
        predictor = data["data"]["predictor"]
        assert predictor["slope"] < 0
        assert predictor["fitted"] is True

    def test_unknown_figure_rejected(self):
        with pytest.raises(ReproError):
            figure_data("fig99")


class TestExportFigure:
    @pytest.mark.parametrize("name", ["fig3", "fig12", "fig15"])
    def test_round_trips_through_json(self, name):
        text = export_figure(name)
        parsed = json.loads(text)
        assert parsed["figure"] == name

    def test_cli_export(self, capsys):
        from repro.cli import main

        assert main(["export", "fig3"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["figure"] == "fig3"

    def test_every_exportable_name_has_builder(self):
        for name in EXPORTABLE:
            # Resolution only; heavy figures are exercised elsewhere.
            assert name.startswith("fig")
