"""GuardbandController facade: mode dispatch and operating points."""

import pytest

from repro.guardband import GuardbandMode


@pytest.fixture
def controller(server, raytrace):
    server.place(0, raytrace, 4)
    return server.controllers[0]


class TestDispatch:
    def test_static_mode(self, controller, server_config):
        point = controller.operate(GuardbandMode.STATIC)
        assert point.mode is GuardbandMode.STATIC
        assert point.undervolt == 0.0
        assert point.frequency == pytest.approx(server_config.chip.f_nominal)

    def test_undervolt_mode(self, controller, server_config):
        point = controller.operate(GuardbandMode.UNDERVOLT)
        assert point.mode is GuardbandMode.UNDERVOLT
        assert point.undervolt > 0
        assert point.setpoint < server_config.static_vdd

    def test_overclock_mode(self, controller, server_config):
        point = controller.operate(GuardbandMode.OVERCLOCK)
        assert point.mode is GuardbandMode.OVERCLOCK
        assert point.frequency > server_config.chip.f_nominal
        assert point.undervolt == 0.0

    def test_rejects_unknown_mode(self, controller):
        with pytest.raises(ValueError):
            controller.operate("undervolt")


class TestOrdering:
    def test_undervolt_saves_power_vs_static(self, controller):
        static = controller.operate(GuardbandMode.STATIC)
        undervolt = controller.operate(GuardbandMode.UNDERVOLT)
        assert undervolt.chip_power < static.chip_power

    def test_overclock_burns_more_than_static(self, controller):
        static = controller.operate(GuardbandMode.STATIC)
        overclock = controller.operate(GuardbandMode.OVERCLOCK)
        assert overclock.chip_power > static.chip_power

    def test_calibration_happens_once(self, controller):
        controller.operate(GuardbandMode.STATIC)
        assert controller._calibrated
        # A second operate must not re-calibrate (same margin anchor).
        margin_before = controller.socket.chip.cpm_bank.core_cpms(0)[0].calibrated_margin
        controller.operate(GuardbandMode.UNDERVOLT)
        margin_after = controller.socket.chip.cpm_bank.core_cpms(0)[0].calibrated_margin
        assert margin_before == margin_after

    def test_explicit_calibrate_returns_margin(self, controller):
        margin = controller.calibrate()
        assert margin == pytest.approx(0.045, abs=0.002)
