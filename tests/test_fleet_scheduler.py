"""Online fleet scheduler: regimes, placement canonicalization, the gate."""

from types import SimpleNamespace

import pytest

from repro.errors import SchedulingError
from repro.fleet.scheduler import (
    AGS_POLICY,
    CONSOLIDATION_POLICY,
    MODE_BORROWING,
    MODE_PACKING,
    MODE_QOS,
    OnlineFleetScheduler,
    ServerState,
    UNGATED_AGS_POLICY,
    socket_min_active_frequency,
)
from repro.fleet.traffic import BATCH, LATENCY_CRITICAL, JobSpec
from repro.guardband import GuardbandMode

GHZ = 1e9


def _job(job_id, profile="raytrace", n=4, job_class=BATCH):
    return JobSpec(
        job_id=job_id,
        arrival_ns=0,
        job_class=job_class,
        profile_name=profile,
        n_threads=n,
        service_seconds=600.0,
    )


def _fake_settle(frequency_hz):
    """A settle stub whose socket-0 clock is a constant."""
    solution = SimpleNamespace(
        frequencies=[frequency_hz] * 8, active_core_ids=[0]
    )
    point = SimpleNamespace(
        socket_point=lambda socket_id: SimpleNamespace(solution=solution)
    )
    result = SimpleNamespace(adaptive=SimpleNamespace(point=point))
    calls = []

    def settle(placement, mode):
        calls.append((placement, mode))
        return result

    settle.calls = calls
    return settle


@pytest.fixture
def scheduler(server_config):
    return OnlineFleetScheduler(
        server_config,
        AGS_POLICY,
        required_frequency=4.536 * GHZ,
        settle=_fake_settle(4.6 * GHZ),
    )


class TestValidation:
    def test_rejects_bad_parameters(self, server_config):
        with pytest.raises(SchedulingError):
            OnlineFleetScheduler(
                server_config, AGS_POLICY, required_frequency=0.0,
                settle=_fake_settle(4.6 * GHZ),
            )
        with pytest.raises(SchedulingError):
            OnlineFleetScheduler(
                server_config, AGS_POLICY, required_frequency=4.2 * GHZ,
                settle=_fake_settle(4.6 * GHZ), utilization_threshold=0.0,
            )


class TestRegimes:
    def test_light_load_borrows(self, scheduler):
        plan = scheduler.build_plan([_job(0, n=4), _job(1, n=4)])
        assert plan.mode_name == MODE_BORROWING
        # Threads balance across sockets: both jobs split 2+2.
        assert plan.job_shares[0] == (2, 2)
        assert plan.job_shares[1] == (2, 2)
        assert plan.guardband_mode is GuardbandMode.UNDERVOLT

    def test_heavy_load_packs(self, scheduler):
        plan = scheduler.build_plan([_job(0, n=8), _job(1, n=4)])
        assert plan.mode_name == MODE_PACKING
        # Canonical order places the smaller raytrace job first; socket 0
        # fills completely before anything lands on socket 1.
        assert plan.job_shares[1] == (4, 0)
        assert plan.job_shares[0] == (4, 4)
        assert plan.placement.threads_on(0) == 8

    def test_lc_switches_to_qos_mapping(self, scheduler):
        plan = scheduler.build_plan(
            [_job(0, n=4), _job(1, "perl", n=2, job_class=LATENCY_CRITICAL)]
        )
        assert plan.mode_name == MODE_QOS
        assert plan.has_lc
        # The critical job is isolated on socket 0; batch prefers socket 1.
        assert plan.job_shares[1] == (2, 0)
        assert plan.job_shares[0] == (0, 4)
        assert plan.guardband_mode is GuardbandMode.OVERCLOCK

    def test_qos_overflow_lands_on_socket_zero(self, scheduler):
        jobs = [
            _job(0, "mcf", n=8),
            _job(1, "mcf", n=4),
            _job(2, "perl", n=2, job_class=LATENCY_CRITICAL),
        ]
        plan = scheduler.build_plan(jobs)
        shares = plan.job_shares
        assert sum(s[0] for s in shares.values()) == 2 + 4
        assert sum(s[1] for s in shares.values()) == 8

    def test_consolidation_always_packs_static(self, server_config):
        scheduler = OnlineFleetScheduler(
            server_config,
            CONSOLIDATION_POLICY,
            required_frequency=4.536 * GHZ,
            settle=_fake_settle(4.2 * GHZ),
        )
        plan = scheduler.build_plan(
            [_job(0, n=2), _job(1, "perl", n=2, job_class=LATENCY_CRITICAL)]
        )
        assert plan.mode_name == MODE_PACKING
        assert plan.guardband_mode is GuardbandMode.STATIC

    def test_empty_plan(self, scheduler):
        plan = scheduler.build_plan([])
        assert plan.placement is None
        assert plan.job_shares == {}

    def test_keep_on_gates_spare_cores(self, scheduler):
        plan = scheduler.build_plan([_job(0, n=6)])
        assert plan.placement.keep_on == (3, 3)


class TestCanonicalization:
    def test_plan_is_permutation_invariant(self, scheduler):
        jobs = [
            _job(0, "raytrace", n=4),
            _job(1, "mcf", n=2),
            _job(2, "perl", n=1, job_class=LATENCY_CRITICAL),
            _job(3, "fft", n=4),
        ]
        reference = scheduler.build_plan(jobs)
        shuffled = [jobs[2], jobs[3], jobs[0], jobs[1]]
        assert scheduler.build_plan(shuffled) == reference


class TestFits:
    def test_capacity_bound(self, scheduler):
        assert scheduler.fits([_job(0, n=16)])
        assert not scheduler.fits([_job(0, n=16), _job(1, n=1)])
        assert not scheduler.fits([_job(0, n=17)])

    def test_qos_mapping_caps_critical_threads(self, scheduler):
        lc = [
            _job(i, "perl", n=2, job_class=LATENCY_CRITICAL) for i in range(5)
        ]
        assert not scheduler.fits(lc)  # 10 critical threads > one socket
        assert scheduler.fits(lc[:4])


class TestTryPlace:
    def test_first_fit_prefers_lowest_powered_server(self, scheduler):
        servers = [ServerState(server_id=i) for i in range(3)]
        servers[1].powered = True
        placed = scheduler.try_place(_job(0), servers)
        assert placed is not None
        assert placed[0] == 1  # powered server wins over dark server 0

    def test_powers_on_when_no_powered_server_fits(self, scheduler):
        servers = [ServerState(server_id=i) for i in range(2)]
        servers[0].powered = True
        servers[0].jobs = {9: _job(9, n=16)}
        placed = scheduler.try_place(_job(0, n=4), servers)
        assert placed is not None
        assert placed[0] == 1

    def test_returns_none_when_fleet_is_full(self, scheduler):
        servers = [ServerState(server_id=0, powered=True)]
        servers[0].jobs = {9: _job(9, n=16)}
        assert scheduler.try_place(_job(0, n=4), servers) is None


class TestAdvisorGate:
    def _gated(self, server_config, settle, verdicts):
        scheduler = OnlineFleetScheduler(
            server_config,
            AGS_POLICY,
            required_frequency=4.536 * GHZ,
            settle=settle,
        )
        scheduler._advisor_verdicts.update(verdicts)
        return scheduler

    def _qos_server(self):
        state = ServerState(server_id=0, powered=True)
        state.jobs = {
            0: _job(0, "perl", n=2, job_class=LATENCY_CRITICAL),
            1: _job(1, "mcf", n=8),
        }
        return [state]

    def test_rejects_predicted_unsafe_corunner(self, server_config):
        settle = _fake_settle(4.6 * GHZ)
        scheduler = self._gated(
            server_config, settle, {("perl", "raytrace"): False}
        )
        # raytrace must overflow to socket 0 (socket 1 holds mcf x 8).
        assert scheduler.try_place(_job(2, "raytrace", n=4), self._qos_server()) is None
        assert settle.calls == []  # predictor fast path, no settling

    def test_admits_predicted_safe_corunner_after_verification(
        self, server_config
    ):
        settle = _fake_settle(4.6 * GHZ)
        scheduler = self._gated(
            server_config, settle, {("perl", "fft"): True}
        )
        placed = scheduler.try_place(_job(2, "fft", n=4), self._qos_server())
        assert placed is not None
        assert len(settle.calls) == 1  # exact verification ran

    def test_rejects_when_verification_misses_the_sla(self, server_config):
        settle = _fake_settle(4.5 * GHZ)  # below the 4.536 GHz requirement
        scheduler = self._gated(
            server_config, settle, {("perl", "fft"): True}
        )
        assert scheduler.try_place(_job(2, "fft", n=4), self._qos_server()) is None

    def test_ungated_policy_skips_the_gate(self, server_config):
        settle = _fake_settle(4.5 * GHZ)
        scheduler = OnlineFleetScheduler(
            server_config,
            UNGATED_AGS_POLICY,
            required_frequency=4.536 * GHZ,
            settle=settle,
        )
        placed = scheduler.try_place(
            _job(2, "raytrace", n=4), self._qos_server()
        )
        assert placed is not None
        assert settle.calls == []


class TestSocketMinActiveFrequency:
    def test_reads_active_cores_only(self):
        solution = SimpleNamespace(
            frequencies=[4.0 * GHZ, 3.0 * GHZ, 5.0 * GHZ],
            active_core_ids=[0, 2],
        )
        point = SimpleNamespace(
            socket_point=lambda sid: SimpleNamespace(solution=solution)
        )
        assert socket_min_active_frequency(point, 0) == 4.0 * GHZ

    def test_idle_socket_falls_back_to_all_cores(self):
        solution = SimpleNamespace(
            frequencies=[4.0 * GHZ, 3.5 * GHZ], active_core_ids=[]
        )
        point = SimpleNamespace(
            socket_point=lambda sid: SimpleNamespace(solution=solution)
        )
        assert socket_min_active_frequency(point, 0) == 3.5 * GHZ
