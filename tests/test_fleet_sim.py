"""Fleet simulation engine: determinism, conservation, energy, QoS."""

import pytest

from repro.fleet import (
    AGS_POLICY,
    CONSOLIDATION_POLICY,
    FleetConfig,
    FleetSimulation,
    JobSpec,
    TrafficConfig,
    UNGATED_AGS_POLICY,
    constant_trace,
    run_comparison,
)
from repro.fleet.traffic import BATCH, LATENCY_CRITICAL
from repro.sim.batch import SweepRunner
from repro.sim.cache import OperatingPointCache


def _mk(job_id, t_seconds, job_class, profile, n_threads, service=3600.0):
    return JobSpec(
        job_id=job_id,
        arrival_ns=int(t_seconds * 1e9),
        job_class=job_class,
        profile_name=profile,
        n_threads=n_threads,
        service_seconds=service,
    )


#: One latency-critical job plus enough compute-bound work to saturate a
#: server: the scenario where the advisor gate earns its keep.
SATURATION_TRACE = (
    _mk(0, 0.0, LATENCY_CRITICAL, "perl", 1),
    _mk(1, 10.0, BATCH, "raytrace", 4),
    _mk(2, 20.0, BATCH, "raytrace", 4),
    _mk(3, 30.0, BATCH, "raytrace", 4),
    _mk(4, 40.0, BATCH, "bzip2", 2),
)


@pytest.fixture(scope="module")
def short_config():
    return FleetConfig(
        n_servers=2,
        seed=7,
        traffic=TrafficConfig(duration_seconds=4 * 3600.0),
    )


@pytest.fixture(scope="module")
def short_result(short_config):
    return FleetSimulation(short_config, AGS_POLICY).run()


class TestDeterminism:
    def test_identical_rerun(self, short_config, short_result):
        rerun = FleetSimulation(short_config, AGS_POLICY).run()
        assert rerun.event_log_hash == short_result.event_log_hash
        assert rerun.adaptive_energy_joules == short_result.adaptive_energy_joules
        assert rerun.static_energy_joules == short_result.static_energy_joules
        assert rerun.events == short_result.events

    def test_identical_across_worker_counts(self, short_config, short_result):
        """The acceptance property: --workers N never changes the run."""
        wide = SweepRunner(max_workers=4, cache=OperatingPointCache())
        result = FleetSimulation(
            short_config, AGS_POLICY, runner=wide
        ).run()
        assert result.event_log_hash == short_result.event_log_hash
        assert result.adaptive_energy_joules == short_result.adaptive_energy_joules

    def test_different_seeds_differ(self, short_config):
        other = FleetConfig(
            n_servers=2,
            seed=8,
            traffic=short_config.traffic,
        )
        result = FleetSimulation(other, AGS_POLICY).run()
        assert result.event_log_hash != FleetSimulation(
            short_config, AGS_POLICY
        ).run().event_log_hash


class TestConservation:
    @pytest.mark.parametrize("seed", [7, 13])
    def test_arrivals_are_conserved(self, seed):
        config = FleetConfig(
            n_servers=2,
            seed=seed,
            traffic=TrafficConfig(duration_seconds=3 * 3600.0),
        )
        result = FleetSimulation(config, AGS_POLICY).run()
        assert result.conserved
        assert result.n_arrivals == len(result.records_of_class(BATCH)) + len(
            result.records_of_class(LATENCY_CRITICAL)
        )

    def test_every_completion_has_a_lifecycle(self, short_result):
        for record in short_result.job_records:
            if record.completed:
                assert record.started
                assert record.completion_ns >= record.start_ns >= record.arrival_ns
                assert record.slowdown > 0


class TestEnergy:
    def test_ags_beats_the_static_guardband(self, short_result):
        assert (
            short_result.adaptive_energy_joules
            < short_result.static_energy_joules
        )

    def test_energy_is_positive_and_bounded(self, short_config, short_result):
        # 2 servers x 4 h at <= ~900 W each bounds the integral.
        ceiling = 2 * 4 * 3600.0 * 900.0
        assert 0 < short_result.adaptive_energy_joules < ceiling

    def test_consolidation_static_rails_coincide(self, short_config):
        """A STATIC-mode policy's adaptive and static ledgers are one."""
        result = FleetSimulation(short_config, CONSOLIDATION_POLICY).run()
        assert result.adaptive_energy_joules == result.static_energy_joules

    def test_comparison_report(self, short_config):
        comparison = run_comparison(short_config)
        assert comparison.ags_energy_joules < comparison.static_energy_joules
        assert comparison.consolidation_energy_joules > 0
        assert 0 < comparison.saving_vs_static < 0.5


class TestQos:
    def test_gated_run_has_zero_violations(self):
        config = FleetConfig(
            n_servers=1, traffic=TrafficConfig(duration_seconds=3600.0)
        )
        result = FleetSimulation(
            config, AGS_POLICY, trace=SATURATION_TRACE
        ).run()
        assert result.qos_violations == 0

    def test_ungated_run_violates_the_sla(self):
        config = FleetConfig(
            n_servers=1, traffic=TrafficConfig(duration_seconds=3600.0)
        )
        result = FleetSimulation(
            config, UNGATED_AGS_POLICY, trace=SATURATION_TRACE
        ).run()
        assert result.qos_violations >= 1
        reasons = {
            e["reason"] for e in result.events if e["kind"] == "qos_violation"
        }
        assert "frequency" in reasons


class TestPowerLifecycle:
    def test_hysteresis_power_cycle(self):
        """A long gap powers the server off; the next arrival restarts it."""
        trace = constant_trace(
            2, n_threads=4, service_seconds=600.0, gap_seconds=3600.0
        )
        config = FleetConfig(
            n_servers=1,
            traffic=TrafficConfig(duration_seconds=2 * 3600.0),
            power_off_hysteresis_seconds=300.0,
        )
        result = FleetSimulation(config, AGS_POLICY, trace=trace).run()
        kinds = [
            e["kind"]
            for e in result.events
            if e["kind"] in ("power_on", "power_off")
        ]
        assert kinds == ["power_on", "power_off", "power_on", "power_off"]

    def test_hysteresis_holds_through_short_gaps(self):
        trace = constant_trace(
            2, n_threads=4, service_seconds=550.0, gap_seconds=600.0
        )
        config = FleetConfig(
            n_servers=1,
            traffic=TrafficConfig(duration_seconds=2 * 3600.0),
            power_off_hysteresis_seconds=300.0,
        )
        result = FleetSimulation(config, AGS_POLICY, trace=trace).run()
        ons = [e for e in result.events if e["kind"] == "power_on"]
        assert len(ons) == 1  # the 50 s idle gap never reaches hysteresis


class TestQueueing:
    def test_overload_queues_then_drains(self):
        trace = tuple(
            _mk(i, i * 10.0, BATCH, "mcf", 8, service=1800.0)
            for i in range(4)
        )
        config = FleetConfig(
            n_servers=1, traffic=TrafficConfig(duration_seconds=2 * 3600.0)
        )
        result = FleetSimulation(config, AGS_POLICY, trace=trace).run()
        queued = [e for e in result.events if e["kind"] == "queued"]
        assert len(queued) == 2  # jobs 2 and 3 wait for capacity
        assert result.conserved
        waits = [
            r.queue_seconds for r in result.job_records if r.queue_seconds
        ]
        assert all(w > 0 for w in waits)

    def test_fleet_full_returns_conserved_counts(self):
        trace = tuple(
            _mk(i, 0.0, BATCH, "mcf", 16, service=4 * 3600.0)
            for i in range(3)
        )
        config = FleetConfig(
            n_servers=2, traffic=TrafficConfig(duration_seconds=3600.0)
        )
        result = FleetSimulation(config, AGS_POLICY, trace=trace).run()
        assert result.n_running == 2
        assert result.n_queued == 1
        assert result.conserved


@pytest.mark.slow
class TestTailPercentiles:
    """p50/p95/p99 latency and slowdown — the QoS report's tail view."""

    @staticmethod
    def _result_with_latencies(latencies):
        from repro.fleet.metrics import FleetResult, JobRecord

        records = tuple(
            JobRecord(
                job_id=i,
                job_class=LATENCY_CRITICAL if i % 2 else BATCH,
                profile_name="perl",
                n_threads=1,
                service_seconds=100.0,
                arrival_ns=0,
                start_ns=0,
                completion_ns=int(lat * 1e9),
            )
            for i, lat in enumerate(latencies)
        )
        return FleetResult(
            policy="ags",
            horizon_ns=10**12,
            adaptive_energy_joules=1.0,
            static_energy_joules=2.0,
            n_arrivals=len(records),
            n_completions=len(records),
            n_running=0,
            n_queued=0,
            qos_violations=0,
            n_epochs=0,
            event_log_hash="0" * 64,
            job_records=records,
        )

    def test_nearest_rank_is_a_sample_member(self):
        from repro.fleet.metrics import percentile

        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile([7.0], 99) == 7.0
        assert percentile([], 95) == 0.0

    def test_percentiles_expose_the_tail_the_mean_hides(self):
        # 99 fast jobs and one pathological straggler: the mean moves a
        # little, p99 jumps to the straggler.
        latencies = [100.0] * 99 + [10_000.0]
        result = self._result_with_latencies(latencies)
        tail = result.latency_percentiles()
        assert tail[50] == 100.0
        assert tail[95] == 100.0
        assert tail[99] == 100.0  # rank 99 of 100
        assert result.mean_latency_seconds() == pytest.approx(199.0)
        from repro.fleet.metrics import percentile

        sample = [r.latency_seconds for r in result.job_records]
        assert percentile(sample, 100) == 10_000.0

    def test_slowdown_percentiles_track_latency(self):
        result = self._result_with_latencies([100.0, 200.0, 400.0])
        tail = result.slowdown_percentiles()
        assert tail[50] == pytest.approx(2.0)  # 200 s / 100 s service
        assert tail[99] == pytest.approx(4.0)

    def test_summary_by_class_carries_tail_columns(self, short_result):
        from repro.fleet.metrics import summarize_by_class

        for stats in summarize_by_class(short_result).values():
            for key in (
                "p50_latency_s", "p95_latency_s", "p99_latency_s",
                "p50_slowdown", "p95_slowdown", "p99_slowdown",
            ):
                assert key in stats
            assert stats["p50_latency_s"] <= stats["p99_latency_s"]
            assert stats["p50_slowdown"] <= stats["p99_slowdown"]
            if stats["completions"]:
                assert stats["p99_latency_s"] > 0.0


class TestFullDay:
    def test_default_day_meets_the_acceptance_bar(self):
        comparison = run_comparison(FleetConfig(n_servers=4, seed=7))
        ags = comparison.ags
        assert ags.conserved
        assert ags.qos_violations == 0
        assert comparison.ags_energy_joules < comparison.static_energy_joules
        rerun = run_comparison(FleetConfig(n_servers=4, seed=7))
        assert rerun.ags.event_log_hash == ags.event_log_hash
        assert (
            rerun.ags.adaptive_energy_joules == ags.adaptive_energy_joules
        )
