"""Power7Chip: structure, occupancy management, sensors, MIPS."""

import pytest

from repro.chip import Power7Chip
from repro.chip.core import HardwareThread


@pytest.fixture
def chip(chip_config):
    return Power7Chip(chip_config, seed=7)


def _thread(activity=1.0, ipc=2.0):
    return HardwareThread(workload="w", activity=activity, ipc=ipc)


class TestStructure:
    def test_eight_cores_eight_dplls(self, chip):
        assert len(chip.cores) == 8
        assert len(chip.dplls) == 8

    def test_forty_cpms(self, chip):
        assert len(chip.cpm_bank.all_cpms()) == 40


class TestOccupancy:
    def test_place_and_count_active(self, chip):
        chip.place_thread(0, _thread())
        chip.place_thread(3, _thread())
        assert chip.n_active_cores() == 2
        assert chip.active_core_ids() == [0, 3]

    def test_clear_threads(self, chip):
        chip.place_thread(0, _thread())
        chip.clear_threads()
        assert chip.n_active_cores() == 0

    def test_gate_unused_keeps_reserve(self, chip):
        chip.place_thread(0, _thread())
        chip.gate_unused(keep_on=4)
        states = chip.core_states()
        assert sum(1 for s in states if not s.gated) == 4
        assert not states[0].gated

    def test_gate_unused_never_gates_busy_cores(self, chip):
        for core_id in range(6):
            chip.place_thread(core_id, _thread())
        chip.gate_unused(keep_on=2)
        states = chip.core_states()
        assert sum(1 for s in states if not s.gated) == 6

    def test_ungate_all(self, chip):
        chip.gate_unused(keep_on=0)
        chip.ungate_all()
        assert all(not s.gated for s in chip.core_states())

    def test_gate_unused_rejects_negative(self, chip):
        with pytest.raises(ValueError):
            chip.gate_unused(keep_on=-1)


class TestSensorsAndActuators:
    def test_set_all_frequencies(self, chip):
        chip.set_all_frequencies(3.5e9)
        assert all(f == pytest.approx(3.5e9) for f in chip.frequencies())

    def test_power_uses_occupancy(self, chip):
        voltages = [1.2] * 8
        idle = chip.power(voltages).total
        chip.place_thread(0, _thread())
        busy = chip.power(voltages).total
        assert busy > idle + 5

    def test_margins_per_core(self, chip):
        chip.set_all_frequencies(4.2e9)
        margins = chip.margins([1.2] * 8)
        expected = 1.2 - chip.config.vmin(chip.frequencies()[0])
        assert all(m == pytest.approx(expected) for m in margins)

    def test_margins_rejects_wrong_length(self, chip):
        with pytest.raises(ValueError):
            chip.margins([1.2] * 3)

    def test_cpm_codes_shape(self, chip):
        codes = chip.cpm_codes([1.2] * 8)
        assert len(codes) == 8
        assert all(len(core_codes) == 5 for core_codes in codes)

    def test_worst_codes_are_minima(self, chip):
        codes = chip.cpm_codes([1.2] * 8)
        worst = chip.worst_cpm_codes([1.2] * 8)
        assert worst == [min(c) for c in codes]

    def test_lower_voltage_lower_codes(self, chip):
        high = sum(chip.worst_cpm_codes([1.22] * 8))
        low = sum(chip.worst_cpm_codes([1.14] * 8))
        assert low < high


class TestChipMips:
    def test_idle_chip_zero_mips(self, chip):
        assert chip.chip_mips() == 0.0

    def test_mips_scales_with_threads(self, chip):
        chip.place_thread(0, _thread(ipc=2.0))
        one = chip.chip_mips()
        chip.place_thread(1, _thread(ipc=2.0))
        assert chip.chip_mips() == pytest.approx(2 * one)

    def test_mips_value(self, chip):
        chip.set_all_frequencies(4.2e9)
        chip.place_thread(0, _thread(ipc=2.0))
        assert chip.chip_mips() == pytest.approx(2.0 * 4200.0)
