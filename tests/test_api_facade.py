"""The unified measurement facade: ``repro.measure`` / ``repro.sweep``."""

import pytest

import repro
from repro import GuardbandMode, build_server, measure, sweep
from repro.core.evaluate import measure_scheduled
from repro.core.placement import Placement, ThreadGroup
from repro.errors import SchedulingError
from repro.sim.batch import SweepRunner
from repro.sim.cache import OperatingPointCache
from repro.sim.run import measure_consolidated, measure_placement
from repro.workloads.scaling import SocketShare


class TestResolution:
    def test_workload_accepts_name_or_profile(self, raytrace):
        by_name = measure("raytrace", n_threads=1)
        by_profile = measure(raytrace, n_threads=1)
        assert (
            by_name.adaptive.point.chip_power
            == by_profile.adaptive.point.chip_power
        )

    def test_mode_accepts_string_or_enum(self):
        by_str = measure("raytrace", mode="overclock")
        by_enum = measure("raytrace", mode=GuardbandMode.OVERCLOCK)
        assert (
            by_str.adaptive.active_frequency
            == by_enum.adaptive.active_frequency
        )

    def test_unknown_mode_string_raises(self):
        with pytest.raises(ValueError):
            measure("raytrace", mode="turbo")

    def test_facade_is_reexported_from_package_root(self):
        assert repro.measure is measure
        assert repro.sweep is sweep
        assert "measure" in repro.__all__
        assert "sweep" in repro.__all__


class TestVariantEquivalence:
    """The facade is the canonical implementation; the legacy entry points
    delegate to it.  Same seed + same placement must give bit-identical
    results through either path."""

    def test_consolidated_matches_legacy(self, raytrace):
        legacy = measure_consolidated(
            build_server(), raytrace, 4, GuardbandMode.UNDERVOLT
        )
        unified = measure("raytrace", n_threads=4, mode="undervolt")
        assert legacy.adaptive.point.chip_power == unified.adaptive.point.chip_power
        assert legacy.static.execution_time == unified.static.execution_time
        assert legacy.n_active_cores == unified.n_active_cores

    def test_placement_matches_legacy(self, raytrace):
        legacy = measure_placement(
            build_server(), raytrace, SocketShare((2, 2)),
            GuardbandMode.UNDERVOLT, keep_on=(2, 2),
        )
        unified = measure("raytrace", placement=(2, 2), keep_on=(2, 2))
        assert legacy.adaptive.point.chip_power == unified.adaptive.point.chip_power
        assert legacy.adaptive.active_frequency == unified.adaptive.active_frequency

    def test_schedule_matches_legacy(self, raytrace):
        plan = Placement(
            groups=((ThreadGroup(raytrace, 2),), (ThreadGroup(raytrace, 2),))
        )
        legacy = measure_scheduled(
            build_server(), plan, raytrace, GuardbandMode.UNDERVOLT
        )
        unified = measure(raytrace, schedule=plan)
        assert legacy.adaptive.point.chip_power == unified.adaptive.point.chip_power
        assert legacy.adaptive.execution_time == unified.adaptive.execution_time

    def test_seed_is_plumbed_to_the_server_build(self, raytrace):
        legacy = measure_consolidated(
            build_server(seed=11), raytrace, 4, GuardbandMode.UNDERVOLT
        )
        unified = measure("raytrace", n_threads=4, seed=11)
        assert (
            legacy.adaptive.point.socket_point(0).solution
            == unified.adaptive.point.socket_point(0).solution
        )

    def test_server_reuse_matches_legacy_reuse(self, raytrace):
        # Reused servers keep thermal state across clear(); the facade must
        # mirror the legacy path exactly under the same call sequence.
        legacy_server, unified_server = build_server(), build_server()
        measure_consolidated(
            legacy_server, raytrace, 8, GuardbandMode.UNDERVOLT
        )
        legacy = measure_consolidated(
            legacy_server, raytrace, 1, GuardbandMode.UNDERVOLT
        )
        measure("raytrace", n_threads=8, server=unified_server)
        unified = measure("raytrace", n_threads=1, server=unified_server)
        assert legacy.adaptive.point.chip_power == unified.adaptive.point.chip_power


class TestSelectorValidation:
    def test_placement_and_schedule_conflict(self, raytrace):
        plan = Placement(groups=((ThreadGroup(raytrace, 1),), ()))
        with pytest.raises(SchedulingError):
            measure("raytrace", placement=(1, 0), schedule=plan)

    def test_keep_on_requires_placement(self):
        with pytest.raises(SchedulingError):
            measure("raytrace", keep_on=(2, 0))

    def test_selectors_are_keyword_only(self):
        with pytest.raises(TypeError):
            measure("raytrace", GuardbandMode.UNDERVOLT)  # noqa


class TestSweepFacade:
    def test_sweep_matches_legacy_runner_path(self, raytrace):
        unified = sweep(
            "raytrace",
            core_counts=range(1, 4),
            runner=SweepRunner(max_workers=1, cache=OperatingPointCache()),
        )
        legacy_runner = SweepRunner(max_workers=1, cache=OperatingPointCache())
        legacy = legacy_runner.core_scaling_sweep(
            raytrace, GuardbandMode.UNDERVOLT, range(1, 4)
        )
        assert len(unified) == 3
        for mine, theirs in zip(unified, legacy):
            assert (
                mine.adaptive.point.chip_power
                == theirs.adaptive.point.chip_power
            )
            assert mine.n_active_cores == theirs.n_active_cores

    def test_sweep_with_workers_and_cache_dir(self, tmp_path):
        results = sweep(
            "raytrace", core_counts=[1, 2], cache_dir=str(tmp_path / "cache")
        )
        assert len(results) == 2
        assert (tmp_path / "cache").is_dir()

    def test_runner_conflicts_with_runner_knobs(self):
        runner = SweepRunner(max_workers=1, cache=OperatingPointCache())
        with pytest.raises(SchedulingError):
            sweep("raytrace", runner=runner, workers=2)
        with pytest.raises(SchedulingError):
            sweep("raytrace", runner=runner, cache_dir="/tmp/x")
