"""The calibration self-check and the markdown report generator."""

import dataclasses

import pytest

from repro.analysis.report import generate_report
from repro.analysis.selfcheck import AnchorCheck, run_selfcheck
from repro.config import PdnConfig, ServerConfig


class TestAnchorCheck:
    def test_pass_inside_band(self):
        check = AnchorCheck("x", "Fig. 0", expected=10.0, measured=11.0, tolerance=2.0)
        assert check.passed

    def test_fail_outside_band(self):
        check = AnchorCheck("x", "Fig. 0", expected=10.0, measured=13.0, tolerance=2.0)
        assert not check.passed

    def test_str_contains_verdict(self):
        check = AnchorCheck("x", "Fig. 0", expected=10.0, measured=13.0, tolerance=2.0)
        assert "FAIL" in str(check)


@pytest.mark.slow
class TestSelfCheck:
    def test_default_configuration_passes(self):
        report = run_selfcheck()
        assert report.passed, [str(c) for c in report.failures()]

    def test_progress_callback_invoked(self):
        messages = []
        run_selfcheck(progress=messages.append)
        assert len(messages) >= 5

    def test_detuned_platform_fails(self):
        """Tripling the loadline must blow several anchors — the check is
        actually sensitive to the calibration."""
        base = PdnConfig()
        config = ServerConfig(
            pdn=dataclasses.replace(base, r_loadline=base.r_loadline * 3)
        )
        report = run_selfcheck(config)
        assert not report.passed
        assert report.failures()


@pytest.mark.slow
class TestReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        return generate_report()

    def test_contains_every_section(self, report_text):
        for section in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 9",
                        "Fig. 12", "Fig. 14", "Fig. 16", "Fig. 17"):
            assert section in report_text

    def test_is_markdown_tables(self, report_text):
        assert report_text.count("|---|") >= 5

    def test_quotes_paper_values(self, report_text):
        assert "Paper:" in report_text
        assert "0.3%" in report_text

    def test_mentions_all_corunners(self, report_text):
        for level in ("light", "medium", "heavy"):
            assert level in report_text
