"""Batch sweep runner and the keyed operating-point cache."""

import dataclasses
import json
import os
from types import SimpleNamespace

import pytest

from repro.config import ServerConfig
from repro.core.consolidation import ConsolidationScheduler
from repro.core.evaluate import measure_scheduled
from repro.guardband import GuardbandMode
from repro.sim.batch import (
    SweepRunner,
    SweepTask,
    core_scaling_tasks,
    default_runner,
    derive_seed,
    set_default_runner,
)
from repro.sim.cache import (
    OperatingPointCache,
    decode_steady_state,
    encode_steady_state,
    fingerprint,
)
from repro.sim.run import build_server, measure_consolidated
from repro.workloads import get_profile


@pytest.fixture
def runner():
    """A fresh in-process runner with its own cache."""
    return SweepRunner()


class TestFingerprint:
    def test_stable_across_calls(self):
        cfg = ServerConfig()
        assert fingerprint(cfg) == fingerprint(ServerConfig())

    def test_configs_key_apart(self):
        base = ServerConfig()
        tweaked = dataclasses.replace(
            base, peripheral_power=base.peripheral_power + 1.0
        )
        assert fingerprint(base) != fingerprint(tweaked)

    def test_nested_config_changes_key(self):
        base = ServerConfig()
        tweaked = dataclasses.replace(
            base, pdn=dataclasses.replace(base.pdn, r_loadline=base.pdn.r_loadline * 1.1)
        )
        assert fingerprint(base) != fingerprint(tweaked)

    def test_task_hash_covers_mode(self, raytrace):
        uv = SweepTask.consolidated(raytrace, 4, GuardbandMode.UNDERVOLT)
        oc = SweepTask.consolidated(raytrace, 4, GuardbandMode.OVERCLOCK)
        assert uv.task_hash() != oc.task_hash()
        assert uv.coordinates() == oc.coordinates()

    def test_derived_seed_is_order_free(self, raytrace, lu_cb):
        a = SweepTask.consolidated(raytrace, 4, GuardbandMode.UNDERVOLT)
        b = SweepTask.consolidated(lu_cb, 4, GuardbandMode.UNDERVOLT)
        assert a.derived_seed() == a.derived_seed()
        assert a.derived_seed() != b.derived_seed()
        assert derive_seed(7, "x") != derive_seed(8, "x")


class TestSweepRunnerMatchesSerial:
    def test_consolidated_matches_measure_consolidated(self, runner, raytrace):
        results = runner.run_results(
            core_scaling_tasks(raytrace, GuardbandMode.UNDERVOLT, (1, 4, 8))
        )
        for n, got in zip((1, 4, 8), results):
            ref = measure_consolidated(
                build_server(), raytrace, n, GuardbandMode.UNDERVOLT
            )
            # The static half settles first on a fresh server in both
            # schedules, so it is bit-identical; the adaptive half starts
            # from a fresh server here (vs the serial path's shared one),
            # leaving sub-milliwatt thermal-path drift.
            assert got.static.point == ref.static.point
            assert got.static.execution_time == ref.static.execution_time
            assert got.adaptive.point.chip_power == pytest.approx(
                ref.adaptive.point.chip_power, rel=1e-4
            )
            assert got.n_active_cores == n

    def test_scheduled_matches_measure_scheduled(self, runner, raytrace):
        scheduler = ConsolidationScheduler(ServerConfig())
        placement = scheduler.schedule(raytrace, 4, 8)
        task = SweepTask.scheduled(placement, raytrace, GuardbandMode.UNDERVOLT)
        got = runner.run_results([task])[0]
        ref = measure_scheduled(
            build_server(), placement, raytrace, GuardbandMode.UNDERVOLT
        )
        assert got.static.point == ref.static.point
        assert got.adaptive.point.chip_power == pytest.approx(
            ref.adaptive.point.chip_power, rel=1e-4
        )
        assert got.adaptive.execution_time == pytest.approx(
            ref.adaptive.execution_time, rel=1e-4
        )

    def test_static_mode_task_pairs_with_itself(self, runner, raytrace):
        got = runner.run_results(
            [SweepTask.consolidated(raytrace, 2, GuardbandMode.STATIC)]
        )[0]
        assert got.static is got.adaptive


class TestDeterminism:
    def test_parallel_equals_serial(self, raytrace, lu_cb):
        tasks = [
            SweepTask.consolidated(raytrace, 1, GuardbandMode.UNDERVOLT),
            SweepTask.consolidated(raytrace, 8, GuardbandMode.OVERCLOCK),
            SweepTask.consolidated(lu_cb, 4, GuardbandMode.UNDERVOLT),
        ]
        serial = SweepRunner(max_workers=1).run_results(tasks)
        parallel = SweepRunner(max_workers=2).run_results(tasks)
        for a, b in zip(serial, parallel):
            assert a.static.point == b.static.point
            assert a.adaptive.point == b.adaptive.point
            assert a.static.execution_time == b.static.execution_time
            assert a.adaptive.execution_time == b.adaptive.execution_time

    def test_results_in_input_order(self, runner, raytrace):
        tasks = core_scaling_tasks(raytrace, GuardbandMode.UNDERVOLT, (8, 1, 4))
        results = runner.run_results(tasks)
        assert [r.n_active_cores for r in results] == [8, 1, 4]


class TestCacheBehavior:
    def test_warm_replay_is_identical_and_instant(self, runner, raytrace):
        tasks = core_scaling_tasks(raytrace, GuardbandMode.UNDERVOLT, (1, 2))
        cold = runner.run(tasks)
        warm = runner.run(tasks)
        assert cold.n_executed == 2 and cold.n_from_cache == 0
        assert warm.n_executed == 0 and warm.n_from_cache == 2
        for a, b in zip(cold.results, warm.results):
            assert a.static.point == b.static.point
            assert a.adaptive.point == b.adaptive.point

    def test_static_half_shared_across_modes(self, runner, raytrace):
        runner.run([SweepTask.consolidated(raytrace, 4, GuardbandMode.UNDERVOLT)])
        stores_before = runner.cache.stats.stores
        runner.run([SweepTask.consolidated(raytrace, 4, GuardbandMode.OVERCLOCK)])
        # Only the overclock point is new; the static half replays.
        assert runner.cache.stats.stores == stores_before + 1

    def test_no_cross_config_hits(self, runner, raytrace):
        task = SweepTask.consolidated(raytrace, 2, GuardbandMode.UNDERVOLT)
        base = runner.run_results([task], ServerConfig())[0]
        base_cfg = ServerConfig()
        tweaked_cfg = dataclasses.replace(
            base_cfg,
            guardband=dataclasses.replace(
                base_cfg.guardband,
                static_guardband=base_cfg.guardband.static_guardband + 0.01,
            ),
        )
        tweaked = runner.run_results([task], tweaked_cfg)[0]
        assert runner.cache.stats.hits == 0
        assert base.static.point != tweaked.static.point

    def test_lru_eviction(self, raytrace):
        cache = OperatingPointCache(max_entries=2)
        runner = SweepRunner(cache=cache)
        runner.run_results(core_scaling_tasks(raytrace, GuardbandMode.STATIC, (1, 2, 3)))
        assert len(cache) == 2
        assert cache.stats.evictions == 1


class TestDiskCache:
    def test_round_trip_across_processes(self, tmp_path, raytrace):
        disk = str(tmp_path / "points")
        task = SweepTask.consolidated(raytrace, 2, GuardbandMode.UNDERVOLT)
        first = SweepRunner(cache=OperatingPointCache(disk_dir=disk))
        a = first.run_results([task])[0]
        # A brand-new runner (fresh memory) must replay from disk only.
        second = SweepRunner(cache=OperatingPointCache(disk_dir=disk))
        b = second.run_results([task])[0]
        assert second.cache.stats.disk_hits == 2
        assert second.cache.stats.misses == 0
        assert a.static.point == b.static.point
        assert a.adaptive.point == b.adaptive.point
        assert a.adaptive.execution_time == b.adaptive.execution_time

    def test_corrupt_file_counts_as_miss(self, tmp_path, raytrace):
        disk = str(tmp_path / "points")
        task = SweepTask.consolidated(raytrace, 1, GuardbandMode.STATIC)
        SweepRunner(cache=OperatingPointCache(disk_dir=disk)).run([task])
        for name in os.listdir(disk):
            with open(os.path.join(disk, name), "w") as fh:
                fh.write("{not json")
        again = SweepRunner(cache=OperatingPointCache(disk_dir=disk))
        result = again.run_results([task])[0]
        assert again.cache.stats.disk_errors >= 1
        assert result.static.point.chip_power > 0

    def test_codec_round_trips_states(self, runner, raytrace):
        state = runner.run_results(
            [SweepTask.consolidated(raytrace, 3, GuardbandMode.UNDERVOLT)]
        )[0].adaptive
        payload = json.loads(json.dumps(encode_steady_state(state)))
        assert decode_steady_state(payload) == state


class TestReports:
    def test_report_counts_and_summary(self, runner, raytrace):
        report = runner.run(
            core_scaling_tasks(raytrace, GuardbandMode.UNDERVOLT, (1, 2))
        )
        assert report.n_tasks == 2
        assert report.n_executed == 2
        assert not report.used_processes
        assert "2 task(s)" in report.summary()
        assert "hits" in report.summary()
        assert "raytrace:n1:undervolt" in report.summary()
        assert "1 batch(es)" in runner.timings_summary()

    def test_default_runner_swap(self):
        sentinel = SweepRunner()
        previous = set_default_runner(sentinel)
        try:
            assert default_runner() is sentinel
        finally:
            set_default_runner(previous)
