"""The sweep runner's failure manifest, strict mode and bounded retries."""

import pytest

from repro.errors import SweepError
from repro.guardband import GuardbandMode
from repro.sim.batch import SweepRunner, SweepTask, TaskFailure
from repro.sim.cache import OperatingPointCache
from repro.workloads import get_profile


def good_task():
    return SweepTask.consolidated(
        get_profile("raytrace"), 1, GuardbandMode.UNDERVOLT
    )


def poisoned_task():
    # More threads than the server has hardware slots: the worker's
    # ``place`` raises SchedulingError — a per-task failure, not a crash.
    return SweepTask.consolidated(
        get_profile("raytrace"), 999, GuardbandMode.UNDERVOLT
    )


class TestFailureManifest:
    def test_non_strict_returns_placeholders_and_manifest(self):
        runner = SweepRunner(strict=False)
        report = runner.run([good_task(), poisoned_task()])
        assert report.n_tasks == 2
        assert report.n_failed == 1
        assert report.results[0] is not None
        assert report.results[1] is None
        failure = report.failures[0]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.error_type == "SchedulingError"
        assert failure.attempts == 1
        assert report.timings[1].failed

    def test_strict_raises_with_manifest_after_caching_successes(self):
        cache = OperatingPointCache()
        runner = SweepRunner(cache=cache)
        with pytest.raises(SweepError) as exc:
            runner.run([good_task(), poisoned_task()])
        assert len(exc.value.failures) == 1
        assert exc.value.failures[0].error_type == "SchedulingError"
        assert "SchedulingError" in str(exc.value)
        # The sibling that succeeded was cached before the raise.
        replay = SweepRunner(cache=cache).run([good_task()])
        assert replay.n_from_cache == 1

    def test_all_good_batch_has_empty_manifest(self):
        report = SweepRunner().run([good_task()])
        assert report.n_failed == 0
        assert report.failures == ()

    def test_bounded_retries_count_attempts(self):
        runner = SweepRunner(strict=False, max_retries=2)
        report = runner.run([poisoned_task()])
        # A deterministic failure burns every attempt: 1 + max_retries.
        assert report.failures[0].attempts == 3

    def test_summary_names_failures(self):
        runner = SweepRunner(strict=False)
        report = runner.run([good_task(), poisoned_task()])
        summary = report.summary()
        assert "1 failed" in summary
        assert "FAILED" in summary
        assert "SchedulingError" in summary

    def test_failure_describe_mentions_attempts(self):
        failure = TaskFailure(
            index=0, label="x", error_type="E", error="m", attempts=3
        )
        assert "after 3 attempts" in failure.describe()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(task_timeout=0)
        with pytest.raises(ValueError):
            SweepRunner(max_retries=-1)
