"""`_settle_capped` bisection vs the reference linear DVFS walk.

The capped settle used to walk the DVFS table linearly from the top; it
now bisects (O(log n) settles per capped epoch).  Equivalence is not
obvious — the linear walk had a dynamic skip rule (candidates at or
above the current settle's slowest clock were passed over unprobed) and
a best-effort floor when nothing fits — so this suite sweeps caps across
the *entire* table for both adaptive guardband modes and demands the
exact same selected operating point, epoch for epoch.
"""

import pytest

from repro.fleet import FleetConfig, TrafficConfig
from repro.fleet.engine import FleetSimulation, clear_fleet_memos
from repro.fleet.settle_cache import configure_fleet_settle_cache
from repro.guardband import GuardbandMode
from repro.core.placement import Placement, ThreadGroup
from repro.workloads import get_profile


@pytest.fixture(autouse=True)
def _fresh_cache():
    configure_fleet_settle_cache()
    clear_fleet_memos()
    yield
    configure_fleet_settle_cache()
    clear_fleet_memos()


@pytest.fixture(scope="module")
def sim() -> FleetSimulation:
    config = FleetConfig(
        n_servers=1,
        traffic=TrafficConfig(duration_seconds=3600.0, jobs_per_hour=10.0),
        seed=7,
    )
    return FleetSimulation(config)


@pytest.fixture(scope="module")
def placement() -> Placement:
    """A busy two-socket placement (the shape the scheduler emits)."""
    return Placement(
        groups=(
            (ThreadGroup(get_profile("lu_cb"), 6),),
            (ThreadGroup(get_profile("raytrace"), 4),),
        ),
        keep_on=(6, 4),
        threads_per_core=1,
    )


def _sweep_caps(sim, placement, mode):
    """Cap values probing every decision boundary of the DVFS table."""
    uncapped = sim._settle(placement, mode)
    powers = [uncapped.adaptive.point.server_power]
    for frequency in sim._cap_walk_frequencies():
        settled = sim._settle(placement, mode, frequency)
        powers.append(settled.adaptive.point.server_power)
    caps = []
    for power in powers:
        caps.extend([power - 1e-6, power, power + 1e-6])
    caps.append(min(powers) * 0.5)   # nothing fits: best-effort floor
    caps.append(max(powers) * 2.0)   # everything fits: uncapped path
    return caps


@pytest.mark.parametrize(
    "mode", [GuardbandMode.UNDERVOLT, GuardbandMode.OVERCLOCK]
)
class TestBisectionMatchesLinearWalk:
    def test_full_table_sweep(self, sim, placement, mode):
        for cap_w in _sweep_caps(sim, placement, mode):
            fast, fast_throttled = sim._settle_capped(placement, mode, cap_w)
            ref, ref_throttled = sim._settle_capped_linear(
                placement, mode, cap_w
            )
            assert fast_throttled == ref_throttled, f"cap={cap_w}"
            # Settles are cached by coordinate, so "the same selected
            # point" means the very same result object.
            assert fast is ref, (
                f"cap={cap_w}: bisection selected "
                f"{fast.adaptive.point.min_frequency / 1e6:.0f} MHz "
                f"({fast.adaptive.point.server_power:.2f} W), linear "
                f"{ref.adaptive.point.min_frequency / 1e6:.0f} MHz "
                f"({ref.adaptive.point.server_power:.2f} W)"
            )

    def test_uncapped_is_untouched(self, sim, placement, mode):
        result, throttled = sim._settle_capped(placement, mode, None)
        assert not throttled
        assert result is sim._settle(placement, mode)

    def test_floor_when_nothing_fits(self, sim, placement, mode):
        floor_freq = sim._cap_walk_frequencies()[-1]
        floor = sim._settle(placement, mode, floor_freq)
        impossible = floor.adaptive.point.server_power * 0.5
        result, throttled = sim._settle_capped(placement, mode, impossible)
        assert throttled
        assert result.adaptive.point.server_power > impossible
        assert result is floor

    def test_bisection_settles_fewer_points(self, sim, placement, mode):
        """O(log n): a mid-table cap must not settle the whole menu."""
        table = sim._cap_walk_frequencies()
        mid = sim._settle(placement, mode, table[len(table) // 2])
        cap_w = mid.adaptive.point.server_power
        configure_fleet_settle_cache()
        clear_fleet_memos()
        before = sim.settle_seconds
        counted = []
        original = sim._settle

        def counting(placement_, mode_, f_target=None):
            counted.append(f_target)
            return original(placement_, mode_, f_target)

        sim._settle = counting
        try:
            sim._settle_capped(placement, mode, cap_w)
        finally:
            sim._settle = original
            sim.settle_seconds = before
        # 1 uncapped + ceil(log2(n)) probes + 1 cached re-settle.
        n = len(table)
        assert len(counted) <= 2 + n.bit_length()
