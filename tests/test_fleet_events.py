"""Fleet event primitives: the deterministic priority queue."""

import pytest

from repro.errors import SchedulingError
from repro.fleet.events import (
    ArrivalEvent,
    COMPACT_MIN_SIZE,
    CompletionEvent,
    EventQueue,
    NS_PER_SECOND,
    RebalanceEvent,
    ns_to_seconds,
    seconds_to_ns,
)


class TestClockConversions:
    def test_round_trip(self):
        assert ns_to_seconds(seconds_to_ns(123.456)) == pytest.approx(123.456)

    def test_integer_seconds_are_exact(self):
        assert seconds_to_ns(86_400.0) == 86_400 * NS_PER_SECOND

    def test_rejects_negative_duration(self):
        with pytest.raises(SchedulingError):
            seconds_to_ns(-1.0)


class TestEventValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(SchedulingError):
            ArrivalEvent(time_ns=-1, job_id=0)

    def test_priorities_rank_kinds(self):
        completion = CompletionEvent(time_ns=0, job_id=0, generation=0)
        arrival = ArrivalEvent(time_ns=0, job_id=0)
        rebalance = RebalanceEvent(time_ns=0, server_id=0, generation=0)
        assert completion.priority < arrival.priority < rebalance.priority


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(ArrivalEvent(time_ns=300, job_id=2))
        queue.push(ArrivalEvent(time_ns=100, job_id=0))
        queue.push(ArrivalEvent(time_ns=200, job_id=1))
        assert [queue.pop().job_id for _ in range(3)] == [0, 1, 2]

    def test_simultaneous_events_rank_by_priority(self):
        """A completion frees capacity before the simultaneous arrival."""
        queue = EventQueue()
        queue.push(ArrivalEvent(time_ns=50, job_id=9))
        queue.push(RebalanceEvent(time_ns=50, server_id=1, generation=0))
        queue.push(CompletionEvent(time_ns=50, job_id=3, generation=0))
        kinds = [type(queue.pop()).__name__ for _ in range(3)]
        assert kinds == ["CompletionEvent", "ArrivalEvent", "RebalanceEvent"]

    def test_equal_priority_is_fifo(self):
        queue = EventQueue()
        for job_id in (5, 3, 8):
            queue.push(ArrivalEvent(time_ns=10, job_id=job_id))
        assert [queue.pop().job_id for _ in range(3)] == [5, 3, 8]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(ArrivalEvent(time_ns=42, job_id=0))
        assert queue.peek_time() == 42
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()


class TestBulkLoad:
    """bulk_load: one heapify, same observable order as N pushes."""

    @staticmethod
    def _mixed_events(n=200):
        """Events with colliding timestamps and priorities (worst case)."""
        events = []
        for i in range(n):
            time_ns = (i * 7919) % 50  # many ties
            kind = i % 3
            if kind == 0:
                events.append(
                    CompletionEvent(time_ns=time_ns, job_id=i, generation=0)
                )
            elif kind == 1:
                events.append(ArrivalEvent(time_ns=time_ns, job_id=i))
            else:
                events.append(
                    RebalanceEvent(time_ns=time_ns, server_id=i, generation=0)
                )
        return events

    @staticmethod
    def _drain(queue):
        popped = []
        while len(queue):
            popped.append(queue.pop())
        return popped

    def test_same_pop_order_as_sequential_pushes(self):
        events = self._mixed_events()
        pushed, bulk = EventQueue(), EventQueue()
        for event in events:
            pushed.push(event)
        assert bulk.bulk_load(events) == len(events)
        assert self._drain(bulk) == self._drain(pushed)

    def test_sequence_continues_across_push_and_bulk(self):
        """Ties between pre-pushed and bulk-loaded events stay FIFO."""
        pushed, mixed = EventQueue(), EventQueue()
        early = [ArrivalEvent(time_ns=10, job_id=i) for i in range(5)]
        late = [ArrivalEvent(time_ns=10, job_id=i) for i in range(5, 10)]
        for event in early + late:
            pushed.push(event)
        for event in early:
            mixed.push(event)
        mixed.bulk_load(late)
        assert self._drain(mixed) == self._drain(pushed)

    def test_empty_bulk_load(self):
        queue = EventQueue()
        assert queue.bulk_load([]) == 0
        assert len(queue) == 0
        queue.push(ArrivalEvent(time_ns=1, job_id=0))
        assert queue.bulk_load(iter(())) == 0
        assert queue.pop().job_id == 0

    def test_accepts_a_generator(self):
        queue = EventQueue()
        count = queue.bulk_load(
            ArrivalEvent(time_ns=t, job_id=t) for t in range(10)
        )
        assert count == 10
        assert [queue.pop().job_id for _ in range(10)] == list(range(10))


class TestCompaction:
    """Stale-entry compaction: bounded heaps, unchanged pop order."""

    @staticmethod
    def _churned_queue(n_live=100, n_stale=300):
        """A queue interleaving live and stale completion events.

        Stale events carry generation 0, live ones generation 1 — the
        predicate used below mirrors the engine's generation check.
        """
        queue = EventQueue()
        for i in range(max(n_live, n_stale)):
            if i < n_stale:
                queue.push(
                    CompletionEvent(time_ns=2 * i, job_id=i, generation=0)
                )
                queue.note_stale()
            if i < n_live:
                queue.push(
                    CompletionEvent(time_ns=2 * i + 1, job_id=i, generation=1)
                )
        return queue

    @staticmethod
    def _is_stale(event):
        return isinstance(event, CompletionEvent) and event.generation == 0

    def test_compact_drops_only_stale_entries(self):
        queue = self._churned_queue()
        removed = queue.compact(self._is_stale)
        assert removed == 300
        assert len(queue) == 100
        assert queue.compactions == 1
        assert queue.compacted_entries == 300
        assert queue.stale_hints == 0

    def test_pop_order_of_survivors_is_unchanged(self):
        compacted = self._churned_queue()
        lazy = self._churned_queue()
        compacted.compact(self._is_stale)
        popped_compacted = []
        while len(compacted):
            popped_compacted.append(compacted.pop())
        popped_lazy = []
        while len(lazy):
            event = lazy.pop()
            if not self._is_stale(event):
                popped_lazy.append(event)
        assert popped_compacted == popped_lazy

    def test_maybe_compact_honours_the_50_percent_threshold(self):
        queue = self._churned_queue(n_live=300, n_stale=100)
        assert queue.maybe_compact(self._is_stale) == 0  # 25% stale
        queue = self._churned_queue(n_live=100, n_stale=300)
        assert queue.maybe_compact(self._is_stale) == 300

    def test_maybe_compact_skips_small_heaps(self):
        queue = self._churned_queue(n_live=4, n_stale=12)
        assert len(queue) < COMPACT_MIN_SIZE
        assert queue.maybe_compact(self._is_stale) == 0
        assert len(queue) == 16

    def test_hint_ledger_survives_overcounting(self):
        # Hints may overcount (the engine can't always tell whether a
        # generation bump orphaned a live entry); compaction must reset
        # to ground truth rather than oscillate.
        queue = self._churned_queue(n_live=100, n_stale=0)
        for _ in range(500):
            queue.note_stale()  # all lies
        assert queue.maybe_compact(self._is_stale) == 0
        assert queue.stale_hints == 0  # ledger reset to truth
        assert len(queue) == 100

    def test_negative_hints_clamp_at_zero(self):
        queue = EventQueue()
        queue.note_stale(-5)
        assert queue.stale_hints == 0
