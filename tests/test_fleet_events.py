"""Fleet event primitives: the deterministic priority queue."""

import pytest

from repro.errors import SchedulingError
from repro.fleet.events import (
    ArrivalEvent,
    CompletionEvent,
    EventQueue,
    NS_PER_SECOND,
    RebalanceEvent,
    ns_to_seconds,
    seconds_to_ns,
)


class TestClockConversions:
    def test_round_trip(self):
        assert ns_to_seconds(seconds_to_ns(123.456)) == pytest.approx(123.456)

    def test_integer_seconds_are_exact(self):
        assert seconds_to_ns(86_400.0) == 86_400 * NS_PER_SECOND

    def test_rejects_negative_duration(self):
        with pytest.raises(SchedulingError):
            seconds_to_ns(-1.0)


class TestEventValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(SchedulingError):
            ArrivalEvent(time_ns=-1, job_id=0)

    def test_priorities_rank_kinds(self):
        completion = CompletionEvent(time_ns=0, job_id=0, generation=0)
        arrival = ArrivalEvent(time_ns=0, job_id=0)
        rebalance = RebalanceEvent(time_ns=0, server_id=0, generation=0)
        assert completion.priority < arrival.priority < rebalance.priority


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(ArrivalEvent(time_ns=300, job_id=2))
        queue.push(ArrivalEvent(time_ns=100, job_id=0))
        queue.push(ArrivalEvent(time_ns=200, job_id=1))
        assert [queue.pop().job_id for _ in range(3)] == [0, 1, 2]

    def test_simultaneous_events_rank_by_priority(self):
        """A completion frees capacity before the simultaneous arrival."""
        queue = EventQueue()
        queue.push(ArrivalEvent(time_ns=50, job_id=9))
        queue.push(RebalanceEvent(time_ns=50, server_id=1, generation=0))
        queue.push(CompletionEvent(time_ns=50, job_id=3, generation=0))
        kinds = [type(queue.pop()).__name__ for _ in range(3)]
        assert kinds == ["CompletionEvent", "ArrivalEvent", "RebalanceEvent"]

    def test_equal_priority_is_fifo(self):
        queue = EventQueue()
        for job_id in (5, 3, 8):
            queue.push(ArrivalEvent(time_ns=10, job_id=job_id))
        assert [queue.pop().job_id for _ in range(3)] == [5, 3, 8]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(ArrivalEvent(time_ns=42, job_id=0))
        assert queue.peek_time() == 42
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()
