"""Operating-point cache fault paths: disk corruption and LRU accounting.

The disk layer's contract is *absorb, never raise*: a truncated, corrupt,
or unreadable cache file must count as a miss (and a ``disk_errors``
tick), so a damaged cache directory can never take down a sweep.
"""

import json

import pytest

from repro.api import measure
from repro.obs import Observability, install
from repro.sim.cache import OperatingPointCache


@pytest.fixture(scope="module")
def steady_state():
    """One real settled measurement to feed through the cache."""
    return measure("raytrace", n_threads=1).adaptive


@pytest.fixture
def disk_cache(tmp_path):
    disk_dir = tmp_path / "cache"
    disk_dir.mkdir()
    return OperatingPointCache(disk_dir=str(disk_dir))


def _disk_file(cache, key):
    return cache.disk_dir + f"/{key}.json"


class TestDiskFaults:
    def test_round_trip_baseline(self, disk_cache, steady_state):
        disk_cache.put("k", steady_state)
        fresh = OperatingPointCache(disk_dir=disk_cache.disk_dir)
        hit = fresh.get("k")
        assert hit == steady_state
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.disk_errors == 0

    def test_truncated_file_is_a_miss(self, disk_cache, steady_state):
        disk_cache.put("k", steady_state)
        path = _disk_file(disk_cache, "k")
        content = open(path).read()
        with open(path, "w") as fh:
            fh.write(content[: len(content) // 2])
        fresh = OperatingPointCache(disk_dir=disk_cache.disk_dir)
        assert fresh.get("k") is None
        assert fresh.stats.disk_errors == 1
        assert fresh.stats.misses == 1

    def test_non_json_garbage_is_a_miss(self, disk_cache):
        with open(_disk_file(disk_cache, "k"), "w") as fh:
            fh.write("not json at all {{{")
        assert disk_cache.get("k") is None
        assert disk_cache.stats.disk_errors == 1

    def test_valid_json_missing_state_key_is_a_miss(self, disk_cache):
        with open(_disk_file(disk_cache, "k"), "w") as fh:
            json.dump({"key": "k"}, fh)
        assert disk_cache.get("k") is None
        assert disk_cache.stats.disk_errors == 1

    def test_state_of_wrong_type_is_a_miss(self, disk_cache):
        # decodes cleanly, but to a GuardbandMode rather than a SteadyState
        with open(_disk_file(disk_cache, "k"), "w") as fh:
            json.dump({"key": "k", "state": {"__mode__": "undervolt"}}, fh)
        assert disk_cache.get("k") is None
        assert disk_cache.stats.disk_errors == 1

    def test_unknown_dataclass_in_state_is_a_miss(self, disk_cache):
        with open(_disk_file(disk_cache, "k"), "w") as fh:
            json.dump(
                {"key": "k", "state": {"__dc__": "Bogus", "fields": {}}}, fh
            )
        assert disk_cache.get("k") is None
        assert disk_cache.stats.disk_errors == 1

    def test_write_failure_is_absorbed(self, tmp_path, steady_state):
        # disk_dir collides with an existing *file*: every disk write fails
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        cache = OperatingPointCache(disk_dir=str(blocker))
        cache.put("k", steady_state)  # must not raise
        assert cache.stats.disk_errors == 1
        assert cache.stats.stores == 1
        assert cache.get("k") == steady_state  # memory layer still serves

    def test_mid_write_failure_leaves_no_tmp_orphan(
        self, disk_cache, steady_state, monkeypatch
    ):
        # json.dump dying mid-stream (encoder bug, ENOSPC) used to strand
        # the half-written ``.tmp`` file forever.  It must be unlinked,
        # absorbed, and counted under the write disk-error metric.
        import repro.sim.cache as cache_mod

        def exploding_dump(payload, fh, *args, **kwargs):
            fh.write('{"partial":')
            raise ValueError("simulated mid-write failure")

        monkeypatch.setattr(cache_mod.json, "dump", exploding_dump)
        disk_cache.put("k", steady_state)  # must not raise
        assert disk_cache.stats.disk_errors == 1
        leftovers = [
            name
            for name in __import__("os").listdir(disk_cache.disk_dir)
            if name.endswith(".tmp")
        ]
        assert leftovers == []
        assert disk_cache.get("k") == steady_state  # memory layer intact

    def test_unencodable_state_is_absorbed(self, disk_cache, steady_state):
        # A state the JSON codec rejects (TypeError) must behave like any
        # other disk fault: memory layer serves, no exception, no orphan.
        import dataclasses as _dc
        import os

        @_dc.dataclass
        class Alien:
            x: int = 1

        bad = _dc.replace(steady_state, point=Alien())  # type: ignore[arg-type]
        disk_cache.put("k", bad)
        assert disk_cache.stats.disk_errors == 1
        assert not any(
            name.endswith(".tmp") for name in os.listdir(disk_cache.disk_dir)
        )
        assert disk_cache.get("k") is bad

    def test_faults_emit_disk_error_metrics(self, disk_cache):
        obs = Observability(enabled=True)
        previous = install(obs)
        try:
            with open(_disk_file(disk_cache, "k"), "w") as fh:
                fh.write("garbage")
            assert disk_cache.get("k") is None
        finally:
            install(previous)
        family = obs.metrics.get("opcache_disk_errors_total")
        assert family.labels(op="read").value == 1.0
        lookups = obs.metrics.get("opcache_lookups_total")
        assert lookups.labels(result="miss").value == 1.0


class TestLruAccounting:
    def test_eviction_count_matches_entry_cap(self, steady_state):
        cache = OperatingPointCache(max_entries=2)
        for key in ("a", "b", "c", "d"):
            cache.put(key, steady_state)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.stats.stores == 4

    def test_least_recently_used_goes_first(self, steady_state):
        cache = OperatingPointCache(max_entries=2)
        cache.put("a", steady_state)
        cache.put("b", steady_state)
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", steady_state)      # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_rejects_nonpositive_entry_cap(self):
        with pytest.raises(ValueError):
            OperatingPointCache(max_entries=0)

    def test_clear_keeps_disk_layer(self, disk_cache, steady_state):
        disk_cache.put("k", steady_state)
        disk_cache.clear()
        assert len(disk_cache) == 0
        assert disk_cache.get("k") is not None  # served from disk
        assert disk_cache.stats.disk_hits == 1
