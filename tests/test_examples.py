"""Smoke tests: every shipped example runs end to end.

Each example is a deliverable; these tests keep them from rotting as the
library evolves.  They run the scripts in-process via ``runpy`` (same
interpreter, no subprocess overhead) and check for the banner lines that
prove the interesting part executed.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: script name -> substring its stdout must contain.
EXPECTED_BANNERS = {
    "quickstart.py": "paper's central",
    "loadline_borrowing_datacenter.py": "queue-average chip power",
    "websearch_qos.py": "Adaptive mapping, starting blindly",
    "voltage_drop_anatomy.py": "Passive drop (loadline + IR)",
    "firmware_transient.py": "converged from",
    "cluster_scheduling.py": "two-level AGS saves",
    "diurnal_energy_proportionality.py": "day's chip energy",
    "colocation_advisor.py": "malicious co-runners",
    "power_capping.py": "Harvested guardband",
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED_BANNERS), (
        "keep EXPECTED_BANNERS in sync with examples/"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_BANNERS))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_BANNERS[script] in out
    assert len(out.splitlines()) >= 5
