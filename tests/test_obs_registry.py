"""The metrics registry: instruments, families, exposition, round-trip."""

import math

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    load_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(MetricError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_gauge_may_go_negative(self):
        g = Gauge()
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_bucket_assignment_is_upper_bound_inclusive(self):
        h = Histogram(buckets=(1.0, 5.0))
        h.observe(1.0)   # lands in le=1
        h.observe(1.1)   # lands in le=5
        h.observe(99.0)  # lands in +Inf
        assert h.bucket_counts == [1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3]
        assert h.count == 3
        assert h.sum == pytest.approx(101.1)

    def test_mean(self):
        h = Histogram(buckets=(10.0,))
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(MetricError):
            Histogram(buckets=(5.0, 1.0))

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(MetricError):
            Histogram(buckets=(1.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(MetricError):
            Histogram(buckets=())


class TestFamilies:
    def test_labelless_family_acts_as_child(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "help")
        family.inc(2)
        assert family.value == 2.0

    def test_labelled_family_keys_children(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labels=("job_class",))
        family.labels(job_class="batch").inc()
        family.labels(job_class="batch").inc()
        family.labels(job_class="lc").inc()
        assert family.labels(job_class="batch").value == 2.0
        assert family.labels(job_class="lc").value == 1.0

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labels=("job_class",))
        with pytest.raises(MetricError):
            family.labels(wrong="x")

    def test_labelled_family_rejects_solo_use(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", labels=("job_class",))
        with pytest.raises(MetricError):
            family.inc()

    def test_refetch_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", labels=("b",))

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_histogram_defaults_to_time_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("h")
        assert family.buckets == DEFAULT_TIME_BUCKETS


class TestRenderText:
    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""

    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs seen.", labels=("kind",)).labels(
            kind="batch"
        ).inc(3)
        registry.gauge("servers_on", "Powered servers.").set(2)
        text = registry.render_text()
        assert "# HELP jobs_total Jobs seen." in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="batch"} 3' in text
        assert "# TYPE servers_on gauge" in text
        assert "servers_on 2" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
        registry.histogram("lat").observe(30.0)
        text = registry.render_text()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 30.5" in text
        assert "lat_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("p",)).labels(p='a"b\\c\nd').inc()
        text = registry.render_text()
        assert 'x_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_integral_floats_render_as_integers(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4.0)
        registry.gauge("h").set(4.5)
        text = registry.render_text()
        assert "g 4\n" in text
        assert "h 4.5" in text

    def test_infinity_renders_prometheus_style(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.inf)
        assert "g +Inf" in registry.render_text()


class TestRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs.", labels=("kind",)).labels(
            kind="batch"
        ).inc(7)
        registry.gauge("servers_on", "Servers.").set(3)
        registry.histogram("lat", "Latency.", buckets=(1.0, 5.0)).observe(2.0)
        return registry

    def test_dict_round_trip_preserves_exposition(self):
        registry = self._populated()
        rebuilt = load_metrics(registry.to_dict())
        assert rebuilt.render_text() == registry.render_text()

    def test_json_file_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        rebuilt = load_metrics(str(path))
        assert rebuilt.render_text() == registry.render_text()

    def test_load_rejects_non_snapshot(self):
        with pytest.raises(MetricError):
            load_metrics({"nope": 1})

    def test_registry_introspection(self):
        registry = self._populated()
        assert len(registry) == 3
        assert "jobs_total" in registry
        assert registry.get("missing") is None
        assert [f.name for f in registry.families()] == [
            "jobs_total", "lat", "servers_on",
        ]
