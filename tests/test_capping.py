"""Power capping composed with adaptive guardbanding."""

import pytest

from repro.api import measure
from repro.errors import SchedulingError
from repro.guardband.capping import PowerCapPolicy
from repro.workloads import get_profile


@pytest.fixture
def policy(server_config):
    return PowerCapPolicy(server_config)


@pytest.fixture
def busy_socket(server):
    server.place(0, get_profile("lu_cb"), 8)
    return server.sockets[0]


class TestEnforce:
    def test_generous_cap_keeps_top_frequency(self, policy, busy_socket, server_config):
        result = policy.enforce(busy_socket, cap=200.0)
        assert result.frequency == pytest.approx(server_config.chip.f_nominal)
        assert result.power <= 200.0

    def test_tight_cap_lowers_frequency(self, policy, busy_socket, server_config):
        result = policy.enforce(busy_socket, cap=100.0)
        assert result.frequency < server_config.chip.f_nominal
        assert result.power <= 100.0

    def test_result_is_fastest_fitting_point(self, policy, busy_socket):
        result = policy.enforce(busy_socket, cap=100.0)
        # The next faster table point must exceed the cap.
        faster = [
            p for p in policy.table.points if p.frequency > result.frequency
        ]
        if faster:
            above = policy.enforce(busy_socket, cap=1e9)
            # The generous-cap point is the top; sanity: its power > 100.
            assert above.power > 100.0

    def test_headroom_nonnegative(self, policy, busy_socket):
        result = policy.enforce(busy_socket, cap=110.0)
        assert result.headroom >= 0

    def test_impossible_cap_raises(self, policy, busy_socket):
        with pytest.raises(SchedulingError):
            policy.enforce(busy_socket, cap=20.0)

    def test_rejects_nonpositive_cap(self, policy, busy_socket):
        with pytest.raises(SchedulingError):
            policy.enforce(busy_socket, cap=0.0)


class TestEdgeCases:
    def test_cap_below_lowest_table_point_raises(self, policy, busy_socket):
        """The floor: even pmin's settled draw exceeds the cap.

        Walk the feasible caps down point by point; one cent below the
        lowest feasible point's power must be infeasible.
        """
        low = policy.enforce(busy_socket, cap=1e9, adaptive=False)
        while True:
            try:
                low = policy.enforce(
                    busy_socket, cap=low.power - 0.01, adaptive=False
                )
            except SchedulingError:
                break
        with pytest.raises(SchedulingError):
            policy.enforce(busy_socket, cap=low.power - 0.01, adaptive=False)

    def test_cap_exactly_at_table_point_power_is_feasible(
        self, policy, busy_socket
    ):
        """A cap equal to a settled point's power selects that point —
        the walk's comparison must be <=, not <."""
        tight = policy.enforce(busy_socket, cap=110.0)
        exact = policy.enforce(busy_socket, cap=tight.power)
        assert exact.frequency == pytest.approx(tight.frequency)
        assert exact.power == pytest.approx(tight.power)

    def test_cap_epsilon_below_boundary_steps_down(
        self, policy, busy_socket
    ):
        """One epsilon under a point's power forces the next point down
        (or infeasibility if it was the floor)."""
        tight = policy.enforce(busy_socket, cap=110.0)
        try:
            below = policy.enforce(busy_socket, cap=tight.power - 1e-6)
        except SchedulingError:
            return  # tight was already the lowest point: also correct
        assert below.frequency < tight.frequency


class TestMeasureFacadeCap:
    def test_power_cap_below_floor_raises_with_floor_in_message(self):
        profile = get_profile("raytrace")
        with pytest.raises(SchedulingError, match="below the floor"):
            measure(profile, mode="undervolt", n_threads=8, power_cap=1.0)

    def test_power_cap_throttles_frequency(self):
        profile = get_profile("raytrace")
        free = measure(profile, mode="undervolt", n_threads=8)
        free_power = free.adaptive.point.server_power
        capped = measure(
            profile, mode="undervolt", n_threads=8,
            power_cap=free_power - 20.0,
        )
        assert capped.adaptive.point.server_power <= free_power - 20.0
        assert (
            capped.adaptive.point.min_frequency
            < free.adaptive.point.min_frequency
        )


class TestAdaptiveAdvantage:
    def test_adaptive_capping_holds_higher_frequency(self, policy, busy_socket):
        """The composition argument: harvesting the guardband first lets
        the same cap support a faster clock."""
        cap = 105.0
        adaptive = policy.enforce(busy_socket, cap, adaptive=True)
        static = policy.enforce(busy_socket, cap, adaptive=False)
        assert adaptive.frequency >= static.frequency
        assert adaptive.frequency > static.frequency or (
            adaptive.power < static.power
        )

    def test_both_respect_the_cap(self, policy, busy_socket):
        for adaptive in (True, False):
            result = policy.enforce(busy_socket, 100.0, adaptive=adaptive)
            assert result.power <= 100.0

    def test_frequency_under_cap_helper(self, policy, busy_socket):
        assert policy.frequency_under_cap(busy_socket, 110.0) == pytest.approx(
            policy.enforce(busy_socket, 110.0).frequency
        )
