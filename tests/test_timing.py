"""Timing model: the Vmin(f) wall, margins, and the servo inverse."""

import pytest

from repro.chip.timing import TimingModel


@pytest.fixture
def timing(chip_config):
    return TimingModel(chip_config)


class TestVmin:
    def test_vmin_linear_in_frequency(self, timing, chip_config):
        delta = timing.vmin(4.0e9) - timing.vmin(3.0e9)
        assert delta == pytest.approx(chip_config.vmin_slope * 1e9)

    def test_rejects_nonpositive_frequency(self, timing):
        with pytest.raises(ValueError):
            timing.vmin(0.0)


class TestMargin:
    def test_positive_above_wall(self, timing):
        assert timing.margin(1.2, 4.2e9) > 0

    def test_negative_below_wall(self, timing):
        assert timing.margin(1.0, 4.2e9) < 0

    def test_zero_exactly_on_wall(self, timing):
        v = timing.vmin(4.2e9)
        assert timing.margin(v, 4.2e9) == pytest.approx(0.0)

    def test_meets_timing_consistent_with_margin(self, timing):
        assert timing.meets_timing(1.2, 4.2e9)
        assert not timing.meets_timing(1.0, 4.2e9)


class TestFrequencyForMargin:
    def test_inverts_margin(self, timing):
        frequency = timing.frequency_for_margin(1.2, 0.042)
        assert timing.margin(1.2, frequency) == pytest.approx(0.042)

    def test_more_margin_means_lower_frequency(self, timing):
        f_small = timing.frequency_for_margin(1.2, 0.020)
        f_large = timing.frequency_for_margin(1.2, 0.080)
        assert f_large < f_small

    def test_higher_voltage_means_higher_frequency(self, timing):
        assert timing.frequency_for_margin(1.25, 0.042) > timing.frequency_for_margin(
            1.15, 0.042
        )


class TestQuantization:
    def test_quantize_rounds_down(self, timing, chip_config):
        raw = 4.2e9 + chip_config.f_step * 0.9
        quantized = timing.quantize_frequency(raw)
        assert quantized <= raw
        assert quantized == pytest.approx(4.2e9)

    def test_quantized_on_grid(self, timing, chip_config):
        quantized = timing.quantize_frequency(4.333e9)
        steps = quantized / chip_config.f_step
        assert steps == pytest.approx(round(steps))

    def test_clamp_to_floor(self, timing, chip_config):
        assert timing.clamp_frequency(1e9) == chip_config.f_min

    def test_clamp_to_ceiling(self, timing, chip_config):
        assert timing.clamp_frequency(9e9) == chip_config.f_ceiling

    def test_clamp_passthrough_inside_range(self, timing):
        assert timing.clamp_frequency(4.0e9) == pytest.approx(4.0e9)
