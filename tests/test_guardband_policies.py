"""Guardband policies: static, undervolting, overclocking, parking."""

import pytest

from repro.guardband.calibration import calibrate_socket, calibrated_margin
from repro.guardband.overclock import OverclockPolicy
from repro.guardband.parking import park_if_fully_gated, park_voltage
from repro.guardband.static import StaticGuardbandPolicy
from repro.guardband.undervolt import UndervoltPolicy


@pytest.fixture
def loaded_server(server, raytrace):
    server.place(0, raytrace, 4)
    return server


class TestCalibration:
    def test_margin_is_code_times_bit_plus_nondeterminism(self, server_config):
        margin = calibrated_margin(server_config.chip, server_config.guardband)
        expected = (
            server_config.guardband.calibration_code
            * server_config.chip.cpm_mv_per_bit
            + server_config.guardband.nondeterminism_margin
        )
        assert margin == pytest.approx(expected)

    def test_default_margin_about_45mv(self, server_config):
        margin = calibrated_margin(server_config.chip, server_config.guardband)
        assert margin == pytest.approx(0.045, abs=0.002)

    def test_calibrate_socket_aligns_cpms(self, server, server_config):
        chip = server.sockets[0].chip
        margin = calibrate_socket(chip, server_config.guardband)
        codes = chip.cpm_bank.read_core(0, margin, server_config.chip.f_nominal)
        assert all(code == server_config.guardband.calibration_code for code in codes)


class TestStaticPolicy:
    def test_fixed_vdd(self, loaded_server, server_config):
        policy = StaticGuardbandPolicy(server_config)
        policy.apply(loaded_server.sockets[0])
        assert loaded_server.sockets[0].path.setpoint == pytest.approx(
            server_config.static_vdd, abs=server_config.pdn.vrm_step
        )

    def test_all_cores_at_nominal_frequency(self, loaded_server, server_config):
        policy = StaticGuardbandPolicy(server_config)
        solution = policy.apply(loaded_server.sockets[0])
        assert all(
            f == pytest.approx(server_config.chip.f_nominal)
            for f in solution.frequencies
        )

    def test_meets_timing_at_full_load(self, loaded_server, server_config):
        loaded_server.clear()
        from repro.workloads import get_profile

        loaded_server.place(0, get_profile("lu_cb"), 8)
        policy = StaticGuardbandPolicy(server_config)
        solution = policy.apply(loaded_server.sockets[0])
        assert policy.guardband_margin(solution) > 0

    def test_unused_margin_large_under_light_load(self, loaded_server, server_config):
        """The static guardband wastes most of its margin at light load —
        the paper's motivating observation."""
        policy = StaticGuardbandPolicy(server_config)
        solution = policy.apply(loaded_server.sockets[0])
        assert policy.guardband_margin(solution) > 0.08


class TestUndervoltPolicy:
    def test_converges_below_static(self, loaded_server, server_config):
        policy = UndervoltPolicy(server_config)
        result = policy.converge(loaded_server.sockets[0])
        assert result.undervolt > 0
        assert result.setpoint < server_config.static_vdd

    def test_frequency_held_at_target(self, loaded_server, server_config):
        policy = UndervoltPolicy(server_config)
        result = policy.converge(loaded_server.sockets[0])
        assert all(
            f == pytest.approx(server_config.chip.f_nominal)
            for f in result.solution.frequencies
        )

    def test_converged_state_droop_safe(self, loaded_server, server_config):
        """Even during the deepest droop the worst core stays above the
        timing wall plus the calibrated margin."""
        socket = loaded_server.sockets[0]
        policy = UndervoltPolicy(server_config)
        result = policy.converge(socket)
        margin = calibrated_margin(server_config.chip, server_config.guardband)
        droop = socket.path.noise.worst_droop(socket.chip.n_active_cores())
        wall = server_config.chip.vmin(server_config.chip.f_nominal)
        for voltage in result.solution.core_voltages:
            assert voltage - droop >= wall + margin - 1e-9

    def test_converged_within_one_step_of_limit(self, loaded_server, server_config):
        """Tightness: one more VRM step down would violate the requirement."""
        socket = loaded_server.sockets[0]
        policy = UndervoltPolicy(server_config)
        result = policy.converge(socket)
        step = socket.path.vrm.step
        excess = policy._worst_excess(
            socket, result.solution, server_config.chip.f_nominal
        )
        assert 0 <= excess < step

    def test_heavier_load_shallower_undervolt(self, server, raytrace, server_config):
        policy = UndervoltPolicy(server_config)
        server.place(0, raytrace, 1)
        light = policy.converge(server.sockets[0])
        server.clear()
        server.place(0, raytrace, 8)
        heavy = policy.converge(server.sockets[0])
        assert heavy.undervolt < light.undervolt

    def test_custom_frequency_target(self, loaded_server, server_config):
        policy = UndervoltPolicy(server_config)
        result = policy.converge(loaded_server.sockets[0], f_target=3.5e9)
        assert result.undervolt > 0
        assert all(
            f == pytest.approx(3.5e9) for f in result.solution.frequencies
        )


class TestOverclockPolicy:
    def test_boosts_above_nominal(self, loaded_server, server_config):
        policy = OverclockPolicy(server_config)
        solution = policy.apply(loaded_server.sockets[0])
        assert solution.mean_frequency > server_config.chip.f_nominal

    def test_setpoint_stays_static(self, loaded_server, server_config):
        policy = OverclockPolicy(server_config)
        policy.apply(loaded_server.sockets[0])
        assert loaded_server.sockets[0].path.setpoint == pytest.approx(
            server_config.static_vdd, abs=server_config.pdn.vrm_step
        )

    def test_boost_respects_ceiling(self, server, server_config):
        from repro.workloads import get_profile

        server.place(0, get_profile("mcf"), 1)
        policy = OverclockPolicy(server_config)
        solution = policy.apply(server.sockets[0])
        assert max(solution.frequencies) <= server_config.chip.f_ceiling

    def test_light_load_boosts_more(self, server, raytrace, server_config):
        policy = OverclockPolicy(server_config)
        server.place(0, raytrace, 1)
        light = policy.apply(server.sockets[0])
        server.clear()
        server.place(0, raytrace, 8)
        heavy = policy.apply(server.sockets[0])
        light_active = light.frequencies[0]
        heavy_active = min(heavy.frequencies)
        assert light_active > heavy_active

    def test_boost_fraction_metric(self, loaded_server, server_config):
        policy = OverclockPolicy(server_config)
        solution = policy.apply(loaded_server.sockets[0])
        assert policy.boost_fraction(solution) == pytest.approx(
            solution.mean_frequency / server_config.chip.f_nominal - 1
        )


class TestParking:
    def test_park_voltage_is_lowest_dvfs_point(self, server_config):
        expected = server_config.chip.vmin(server_config.chip.f_min) + (
            server_config.guardband.static_guardband
        )
        assert park_voltage(server_config) == pytest.approx(expected)

    def test_fully_gated_chip_parks(self, server, server_config):
        socket = server.sockets[1]
        socket.chip.gate_unused(keep_on=0)
        solution = park_if_fully_gated(socket, server_config)
        assert solution is not None
        assert all(
            f == pytest.approx(server_config.chip.f_min)
            for f in solution.frequencies
        )

    def test_partially_gated_chip_does_not_park(self, server, server_config):
        socket = server.sockets[0]
        socket.chip.gate_unused(keep_on=2)
        assert park_if_fully_gated(socket, server_config) is None

    def test_parked_chip_power_small(self, server, server_config):
        socket = server.sockets[1]
        socket.chip.gate_unused(keep_on=0)
        solution = park_if_fully_gated(socket, server_config)
        assert solution.chip_power < 10.0

    def test_undervolt_on_fully_gated_chip_reports_zero(
        self, server, server_config
    ):
        socket = server.sockets[1]
        socket.chip.gate_unused(keep_on=0)
        policy = UndervoltPolicy(server_config)
        result = policy.converge(socket)
        assert result.undervolt == 0.0
        assert result.ticks == 0
