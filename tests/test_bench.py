"""Benchmark trend storage and the regression gate."""

import json

import pytest

from repro.bench import (
    BenchEntry,
    BenchTrend,
    bench_fleet_day,
    bench_fleet_region,
    gate_trend,
    host_fingerprint,
    profile_fleet_day,
    profile_path_for,
    record,
)
from repro.errors import ConfigError


class TestTrendStorage:
    def test_record_appends_and_round_trips(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        record(path, "a", 1.5, {"n": 3})
        record(path, "a", 1.2)
        trend = BenchTrend.load(path)
        assert [e.wall_seconds for e in trend.entries] == [1.5, 1.2]
        assert trend.entries[0].meta == {"n": 3}
        assert trend.entries[0].host == host_fingerprint()

    def test_missing_file_loads_empty(self, tmp_path):
        trend = BenchTrend.load(str(tmp_path / "absent.json"))
        assert trend.entries == []

    def test_malformed_file_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError, match="entries"):
            BenchTrend.load(str(path))

    def test_malformed_entry_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"entries": [{"name": "x"}]}))
        with pytest.raises(ConfigError, match="malformed"):
            BenchTrend.load(str(path))

    def test_negative_wall_is_rejected(self):
        with pytest.raises(ConfigError):
            BenchEntry.now("a", -1.0)

    def test_save_creates_missing_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "deeper" / "BENCH_x.json")
        record(path, "a", 1.0)
        assert BenchTrend.load(path).entries[0].name == "a"

    def test_save_leaves_no_tmp_orphan(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        record(path, "a", 1.0)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_x.json"]


class TestGate:
    def test_first_entry_establishes_a_baseline(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 10.0)
        (verdict,) = gate_trend(path)
        assert verdict.passed
        assert "baseline" in verdict.message
        assert verdict.reference_wall is None

    def test_within_threshold_passes(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 10.0)
        record(path, "a", 11.9)
        (verdict,) = gate_trend(path)
        assert verdict.passed
        assert verdict.ratio == pytest.approx(1.19)

    def test_beyond_threshold_fails(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 10.0)
        record(path, "a", 12.1)
        (verdict,) = gate_trend(path)
        assert not verdict.passed

    def test_reference_is_the_best_prior_not_the_last(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 8.0)
        record(path, "a", 20.0)  # a prior regression must not reset the bar
        record(path, "a", 9.5)
        (verdict,) = gate_trend(path)
        assert verdict.passed
        assert verdict.reference_wall == 8.0

    def test_each_name_gated_independently(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "fast", 1.0)
        record(path, "slow", 5.0)
        record(path, "fast", 3.0)  # regressed
        record(path, "slow", 5.1)  # fine
        verdicts = {v.name: v.passed for v in gate_trend(path)}
        assert verdicts == {"fast": False, "slow": True}

    def test_foreign_host_entries_are_not_compared(self, tmp_path):
        path = str(tmp_path / "t.json")
        trend = BenchTrend()
        trend.append(
            BenchEntry(
                name="a",
                wall_seconds=0.001,  # a much faster machine's timing
                timestamp="2026-01-01T00:00:00+00:00",
                host={"platform": "other", "cpus": 128},
            )
        )
        trend.save(path)
        record(path, "a", 10.0)
        (verdict,) = gate_trend(path)
        assert verdict.passed
        assert verdict.reference_wall is None

    def test_different_scales_are_not_compared(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 0.1, {"scale": "servers=8"})
        record(path, "a", 500.0, {"scale": "servers=10000"})
        (verdict,) = gate_trend(path)
        assert verdict.passed
        assert verdict.reference_wall is None

    def test_custom_threshold(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 10.0)
        record(path, "a", 14.0)
        (strict,) = gate_trend(path, threshold=0.10)
        (loose,) = gate_trend(path, threshold=0.50)
        assert not strict.passed
        assert loose.passed

    def test_bad_threshold_is_rejected(self, tmp_path):
        path = str(tmp_path / "t.json")
        record(path, "a", 1.0)
        with pytest.raises(ConfigError):
            gate_trend(path, threshold=0.0)

    def test_empty_trend_cannot_be_gated(self, tmp_path):
        path = str(tmp_path / "t.json")
        BenchTrend().save(path)
        with pytest.raises(ConfigError, match="no entries"):
            gate_trend(path)

    def test_missing_trend_file_says_what_to_run(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(ConfigError, match="does not exist") as excinfo:
            gate_trend(path)
        assert "repro bench fleet" in str(excinfo.value)

    def test_all_foreign_hosts_cannot_be_gated(self, tmp_path):
        # Unlike the mixed case above, a file with *only* other hosts'
        # timings would "pass" every name as a fresh baseline forever;
        # the gate refuses with the host class spelled out instead.
        path = str(tmp_path / "t.json")
        trend = BenchTrend()
        trend.append(
            BenchEntry(
                name="a",
                wall_seconds=1.0,
                timestamp="2026-01-01T00:00:00+00:00",
                host={"platform": "other", "cpus": 128},
            )
        )
        trend.save(path)
        with pytest.raises(
            ConfigError, match="no entries for this host class"
        ) as excinfo:
            gate_trend(path)
        assert "run the bench suites here" in str(excinfo.value)

    def test_describe_host_renders_the_fingerprint(self):
        from repro.bench import describe_host

        text = describe_host(
            {"platform": "linux", "machine": "x86_64",
             "python": "3.11", "cpus": 8}
        )
        assert text == "linux/x86_64 py3.11 8 cpu(s)"


class TestBenchCli:
    def test_gate_passes_and_fails_by_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "t.json")
        record(path, "a", 10.0)
        assert main(["bench", "gate", path]) == 0
        record(path, "a", 50.0)
        assert main(["bench", "gate", path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_gate_with_nothing_to_gate_is_a_config_error(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "gate"]) == 4

    def test_bad_threshold_exits_like_a_config_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "gate", "x.json", "--threshold", "nan"]) == 4
        err = capsys.readouterr().err
        assert err.startswith("error: ConfigError")
        assert len(err.splitlines()) == 1


class TestFleetSuite:
    def test_tiny_day_records_baseline_sharded_and_speedup(self, tmp_path):
        path = str(tmp_path / "BENCH_fleet.json")
        report = bench_fleet_day(
            n_servers=2,
            duration_seconds=1800.0,
            jobs_per_hour=100.0,
            cell_servers=1,
            shard_counts=(1, 2),
            seed=7,
            out_path=path,
        )
        assert report["sharded_digest"]
        assert set(report["sharded_wall_seconds"]) == {1, 2}
        assert report["speedup"] > 0
        trend = BenchTrend.load(path)
        assert set(trend.names()) == {
            "fleet_day_scalar_baseline",
            "fleet_day_sharded",
        }
        sharded = trend.latest("fleet_day_sharded")
        assert sharded.meta["digest_identical_across_shards"] is True
        assert sharded.meta["digest"] == report["sharded_digest"]

    def test_no_baseline_skips_the_scalar_run(self, tmp_path):
        path = str(tmp_path / "BENCH_fleet.json")
        report = bench_fleet_day(
            n_servers=2,
            duration_seconds=900.0,
            jobs_per_hour=100.0,
            cell_servers=2,
            shard_counts=(1,),
            seed=7,
            baseline=False,
            out_path=path,
        )
        assert "speedup" not in report
        trend = BenchTrend.load(path)
        assert trend.names() == ("fleet_day_sharded",)


class TestRegionSuite:
    def test_tiny_region_records_cold_warm_and_cache_stats(self, tmp_path):
        path = str(tmp_path / "BENCH_fleet.json")
        report = bench_fleet_region(
            n_servers=4,
            duration_seconds=1800.0,
            jobs_per_hour=120.0,
            cell_servers=2,
            shard_counts=(1, 2),
            seed=7,
            out_path=path,
            settle_dir=str(tmp_path / "settle"),
        )
        assert report["digest"]
        assert set(report["wall_seconds"]) == {1, 2}
        assert report["n_jobs"] > 0
        trend = BenchTrend.load(path)
        assert trend.names() == ("fleet_day_region",)
        entry = trend.latest("fleet_day_region")
        assert entry.wall_seconds == entry.meta["cold_wall_seconds"]
        assert entry.meta["digest_identical_across_shards"] is True
        assert entry.meta["digest"] == report["digest"]
        assert entry.meta["warm_wall_seconds"] > 0
        cache_meta = entry.meta["settle_cache"]
        # The warm rerun replays every settle from the shared disk dir.
        assert cache_meta["disk_hits"] > 0
        assert 0.0 <= cache_meta["hit_rate"] <= 1.0
        assert "hits" in cache_meta["summary"]

    def test_profile_writes_top_n_next_to_the_trend(self, tmp_path):
        path = str(tmp_path / "BENCH_fleet.json")
        report = profile_fleet_day(
            n_servers=2,
            duration_seconds=900.0,
            jobs_per_hour=100.0,
            seed=7,
            out_path=path,
            top_n=10,
        )
        assert report["profile_path"] == profile_path_for(path)
        assert report["profile_path"].endswith(".profile.txt")
        with open(report["profile_path"], encoding="utf-8") as fh:
            text = fh.read()
        assert "cumulative" in text
        assert "top 10" in text
        assert report["digest"]
        # Profiling never records a trend entry: overhead must not gate.
        assert BenchTrend.load(path).names() == ()
