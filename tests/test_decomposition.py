"""Measurement-side drop decomposition (the Sec. 4.3 arithmetic)."""

import pytest

from repro.pdn import DecomposedDrop, DropDecomposer


@pytest.fixture
def decomposer(pdn_config):
    return DropDecomposer(pdn_config)


class TestPassiveFromCurrent:
    def test_proportional_to_current(self, decomposer, pdn_config):
        loadline, ir = decomposer.passive_from_current(100.0)
        assert loadline == pytest.approx(pdn_config.r_loadline * 100.0)
        assert ir == pytest.approx(pdn_config.r_ir_shared * 100.0)

    def test_rejects_negative_current(self, decomposer):
        with pytest.raises(ValueError):
            decomposer.passive_from_current(-1.0)


class TestDecompose:
    def test_components_reconstruct_sticky_total(self, decomposer):
        result = decomposer.decompose(
            chip_current=100.0,
            sample_mode_drop=0.060,
            sticky_mode_drop=0.085,
            local_ir=0.010,
        )
        assert result.total == pytest.approx(0.085)

    def test_typical_is_sample_minus_passive(self, decomposer, pdn_config):
        result = decomposer.decompose(100.0, 0.060, 0.085, local_ir=0.010)
        passive = (pdn_config.r_loadline + pdn_config.r_ir_shared) * 100.0 + 0.010
        assert result.typical_didt == pytest.approx(0.060 - passive)

    def test_worst_is_sticky_minus_sample(self, decomposer):
        result = decomposer.decompose(100.0, 0.060, 0.085)
        assert result.worst_didt == pytest.approx(0.025)

    def test_quiet_window_has_zero_worst(self, decomposer):
        result = decomposer.decompose(100.0, 0.060, 0.060)
        assert result.worst_didt == 0.0

    def test_typical_clamped_at_zero(self, decomposer):
        """Sensor noise can make sample drop < passive estimate; the
        decomposition never reports negative noise."""
        result = decomposer.decompose(200.0, 0.010, 0.015)
        assert result.typical_didt == 0.0

    def test_passive_property(self, decomposer):
        result = decomposer.decompose(100.0, 0.060, 0.085, local_ir=0.010)
        assert result.passive == pytest.approx(result.loadline + result.ir_drop)


class TestPercentConversion:
    def test_as_percent_of_nominal(self):
        drop = DecomposedDrop(
            loadline=0.0247, ir_drop=0.0124, typical_didt=0.0062, worst_didt=0.0185
        )
        percent = drop.as_percent_of(1.2375)
        assert percent.loadline == pytest.approx(2.0, abs=0.01)
        assert percent.total == pytest.approx(drop.total / 1.2375 * 100)

    def test_rejects_nonpositive_nominal(self):
        drop = DecomposedDrop(0.01, 0.01, 0.01, 0.01)
        with pytest.raises(ValueError):
            drop.as_percent_of(0.0)
