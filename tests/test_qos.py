"""QoS spec and monitor."""

import pytest

from repro.core import QosMonitor, QosSpec
from repro.errors import SchedulingError


class TestQosSpec:
    def test_paper_defaults(self):
        spec = QosSpec()
        assert spec.latency_target == 0.5
        assert spec.percentile == 90.0

    def test_rejects_nonpositive_target(self):
        with pytest.raises(SchedulingError):
            QosSpec(latency_target=0.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(SchedulingError):
            QosSpec(percentile=100.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(SchedulingError):
            QosSpec(violation_threshold=1.5)


class TestQosMonitor:
    def test_empty_monitor_not_violated(self):
        monitor = QosMonitor(QosSpec())
        assert monitor.violation_rate() == 0.0
        assert not monitor.violated()

    def test_violation_rate_counts_exceedances(self):
        monitor = QosMonitor(QosSpec(latency_target=0.5))
        monitor.record_many([0.4, 0.6, 0.4, 0.7])
        assert monitor.violation_rate() == pytest.approx(0.5)

    def test_exactly_at_target_is_not_violation(self):
        monitor = QosMonitor(QosSpec(latency_target=0.5))
        monitor.record(0.5)
        assert monitor.violation_rate() == 0.0

    def test_violated_uses_threshold(self):
        monitor = QosMonitor(QosSpec(latency_target=0.5, violation_threshold=0.25))
        monitor.record_many([0.6, 0.4, 0.4, 0.4])
        assert not monitor.violated()  # exactly 0.25 is not above
        monitor.record(0.6)
        assert monitor.violated()

    def test_horizon_slides(self):
        monitor = QosMonitor(QosSpec(latency_target=0.5), horizon=4)
        monitor.record_many([0.9] * 10)
        monitor.record_many([0.1] * 4)
        assert monitor.violation_rate() == 0.0

    def test_reset_forgets(self):
        monitor = QosMonitor(QosSpec())
        monitor.record_many([0.9, 0.9])
        monitor.reset()
        assert monitor.n_windows == 0
        assert monitor.violation_rate() == 0.0

    def test_rejects_negative_latency(self):
        monitor = QosMonitor(QosSpec())
        with pytest.raises(SchedulingError):
            monitor.record(-0.1)
