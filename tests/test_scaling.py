"""Runtime model: Amdahl, contention, sharing, frequency speedup."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import get_profile
from repro.workloads.scaling import (
    SOCKET_BANDWIDTH,
    STALL_POWER_FRACTION,
    RuntimeModel,
    SocketShare,
)


@pytest.fixture
def runtime():
    return RuntimeModel()


class TestSocketShare:
    def test_consolidated(self):
        share = SocketShare.consolidated(6)
        assert share.threads_per_socket == (6, 0)
        assert share.n_sockets_used == 1

    def test_balanced_even(self):
        assert SocketShare.balanced(8).threads_per_socket == (4, 4)

    def test_balanced_odd(self):
        assert SocketShare.balanced(5).threads_per_socket == (3, 2)

    def test_total(self):
        assert SocketShare((3, 2)).total == 5

    def test_rejects_empty_placement(self):
        with pytest.raises(WorkloadError):
            SocketShare((0, 0))

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            SocketShare((-1, 2))


class TestAmdahl:
    def test_single_thread_factor_one(self, runtime, raytrace):
        assert runtime.amdahl_factor(raytrace, 1) == pytest.approx(1.0)

    def test_eight_threads_near_eighth(self, runtime, raytrace):
        factor = runtime.amdahl_factor(raytrace, 8)
        s = raytrace.serial_fraction
        assert factor == pytest.approx(s + (1 - s) / 8)

    def test_spec_copies_do_not_scale(self, runtime):
        mcf = get_profile("mcf")
        assert runtime.amdahl_factor(mcf, 8) == 1.0

    def test_rejects_zero_threads(self, runtime, raytrace):
        with pytest.raises(WorkloadError):
            runtime.amdahl_factor(raytrace, 0)


class TestContention:
    def test_light_bandwidth_no_contention(self, runtime):
        swaptions = get_profile("swaptions")
        share = SocketShare.consolidated(8)
        assert runtime.contention_factor(swaptions, share) == 1.0

    def test_eight_single_threads_fit_in_one_socket(self, runtime):
        """Fig. 13's regime: no scalable workload saturates at 1 thread/core."""
        for name in ("radix", "fft", "ocean_cp"):
            profile = get_profile(name)
            share = SocketShare.consolidated(8)
            assert runtime.contention_factor(profile, share) == pytest.approx(
                1.0, abs=0.15
            )

    def test_32_smt_threads_saturate(self, runtime):
        """Fig. 14's regime: SMT4 consolidation oversubscribes bandwidth."""
        radix = get_profile("radix")
        share = SocketShare.consolidated(32)
        assert runtime.contention_factor(radix, share, threads_per_core=4) > 1.3

    def test_spreading_relieves_contention(self, runtime):
        radix = get_profile("radix")
        cons = runtime.contention_factor(
            radix, SocketShare.consolidated(32), threads_per_core=4
        )
        spread = runtime.contention_factor(
            radix, SocketShare.balanced(32), threads_per_core=4
        )
        assert spread < cons

    def test_worst_socket_paces_execution(self, runtime):
        lbm = get_profile("lbm")
        skewed = runtime.contention_factor(lbm, SocketShare((8, 1)))
        balanced = runtime.contention_factor(lbm, SocketShare((5, 4)))
        assert skewed > balanced

    def test_rejects_zero_threads_per_core(self, runtime, raytrace):
        with pytest.raises(WorkloadError):
            runtime.contention_factor(
                raytrace, SocketShare.consolidated(8), threads_per_core=0
            )


class TestSharing:
    def test_one_socket_no_penalty(self, runtime):
        lu_ncb = get_profile("lu_ncb")
        assert runtime.sharing_factor(lu_ncb, SocketShare.consolidated(8)) == 1.0

    def test_splitting_sharing_heavy_kernel_costs_over_20pct(self, runtime):
        """Fig. 14: lu_ncb and radiosity lose >20% when split."""
        lu_ncb = get_profile("lu_ncb")
        assert runtime.sharing_factor(lu_ncb, SocketShare.balanced(8)) > 1.20

    def test_independent_copies_pay_nothing(self, runtime):
        mcf = get_profile("mcf")
        assert runtime.sharing_factor(mcf, SocketShare.balanced(8)) == 1.0


class TestFrequencySpeedup:
    def test_core_bound_scales_one_to_one(self, runtime):
        swaptions = get_profile("swaptions")
        speedup = runtime.frequency_speedup(swaptions, 4.62e9, 4.2e9)
        assert speedup == pytest.approx(1.0 + swaptions.frequency_sensitivity * 0.1)

    def test_memory_bound_barely_moves(self, runtime):
        mcf = get_profile("mcf")
        speedup = runtime.frequency_speedup(mcf, 4.62e9, 4.2e9)
        assert 1.0 < speedup < 1.03

    def test_lu_cb_paper_speedup_anchor(self, runtime, lu_cb):
        """Fig. 4b: a 10% clock boost gives lu_cb about 8-9% speedup."""
        speedup = runtime.frequency_speedup(lu_cb, 4.62e9, 4.2e9)
        assert speedup == pytest.approx(1.09, abs=0.01)

    def test_rejects_nonpositive_frequency(self, runtime, raytrace):
        with pytest.raises(WorkloadError):
            runtime.frequency_speedup(raytrace, 0.0, 4.2e9)


class TestExecutionTime:
    def test_more_threads_faster(self, runtime, raytrace):
        t1 = runtime.execution_time(raytrace, SocketShare.consolidated(1), 4.2e9, 4.2e9)
        t8 = runtime.execution_time(raytrace, SocketShare.consolidated(8), 4.2e9, 4.2e9)
        assert t8 < t1 / 5

    def test_higher_frequency_faster(self, runtime, raytrace):
        share = SocketShare.consolidated(4)
        slow = runtime.execution_time(raytrace, share, 4.2e9, 4.2e9)
        fast = runtime.execution_time(raytrace, share, 4.5e9, 4.2e9)
        assert fast < slow

    def test_reference_point_is_t1(self, runtime, raytrace):
        t = runtime.execution_time(raytrace, SocketShare.consolidated(1), 4.2e9, 4.2e9)
        assert t == pytest.approx(raytrace.t1_seconds)


class TestEffectiveActivityAndMips:
    def test_uncontended_activity_unchanged(self, runtime, raytrace):
        share = SocketShare.consolidated(4)
        assert runtime.effective_activity(raytrace, share) == pytest.approx(
            raytrace.activity
        )

    def test_contended_activity_floor(self, runtime):
        """Even a starved workload keeps the stall-power fraction alive."""
        radix = get_profile("radix")
        share = SocketShare.consolidated(32)
        activity = runtime.effective_activity(radix, share, threads_per_core=4)
        assert activity > radix.activity * STALL_POWER_FRACTION
        assert activity < radix.activity

    def test_effective_mips_conserves_instructions(self, runtime, raytrace):
        share = SocketShare.consolidated(4)
        mips = runtime.effective_mips(raytrace, share, [4.2e9, 4.2e9])
        assert mips == pytest.approx(4 * raytrace.mips_per_thread(4.2e9))

    def test_contention_divides_mips(self, runtime):
        radix = get_profile("radix")
        share = SocketShare.consolidated(32)
        stretched = runtime.effective_mips(
            radix, share, [4.2e9, 4.2e9], threads_per_core=4
        )
        ideal = 32 * radix.mips_per_thread(4.2e9)
        assert stretched < ideal

    def test_mips_rejects_wrong_frequency_count(self, runtime, raytrace):
        with pytest.raises(WorkloadError):
            runtime.effective_mips(raytrace, SocketShare.consolidated(4), [4.2e9])


class TestConstruction:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(WorkloadError):
            RuntimeModel(socket_bandwidth=0.0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(WorkloadError):
            RuntimeModel(cross_socket_penalty=-0.1)

    def test_default_bandwidth_constant(self):
        assert SOCKET_BANDWIDTH == 70.0
