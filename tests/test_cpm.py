"""Critical path monitors: transfer function, calibration, bank behavior."""

import pytest

from repro.chip.cpm import CpmBank, CriticalPathMonitor
from repro.errors import CalibrationError
from repro.floorplan import Floorplan


@pytest.fixture
def cpm(chip_config):
    return CriticalPathMonitor(chip_config)


@pytest.fixture
def bank(chip_config):
    return CpmBank(chip_config, Floorplan(chip_config.n_cores), seed=7)


class TestTransferFunction:
    def test_calibrated_margin_reads_calibration_code(self, cpm):
        assert cpm.read(cpm.calibrated_margin, 4.2e9) == cpm.calibration_code

    def test_more_margin_reads_higher(self, cpm):
        base = cpm.read(cpm.calibrated_margin, 4.2e9)
        assert cpm.read(cpm.calibrated_margin + 0.063, 4.2e9) > base

    def test_less_margin_reads_lower(self, cpm):
        base = cpm.read(cpm.calibrated_margin, 4.2e9)
        assert cpm.read(cpm.calibrated_margin - 0.042, 4.2e9) < base

    def test_saturates_at_zero(self, cpm):
        assert cpm.read(-1.0, 4.2e9) == 0

    def test_saturates_at_max_code(self, cpm, chip_config):
        assert cpm.read(1.0, 4.2e9) == chip_config.cpm_code_max

    def test_one_bit_is_about_21mv_at_nominal(self, cpm):
        assert cpm.volts_per_bit(4.2e9) == pytest.approx(0.021, rel=0.01)

    def test_bit_spans_more_voltage_at_lower_frequency(self, cpm):
        assert cpm.volts_per_bit(2.8e9) > cpm.volts_per_bit(4.2e9)

    def test_rejects_nonpositive_frequency(self, cpm):
        with pytest.raises(ValueError):
            cpm.volts_per_bit(0.0)

    def test_margin_for_code_inverts_read(self, cpm):
        margin = cpm.margin_for_code(7, 4.2e9)
        assert cpm.read(margin, 4.2e9) == 7


class TestRecalibration:
    def test_recalibrate_moves_anchor(self, cpm):
        cpm.recalibrate(0.080, 5, 4.2e9)
        assert cpm.read(0.080, 4.2e9) == 5

    def test_recalibration_absorbs_offset(self, chip_config):
        skewed = CriticalPathMonitor(chip_config, code_offset=1.7)
        skewed.recalibrate(0.042, 2, 4.2e9)
        assert skewed.read(0.042, 4.2e9) == 2

    def test_rejects_out_of_range_code(self, cpm):
        with pytest.raises(CalibrationError):
            cpm.recalibrate(0.042, 99, 4.2e9)

    def test_rejects_nonpositive_sensitivity(self, chip_config):
        with pytest.raises(ValueError):
            CriticalPathMonitor(chip_config, sensitivity_scale=0.0)


class TestCpmBank:
    def test_forty_cpms_total(self, bank):
        assert len(bank.all_cpms()) == 40

    def test_five_cpms_per_core(self, bank):
        assert len(bank.core_cpms(0)) == 5

    def test_worst_code_is_minimum(self, bank):
        codes = bank.read_core(3, 0.060, 4.2e9)
        assert bank.worst_code(3, 0.060, 4.2e9) == min(codes)

    def test_process_variation_spreads_sensitivity(self, bank):
        sensitivities = {
            round(cpm.volts_per_bit(4.2e9), 6) for cpm in bank.all_cpms()
        }
        assert len(sensitivities) > 10

    def test_same_seed_reproducible(self, chip_config):
        plan = Floorplan(chip_config.n_cores)
        a = CpmBank(chip_config, plan, seed=11)
        b = CpmBank(chip_config, plan, seed=11)
        for cpm_a, cpm_b in zip(a.all_cpms(), b.all_cpms()):
            assert cpm_a.volts_per_bit(4.2e9) == cpm_b.volts_per_bit(4.2e9)

    def test_different_seed_differs(self, chip_config):
        plan = Floorplan(chip_config.n_cores)
        a = CpmBank(chip_config, plan, seed=11)
        b = CpmBank(chip_config, plan, seed=13)
        assert any(
            cpm_a.volts_per_bit(4.2e9) != cpm_b.volts_per_bit(4.2e9)
            for cpm_a, cpm_b in zip(a.all_cpms(), b.all_cpms())
        )

    def test_calibrate_aligns_every_cpm(self, bank):
        bank.calibrate(margin=0.045, frequency=4.2e9, target_code=2)
        for core_id in range(bank.n_cores):
            assert all(
                code == 2 for code in bank.read_core(core_id, 0.045, 4.2e9)
            )

    def test_calibrated_bank_still_varies_off_anchor(self, bank):
        """Sensitivity differences persist away from the calibration point."""
        bank.calibrate(margin=0.045, frequency=4.2e9, target_code=2)
        codes = set()
        for core_id in range(bank.n_cores):
            codes.update(bank.read_core(core_id, 0.150, 4.2e9))
        assert len(codes) > 1
