"""VRM: setpoint quantization, loadline, current sensing."""

import pytest

from repro.errors import ConfigError
from repro.pdn import VoltageRegulatorModule


@pytest.fixture
def vrm(pdn_config):
    return VoltageRegulatorModule(pdn_config, n_rails=2)


class TestQuantization:
    def test_on_grid_value_unchanged(self, vrm):
        assert vrm.quantize(1.2) == pytest.approx(1.2)

    def test_off_grid_rounds_up(self, vrm):
        quantized = vrm.quantize(1.201)
        assert quantized >= 1.201
        assert quantized == pytest.approx(1.20625)

    def test_float_noise_does_not_bump_a_step(self, vrm):
        """Regression: 1.19375/0.00625 is 191.0000000003 in floats; the
        ceiling must not push it to 1.2."""
        value = 1.2 - vrm.step
        assert vrm.quantize(value) == pytest.approx(value)

    def test_repeated_down_steps_walk_the_grid(self, vrm):
        setpoint = vrm.set_rail(0, 1.2375)
        for _ in range(10):
            setpoint = vrm.set_rail(0, setpoint - vrm.step)
        assert setpoint == pytest.approx(1.2375 - 10 * vrm.step)


class TestRails:
    def test_rails_independent(self, vrm):
        vrm.set_rail(0, 1.20)
        vrm.set_rail(1, 1.10)
        assert vrm.setpoint(0) == pytest.approx(1.20)
        assert vrm.setpoint(1) == pytest.approx(1.10)

    def test_rejects_bad_rail_index(self, vrm):
        with pytest.raises(ValueError):
            vrm.set_rail(2, 1.2)

    def test_rejects_nonpositive_setpoint(self, vrm):
        with pytest.raises(ValueError):
            vrm.set_rail(0, 0.0)

    def test_rejects_zero_rails(self, pdn_config):
        with pytest.raises(ConfigError):
            VoltageRegulatorModule(pdn_config, n_rails=0)


class TestLoadline:
    def test_drop_proportional_to_current(self, vrm, pdn_config):
        assert vrm.loadline_drop(0, 100.0) == pytest.approx(
            pdn_config.r_loadline * 100.0
        )

    def test_uses_sensed_current_by_default(self, vrm, pdn_config):
        vrm.record_current(0, 80.0)
        assert vrm.loadline_drop(0) == pytest.approx(pdn_config.r_loadline * 80.0)

    def test_output_voltage_below_setpoint_under_load(self, vrm):
        vrm.set_rail(0, 1.2375)
        assert vrm.output_voltage(0, 100.0) < 1.2375

    def test_zero_current_no_drop(self, vrm):
        vrm.set_rail(0, 1.2)
        assert vrm.output_voltage(0, 0.0) == pytest.approx(1.2)

    def test_rejects_negative_current(self, vrm):
        with pytest.raises(ValueError):
            vrm.loadline_drop(0, -1.0)


class TestCurrentSensing:
    def test_record_and_read(self, vrm):
        vrm.record_current(1, 55.5)
        assert vrm.sensed_current(1) == pytest.approx(55.5)

    def test_rail_currents_list(self, vrm):
        vrm.record_current(0, 10.0)
        vrm.record_current(1, 20.0)
        assert vrm.rail_currents() == [10.0, 20.0]

    def test_rejects_negative_recorded_current(self, vrm):
        with pytest.raises(ValueError):
            vrm.record_current(0, -5.0)
