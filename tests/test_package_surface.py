"""Package surface: error hierarchy, exports, version."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("ConfigError", "ConvergenceError", "CalibrationError",
                     "SchedulingError", "SensorError", "WorkloadError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("x")


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_quickstart_surface(self):
        """The README's quickstart imports must exist."""
        from repro import (  # noqa: F401
            GuardbandMode,
            build_server,
            get_profile,
            measure_consolidated,
        )


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.chip", "repro.pdn", "repro.guardband", "repro.workloads",
         "repro.sim", "repro.core", "repro.telemetry", "repro.analysis"],
    )
    def test_all_lists_resolve(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_figures_module_exports(self):
        from repro.analysis import figures

        for name in figures.__all__:
            assert hasattr(figures, name), name
