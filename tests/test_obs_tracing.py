"""Span tracing: nesting, clocks, emission."""

import json

import pytest

from repro.obs import NULL_SPAN, Tracer


class TestSpanLifecycle:
    def test_ids_are_sequential_from_one(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans] == [1, 2]

    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_completion_order_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_wall_duration_is_stamped(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        assert span.wall_seconds is not None
        assert span.wall_seconds >= 0.0

    def test_annotate_is_chainable_and_merges(self):
        tracer = Tracer()
        with tracer.span("a", x=1) as span:
            assert span.annotate(y=2) is span
        assert span.attrs == {"x": 1, "y": 2}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("a"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError"
        assert span.wall_seconds is not None

    def test_find_filters_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.find("a")] == ["a"]
        assert len(tracer) == 2


class TestSimClock:
    def test_no_clock_means_no_sim_time(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        assert span.start_sim_ns is None
        assert span.end_sim_ns is None

    def test_clock_stamps_open_and_close(self):
        tracer = Tracer()
        now = {"t": 100}
        tracer.set_clock(lambda: now["t"])
        with tracer.span("a") as span:
            now["t"] = 250
        assert span.start_sim_ns == 100
        assert span.end_sim_ns == 250

    def test_set_clock_returns_previous_for_restoration(self):
        tracer = Tracer()
        first = lambda: 1  # noqa: E731
        assert tracer.set_clock(first) is None
        assert tracer.set_clock(lambda: 2) is first


class TestEmission:
    def test_lines_are_canonical_json(self):
        tracer = Tracer()
        tracer.set_clock(lambda: 5)
        with tracer.span("a", b=1):
            pass
        (line,) = tracer.lines()
        record = json.loads(line)
        assert record["name"] == "a"
        assert record["sim_ns"] == 5
        assert record["attrs"] == {"b": 1}
        assert record["wall_ms"] >= 0.0
        # canonical: sorted keys, compact separators
        assert line == json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_attrs_omitted_when_empty(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert "attrs" not in json.loads(tracer.lines()[0])


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.annotate(x=1) is NULL_SPAN
