"""WebSearch latency model: queueing behavior and QoS statistics."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.websearch import (
    QueryLatencyModel,
    WebSearchConfig,
    WebSearchModel,
)


@pytest.fixture
def model():
    return WebSearchModel()


class TestConfigValidation:
    def test_default_valid(self):
        WebSearchConfig()

    def test_rejects_unstable_queue(self):
        with pytest.raises(WorkloadError):
            WebSearchConfig(arrival_rate=60.0, service_rate_ref=50.0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(WorkloadError):
            WebSearchConfig(frequency_sensitivity=0.0)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(WorkloadError):
            WebSearchConfig(p90_target=0.0)


class TestQueryLatencyModel:
    def test_latencies_at_least_service_time(self):
        queue = QueryLatencyModel(service_rate=50.0)
        rng = np.random.default_rng(1)
        latencies = queue.simulate_window(40.0, 30.0, rng)
        assert latencies.size > 0
        assert np.all(latencies > 0)

    def test_fifo_ordering_lindley(self):
        """Mean sojourn grows toward the M/M/1 prediction near saturation."""
        queue = QueryLatencyModel(service_rate=50.0)
        rng = np.random.default_rng(2)
        light = np.mean(
            np.concatenate(
                [queue.simulate_window(10.0, 60.0, rng) for _ in range(10)]
            )
        )
        heavy = np.mean(
            np.concatenate(
                [queue.simulate_window(45.0, 60.0, rng) for _ in range(10)]
            )
        )
        assert heavy > 3 * light

    def test_empty_window_returns_zero_p90(self):
        queue = QueryLatencyModel(service_rate=50.0)

        class _NoArrivals:
            def poisson(self, lam):
                return 0

        assert queue.window_p90(1e-9, 0.001, _NoArrivals()) == 0.0

    def test_rejects_bad_rates(self):
        with pytest.raises(WorkloadError):
            QueryLatencyModel(service_rate=0.0)
        queue = QueryLatencyModel(service_rate=50.0)
        with pytest.raises(WorkloadError):
            queue.simulate_window(0.0, 30.0, np.random.default_rng(1))


class TestWebSearchModel:
    def test_service_rate_scales_with_frequency(self, model):
        assert model.service_rate(4.6e9) > model.service_rate(4.4e9)

    def test_service_rate_at_reference(self, model):
        cfg = model.config
        assert model.service_rate(cfg.reference_frequency) == pytest.approx(
            cfg.service_rate_ref
        )

    def test_violation_rate_monotone_in_frequency(self, model):
        fast = model.violation_rate(4.65e9, n_windows=300)
        slow = model.violation_rate(4.45e9, n_windows=300)
        assert slow > fast

    def test_paper_corunner_ordering(self, model):
        """Heavy co-runner's frequency violates far more than light's."""
        heavy = model.violation_rate(4.48e9, n_windows=400)
        light = model.violation_rate(4.648e9, n_windows=400)
        assert heavy > 0.15
        assert light < 0.10

    def test_sampling_reproducible(self, model):
        a = model.sample_p90s(4.5e9, 50, seed=7)
        b = model.sample_p90s(4.5e9, 50, seed=7)
        assert np.array_equal(a, b)

    def test_cdf_axes(self, model):
        values, cumulative = model.latency_cdf(4.5e9, n_windows=100)
        assert values.shape == (100,)
        assert np.all(np.diff(values) >= 0)
        assert cumulative[-1] == pytest.approx(100.0)

    def test_mean_p90_between_extremes(self, model):
        p90s = model.sample_p90s(4.5e9, 100)
        assert p90s.min() <= model.mean_p90(4.5e9, 100) <= p90s.max()

    def test_profile_is_single_thread_service(self, model):
        profile = model.profile()
        assert profile.name == "websearch"
        assert not profile.scalable

    def test_rejects_zero_windows(self, model):
        with pytest.raises(WorkloadError):
            model.sample_p90s(4.5e9, 0)
