"""Trace-driven AGS: diurnal traces and the replay driver."""

import pytest

from repro.core import DynamicAgsDriver, diurnal_trace
from repro.core.evaluate import apply_with_contention
from repro.errors import SchedulingError
from repro.guardband import GuardbandMode
from repro.sim.batch import SweepRunner
from repro.sim.cache import OperatingPointCache
from repro.workloads.scaling import RuntimeModel


@pytest.fixture
def driver(server, raytrace):
    return DynamicAgsDriver(server, raytrace, interval_seconds=60.0)


class TestDiurnalTrace:
    def test_length(self):
        assert len(diurnal_trace(24)) == 24

    def test_bounds(self):
        trace = diurnal_trace(24, low=1, high=8)
        assert min(trace) == 1
        assert max(trace) == 8

    def test_peak_in_the_middle(self):
        trace = diurnal_trace(24, low=1, high=8)
        assert trace.index(max(trace)) in range(8, 16)

    def test_starts_and_ends_low(self):
        trace = diurnal_trace(24, low=2, high=7)
        assert trace[0] == 2

    def test_rejects_bad_bounds(self):
        with pytest.raises(SchedulingError):
            diurnal_trace(24, low=5, high=3)
        with pytest.raises(SchedulingError):
            diurnal_trace(1)


class TestReplay:
    def test_interval_per_trace_entry(self, driver):
        result = driver.replay([1, 2, 3])
        assert len(result.intervals) == 3
        assert [i.demand for i in result.intervals] == [1, 2, 3]

    def test_hysteresis_skips_flat_segments(self, driver):
        result = driver.replay([2, 2, 2, 4, 4])
        rescheduled = [i.rescheduled for i in result.intervals]
        assert rescheduled == [True, False, False, True, False]

    def test_flat_segments_reuse_power(self, driver):
        result = driver.replay([3, 3, 3])
        powers = {i.ags_power for i in result.intervals}
        assert len(powers) == 1

    def test_ags_saves_power_every_interval(self, driver):
        result = driver.replay(diurnal_trace(8, low=1, high=8))
        for interval in result.intervals:
            assert interval.ags_power <= interval.baseline_power + 0.5

    def test_energy_integral(self, driver):
        result = driver.replay([2, 2])
        expected = sum(i.ags_power for i in result.intervals) * 60.0
        assert result.ags_energy == pytest.approx(expected)

    def test_diurnal_day_saves_energy(self, driver):
        result = driver.replay(diurnal_trace(12, low=1, high=8))
        assert result.energy_saving_fraction > 0.01

    def test_reschedule_count(self, driver):
        result = driver.replay([1, 1, 2, 2, 1])
        assert result.n_reschedules == 3

    def test_rejects_empty_trace(self, driver):
        with pytest.raises(SchedulingError):
            driver.replay([])

    def test_rejects_zero_demand(self, driver):
        with pytest.raises(SchedulingError):
            driver.replay([1, 0, 2])

    def test_rejects_bad_interval(self, server, raytrace):
        with pytest.raises(SchedulingError):
            DynamicAgsDriver(server, raytrace, interval_seconds=0.0)


class TestRunnerRouting:
    """The driver's measurements route through the batch runner/cache."""

    def test_bit_identical_to_direct_settling(
        self, server, server_config, raytrace
    ):
        """Cache-routed powers equal settling an identical fresh server."""
        from repro.sim.run import build_server

        driver = DynamicAgsDriver(
            server,
            raytrace,
            runner=SweepRunner(cache=OperatingPointCache()),
        )
        result = driver.replay([2, 5])
        runtime = RuntimeModel()
        for interval in result.intervals:
            placement = driver.ags.schedule_batch(
                raytrace, interval.demand, driver.total_cores_on
            )
            fresh = build_server(server_config, seed=server.seed)
            apply_with_contention(fresh, placement, runtime)
            point = fresh.operate(GuardbandMode.UNDERVOLT)
            assert interval.ags_power == point.chip_power

    def test_repeated_demand_levels_hit_the_cache(self, server, raytrace):
        runner = SweepRunner(cache=OperatingPointCache())
        driver = DynamicAgsDriver(server, raytrace, runner=runner)
        driver.replay([3, 4, 3, 4, 3])
        stats = runner.reports[-1].cache_stats
        # 2 distinct demand levels x (AGS + baseline) x (static + adaptive
        # halves): everything beyond the first 8 settles is a replay.
        assert stats.hits > 0
        assert stats.misses <= 8

    def test_distinct_seeds_never_alias(self, server_config, raytrace):
        """Two different die seeds must not share cache entries."""
        from repro.sim.server import Power720Server

        runner = SweepRunner(cache=OperatingPointCache())
        for seed, expect_misses in ((7, True), (7, False), (8, True)):
            driver = DynamicAgsDriver(
                Power720Server(server_config, seed=seed),
                raytrace,
                runner=runner,
            )
            before = runner.cache.stats.misses
            driver.replay([4])
            missed = runner.cache.stats.misses - before
            # Same seed replays from cache; a new seed settles afresh.
            assert (missed > 0) is expect_misses
