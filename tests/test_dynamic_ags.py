"""Trace-driven AGS: diurnal traces and the replay driver."""

import pytest

from repro.core import DynamicAgsDriver, diurnal_trace
from repro.errors import SchedulingError


@pytest.fixture
def driver(server, raytrace):
    return DynamicAgsDriver(server, raytrace, interval_seconds=60.0)


class TestDiurnalTrace:
    def test_length(self):
        assert len(diurnal_trace(24)) == 24

    def test_bounds(self):
        trace = diurnal_trace(24, low=1, high=8)
        assert min(trace) == 1
        assert max(trace) == 8

    def test_peak_in_the_middle(self):
        trace = diurnal_trace(24, low=1, high=8)
        assert trace.index(max(trace)) in range(8, 16)

    def test_starts_and_ends_low(self):
        trace = diurnal_trace(24, low=2, high=7)
        assert trace[0] == 2

    def test_rejects_bad_bounds(self):
        with pytest.raises(SchedulingError):
            diurnal_trace(24, low=5, high=3)
        with pytest.raises(SchedulingError):
            diurnal_trace(1)


class TestReplay:
    def test_interval_per_trace_entry(self, driver):
        result = driver.replay([1, 2, 3])
        assert len(result.intervals) == 3
        assert [i.demand for i in result.intervals] == [1, 2, 3]

    def test_hysteresis_skips_flat_segments(self, driver):
        result = driver.replay([2, 2, 2, 4, 4])
        rescheduled = [i.rescheduled for i in result.intervals]
        assert rescheduled == [True, False, False, True, False]

    def test_flat_segments_reuse_power(self, driver):
        result = driver.replay([3, 3, 3])
        powers = {i.ags_power for i in result.intervals}
        assert len(powers) == 1

    def test_ags_saves_power_every_interval(self, driver):
        result = driver.replay(diurnal_trace(8, low=1, high=8))
        for interval in result.intervals:
            assert interval.ags_power <= interval.baseline_power + 0.5

    def test_energy_integral(self, driver):
        result = driver.replay([2, 2])
        expected = sum(i.ags_power for i in result.intervals) * 60.0
        assert result.ags_energy == pytest.approx(expected)

    def test_diurnal_day_saves_energy(self, driver):
        result = driver.replay(diurnal_trace(12, low=1, high=8))
        assert result.energy_saving_fraction > 0.01

    def test_reschedule_count(self, driver):
        result = driver.replay([1, 1, 2, 2, 1])
        assert result.n_reschedules == 3

    def test_rejects_empty_trace(self, driver):
        with pytest.raises(SchedulingError):
            driver.replay([])

    def test_rejects_zero_demand(self, driver):
        with pytest.raises(SchedulingError):
            driver.replay([1, 0, 2])

    def test_rejects_bad_interval(self, server, raytrace):
        with pytest.raises(SchedulingError):
            DynamicAgsDriver(server, raytrace, interval_seconds=0.0)
