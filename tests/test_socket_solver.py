"""The socket electrical fixed point: convergence, consistency, servo."""

import pytest

from repro.chip.core import HardwareThread
from repro.guardband.calibration import calibrated_margin


def _load_socket(server, n_threads, activity=1.0, ipc=1.8):
    socket = server.sockets[0]
    for core_id in range(n_threads):
        socket.chip.cores[core_id].place(
            HardwareThread(workload="w", activity=activity, ipc=ipc)
        )
    return socket


class TestFixedPoint:
    def test_converges_idle(self, server):
        socket = server.sockets[0]
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert solution.iterations < 100

    def test_converges_full_load(self, server):
        socket = _load_socket(server, 8)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert solution.iterations < 100

    def test_solution_self_consistent(self, server):
        """Re-evaluating power at the settled voltages reproduces the
        solution's power (the fixed point actually holds)."""
        socket = _load_socket(server, 4)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        power = socket.chip.power(solution.core_voltages, solution.temperature)
        assert power.total == pytest.approx(solution.die_power, rel=1e-3)

    def test_voltages_below_setpoint(self, server):
        socket = _load_socket(server, 8)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert all(v < 1.2375 for v in solution.core_voltages)

    def test_more_load_more_drop(self, server):
        socket = server.sockets[0]
        socket.path.set_voltage(1.2375)
        light = socket.solve(frequencies=[4.2e9] * 8)
        _load_socket(server, 8)
        heavy = socket.solve(frequencies=[4.2e9] * 8)
        assert min(heavy.core_voltages) < min(light.core_voltages)

    def test_rail_power_exceeds_die_power(self, server):
        """The sensor at the VRM output sees the delivery loss too."""
        socket = _load_socket(server, 8)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert solution.chip_power > solution.die_power

    def test_rejects_wrong_frequency_count(self, server):
        socket = server.sockets[0]
        socket.path.set_voltage(1.2)
        with pytest.raises(ValueError):
            socket.solve(frequencies=[4.2e9] * 3)

    def test_rejects_frequencies_and_servo_together(self, server):
        socket = server.sockets[0]
        socket.path.set_voltage(1.2)
        with pytest.raises(ValueError):
            socket.solve(frequencies=[4.2e9] * 8, servo_margin=0.045)


class TestServo:
    def test_servo_holds_margin(self, server):
        socket = _load_socket(server, 4)
        socket.path.set_voltage(1.2375)
        margin = calibrated_margin(server.config.chip, server.config.guardband)
        solution = socket.solve(servo_margin=margin)
        for v, f in zip(solution.core_voltages, solution.frequencies):
            observed = socket.chip.timing.margin(v, f)
            # Quantizing frequency down can only widen the margin, by at
            # most one grid step's worth of voltage.
            assert observed >= margin - 1e-9
            assert observed <= margin + server.config.chip.f_step * (
                server.config.chip.vmin_slope
            ) + 1e-9

    def test_servo_boosts_when_lightly_loaded(self, server):
        socket = _load_socket(server, 1)
        socket.path.set_voltage(1.2375)
        margin = calibrated_margin(server.config.chip, server.config.guardband)
        solution = socket.solve(servo_margin=margin)
        assert solution.frequencies[0] > 4.2e9

    def test_frequency_cap_respected(self, server):
        socket = _load_socket(server, 1)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(servo_margin=0.045, frequency_cap=4.2e9)
        assert all(f <= 4.2e9 + 1 for f in solution.frequencies)

    def test_servo_frequencies_on_grid(self, server, chip_config):
        socket = _load_socket(server, 4)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(servo_margin=0.045)
        for f in solution.frequencies:
            steps = f / chip_config.f_step
            assert steps == pytest.approx(round(steps))


class TestThermalCoupling:
    def test_settled_temperature_matches_power(self, server):
        socket = _load_socket(server, 8)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8, settle_thermal=True)
        expected = socket.chip.thermal.steady_state(solution.die_power)
        assert solution.temperature == pytest.approx(expected, abs=0.2)

    def test_busy_chip_hotter_than_idle(self, server):
        socket = server.sockets[0]
        socket.path.set_voltage(1.2375)
        idle = socket.solve(frequencies=[4.2e9] * 8)
        _load_socket(server, 8)
        busy = socket.solve(frequencies=[4.2e9] * 8)
        assert busy.temperature > idle.temperature

    def test_peak_temperature_in_paper_range(self, server):
        """Sec. 4.1: die temperature stays in the high-20s to high-30s C."""
        socket = _load_socket(server, 8)
        socket.path.set_voltage(1.2375)
        solution = socket.solve(frequencies=[4.2e9] * 8)
        assert 30 < solution.temperature < 45
