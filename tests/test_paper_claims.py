"""Integration tests pinning the paper's headline quantitative claims.

Each test reproduces one published number on the simulated platform and
asserts the measured value lands in a band around it.  Bands are loose
enough to survive refactoring but tight enough that a broken model fails.
"""

import numpy as np
import pytest

from repro.analysis import figures
from repro.guardband import GuardbandMode
from repro.workloads import SCALABLE_BENCHMARKS


@pytest.fixture(scope="module")
def fig5_undervolt():
    return figures.fig5_workload_heterogeneity(
        GuardbandMode.UNDERVOLT, workloads=SCALABLE_BENCHMARKS
    )


@pytest.fixture(scope="module")
def fig5_overclock():
    return figures.fig5_workload_heterogeneity(
        GuardbandMode.OVERCLOCK, workloads=SCALABLE_BENCHMARKS
    )


class TestSection3CoreScaling:
    """Sec. 3.2: raytrace power saving 13% → 3%; lu_cb boost 10% → 4%."""

    def test_raytrace_one_core_saving_near_13_percent(self):
        series = figures.fig3_core_scaling_power()
        assert series.power_saving_percent(0) == pytest.approx(13.0, abs=2.0)

    def test_raytrace_eight_core_saving_near_3_percent(self):
        series = figures.fig3_core_scaling_power()
        assert series.power_saving_percent(7) == pytest.approx(3.0, abs=1.8)

    def test_raytrace_chip_power_range_matches_fig3a(self):
        series = figures.fig3_core_scaling_power()
        assert series.static_power[0] == pytest.approx(72.0, abs=8.0)
        assert series.static_power[7] == pytest.approx(140.0, abs=12.0)

    def test_saving_monotone_decreasing(self):
        series = figures.fig3_core_scaling_power()
        savings = [series.power_saving_percent(i) for i in range(8)]
        assert all(b <= a + 0.3 for a, b in zip(savings, savings[1:]))

    def test_edp_improves_most_at_low_core_counts(self):
        series = figures.fig3_core_scaling_power()
        edp_gain = [
            1 - series.adaptive_edp[i] / series.static_edp[i] for i in range(8)
        ]
        assert edp_gain[0] > edp_gain[7]

    def test_lu_cb_boost_declines_with_cores(self):
        series = figures.fig4_core_scaling_frequency()
        assert series.frequency_boost_percent(0) == pytest.approx(9.0, abs=1.5)
        assert series.frequency_boost_percent(7) == pytest.approx(5.0, abs=2.0)
        assert series.frequency_boost_percent(0) > series.frequency_boost_percent(7)

    def test_lu_cb_speedup_tracks_boost(self):
        """Fig. 4b: 8% speedup at one core, ~3% at eight."""
        series = figures.fig4_core_scaling_frequency()
        assert series.speedup_percent(0) == pytest.approx(8.0, abs=1.5)
        assert series.speedup_percent(7) < series.speedup_percent(0)


class TestSection33Heterogeneity:
    """Sec. 3.3's quoted averages: 13.3% / 10% / 6.4% at 1/2/8 cores."""

    def test_one_core_average_saving(self, fig5_undervolt):
        assert fig5_undervolt.average(0) == pytest.approx(13.3, abs=1.0)

    def test_one_core_saving_range(self, fig5_undervolt):
        values = [series[0] for series in fig5_undervolt.improvements.values()]
        assert min(values) == pytest.approx(10.7, abs=1.5)
        assert max(values) == pytest.approx(14.8, abs=1.5)

    def test_eight_core_average_saving(self, fig5_undervolt):
        assert fig5_undervolt.average(7) == pytest.approx(6.4, abs=2.0)

    def test_spread_magnifies_at_eight_cores(self, fig5_undervolt):
        assert fig5_undervolt.spread(7) > fig5_undervolt.spread(0)

    def test_every_workload_still_improves(self, fig5_undervolt):
        for series in fig5_undervolt.improvements.values():
            assert all(v > -0.5 for v in series)

    def test_boost_average_near_9_6_percent(self, fig5_overclock):
        assert fig5_overclock.average(0) == pytest.approx(9.6, abs=1.0)

    def test_radix_boost_stays_high_at_eight_cores(self, fig5_overclock):
        assert fig5_overclock.improvements["radix"][7] > 7.0

    def test_lu_cb_boost_drops_hard(self, fig5_overclock):
        lu_cb = fig5_overclock.improvements["lu_cb"]
        assert lu_cb[0] - lu_cb[7] > 2.0


class TestSection4RootCause:
    """Sec. 4: CPM sensitivity, drop scaling, decomposition, correlations."""

    def test_cpm_bit_near_21mv(self):
        result = figures.fig6_cpm_voltage_mapping()
        assert result.mv_per_bit == pytest.approx(21.0, abs=2.5)

    def test_cpm_mapping_linear(self):
        result = figures.fig6_cpm_voltage_mapping()
        assert result.nominal_fit.r_squared > 0.98

    def test_voltage_drop_grows_with_cores(self):
        drops = figures.fig7_voltage_drop_scaling(workloads=("lu_cb",))["lu_cb"]
        core0 = drops.drops_percent[0]
        assert core0[7] > core0[0]

    def test_idle_core_sees_global_drop(self):
        """Core 7 experiences rising drop while only cores 0-3 run."""
        drops = figures.fig7_voltage_drop_scaling(workloads=("lu_cb",))["lu_cb"]
        core7 = drops.drops_percent[7]
        assert core7[3] > core7[0] - 0.05
        assert core7[3] > 1.0

    def test_core_activation_bumps_its_own_drop(self):
        drops = figures.fig7_voltage_drop_scaling(workloads=("lu_cb",))["lu_cb"]
        core7 = drops.drops_percent[7]
        jump_when_activated = core7[7] - core7[6]
        earlier_steps = np.diff(core7[:7])
        assert jump_when_activated > max(earlier_steps)

    def test_passive_dominates_decomposition(self):
        series = figures.fig9_drop_decomposition(workloads=("raytrace",))["raytrace"]
        passive = series.loadline[7] + series.ir_drop[7]
        noise = series.typical_didt[7] + series.worst_didt[7]
        assert passive > noise

    def test_typical_didt_shrinks_with_cores(self):
        series = figures.fig9_drop_decomposition(workloads=("raytrace",))["raytrace"]
        assert series.typical_didt[7] < series.typical_didt[0]

    def test_passive_grows_with_cores(self):
        series = figures.fig9_drop_decomposition(workloads=("raytrace",))["raytrace"]
        assert series.loadline[7] > series.loadline[0]
        assert series.ir_drop[7] > series.ir_drop[0]

    def test_fig10_power_drop_correlation_strong(self):
        result = figures.fig10_passive_drop_correlation()
        assert result.power_vs_drop.r_squared > 0.9

    def test_fig10_undervolt_anticorrelates_with_drop(self):
        result = figures.fig10_passive_drop_correlation()
        assert result.drop_vs_undervolt.slope < 0

    def test_fig10_passive_drop_range(self):
        """Fig. 10a: loadline + IR spans roughly 40-80 mV at eight cores."""
        result = figures.fig10_passive_drop_correlation()
        drops = result.column("passive_drop_mv")
        assert min(drops) > 25
        assert max(drops) < 110

    def test_fig10_chip_power_range(self):
        """Fig. 10a: chip power spans roughly 80-140 W at eight cores."""
        result = figures.fig10_passive_drop_correlation()
        power = result.column("chip_power")
        assert min(power) > 70
        assert max(power) < 160


class TestSection5LoadlineBorrowing:
    """Sec. 5.1: borrowing gains 1.6/4.2/8.5% at 2/4/8 cores; avg 6.2%."""

    def test_fig12_borrowing_gain_grows_with_cores(self):
        series = figures.fig12_borrowing_scaling()
        assert series.borrowing_gain_percent(7) > series.borrowing_gain_percent(1)

    def test_fig12_eight_core_gain_substantial(self):
        series = figures.fig12_borrowing_scaling()
        assert series.borrowing_gain_percent(7) == pytest.approx(8.5, abs=4.0)

    def test_fig12_borrowing_undervolts_deeper(self):
        series = figures.fig12_borrowing_scaling()
        for i in range(1, 8):
            assert series.borrowing_undervolt_mv[i] > series.baseline_undervolt_mv[i]

    def test_fig13_borrowing_roughly_doubles_improvement(self):
        series = figures.fig13_borrowing_all_workloads(
            workloads=("raytrace", "lu_cb", "swaptions", "radix")
        )
        baseline = series.average(7, "baseline")
        borrowing = series.average(7, "borrowing")
        assert borrowing > 1.5 * baseline

    def test_fig14_mean_power_improvement(self):
        result = figures.fig14_borrowing_energy()
        assert result.mean_power_improvement == pytest.approx(6.2, abs=3.0)

    def test_fig14_mean_energy_improvement(self):
        result = figures.fig14_borrowing_energy()
        assert result.mean_energy_improvement == pytest.approx(7.7, abs=5.0)

    def test_fig14_sharing_kernels_lose(self):
        result = figures.fig14_borrowing_energy()
        losers = {r.workload for r in result.rows[:3]}
        assert {"lu_ncb", "radiosity"} <= losers

    def test_fig14_bandwidth_kernels_win_big(self):
        result = figures.fig14_borrowing_energy()
        winners = {r.workload for r in result.rows[-5:]}
        assert len(winners & {"radix", "fft", "lbm", "GemsFDTD", "zeusmp"}) >= 4
        assert result.rows[-1].energy_improvement_percent > 40

    def test_fig14_relief_can_raise_power(self):
        """The paper's radix/fft observation: borrowing sometimes costs
        power while still winning energy."""
        result = figures.fig14_borrowing_energy()
        radix = result.row("radix")
        assert radix.power_improvement_percent < 2.0
        assert radix.energy_improvement_percent > 30.0


@pytest.mark.slow
class TestSection52AdaptiveMapping:
    """Sec. 5.2: colocation effects, the predictor, WebSearch QoS."""

    def test_fig15_coremark_only_near_4517mhz(self):
        points = figures.fig15_colocation_frequency(others=("lu_cb",))
        solo = [p for p in points if p.n_other == 0][0]
        assert solo.coremark_frequency / 1e6 == pytest.approx(4517, abs=40)

    def test_fig15_lu_cb_drags_frequency_down(self):
        points = figures.fig15_colocation_frequency(others=("lu_cb",))
        most_lu = [p for p in points if p.n_coremark == 1][0]
        solo = [p for p in points if p.n_other == 0][0]
        assert most_lu.coremark_frequency < solo.coremark_frequency - 20e6

    def test_fig15_mcf_raises_frequency(self):
        points = figures.fig15_colocation_frequency(others=("mcf",))
        most_mcf = [p for p in points if p.n_coremark == 1][0]
        solo = [p for p in points if p.n_other == 0][0]
        assert most_mcf.coremark_frequency > solo.coremark_frequency + 20e6

    def test_fig15_span_over_100mhz(self):
        points = figures.fig15_colocation_frequency()
        freqs = [p.coremark_frequency for p in points]
        assert max(freqs) - min(freqs) > 100e6

    def test_fig16_rmse_near_paper(self):
        """The paper quotes 0.3% RMSE for the MIPS-based linear model."""
        result = figures.fig16_mips_predictor()
        assert result.relative_rmse < 0.006

    def test_fig16_mips_range(self):
        result = figures.fig16_mips_predictor()
        mips = [s.chip_mips for s in result.samples]
        assert min(mips) < 20_000
        assert max(mips) > 60_000

    def test_fig17_violation_ordering(self):
        result = figures.fig17_websearch_qos(n_windows=300)
        assert (
            result.violation_rates["heavy"]
            > result.violation_rates["medium"]
            >= result.violation_rates["light"]
        )

    def test_fig17_heavy_violates_hard(self):
        result = figures.fig17_websearch_qos(n_windows=300)
        assert result.violation_rates["heavy"] > 0.15

    def test_fig17_light_acceptable(self):
        result = figures.fig17_websearch_qos(n_windows=300)
        assert result.violation_rates["light"] < 0.10

    def test_fig17_scheduler_escapes_heavy(self):
        result = figures.fig17_websearch_qos(n_windows=300)
        assert result.decisions[0].corunner == "corunner_heavy"
        assert result.decisions[-1].corunner != "corunner_heavy"

    def test_fig17_tail_latency_improves(self):
        result = figures.fig17_websearch_qos(n_windows=300)
        assert result.tail_improvement_percent > 5.0


class TestAbstractHeadline:
    """The abstract's claim: AGS roughly doubles adaptive guardbanding's
    eight-core improvement on top of a highly optimized system."""

    def test_borrowing_doubles_eight_core_benefit(self):
        series = figures.fig12_borrowing_scaling()
        baseline = series.improvement_percent(7, "baseline")
        borrowing = series.improvement_percent(7, "borrowing")
        assert borrowing >= 1.8 * baseline
