"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure", "raytrace"])
        assert args.threads == 1
        assert args.mode == "undervolt"

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.servers == 4
        assert args.duration == 86_400.0
        assert args.seed == 7
        assert args.rate == 18.0
        assert args.lc_fraction == 0.15
        assert args.no_advisor_gate is False
        assert args.trace_out is None
        # The shared runner options ride along.
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.timings is False

    def test_fleet_parses_bad_workers_for_post_validation(self):
        # Out-of-range numerics parse cleanly (type=int) and are rejected
        # post-parse by validate_numeric_args with a ConfigError — not by
        # argparse's exit-2 usage dump.
        args = build_parser().parse_args(["fleet", "--workers", "0"])
        assert args.workers == 0


class TestNumericValidation:
    """Out-of-range numeric options: one error line, ConfigError exit 4."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["fleet", "--servers", "0"],
            ["fleet", "--servers", "-3"],
            ["fleet", "--workers", "0"],
            ["fleet", "--duration", "-5"],
            ["fleet", "--duration", "0"],
            ["fleet", "--duration", "nan"],
            ["fleet", "--duration", "inf"],
            ["fleet", "--rate", "-1"],
            ["fleet", "--rate", "nan"],
            ["fleet", "--lc-fraction", "1.5"],
            ["fleet", "--lc-fraction", "nan"],
            ["chaos", "--servers", "0"],
            ["chaos", "--crash-at", "-10"],
            ["chaos", "--repair-after", "nan"],
            ["measure", "raytrace", "-n", "0"],
            ["sweep", "raytrace", "--workers", "-2"],
        ],
    )
    def test_bad_numeric_exits_4_with_one_line(self, argv, capsys):
        assert main(argv) == 4
        err = capsys.readouterr().err
        assert err.startswith("error: ConfigError:")
        assert err.count("\n") == 1

    def test_error_names_the_offending_option(self, capsys):
        assert main(["fleet", "--duration", "nan"]) == 4
        assert "--duration" in capsys.readouterr().err

    def test_validation_happens_before_the_handler_runs(self, capsys):
        # A huge fleet with --servers 0 must fail instantly, proving the
        # check runs pre-dispatch (the handler would take minutes).
        assert main(["fleet", "--servers", "0", "--duration", "864000"]) == 4

    def test_debug_reraises_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["fleet", "--servers", "0", "--debug"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["workloads"],
            ["measure", "raytrace"],
            ["sweep", "raytrace"],
            ["figure", "fig3"],
            ["audit", "raytrace"],
            ["fleet"],
            ["selfcheck"],
            ["report"],
            ["export", "fig3"],
            ["metrics", "m.json"],
        ],
    )
    def test_every_subcommand_accepts_shared_options(self, argv):
        args = build_parser().parse_args(
            argv
            + [
                "--workers", "2",
                "--cache-dir", "cache",
                "--timings",
                "--seed", "3",
                "--metrics-out", "m.json",
                "--trace-spans", "s.jsonl",
            ]
        )
        assert args.workers == 2
        assert args.cache_dir == "cache"
        assert args.timings is True
        assert args.seed == 3
        assert args.metrics_out == "m.json"
        assert args.trace_spans == "s.jsonl"

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics", "m.json"])
        assert args.path == "m.json"
        assert args.prometheus is False


class TestCommands:
    def test_workloads_lists_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "raytrace" in out
        assert "GemsFDTD" in out
        assert "spec2006" in out

    def test_measure_undervolt(self, capsys):
        assert main(["measure", "raytrace", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "undervolt" in out

    def test_measure_overclock(self, capsys):
        assert main(["measure", "lu_cb", "-n", "2", "-m", "overclock"]) == 0
        out = capsys.readouterr().out
        assert "frequency boost" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "swaptions"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 9  # header + 8 core counts

    def test_audit_passes_on_safe_state(self, capsys):
        assert main(["audit", "raytrace", "-n", "4"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "8 cores" in out

    def test_figure_fig16(self, capsys):
        assert main(["figure", "fig16"]) == 0
        assert "RMSE" in capsys.readouterr().out

    def test_fleet_short_day(self, capsys, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "fleet",
                    "--servers",
                    "2",
                    "--duration",
                    "7200",
                    "--seed",
                    "7",
                    "--trace-out",
                    str(trace_path),
                    "--timings",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet: 2 server(s)" in out
        assert "conserved" in out
        assert "static guardband" in out
        assert "event log:" in out
        assert "cache:" in out  # --timings prints runner stats
        lines = trace_path.read_text().splitlines()
        assert lines, "trace-out must contain events"
        import json

        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"arrival", "start", "epoch"} <= kinds

    def test_fleet_is_deterministic_across_invocations(self, capsys):
        hashes = []
        for _ in range(2):
            assert main(["fleet", "--servers", "2", "--duration", "3600"]) == 0
            out = capsys.readouterr().out
            hashes.append(
                next(
                    line for line in out.splitlines()
                    if line.startswith("event log:")
                )
            )
        assert hashes[0] == hashes[1]

    def test_unknown_workload_exits_with_code(self, capsys):
        assert main(["measure", "doom"]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error: WorkloadError:")
        assert err.count("\n") == 1

    def test_unknown_workload_debug_reraises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["measure", "doom", "--debug"])

    def test_measure_accepts_seed(self, capsys):
        assert main(["measure", "raytrace", "-n", "2", "--seed", "11"]) == 0
        assert "power saving" in capsys.readouterr().out


class TestObservabilityOptions:
    def test_measure_metrics_out_writes_snapshot(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["measure", "raytrace", "--metrics-out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert path.is_file()

    def test_metrics_summary_round_trip(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["sweep", "raytrace", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "sweep_batches_total" in out
        assert "guardband_operate_total" in out

    def test_metrics_prometheus_rendering(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["measure", "raytrace", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE guardband_operate_total counter" in out
        assert 'guardband_operate_total{mode="undervolt"}' in out

    def test_metrics_on_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().out

    def test_metrics_on_non_snapshot_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        assert main(["metrics", str(path)]) == 1
        assert "error" in capsys.readouterr().out


@pytest.mark.slow
class TestAllFigurePrinters:
    @pytest.mark.parametrize(
        "name",
        ["fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
         "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"],
    )
    def test_figure_prints_nonempty(self, capsys, name):
        assert main(["figure", name]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 1
        assert "Fig" in out or "RMSE" in out or "r^2" in out
