"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure", "raytrace"])
        assert args.threads == 1
        assert args.mode == "undervolt"

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.servers == 4
        assert args.duration == 86_400.0
        assert args.seed == 7
        assert args.rate == 18.0
        assert args.lc_fraction == 0.15
        assert args.no_advisor_gate is False
        assert args.trace_out is None
        # The shared runner options ride along.
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.timings is False

    def test_fleet_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--workers", "0"])


class TestCommands:
    def test_workloads_lists_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "raytrace" in out
        assert "GemsFDTD" in out
        assert "spec2006" in out

    def test_measure_undervolt(self, capsys):
        assert main(["measure", "raytrace", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "undervolt" in out

    def test_measure_overclock(self, capsys):
        assert main(["measure", "lu_cb", "-n", "2", "-m", "overclock"]) == 0
        out = capsys.readouterr().out
        assert "frequency boost" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "swaptions"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 9  # header + 8 core counts

    def test_audit_passes_on_safe_state(self, capsys):
        assert main(["audit", "raytrace", "-n", "4"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "8 cores" in out

    def test_figure_fig16(self, capsys):
        assert main(["figure", "fig16"]) == 0
        assert "RMSE" in capsys.readouterr().out

    def test_fleet_short_day(self, capsys, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "fleet",
                    "--servers",
                    "2",
                    "--duration",
                    "7200",
                    "--seed",
                    "7",
                    "--trace-out",
                    str(trace_path),
                    "--timings",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet: 2 server(s)" in out
        assert "conserved" in out
        assert "static guardband" in out
        assert "event log:" in out
        assert "cache:" in out  # --timings prints runner stats
        lines = trace_path.read_text().splitlines()
        assert lines, "trace-out must contain events"
        import json

        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"arrival", "start", "epoch"} <= kinds

    def test_fleet_is_deterministic_across_invocations(self, capsys):
        hashes = []
        for _ in range(2):
            assert main(["fleet", "--servers", "2", "--duration", "3600"]) == 0
            out = capsys.readouterr().out
            hashes.append(
                next(
                    line for line in out.splitlines()
                    if line.startswith("event log:")
                )
            )
        assert hashes[0] == hashes[1]

    def test_unknown_workload_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["measure", "doom"])


@pytest.mark.slow
class TestAllFigurePrinters:
    @pytest.mark.parametrize(
        "name",
        ["fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
         "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"],
    )
    def test_figure_prints_nonempty(self, capsys, name):
        assert main(["figure", name]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 1
        assert "Fig" in out or "RMSE" in out or "r^2" in out
