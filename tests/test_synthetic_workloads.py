"""Synthetic workloads: coremark and the issue-throttled co-runners."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synthetic import (
    CORUNNER_MIPS,
    coremark_profile,
    throttled_corunner,
)


class TestCoremark:
    def test_core_contained(self):
        """Sec. 5.2's footnote: coremark's footprint is core-contained."""
        profile = coremark_profile()
        assert profile.memory_intensity < 0.05
        assert profile.bandwidth_demand < 1.0

    def test_no_sharing(self):
        assert coremark_profile().sharing_intensity == 0.0


class TestThrottledCorunners:
    @pytest.mark.parametrize("level", ["light", "medium", "heavy"])
    def test_hits_mips_target(self, level):
        profile = throttled_corunner(level, n_cores=7, frequency=4.2e9)
        total = 7 * profile.mips_per_thread(4.2e9)
        assert total == pytest.approx(CORUNNER_MIPS[level])

    def test_paper_mips_classes(self):
        assert CORUNNER_MIPS == {
            "light": 13_000.0,
            "medium": 28_000.0,
            "heavy": 70_000.0,
        }

    def test_activity_ordering(self):
        light = throttled_corunner("light")
        medium = throttled_corunner("medium")
        heavy = throttled_corunner("heavy")
        assert light.activity < medium.activity < heavy.activity

    def test_heavy_near_unthrottled_coremark(self):
        heavy = throttled_corunner("heavy")
        assert heavy.ipc == pytest.approx(coremark_profile().ipc, rel=0.25)

    def test_throttling_scales_activity_with_ipc(self):
        light = throttled_corunner("light")
        heavy = throttled_corunner("heavy")
        assert light.activity / heavy.activity == pytest.approx(
            light.ipc / heavy.ipc, rel=1e-6
        )

    def test_rejects_unknown_level(self):
        with pytest.raises(WorkloadError):
            throttled_corunner("extreme")

    def test_rejects_zero_cores(self):
        with pytest.raises(WorkloadError):
            throttled_corunner("light", n_cores=0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(WorkloadError):
            throttled_corunner("light", frequency=-1.0)
