"""IR-drop network: global/local split, coupling, worst-core behavior."""

import pytest

from repro.floorplan import Floorplan
from repro.pdn import IrDropNetwork


@pytest.fixture
def network(pdn_config):
    return IrDropNetwork(pdn_config, Floorplan(8))


class TestSharedDrop:
    def test_proportional_to_total_current(self, network, pdn_config):
        assert network.shared_drop(100.0) == pytest.approx(
            pdn_config.r_ir_shared * 100.0
        )

    def test_rejects_negative_current(self, network):
        with pytest.raises(ValueError):
            network.shared_drop(-1.0)


class TestLocalDrops:
    def test_own_current_sees_full_branch(self, network, pdn_config):
        currents = [0.0] * 8
        currents[0] = 10.0
        drops = network.local_drops(currents)
        assert drops[0] == pytest.approx(pdn_config.r_ir_local * 10.0)

    def test_neighbour_feels_coupled_fraction(self, network, pdn_config):
        currents = [0.0] * 8
        currents[0] = 10.0
        drops = network.local_drops(currents)
        expected = pdn_config.r_ir_local * 10.0 * pdn_config.ir_neighbour_coupling
        assert drops[1] == pytest.approx(expected)
        assert drops[4] == pytest.approx(expected)

    def test_far_core_feels_less_than_neighbour(self, network):
        currents = [0.0] * 8
        currents[0] = 10.0
        drops = network.local_drops(currents)
        assert drops[7] < drops[1]

    def test_superposition(self, network):
        a = [10.0, 0, 0, 0, 0, 0, 0, 0]
        b = [0, 0, 0, 0, 0, 0, 0, 10.0]
        both = [10.0, 0, 0, 0, 0, 0, 0, 10.0]
        da = network.local_drops(a)
        db = network.local_drops(b)
        dboth = network.local_drops(both)
        for i in range(8):
            assert dboth[i] == pytest.approx(da[i] + db[i])

    def test_rejects_wrong_length(self, network):
        with pytest.raises(ValueError):
            network.local_drops([1.0] * 3)

    def test_rejects_negative_currents(self, network):
        with pytest.raises(ValueError):
            network.local_drops([-1.0] + [0.0] * 7)


class TestCoreDrops:
    def test_combines_shared_and_local(self, network):
        currents = [5.0] * 8
        shared = network.shared_drop(40.0)
        locals_ = network.local_drops(currents)
        total = network.core_drops(currents)
        for i in range(8):
            assert total[i] == pytest.approx(shared + locals_[i])

    def test_center_cores_worst_under_uniform_load(self, network):
        """Middle-column cores see more coupled current than corners."""
        drops = network.core_drops([5.0] * 8)
        assert max(drops[1], drops[2]) > drops[0]

    def test_worst_drop_is_max(self, network):
        currents = [5.0] * 8
        assert network.worst_drop(currents) == max(network.core_drops(currents))

    def test_activating_a_core_raises_its_own_drop_most(self, network):
        base = network.core_drops([5.0, 0, 0, 0, 0, 0, 0, 0])
        more = network.core_drops([5.0, 0, 0, 0, 0, 0, 0, 5.0])
        increases = [m - b for m, b in zip(more, base)]
        assert increases[7] == max(increases)
