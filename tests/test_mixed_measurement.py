"""Mixed-placement measurement: per-workload views of a colocation."""

import pytest

from repro.core.evaluate import measure_mixed
from repro.core.placement import Placement, ThreadGroup
from repro.errors import SchedulingError
from repro.guardband import GuardbandMode
from repro.workloads import get_profile


@pytest.fixture
def mixed_placement(raytrace):
    mcf = get_profile("mcf")
    return Placement(
        groups=(
            (ThreadGroup(raytrace, 2), ThreadGroup(mcf, 2)),
            (ThreadGroup(raytrace, 2), ThreadGroup(mcf, 2)),
        ),
        keep_on=(4, 4),
    )


class TestMeasureMixed:
    def test_per_workload_outcomes(self, server, mixed_placement):
        measured = measure_mixed(server, mixed_placement, GuardbandMode.UNDERVOLT)
        assert set(measured.outcomes) == {"raytrace", "mcf"}

    def test_shared_power_single_number(self, server, mixed_placement):
        measured = measure_mixed(server, mixed_placement, GuardbandMode.UNDERVOLT)
        assert measured.chip_power > 0
        assert measured.point.mode is GuardbandMode.UNDERVOLT

    def test_runtime_reflects_each_profile(self, server, mixed_placement):
        measured = measure_mixed(server, mixed_placement, GuardbandMode.OVERCLOCK)
        raytrace = measured.outcome("raytrace")
        mcf = measured.outcome("mcf")
        assert raytrace.execution_time != mcf.execution_time
        assert raytrace.mips > mcf.mips  # raytrace's IPC is far higher

    def test_unknown_workload_rejected(self, server, mixed_placement):
        measured = measure_mixed(server, mixed_placement, GuardbandMode.UNDERVOLT)
        with pytest.raises(SchedulingError):
            measured.outcome("lbm")

    def test_heavier_mix_lower_frequency(self, server, raytrace):
        lu_cb = get_profile("lu_cb")
        mcf = get_profile("mcf")
        heavy = Placement(groups=((ThreadGroup(lu_cb, 8),), ()))
        light = Placement(groups=((ThreadGroup(mcf, 8),), ()))
        f_heavy = measure_mixed(
            server, heavy, GuardbandMode.OVERCLOCK
        ).point.socket_point(0).solution.mean_frequency
        f_light = measure_mixed(
            server, light, GuardbandMode.OVERCLOCK
        ).point.socket_point(0).solution.mean_frequency
        assert f_heavy < f_light

    def test_colocated_victim_slows_with_aggressor(self, server):
        """A colocation study end to end: the same workload's settled
        frequency depends on who shares the chip."""
        coremark = get_profile("swaptions")
        lu_cb = get_profile("lu_cb")
        mcf = get_profile("mcf")
        with_heavy = Placement(
            groups=((ThreadGroup(coremark, 1), ThreadGroup(lu_cb, 7)), ())
        )
        with_light = Placement(
            groups=((ThreadGroup(coremark, 1), ThreadGroup(mcf, 7)), ())
        )
        f_heavy = measure_mixed(
            server, with_heavy, GuardbandMode.OVERCLOCK
        ).point.socket_point(0).solution.frequencies[0]
        f_light = measure_mixed(
            server, with_light, GuardbandMode.OVERCLOCK
        ).point.socket_point(0).solution.frequencies[0]
        assert f_light > f_heavy
