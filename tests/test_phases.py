"""Phased workloads and their transient-engine integration."""

import pytest

from repro.errors import ReproError, WorkloadError
from repro.guardband import GuardbandMode
from repro.sim.engine import TransientEngine
from repro.workloads import get_profile
from repro.workloads.phases import Phase, PhasedWorkload, bursty_envelope


@pytest.fixture
def phased(raytrace):
    return PhasedWorkload(
        raytrace,
        (
            Phase(duration=0.1, activity_scale=1.2),
            Phase(duration=0.3, activity_scale=0.5),
        ),
    )


class TestPhase:
    def test_rejects_zero_duration(self):
        with pytest.raises(WorkloadError):
            Phase(duration=0.0, activity_scale=1.0)

    def test_rejects_zero_scale(self):
        with pytest.raises(WorkloadError):
            Phase(duration=1.0, activity_scale=0.0)


class TestPhasedWorkload:
    def test_period_is_sum(self, phased):
        assert phased.period == pytest.approx(0.4)

    def test_phase_lookup_inside_segments(self, phased):
        assert phased.phase_at(0.05).activity_scale == 1.2
        assert phased.phase_at(0.25).activity_scale == 0.5

    def test_envelope_repeats(self, phased):
        assert phased.phase_at(0.45).activity_scale == 1.2
        assert phased.phase_at(4.05).activity_scale == 1.2

    def test_boundary_belongs_to_next_phase(self, phased):
        assert phased.phase_at(0.1).activity_scale == 0.5

    def test_profile_scaling(self, phased, raytrace):
        burst = phased.profile_at(0.05)
        assert burst.activity == pytest.approx(raytrace.activity * 1.2)
        assert burst.ipc == pytest.approx(raytrace.ipc * 1.2)

    def test_mean_activity_scale(self, phased):
        expected = (0.1 * 1.2 + 0.3 * 0.5) / 0.4
        assert phased.mean_activity_scale() == pytest.approx(expected)

    def test_rejects_empty_envelope(self, raytrace):
        with pytest.raises(WorkloadError):
            PhasedWorkload(raytrace, ())

    def test_rejects_negative_time(self, phased):
        with pytest.raises(WorkloadError):
            phased.phase_at(-1.0)

    def test_bursty_envelope_shape(self):
        phases = bursty_envelope()
        assert len(phases) == 2
        assert phases[0].activity_scale > phases[1].activity_scale


class TestEngineIntegration:
    def test_phased_engine_tracks_activity(self, server, raytrace):
        """The firmware's setpoint follows the phase envelope: lulls allow
        deeper undervolt than bursts."""
        phased = PhasedWorkload(
            raytrace,
            (
                Phase(duration=0.32, activity_scale=1.3),
                Phase(duration=0.32, activity_scale=0.4),
            ),
        )
        engine = TransientEngine(
            server.sockets[0],
            GuardbandMode.UNDERVOLT,
            seed=7,
            phased_workload=phased,
            n_threads=4,
        )
        results = engine.run(120)
        burst_power = [
            r.solution.chip_power
            for r in results[40:]
            if phased.phase_at(r.time).activity_scale > 1.0
        ]
        lull_power = [
            r.solution.chip_power
            for r in results[40:]
            if phased.phase_at(r.time).activity_scale < 1.0
        ]
        assert min(burst_power) > max(lull_power)

    def test_set_occupancy_rescales_noise(self, server):
        lu_cb = get_profile("lu_cb")
        engine = TransientEngine(server.sockets[0], GuardbandMode.UNDERVOLT)
        engine.set_occupancy(lu_cb, 4)
        scaled = server.sockets[0].path.noise.worst_droop(4)
        engine.set_occupancy(get_profile("mcf"), 4)
        light = server.sockets[0].path.noise.worst_droop(4)
        assert scaled > light

    def test_phased_requires_thread_count(self, server, raytrace):
        phased = PhasedWorkload(raytrace, bursty_envelope())
        with pytest.raises(ReproError):
            TransientEngine(
                server.sockets[0],
                GuardbandMode.UNDERVOLT,
                phased_workload=phased,
            )
