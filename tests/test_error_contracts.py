"""Error-path contracts: typed errors end-to-end, CLI exit codes.

Satellite of the fault-injection PR: every documented failure mode must
surface as its :class:`~repro.errors.ReproError` subclass through the
public API, and the CLI must map each family to a one-line stderr
message with a distinct nonzero exit code (full traceback behind
``--debug``).
"""

import dataclasses

import pytest

from repro.api import measure
from repro.cli import ERROR_EXIT_CODES, exit_code_for, main
from repro.config import PdnConfig, ServerConfig
from repro.core.placement import Placement
from repro.errors import (
    CalibrationError,
    ConfigError,
    ConvergenceError,
    FaultError,
    ReproError,
    SchedulingError,
    SensorError,
    SweepError,
    WorkloadError,
)
from repro.faults import (
    CalibrationFault,
    FaultPlan,
    LoadlineExcursionFault,
    injected,
)
from repro.guardband import GuardbandMode
from repro.guardband.calibration import calibrate_socket
from repro.sim.run import build_server
from repro.workloads import get_profile


class TestErrorPaths:
    def test_pathological_loadline_raises_convergence_error(self):
        pdn = dataclasses.replace(PdnConfig(), r_loadline=0.050)
        config = ServerConfig(pdn=pdn)
        server = build_server(config)
        server.place(0, get_profile("lu_cb"), 8)
        socket = server.sockets[0]
        socket.path.set_voltage(config.static_vdd)
        with pytest.raises(ConvergenceError):
            socket.solve(frequencies=[4.2e9] * 8)

    def test_injected_loadline_excursion_raises_convergence_error(self):
        # The same starvation, reached through the fault layer: a huge
        # loadline excursion on an otherwise healthy config.
        plan = FaultPlan(
            specs=(LoadlineExcursionFault(socket_id=0, factor=200.0),)
        )
        with pytest.raises(ConvergenceError):
            measure("lu_cb", n_threads=8, fault_plan=plan)

    def test_injected_calibration_failure_raises_typed_error(self):
        server = build_server()
        server.place(0, get_profile("raytrace"), 2)
        plan = FaultPlan(specs=(CalibrationFault(socket_id=0),))
        with injected(plan):
            with pytest.raises(CalibrationError):
                calibrate_socket(
                    server.sockets[0].chip,
                    server.config.guardband,
                    socket_id=0,
                )

    def test_impossible_placement_raises_scheduling_error(self):
        with pytest.raises(SchedulingError):
            measure("raytrace", n_threads=999)

    def test_conflicting_variants_raise_scheduling_error(self):
        placement = Placement(groups=((), ()))
        with pytest.raises(SchedulingError):
            measure(
                "raytrace",
                placement=(1, 1),
                schedule=placement,
                mode=GuardbandMode.UNDERVOLT,
            )


class TestCliErrorMapping:
    def test_every_family_has_a_distinct_code(self):
        codes = [code for _, code in ERROR_EXIT_CODES]
        assert len(codes) == len(set(codes))
        assert all(code >= 3 for code in codes)

    def test_subclasses_resolve_before_the_base(self):
        assert exit_code_for(WorkloadError("x")) == 3
        assert exit_code_for(ConfigError("x")) == 4
        assert exit_code_for(SchedulingError("x")) == 5
        assert exit_code_for(ConvergenceError("x")) == 6
        assert exit_code_for(CalibrationError("x")) == 7
        assert exit_code_for(SensorError("x")) == 8
        assert exit_code_for(SweepError("x")) == 9
        assert exit_code_for(FaultError("x")) == 10
        assert exit_code_for(ReproError("x")) == 11

    def test_cli_prints_one_line_and_exits_nonzero(self, capsys):
        code = main(["measure", "nosuchthing"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err == (
            "error: WorkloadError: unknown benchmark 'nosuchthing'\n"
        )

    def test_cli_scheduling_error_exit_code(self, capsys):
        code = main(["measure", "raytrace", "-n", "999"])
        assert code == 5
        assert capsys.readouterr().err.startswith("error: SchedulingError:")

    def test_cli_fault_error_from_empty_chaos_plan(self, capsys):
        code = main(
            ["chaos", "--no-crash", "--no-corrupt", "--duration", "60"]
        )
        assert code == 10
        assert capsys.readouterr().err.startswith("error: FaultError:")

    def test_debug_reraises_with_traceback(self):
        with pytest.raises(WorkloadError):
            main(["measure", "nosuchthing", "--debug"])

    def test_chaos_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos"])
        assert args.servers == 2
        assert args.duration == 14_400.0
        assert args.crash_server == 1
        assert args.corrupt_socket == 0
        assert args.fault_seed == 0
        assert args.kill_job is None
        assert args.debug is False
