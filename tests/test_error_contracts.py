"""Error-path contracts: typed errors end-to-end, CLI exit codes.

Satellite of the fault-injection PR: every documented failure mode must
surface as its :class:`~repro.errors.ReproError` subclass through the
public API, and the CLI must map each family to a one-line stderr
message with a distinct nonzero exit code (full traceback behind
``--debug``).
"""

import dataclasses

import pytest

from repro.api import measure
from repro.cli import ERROR_EXIT_CODES, exit_code_for, main
from repro.config import PdnConfig, ServerConfig
from repro.core.placement import Placement
from repro.errors import (
    CalibrationError,
    ConfigError,
    ConvergenceError,
    FaultError,
    ReproError,
    SchedulingError,
    SensorError,
    SweepError,
    WorkloadError,
)
from repro.faults import (
    CalibrationFault,
    FaultPlan,
    LoadlineExcursionFault,
    injected,
)
from repro.guardband import GuardbandMode
from repro.guardband.calibration import calibrate_socket
from repro.sim.run import build_server
from repro.workloads import get_profile


class TestErrorPaths:
    def test_pathological_loadline_raises_convergence_error(self):
        pdn = dataclasses.replace(PdnConfig(), r_loadline=0.050)
        config = ServerConfig(pdn=pdn)
        server = build_server(config)
        server.place(0, get_profile("lu_cb"), 8)
        socket = server.sockets[0]
        socket.path.set_voltage(config.static_vdd)
        with pytest.raises(ConvergenceError):
            socket.solve(frequencies=[4.2e9] * 8)

    def test_injected_loadline_excursion_raises_convergence_error(self):
        # The same starvation, reached through the fault layer: a huge
        # loadline excursion on an otherwise healthy config.
        plan = FaultPlan(
            specs=(LoadlineExcursionFault(socket_id=0, factor=200.0),)
        )
        with pytest.raises(ConvergenceError):
            measure("lu_cb", n_threads=8, fault_plan=plan)

    def test_injected_calibration_failure_raises_typed_error(self):
        server = build_server()
        server.place(0, get_profile("raytrace"), 2)
        plan = FaultPlan(specs=(CalibrationFault(socket_id=0),))
        with injected(plan):
            with pytest.raises(CalibrationError):
                calibrate_socket(
                    server.sockets[0].chip,
                    server.config.guardband,
                    socket_id=0,
                )

    def test_impossible_placement_raises_scheduling_error(self):
        with pytest.raises(SchedulingError):
            measure("raytrace", n_threads=999)

    def test_conflicting_variants_raise_scheduling_error(self):
        placement = Placement(groups=((), ()))
        with pytest.raises(SchedulingError):
            measure(
                "raytrace",
                placement=(1, 1),
                schedule=placement,
                mode=GuardbandMode.UNDERVOLT,
            )


class TestCliErrorMapping:
    def test_every_family_has_a_distinct_code(self):
        codes = [code for _, code in ERROR_EXIT_CODES]
        assert len(codes) == len(set(codes))
        assert all(code >= 3 for code in codes)

    def test_subclasses_resolve_before_the_base(self):
        assert exit_code_for(WorkloadError("x")) == 3
        assert exit_code_for(ConfigError("x")) == 4
        assert exit_code_for(SchedulingError("x")) == 5
        assert exit_code_for(ConvergenceError("x")) == 6
        assert exit_code_for(CalibrationError("x")) == 7
        assert exit_code_for(SensorError("x")) == 8
        assert exit_code_for(SweepError("x")) == 9
        assert exit_code_for(FaultError("x")) == 10
        assert exit_code_for(ReproError("x")) == 11

    def test_cli_prints_one_line_and_exits_nonzero(self, capsys):
        code = main(["measure", "nosuchthing"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err == (
            "error: WorkloadError: unknown benchmark 'nosuchthing'\n"
        )

    def test_cli_scheduling_error_exit_code(self, capsys):
        code = main(["measure", "raytrace", "-n", "999"])
        assert code == 5
        assert capsys.readouterr().err.startswith("error: SchedulingError:")

    def test_cli_fault_error_from_empty_chaos_plan(self, capsys):
        code = main(
            ["chaos", "--no-crash", "--no-corrupt", "--duration", "60"]
        )
        assert code == 10
        assert capsys.readouterr().err.startswith("error: FaultError:")

    def test_debug_reraises_with_traceback(self):
        with pytest.raises(WorkloadError):
            main(["measure", "nosuchthing", "--debug"])

    def test_chaos_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos"])
        assert args.action == "run"
        assert args.servers == 2
        assert args.duration == 14_400.0
        assert args.crash_server == 1
        assert args.corrupt_socket == 0
        assert args.fault_seed == 0
        assert args.kill_job is None
        assert args.smoke is False
        assert args.debug is False

    def test_chaos_campaign_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos", "campaign", "--smoke"])
        assert args.action == "campaign"
        assert args.smoke is True
        assert args.catalog_dir is None


class TestExitCodeRegistry:
    """Every error family has its own exit code — and always will.

    The registry walk keeps the contract honest for subclasses added
    later: a new ``ReproError`` family that nobody maps gets the base
    class's catch-all 11, and two families sharing a code would make
    CI exit statuses ambiguous.  Both drift modes fail here first.
    """

    @staticmethod
    def _all_repro_error_classes():
        found = set()
        frontier = [ReproError]
        while frontier:
            cls = frontier.pop()
            found.add(cls)
            frontier.extend(cls.__subclasses__())
        return found

    def test_every_subclass_resolves_to_a_distinct_family_code(self):
        # Each family maps to its own code; an unregistered subclass
        # (TomlError, by design — the codec re-wraps it) falls to the
        # ReproError catch-all 11 rather than colliding with a family.
        registered = {cls for cls, _ in ERROR_EXIT_CODES}
        for cls in self._all_repro_error_classes():
            code = exit_code_for(cls("x"))
            assert code >= 3
            if cls not in registered:
                assert code == 11, (
                    f"{cls.__name__} is unregistered but resolves to "
                    f"family code {code}; register it explicitly"
                )

    def test_no_table_entry_is_shadowed_by_an_earlier_ancestor(self):
        # isinstance resolution walks the table in order: a subclass
        # listed after its ancestor would be unreachable.
        for i, (cls, _) in enumerate(ERROR_EXIT_CODES):
            for earlier, _ in ERROR_EXIT_CODES[:i]:
                assert not issubclass(cls, earlier), (
                    f"{cls.__name__} is unreachable behind "
                    f"{earlier.__name__}"
                )
        assert ERROR_EXIT_CODES[-1][0] is ReproError

    def test_every_family_resolves_to_its_own_code(self):
        # Instantiate each family and resolve it through the CLI
        # mapping: subclasses must win over the ReproError catch-all,
        # and no two families may share a code.
        seen = {}
        for cls, expected in ERROR_EXIT_CODES:
            code = exit_code_for(cls("x"))
            assert code == expected, cls
            assert code not in seen, (
                f"{cls.__name__} and {seen[code].__name__} share "
                f"exit code {code}"
            )
            seen[code] = cls

    def test_watchdog_error_takes_13(self):
        from repro.errors import WatchdogError

        assert exit_code_for(WatchdogError("x")) == 13

    def test_base_repro_error_is_the_catch_all(self):
        codes = dict((cls, code) for cls, code in ERROR_EXIT_CODES)
        assert codes[ReproError] == 11

        class Unmapped(ReproError):
            pass

        try:
            assert exit_code_for(Unmapped("x")) == 11
        finally:
            # Drop the throwaway subclass so the registry walk above
            # never sees it in later test orderings.
            import gc

            del Unmapped
            gc.collect()
