"""di/dt noise: smoothing, alignment, event sampling."""

import numpy as np
import pytest

from repro.config import DidtConfig
from repro.pdn import DidtNoiseModel


@pytest.fixture
def noise():
    return DidtNoiseModel(DidtConfig())


class TestTypicalRipple:
    def test_zero_cores_no_ripple(self, noise):
        assert noise.typical_ripple(0) == 0.0

    def test_single_core_is_configured_amplitude(self, noise):
        assert noise.typical_ripple(1) == pytest.approx(
            DidtConfig().ripple_single_core
        )

    def test_ripple_shrinks_with_core_count(self, noise):
        """Sec. 4.3: typical-case noise gets smaller when cores stagger."""
        values = [noise.typical_ripple(n) for n in range(1, 9)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_workload_scale_multiplies(self):
        heavy = DidtNoiseModel(DidtConfig(), ripple_scale=1.5)
        light = DidtNoiseModel(DidtConfig(), ripple_scale=0.5)
        assert heavy.typical_ripple(4) == pytest.approx(3 * light.typical_ripple(4))

    def test_rejects_negative_cores(self, noise):
        with pytest.raises(ValueError):
            noise.typical_ripple(-1)


class TestWorstDroop:
    def test_zero_cores_no_droop(self, noise):
        assert noise.worst_droop(0) == 0.0

    def test_droop_grows_with_core_count(self, noise):
        """Sec. 4.3: worst-case alignment droops grow with active cores."""
        values = [noise.worst_droop(n) for n in range(1, 9)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_eight_core_growth_matches_alignment_gain(self, noise):
        config = DidtConfig()
        expected = config.droop_single_core * (1 + config.droop_alignment_gain)
        assert noise.worst_droop(8) == pytest.approx(expected)

    def test_droop_scale_multiplies(self):
        scaled = DidtNoiseModel(DidtConfig(), droop_scale=2.0)
        base = DidtNoiseModel(DidtConfig())
        assert scaled.worst_droop(4) == pytest.approx(2 * base.worst_droop(4))

    def test_rejects_negative_scales(self):
        with pytest.raises(ValueError):
            DidtNoiseModel(DidtConfig(), ripple_scale=-1.0)


class TestEventSampling:
    def test_no_events_with_zero_cores(self, noise):
        rng = np.random.default_rng(1)
        assert noise.sample_events(0, 1.0, rng) == []

    def test_event_rate_scales_with_cores(self, noise):
        assert noise.event_rate(8) == pytest.approx(8 * noise.event_rate(1))

    def test_mean_event_count_matches_rate(self, noise):
        rng = np.random.default_rng(2)
        counts = [len(noise.sample_events(8, 1.0, rng)) for _ in range(300)]
        assert np.mean(counts) == pytest.approx(noise.event_rate(8), rel=0.15)

    def test_event_magnitudes_near_worst_droop(self, noise):
        rng = np.random.default_rng(3)
        events = noise.sample_events(8, 10.0, rng)
        magnitude = noise.worst_droop(8)
        assert events
        for event in events:
            assert 0.75 * magnitude <= event.magnitude <= 1.25 * magnitude

    def test_event_times_inside_window(self, noise):
        rng = np.random.default_rng(4)
        for event in noise.sample_events(8, 2.5, rng):
            assert 0.0 <= event.time <= 2.5

    def test_worst_in_window_zero_when_quiet(self, noise):
        rng = np.random.default_rng(5)
        observations = [noise.worst_in_window(1, 0.032, rng) for _ in range(200)]
        assert any(obs == 0.0 for obs in observations)

    def test_worst_in_window_seeded_reproducible(self, noise):
        a = noise.worst_in_window(8, 0.032, np.random.default_rng(9))
        b = noise.worst_in_window(8, 0.032, np.random.default_rng(9))
        assert a == b

    def test_rejects_nonpositive_window(self, noise):
        with pytest.raises(ValueError):
            noise.sample_events(1, 0.0, np.random.default_rng(1))
