"""POWER7+ die floorplan: core placement and CPM placement.

The eight cores sit in two rows of four (cores 0–3 on the top row, 4–7 on
the bottom row), matching the physical layout referenced by the paper
(Sec. 4.2, citing Zyuban et al.).  The floorplan provides adjacency used by
the IR-drop network's neighbour coupling, and the canonical placement of the
five CPMs inside each core (one per major unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Unit names hosting the five per-core CPMs.  The exact units follow the
#: CPM placement discussion in Floyd et al. (IBM JRD 2013): instruction
#: fetch, instruction scheduling, fixed point, vector/scalar, and the L2
#: interface region.
CPM_UNITS: Tuple[str, ...] = ("ifu", "isu", "fxu", "vsu", "l2if")

#: Number of core columns in the 2x4 grid.
GRID_COLUMNS = 4

#: Number of core rows in the 2x4 grid.
GRID_ROWS = 2


@dataclass(frozen=True)
class CorePosition:
    """Grid position of one core on the die."""

    core_id: int
    row: int
    column: int

    def distance_to(self, other: "CorePosition") -> float:
        """Manhattan distance between two cores in grid units."""
        return abs(self.row - other.row) + abs(self.column - other.column)


class Floorplan:
    """Spatial layout of an ``n_cores``-core die in a 2-row grid.

    Parameters
    ----------
    n_cores:
        Number of cores.  The default POWER7+ die has eight; smaller values
        are accepted (cores fill the top row first) so reduced configs can
        be simulated and tested.
    """

    def __init__(self, n_cores: int = 8) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        # Dies wider than the POWER7+'s 2x4 keep two rows and grow
        # columns (a long slab, like scaled-up server dies).  Widths up
        # to eight keep the canonical 4-column grid, so every historical
        # layout — and every distance-derived IR matrix — is unchanged.
        columns = max(GRID_COLUMNS, -(-n_cores // GRID_ROWS))
        self._n_cores = n_cores
        self._positions = [
            CorePosition(core_id=i, row=i // columns, column=i % columns)
            for i in range(n_cores)
        ]

    @property
    def n_cores(self) -> int:
        """Number of cores in the floorplan."""
        return self._n_cores

    def position(self, core_id: int) -> CorePosition:
        """Grid position of ``core_id``."""
        self._check(core_id)
        return self._positions[core_id]

    def neighbours(self, core_id: int) -> List[int]:
        """Cores physically adjacent (Manhattan distance 1) to ``core_id``."""
        self._check(core_id)
        me = self._positions[core_id]
        return [
            other.core_id
            for other in self._positions
            if other.core_id != core_id and me.distance_to(other) == 1
        ]

    def distance(self, a: int, b: int) -> float:
        """Manhattan distance in grid units between cores ``a`` and ``b``."""
        self._check(a)
        self._check(b)
        return self._positions[a].distance_to(self._positions[b])

    def coupling_weights(self, coupling: float) -> List[List[float]]:
        """Neighbour-coupling weight matrix for the IR-drop network.

        Row ``i`` gives the fraction of core ``j``'s local current whose IR
        drop is felt at core ``i``: 1.0 on the diagonal, ``coupling`` for
        direct neighbours, and ``coupling**distance`` beyond (a geometric
        decay that approximates grid spreading).
        """
        if not 0 <= coupling <= 1:
            raise ValueError(f"coupling must be in [0, 1], got {coupling}")
        weights = []
        for i in range(self._n_cores):
            row = []
            for j in range(self._n_cores):
                d = self.distance(i, j)
                row.append(1.0 if d == 0 else coupling**d)
            weights.append(row)
        return weights

    def cpm_locations(self, cpms_per_core: int) -> Dict[int, List[str]]:
        """Map core id → list of unit names hosting that core's CPMs."""
        if cpms_per_core < 1:
            raise ValueError("cpms_per_core must be >= 1")
        units = [CPM_UNITS[i % len(CPM_UNITS)] for i in range(cpms_per_core)]
        return {core: list(units) for core in range(self._n_cores)}

    def _check(self, core_id: int) -> None:
        if not 0 <= core_id < self._n_cores:
            raise ValueError(
                f"core_id must be in [0, {self._n_cores}), got {core_id}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Floorplan(n_cores={self._n_cores})"
