"""Workload models: benchmark catalog, scaling, synthetic and WebSearch.

The paper's system-level effects depend on workloads only through a small
set of traits — per-thread power, MIPS, memory behaviour, data sharing and
di/dt character.  :class:`~repro.workloads.profile.WorkloadProfile` captures
those traits; :mod:`~repro.workloads.catalog` provides a calibrated profile
for every PARSEC, SPLASH-2 and SPEC CPU2006 benchmark the paper measures.
"""

from .catalog import (
    PARSEC_BENCHMARKS,
    SCALABLE_BENCHMARKS,
    SPEC_BENCHMARKS,
    SPLASH2_BENCHMARKS,
    all_profiles,
    get_profile,
    profile_names,
)
from .phases import Phase, PhasedWorkload, bursty_envelope
from .profile import WorkloadProfile
from .scaling import RuntimeModel, SocketShare
from .synthetic import coremark_profile, throttled_corunner
from .websearch import QueryLatencyModel, WebSearchModel

__all__ = [
    "PARSEC_BENCHMARKS",
    "Phase",
    "PhasedWorkload",
    "bursty_envelope",
    "QueryLatencyModel",
    "RuntimeModel",
    "SCALABLE_BENCHMARKS",
    "SPEC_BENCHMARKS",
    "SPLASH2_BENCHMARKS",
    "SocketShare",
    "WebSearchModel",
    "WorkloadProfile",
    "all_profiles",
    "coremark_profile",
    "get_profile",
    "profile_names",
    "throttled_corunner",
]
