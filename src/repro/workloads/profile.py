"""The :class:`WorkloadProfile` trait bundle.

A profile condenses everything the platform model needs to know about a
benchmark into first-order traits.  Traits are *per thread at nominal
frequency on an otherwise idle core*; the scaling model
(:mod:`repro.workloads.scaling`) derives multi-thread and multi-socket
behaviour from them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..chip.core import HardwareThread
from ..errors import WorkloadError


@dataclass(frozen=True)
class WorkloadProfile:
    """First-order behavioural traits of one benchmark."""

    #: Benchmark name (catalog key), e.g. ``"raytrace"``.
    name: str

    #: Originating suite: ``parsec``, ``splash2``, ``spec2006``, ``synthetic``.
    suite: str

    #: Per-thread switching activity on a dedicated core (drives CV²f).
    activity: float

    #: Per-thread instructions per cycle on a dedicated core.
    ipc: float

    #: Memory *latency* sensitivity in [0, 1]: 0 = fully core-bound
    #: (performance scales 1:1 with frequency), 1 = fully memory-bound.
    memory_intensity: float

    #: Off-chip bandwidth demand per thread, in model units (a socket's
    #: memory subsystem saturates at :data:`SOCKET_BANDWIDTH` units).
    bandwidth_demand: float

    #: Cross-thread data sharing in [0, 1]; splitting a sharing-heavy
    #: workload across sockets costs interconnect latency (Fig. 14 left).
    sharing_intensity: float

    #: Amdahl serial fraction of the parallel region (scalable suites).
    serial_fraction: float

    #: di/dt typical-ripple magnitude relative to a raytrace-class thread.
    ripple_scale: float

    #: di/dt worst-droop magnitude relative to a raytrace-class thread.
    droop_scale: float

    #: Single-thread reference execution time at nominal frequency (s).
    t1_seconds: float

    #: Whether the benchmark scales by adding threads (PARSEC/SPLASH-2) as
    #: opposed to running independent rate copies (SPEC CPU2006).
    scalable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("profile name must be non-empty")
        if self.activity <= 0:
            raise WorkloadError(f"{self.name}: activity must be positive")
        if self.ipc <= 0:
            raise WorkloadError(f"{self.name}: ipc must be positive")
        for trait in ("memory_intensity", "sharing_intensity", "serial_fraction"):
            value = getattr(self, trait)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{self.name}: {trait} must be in [0, 1], got {value}"
                )
        if self.bandwidth_demand < 0:
            raise WorkloadError(f"{self.name}: bandwidth_demand must be >= 0")
        if self.ripple_scale < 0 or self.droop_scale < 0:
            raise WorkloadError(f"{self.name}: noise scales must be >= 0")
        if self.t1_seconds <= 0:
            raise WorkloadError(f"{self.name}: t1_seconds must be positive")

    @property
    def frequency_sensitivity(self) -> float:
        """Fraction of performance that scales with core frequency.

        Core-bound work speeds up 1:1 with the clock; memory-bound work
        hides behind DRAM latency.  The 0.85 weight leaves even the most
        memory-bound benchmark with a little frequency sensitivity, matching
        the paper's observation that boost benefits are "especially for
        computing-bound workloads".
        """
        return 1.0 - 0.85 * self.memory_intensity

    def thread(self) -> HardwareThread:
        """A :class:`HardwareThread` carrying this profile's traits."""
        return HardwareThread(workload=self.name, activity=self.activity, ipc=self.ipc)

    def mips_per_thread(self, frequency: float) -> float:
        """Millions of instructions per second of one dedicated thread."""
        if frequency <= 0:
            raise WorkloadError("frequency must be positive")
        return self.ipc * frequency / 1e6

    def with_activity(self, activity: float) -> "WorkloadProfile":
        """Copy of this profile with a different activity (co-runner tuning)."""
        return replace(self, activity=activity)

    def __str__(self) -> str:
        return f"{self.name} ({self.suite})"
