"""Phased workloads: time-varying activity for transient studies.

Real benchmarks move through phases — bodytrack alternates image-processing
bursts with synchronization lulls; memory-bound stretches alternate with
compute kernels.  The steady-state figures average phases away; the
transient engine should not.  :class:`PhasedWorkload` wraps a base profile
with an activity envelope over time, producing the per-tick profile the
engine places.

The envelope is a repeating sequence of :class:`Phase` segments; activity
(and IPC, proportionally) scale by each segment's factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import WorkloadError
from .profile import WorkloadProfile


@dataclass(frozen=True)
class Phase:
    """One segment of the activity envelope."""

    #: Segment duration (s).
    duration: float

    #: Multiplier on the base profile's activity and IPC.
    activity_scale: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration}")
        if self.activity_scale <= 0:
            raise WorkloadError(
                f"activity_scale must be positive, got {self.activity_scale}"
            )


class PhasedWorkload:
    """A base profile modulated by a repeating phase envelope."""

    def __init__(self, base: WorkloadProfile, phases: Sequence[Phase]) -> None:
        if not phases:
            raise WorkloadError("need at least one phase")
        self.base = base
        self.phases = tuple(phases)
        self._period = sum(p.duration for p in self.phases)

    @property
    def period(self) -> float:
        """Length of one full envelope cycle (s)."""
        return self._period

    def phase_at(self, time: float) -> Phase:
        """The envelope segment active at ``time`` (envelope repeats)."""
        if time < 0:
            raise WorkloadError(f"time must be >= 0, got {time}")
        position = time % self._period
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration
            if position < elapsed:
                return phase
        return self.phases[-1]

    def profile_at(self, time: float) -> WorkloadProfile:
        """The effective profile at ``time``: base scaled by the phase."""
        phase = self.phase_at(time)
        return replace(
            self.base,
            activity=self.base.activity * phase.activity_scale,
            ipc=self.base.ipc * phase.activity_scale,
        )

    def mean_activity_scale(self) -> float:
        """Duration-weighted mean of the envelope (sanity/calibration aid)."""
        weighted = sum(p.duration * p.activity_scale for p in self.phases)
        return weighted / self._period


def bursty_envelope(
    burst_seconds: float = 0.25,
    lull_seconds: float = 0.25,
    burst_scale: float = 1.3,
    lull_scale: float = 0.5,
) -> Sequence[Phase]:
    """A two-segment burst/lull envelope (bodytrack-style frame loop)."""
    return (
        Phase(duration=burst_seconds, activity_scale=burst_scale),
        Phase(duration=lull_seconds, activity_scale=lull_scale),
    )
