"""WebSearch: a latency-critical datacenter workload with a QoS target.

The paper's Sec. 5.2.2 evaluates adaptive mapping with WebSearch (after
CloudSuite) running on one core, with its 90th-percentile query latency
required to stay under 0.5 s.  Co-runners on the remaining cores change the
chip's passive voltage drop, which moves the adaptive-guardbanding
frequency of *WebSearch's* core, which moves its tail latency.

The model is a discrete-event single-server FIFO queue:

* queries arrive Poisson at a base rate, with per-window rate modulation
  (lognormal) capturing the diurnal/bursty load variation that makes some
  windows harder than others;
* service times are exponential with a rate that scales with the core
  frequency through the workload's frequency sensitivity;
* each window yields one p90 sample; the *violation rate* is the fraction
  of windows whose p90 exceeds the target — the quantity Fig. 17 plots as
  a CDF.

The base rates are calibrated so that WebSearch running alone (highest
adaptive-guardbanding frequency) meets its target in every window — the
paper's stated throughput-control setpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..errors import WorkloadError
from .profile import WorkloadProfile


@dataclass(frozen=True)
class WebSearchConfig:
    """Calibration of the WebSearch latency model."""

    #: Mean query arrival rate (queries/s).  Chosen close to saturation —
    #: the regime where a few percent of frequency moves the tail hard.
    arrival_rate: float = 45.0

    #: Service rate (queries/s) at the reference frequency.
    service_rate_ref: float = 52.3

    #: Core frequency at which ``service_rate_ref`` holds (Hz) — the clock
    #: the WebSearch core settles at with the *light* co-runner in place.
    reference_frequency: float = 4.648e9

    #: Fraction of service work that scales with core frequency.
    frequency_sensitivity: float = 0.90

    #: Lognormal sigma of per-window arrival-rate modulation.
    rate_modulation_sigma: float = 0.040

    #: 90th-percentile latency target (s).
    p90_target: float = 0.5

    #: Length of one measurement window (s).
    window: float = 30.0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.service_rate_ref <= 0:
            raise WorkloadError("rates must be positive")
        if self.arrival_rate >= self.service_rate_ref:
            raise WorkloadError(
                "arrival rate must be below the reference service rate "
                "(the queue must be stable at the design point)"
            )
        if not 0 < self.frequency_sensitivity <= 1:
            raise WorkloadError("frequency_sensitivity must be in (0, 1]")
        if self.p90_target <= 0 or self.window <= 0:
            raise WorkloadError("target and window must be positive")


class QueryLatencyModel:
    """Single-server FIFO queue driven by one window's arrivals."""

    def __init__(self, service_rate: float) -> None:
        if service_rate <= 0:
            raise WorkloadError("service_rate must be positive")
        self._service_rate = service_rate

    @property
    def service_rate(self) -> float:
        """Queries served per second at full pipeline."""
        return self._service_rate

    def simulate_window(
        self, arrival_rate: float, window: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Latencies (s) of all queries completed inside one window.

        Classic Lindley recursion: query ``i``'s departure is
        ``max(arrival_i, departure_{i-1}) + service_i``.
        """
        if arrival_rate <= 0:
            raise WorkloadError("arrival_rate must be positive")
        if window <= 0:
            raise WorkloadError("window must be positive")
        n_expected = arrival_rate * window
        count = int(rng.poisson(n_expected))
        if count == 0:
            return np.empty(0)
        arrivals = np.sort(rng.uniform(0.0, window, size=count))
        services = rng.exponential(1.0 / self._service_rate, size=count)
        departures = np.empty(count)
        prev = 0.0
        for i in range(count):
            start = max(arrivals[i], prev)
            prev = start + services[i]
            departures[i] = prev
        return departures - arrivals

    def window_p90(
        self, arrival_rate: float, window: float, rng: np.random.Generator
    ) -> float:
        """90th-percentile latency of one window (0 when no query arrived)."""
        latencies = self.simulate_window(arrival_rate, window, rng)
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, 90))


class WebSearchModel:
    """End-to-end WebSearch QoS model: frequency in, p90 distribution out."""

    def __init__(self, config: WebSearchConfig = None) -> None:
        self.config = config or WebSearchConfig()

    def profile(self) -> WorkloadProfile:
        """The placement profile of the WebSearch serving thread."""
        return WorkloadProfile(
            name="websearch",
            suite="synthetic",
            activity=0.78,
            ipc=1.40,
            memory_intensity=0.35,
            bandwidth_demand=4.0,
            sharing_intensity=0.0,
            serial_fraction=0.0,
            ripple_scale=0.9,
            droop_scale=0.95,
            t1_seconds=60.0,
            scalable=False,
        )

    def service_rate(self, frequency: float) -> float:
        """Query service rate (queries/s) at core frequency ``frequency``."""
        if frequency <= 0:
            raise WorkloadError("frequency must be positive")
        cfg = self.config
        fs = cfg.frequency_sensitivity
        speedup = fs * (frequency / cfg.reference_frequency) + (1.0 - fs)
        return cfg.service_rate_ref * speedup

    def sample_p90s(
        self, frequency: float, n_windows: int, seed: int = 11
    ) -> np.ndarray:
        """p90 latency (s) of ``n_windows`` consecutive measurement windows."""
        if n_windows < 1:
            raise WorkloadError(f"n_windows must be >= 1, got {n_windows}")
        cfg = self.config
        rng = np.random.default_rng(seed)
        queue = QueryLatencyModel(self.service_rate(frequency))
        p90s = np.empty(n_windows)
        for i in range(n_windows):
            modulation = float(
                rng.lognormal(mean=0.0, sigma=cfg.rate_modulation_sigma)
            )
            p90s[i] = queue.window_p90(
                cfg.arrival_rate * modulation, cfg.window, rng
            )
        return p90s

    def violation_rate(
        self, frequency: float, n_windows: int = 400, seed: int = 11
    ) -> float:
        """Fraction of windows whose p90 exceeds the QoS target."""
        p90s = self.sample_p90s(frequency, n_windows, seed)
        return float(np.mean(p90s > self.config.p90_target))

    def latency_cdf(
        self, frequency: float, n_windows: int = 400, seed: int = 11
    ) -> tuple:
        """(sorted p90 values, cumulative percentage) — Fig. 17's axes."""
        p90s = np.sort(self.sample_p90s(frequency, n_windows, seed))
        cumulative = np.arange(1, n_windows + 1) / n_windows * 100.0
        return p90s, cumulative

    def mean_p90(self, frequency: float, n_windows: int = 400, seed: int = 11) -> float:
        """Mean of the per-window p90 latencies (s) — the paper's tail metric."""
        return float(np.mean(self.sample_p90s(frequency, n_windows, seed)))
