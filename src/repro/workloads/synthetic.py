"""Synthetic workloads: coremark and issue-throttled co-runners.

The paper uses coremark for the colocation study (Fig. 15) because its
footprint is core-contained — it isolates the frequency effects of adaptive
guardbanding from memory interference.  For the WebSearch QoS study
(Sec. 5.2.2) the authors build light / medium / heavy co-runners "from
coremark threads by constraining the issue rate", landing at chip MIPS of
about 13,000, 28,000 and 70,000.

This module reproduces both constructions.  Throttling the issue rate
scales activity and IPC together — exactly what a fetch-rate limiter does
to a core-bound loop.
"""

from __future__ import annotations

from ..errors import WorkloadError
from .profile import WorkloadProfile

#: Per-thread IPC of an unthrottled coremark thread.
COREMARK_IPC = 2.05

#: Per-thread activity of an unthrottled coremark thread.
COREMARK_ACTIVITY = 0.93

#: Chip-MIPS targets of the paper's three co-runner classes on seven cores.
CORUNNER_MIPS = {"light": 13_000.0, "medium": 28_000.0, "heavy": 70_000.0}


def coremark_profile() -> WorkloadProfile:
    """The unthrottled coremark profile (core-contained, no memory traffic)."""
    return WorkloadProfile(
        name="coremark",
        suite="synthetic",
        activity=COREMARK_ACTIVITY,
        ipc=COREMARK_IPC,
        memory_intensity=0.02,
        bandwidth_demand=0.3,
        sharing_intensity=0.0,
        serial_fraction=0.0,
        ripple_scale=0.9,
        droop_scale=0.85,
        t1_seconds=60.0,
        scalable=False,
    )


def throttled_corunner(
    level: str,
    n_cores: int = 7,
    frequency: float = 4.2e9,
) -> WorkloadProfile:
    """A light/medium/heavy co-runner built from issue-throttled coremark.

    Parameters
    ----------
    level:
        ``"light"``, ``"medium"`` or ``"heavy"`` (Sec. 5.2.2's classes).
    n_cores:
        Number of cores the co-runner occupies (paper: the seven cores not
        running WebSearch).
    frequency:
        Clock at which the MIPS target is defined.

    The returned profile's per-thread IPC is chosen so that ``n_cores``
    threads aggregate to the class's chip-MIPS target, and activity scales
    proportionally from the unthrottled values — an issue-rate limiter cuts
    switching and retirement together.
    """
    if level not in CORUNNER_MIPS:
        raise WorkloadError(
            f"unknown co-runner level {level!r}; pick from {sorted(CORUNNER_MIPS)}"
        )
    if n_cores < 1:
        raise WorkloadError(f"n_cores must be >= 1, got {n_cores}")
    if frequency <= 0:
        raise WorkloadError("frequency must be positive")
    target_mips = CORUNNER_MIPS[level]
    ipc = target_mips / n_cores / (frequency / 1e6)
    throttle = ipc / COREMARK_IPC
    base = coremark_profile()
    return WorkloadProfile(
        name=f"corunner_{level}",
        suite="synthetic",
        activity=max(COREMARK_ACTIVITY * throttle, 0.02),
        ipc=ipc,
        memory_intensity=base.memory_intensity,
        bandwidth_demand=base.bandwidth_demand * throttle,
        sharing_intensity=0.0,
        serial_fraction=0.0,
        ripple_scale=base.ripple_scale * max(throttle, 0.3),
        droop_scale=base.droop_scale * max(throttle, 0.3),
        t1_seconds=base.t1_seconds,
        scalable=False,
    )
