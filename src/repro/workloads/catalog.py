"""Calibrated benchmark catalog: PARSEC, SPLASH-2 and SPEC CPU2006.

Every benchmark the paper measures appears here with first-order traits
calibrated so the reproduction lands on the paper's published curves (see
DESIGN.md section 4 for the anchor table).  Traits are not invented per
figure: each benchmark has *one* profile and every experiment reads it.

Calibration rationale (matching the paper's observations):

* Power-hungry compute-bound threads (lu_cb, swaptions, raytrace) induce
  large passive drop at eight cores, so their adaptive-guardbanding benefit
  collapses (Fig. 5) — they get high ``activity``.
* Memory-bound threads (radix, ocean_cp, mcf, lbm) keep the chip cool, so
  their benefit stays nearly flat — low ``activity``, high
  ``memory_intensity`` and ``bandwidth_demand``.
* ``activity`` and ``ipc`` are correlated across the catalog (power tracks
  MIPS to first order), which is precisely what makes the paper's Fig. 16
  MIPS-based frequency predictor work with 0.3% RMSE.
* SPLASH-2 kernels with heavy communication (lu_ncb, radiosity) carry high
  ``sharing_intensity`` — they are the workloads loadline borrowing hurts
  (Fig. 14, leftmost).
* Bandwidth-saturated workloads (radix, fft, lbm, zeusmp, GemsFDTD) carry
  the highest ``bandwidth_demand`` — they are the workloads loadline
  borrowing helps most (Fig. 14, rightmost, 50–171% energy gains).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from .profile import WorkloadProfile


def _parsec(name: str, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="parsec", scalable=True, **kw)


def _splash2(name: str, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="splash2", scalable=True, **kw)


def _spec(name: str, **kw) -> WorkloadProfile:
    """SPEC CPU2006 benchmarks run as SPECrate copies: independent, unshared."""
    return WorkloadProfile(
        name=name,
        suite="spec2006",
        scalable=False,
        sharing_intensity=0.0,
        serial_fraction=0.0,
        **kw,
    )


_PROFILES: List[WorkloadProfile] = [
    # ------------------------------------------------------------------
    # PARSEC (scalable pthread workloads)
    # ------------------------------------------------------------------
    _parsec(
        "blackscholes",
        activity=0.88, ipc=1.55, memory_intensity=0.18, bandwidth_demand=2.5,
        sharing_intensity=0.04, serial_fraction=0.02,
        ripple_scale=0.9, droop_scale=0.9, t1_seconds=95.0,
    ),
    _parsec(
        "bodytrack",
        activity=0.92, ipc=1.60, memory_intensity=0.28, bandwidth_demand=4.0,
        sharing_intensity=0.22, serial_fraction=0.04,
        ripple_scale=1.15, droop_scale=1.25, t1_seconds=110.0,
    ),
    _parsec(
        "ferret",
        activity=0.80, ipc=1.35, memory_intensity=0.40, bandwidth_demand=5.5,
        sharing_intensity=0.18, serial_fraction=0.03,
        ripple_scale=1.0, droop_scale=1.0, t1_seconds=130.0,
    ),
    _parsec(
        "freqmine",
        activity=0.90, ipc=1.50, memory_intensity=0.30, bandwidth_demand=4.5,
        sharing_intensity=0.25, serial_fraction=0.05,
        ripple_scale=0.95, droop_scale=0.95, t1_seconds=125.0,
    ),
    _parsec(
        "raytrace",
        activity=1.00, ipc=1.80, memory_intensity=0.22, bandwidth_demand=3.0,
        sharing_intensity=0.12, serial_fraction=0.02,
        ripple_scale=1.0, droop_scale=1.0, t1_seconds=100.0,
    ),
    _parsec(
        "swaptions",
        activity=1.06, ipc=1.95, memory_intensity=0.04, bandwidth_demand=0.8,
        sharing_intensity=0.02, serial_fraction=0.01,
        ripple_scale=1.05, droop_scale=1.0, t1_seconds=90.0,
    ),
    _parsec(
        "vips",
        activity=0.86, ipc=1.45, memory_intensity=0.35, bandwidth_demand=5.0,
        sharing_intensity=0.10, serial_fraction=0.03,
        ripple_scale=1.2, droop_scale=1.3, t1_seconds=105.0,
    ),
    # ------------------------------------------------------------------
    # SPLASH-2 (scalable scientific kernels)
    # ------------------------------------------------------------------
    _splash2(
        "barnes",
        activity=0.84, ipc=1.40, memory_intensity=0.32, bandwidth_demand=4.5,
        sharing_intensity=0.30, serial_fraction=0.03,
        ripple_scale=1.0, droop_scale=1.05, t1_seconds=115.0,
    ),
    _splash2(
        "fft",
        activity=0.56, ipc=0.95, memory_intensity=0.80, bandwidth_demand=8.5,
        sharing_intensity=0.10, serial_fraction=0.02,
        ripple_scale=0.8, droop_scale=0.85, t1_seconds=80.0,
    ),
    _splash2(
        "lu_cb",
        activity=1.12, ipc=2.10, memory_intensity=0.12, bandwidth_demand=3.0,
        sharing_intensity=0.08, serial_fraction=0.02,
        ripple_scale=1.15, droop_scale=1.1, t1_seconds=95.0,
    ),
    _splash2(
        "lu_ncb",
        activity=0.95, ipc=1.65, memory_intensity=0.30, bandwidth_demand=5.0,
        sharing_intensity=0.62, serial_fraction=0.04,
        ripple_scale=1.05, droop_scale=1.05, t1_seconds=105.0,
    ),
    _splash2(
        "ocean_cp",
        activity=0.64, ipc=1.05, memory_intensity=0.72, bandwidth_demand=8.5,
        sharing_intensity=0.16, serial_fraction=0.03,
        ripple_scale=0.85, droop_scale=0.9, t1_seconds=85.0,
    ),
    _splash2(
        "ocean_ncp",
        activity=0.70, ipc=1.15, memory_intensity=0.65, bandwidth_demand=7.5,
        sharing_intensity=0.34, serial_fraction=0.03,
        ripple_scale=0.9, droop_scale=0.9, t1_seconds=90.0,
    ),
    _splash2(
        "radiosity",
        activity=0.93, ipc=1.60, memory_intensity=0.25, bandwidth_demand=4.0,
        sharing_intensity=0.58, serial_fraction=0.05,
        ripple_scale=1.0, droop_scale=1.0, t1_seconds=120.0,
    ),
    _splash2(
        "radix",
        activity=0.52, ipc=0.88, memory_intensity=0.85, bandwidth_demand=8.5,
        sharing_intensity=0.08, serial_fraction=0.02,
        ripple_scale=0.75, droop_scale=0.8, t1_seconds=70.0,
    ),
    _splash2(
        "water_nsquared",
        activity=0.96, ipc=1.70, memory_intensity=0.15, bandwidth_demand=2.5,
        sharing_intensity=0.26, serial_fraction=0.03,
        ripple_scale=1.2, droop_scale=1.35, t1_seconds=110.0,
    ),
    _splash2(
        "water_spatial",
        activity=0.90, ipc=1.58, memory_intensity=0.18, bandwidth_demand=2.8,
        sharing_intensity=0.20, serial_fraction=0.03,
        ripple_scale=1.0, droop_scale=1.05, t1_seconds=105.0,
    ),
    # ------------------------------------------------------------------
    # SPEC CPU2006 (run as SPECrate copies, one per core)
    # ------------------------------------------------------------------
    _spec("perl", activity=0.97, ipc=1.75, memory_intensity=0.15,
          bandwidth_demand=2.0, ripple_scale=1.0, droop_scale=1.0, t1_seconds=140.0),
    _spec("bzip2", activity=0.85, ipc=1.45, memory_intensity=0.30,
          bandwidth_demand=4.0, ripple_scale=0.95, droop_scale=0.95, t1_seconds=130.0),
    _spec("gcc", activity=0.74, ipc=1.20, memory_intensity=0.48,
          bandwidth_demand=7.0, ripple_scale=0.9, droop_scale=0.95, t1_seconds=150.0),
    _spec("bwaves", activity=0.62, ipc=1.00, memory_intensity=0.70,
          bandwidth_demand=12.0, ripple_scale=0.8, droop_scale=0.85, t1_seconds=160.0),
    _spec("gamess", activity=1.02, ipc=1.90, memory_intensity=0.08,
          bandwidth_demand=1.2, ripple_scale=1.0, droop_scale=1.0, t1_seconds=145.0),
    _spec("mcf", activity=0.34, ipc=0.42, memory_intensity=0.95,
          bandwidth_demand=6.0, ripple_scale=0.6, droop_scale=0.7, t1_seconds=170.0),
    _spec("milc", activity=0.58, ipc=0.92, memory_intensity=0.75,
          bandwidth_demand=11.5, ripple_scale=0.8, droop_scale=0.8, t1_seconds=155.0),
    _spec("zeusmp", activity=0.60, ipc=0.98, memory_intensity=0.72,
          bandwidth_demand=13.0, ripple_scale=0.85, droop_scale=0.9, t1_seconds=150.0),
    _spec("gromacs", activity=1.05, ipc=1.92, memory_intensity=0.10,
          bandwidth_demand=1.5, ripple_scale=1.05, droop_scale=1.0, t1_seconds=135.0),
    _spec("cactusADM", activity=0.66, ipc=1.08, memory_intensity=0.62,
          bandwidth_demand=9.0, ripple_scale=0.85, droop_scale=0.85, t1_seconds=160.0),
    _spec("leslie3d", activity=0.63, ipc=1.02, memory_intensity=0.68,
          bandwidth_demand=11.8, ripple_scale=0.8, droop_scale=0.85, t1_seconds=155.0),
    _spec("namd", activity=1.03, ipc=1.88, memory_intensity=0.08,
          bandwidth_demand=1.2, ripple_scale=1.0, droop_scale=1.0, t1_seconds=140.0),
    _spec("gobmk", activity=0.90, ipc=1.52, memory_intensity=0.20,
          bandwidth_demand=2.5, ripple_scale=1.1, droop_scale=1.15, t1_seconds=135.0),
    _spec("dealII", activity=0.94, ipc=1.62, memory_intensity=0.25,
          bandwidth_demand=3.5, ripple_scale=1.0, droop_scale=1.0, t1_seconds=145.0),
    _spec("soplex", activity=0.68, ipc=1.10, memory_intensity=0.58,
          bandwidth_demand=8.5, ripple_scale=0.85, droop_scale=0.9, t1_seconds=150.0),
    _spec("povray", activity=1.00, ipc=1.85, memory_intensity=0.05,
          bandwidth_demand=0.8, ripple_scale=1.05, droop_scale=1.05, t1_seconds=130.0),
    _spec("calculix", activity=0.98, ipc=1.78, memory_intensity=0.12,
          bandwidth_demand=2.0, ripple_scale=1.0, droop_scale=1.0, t1_seconds=150.0),
    _spec("hmmer", activity=1.04, ipc=1.90, memory_intensity=0.06,
          bandwidth_demand=1.0, ripple_scale=0.95, droop_scale=0.95, t1_seconds=125.0),
    _spec("sjeng", activity=0.92, ipc=1.55, memory_intensity=0.18,
          bandwidth_demand=2.2, ripple_scale=1.1, droop_scale=1.15, t1_seconds=140.0),
    _spec("GemsFDTD", activity=0.58, ipc=0.95, memory_intensity=0.78,
          bandwidth_demand=16.0, ripple_scale=0.8, droop_scale=0.85, t1_seconds=165.0),
    _spec("h264ref", activity=1.01, ipc=1.82, memory_intensity=0.12,
          bandwidth_demand=2.0, ripple_scale=1.05, droop_scale=1.05, t1_seconds=135.0),
    _spec("tonto", activity=0.96, ipc=1.70, memory_intensity=0.15,
          bandwidth_demand=2.2, ripple_scale=1.0, droop_scale=1.0, t1_seconds=145.0),
    _spec("lbm", activity=0.55, ipc=0.90, memory_intensity=0.82,
          bandwidth_demand=15.5, ripple_scale=0.75, droop_scale=0.8, t1_seconds=150.0),
    _spec("omnetpp", activity=0.60, ipc=0.95, memory_intensity=0.62,
          bandwidth_demand=7.5, ripple_scale=0.85, droop_scale=0.9, t1_seconds=145.0),
    _spec("astar", activity=0.72, ipc=1.18, memory_intensity=0.45,
          bandwidth_demand=5.5, ripple_scale=0.9, droop_scale=0.95, t1_seconds=140.0),
    _spec("wrf", activity=0.78, ipc=1.28, memory_intensity=0.42,
          bandwidth_demand=6.5, ripple_scale=0.9, droop_scale=0.9, t1_seconds=155.0),
    _spec("sphinx3", activity=0.70, ipc=1.12, memory_intensity=0.50,
          bandwidth_demand=7.0, ripple_scale=0.9, droop_scale=0.95, t1_seconds=150.0),
    _spec("xalancbmk", activity=0.76, ipc=1.25, memory_intensity=0.45,
          bandwidth_demand=6.0, ripple_scale=0.95, droop_scale=1.0, t1_seconds=145.0),
]

_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in _PROFILES}

#: Names of PARSEC benchmarks in the catalog.
PARSEC_BENCHMARKS = tuple(p.name for p in _PROFILES if p.suite == "parsec")

#: Names of SPLASH-2 benchmarks in the catalog.
SPLASH2_BENCHMARKS = tuple(p.name for p in _PROFILES if p.suite == "splash2")

#: Names of SPEC CPU2006 benchmarks in the catalog (run as SPECrate).
SPEC_BENCHMARKS = tuple(p.name for p in _PROFILES if p.suite == "spec2006")

#: The 17 scalable workloads the paper uses for core-scaling studies.
SCALABLE_BENCHMARKS = PARSEC_BENCHMARKS + SPLASH2_BENCHMARKS


def get_profile(name: str) -> WorkloadProfile:
    """Look up one benchmark profile by name.

    Raises
    ------
    WorkloadError
        If ``name`` is not in the catalog (with a hint listing close names).
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        close = [n for n in _BY_NAME if name.lower() in n.lower() or n.lower() in name.lower()]
        hint = f"; did you mean {close}?" if close else ""
        raise WorkloadError(f"unknown benchmark {name!r}{hint}") from None


def all_profiles() -> List[WorkloadProfile]:
    """Every profile in the catalog (stable order)."""
    return list(_PROFILES)


def profile_names() -> List[str]:
    """Every benchmark name in the catalog (stable order)."""
    return [p.name for p in _PROFILES]
