"""Runtime model: thread scaling, memory contention, cross-socket effects.

Execution time composes four first-order effects:

* **Amdahl scaling** for the scalable suites: ``T ∝ s + (1 − s)/n``;
  SPECrate copies are independent, so copy time does not shrink with copies.
* **Memory-bandwidth contention**: each socket's memory subsystem delivers
  :data:`SOCKET_BANDWIDTH` units; when the threads on a socket demand more,
  memory-bound work slows proportionally.  This is the effect that makes
  spreading radix/fft/lbm across sockets dramatically faster (Fig. 14,
  right) — each socket brings its own memory controllers.
* **Cross-socket sharing penalty**: splitting a sharing-heavy SPLASH-2
  kernel across sockets pays interchip latency on every shared access
  (Fig. 14, left: lu_ncb and radiosity lose >20%).
* **Frequency speedup**: only the core-bound fraction of execution scales
  with the clock (:attr:`WorkloadProfile.frequency_sensitivity`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import WorkloadError
from .profile import WorkloadProfile

#: Memory bandwidth one socket can deliver, in profile demand units.
#: Sized so that eight single threads of any scalable benchmark fit in one
#: socket's bandwidth, while 32 SMT threads or eight SPECrate copies of
#: the bandwidth-heavy workloads oversubscribe it — matching where the
#: paper sees contention relief from spreading (Fig. 14) and where it
#: does not (Fig. 13).
SOCKET_BANDWIDTH = 70.0

#: Fraction of a core's switching power that persists while it stalls on
#: a saturated memory subsystem (clock trees, queues and retries keep
#: burning; only the datapath quiets down).
STALL_POWER_FRACTION = 0.75

#: Relative execution-time cost of full cross-socket sharing
#: (``sharing_intensity == 1``) when a workload is split across sockets.
CROSS_SOCKET_PENALTY = 0.45


@dataclass(frozen=True)
class SocketShare:
    """How many of a workload's threads sit on each socket."""

    threads_per_socket: tuple

    def __post_init__(self) -> None:
        if not self.threads_per_socket:
            raise WorkloadError("threads_per_socket must be non-empty")
        if any(t < 0 for t in self.threads_per_socket):
            raise WorkloadError("thread counts must be >= 0")
        if self.total == 0:
            raise WorkloadError("at least one thread must be placed")

    @property
    def total(self) -> int:
        """Total threads across sockets."""
        return sum(self.threads_per_socket)

    @property
    def n_sockets_used(self) -> int:
        """Number of sockets hosting at least one thread."""
        return sum(1 for t in self.threads_per_socket if t > 0)

    @classmethod
    def consolidated(cls, n_threads: int, n_sockets: int = 2) -> "SocketShare":
        """All threads on socket 0 (the conventional consolidation policy)."""
        return cls(tuple([n_threads] + [0] * (n_sockets - 1)))

    @classmethod
    def balanced(cls, n_threads: int, n_sockets: int = 2) -> "SocketShare":
        """Threads spread as evenly as possible (loadline borrowing)."""
        base, extra = divmod(n_threads, n_sockets)
        return cls(tuple(base + (1 if i < extra else 0) for i in range(n_sockets)))


class RuntimeModel:
    """Derives execution time and throughput from a profile and placement."""

    def __init__(
        self,
        socket_bandwidth: float = SOCKET_BANDWIDTH,
        cross_socket_penalty: float = CROSS_SOCKET_PENALTY,
    ) -> None:
        if socket_bandwidth <= 0:
            raise WorkloadError("socket_bandwidth must be positive")
        if cross_socket_penalty < 0:
            raise WorkloadError("cross_socket_penalty must be >= 0")
        self._bandwidth = socket_bandwidth
        self._cross_penalty = cross_socket_penalty

    @property
    def socket_bandwidth(self) -> float:
        """Per-socket memory bandwidth (profile demand units)."""
        return self._bandwidth

    @property
    def cross_socket_penalty(self) -> float:
        """Relative cost of full cross-socket sharing."""
        return self._cross_penalty

    def sweep_params(self):
        """The model as a batch-task ``runtime_params`` tuple.

        ``None`` when both parameters are the calibrated defaults, so task
        cache keys stay identical to those of callers that omit the model.
        """
        if (
            self._bandwidth == SOCKET_BANDWIDTH
            and self._cross_penalty == CROSS_SOCKET_PENALTY
        ):
            return None
        return (self._bandwidth, self._cross_penalty)

    def amdahl_factor(self, profile: WorkloadProfile, n_threads: int) -> float:
        """Parallel-scaling multiplier on single-thread time (≤ 1).

        SPECrate copies are independent: adding copies does not shrink the
        time of any one copy, so the factor is 1.
        """
        if n_threads < 1:
            raise WorkloadError(f"n_threads must be >= 1, got {n_threads}")
        if not profile.scalable:
            return 1.0
        s = profile.serial_fraction
        return s + (1.0 - s) / n_threads

    def contention_factor(
        self,
        profile: WorkloadProfile,
        share: SocketShare,
        threads_per_core: int = 1,
    ) -> float:
        """Memory-contention multiplier on execution time (≥ 1).

        Computed per socket from aggregate bandwidth demand; the workload
        runs at the pace of its most contended socket.  Only the
        memory-bound fraction of execution stretches.  A core running
        several SMT threads demands the per-thread bandwidth scaled by the
        SMT throughput yield, not by the raw thread count — the pipeline,
        not the thread count, generates the traffic.
        """
        if threads_per_core < 1:
            raise WorkloadError(
                f"threads_per_core must be >= 1, got {threads_per_core}"
            )
        smt_yield = threads_per_core**0.45
        worst = 1.0
        for n_threads in share.threads_per_socket:
            if n_threads == 0:
                continue
            cores = -(-n_threads // threads_per_core)
            demand = cores * profile.bandwidth_demand * smt_yield
            oversubscription = max(demand / self._bandwidth, 1.0)
            # Memory-bound fraction stretches with oversubscription.
            factor = 1.0 + profile.memory_intensity * (oversubscription - 1.0)
            worst = max(worst, factor)
        return worst

    def sharing_factor(self, profile: WorkloadProfile, share: SocketShare) -> float:
        """Cross-socket communication multiplier on execution time (≥ 1)."""
        if share.n_sockets_used <= 1:
            return 1.0
        return 1.0 + self._cross_penalty * profile.sharing_intensity

    def frequency_speedup(
        self, profile: WorkloadProfile, frequency: float, reference: float
    ) -> float:
        """Performance ratio of running at ``frequency`` vs ``reference``.

        Only the core-bound fraction follows the clock; the memory-bound
        remainder is pinned to DRAM latency.
        """
        if frequency <= 0 or reference <= 0:
            raise WorkloadError("frequencies must be positive")
        fs = profile.frequency_sensitivity
        return fs * (frequency / reference) + (1.0 - fs)

    def execution_time(
        self,
        profile: WorkloadProfile,
        share: SocketShare,
        frequency: float,
        reference_frequency: float,
        threads_per_core: int = 1,
    ) -> float:
        """End-to-end execution time (s) of the workload under ``share``.

        ``frequency`` is the effective core clock the threads observed
        (adaptive guardbanding makes this a variable); ``reference_frequency``
        is the clock at which :attr:`WorkloadProfile.t1_seconds` was defined
        (the nominal static-guardband frequency).
        """
        time = profile.t1_seconds
        time *= self.amdahl_factor(profile, share.total)
        time *= self.contention_factor(profile, share, threads_per_core)
        time *= self.sharing_factor(profile, share)
        time /= self.frequency_speedup(profile, frequency, reference_frequency)
        return time

    def stretch_factor(
        self,
        profile: WorkloadProfile,
        share: SocketShare,
        threads_per_core: int = 1,
    ) -> float:
        """Combined contention × sharing execution stretch (≥ 1)."""
        return self.contention_factor(
            profile, share, threads_per_core
        ) * self.sharing_factor(profile, share)

    def effective_activity(
        self,
        profile: WorkloadProfile,
        share: SocketShare,
        threads_per_core: int = 1,
    ) -> float:
        """Per-thread switching activity after memory-contention stalls.

        A thread stalled on a saturated memory subsystem switches less
        logic, but far from proportionally: clocking and queueing keep
        :data:`STALL_POWER_FRACTION` of the switching power alive, and only
        the remainder scales down with the contention stretch.  (Cross-
        socket sharing latency does *not* reduce activity — coherence
        traffic keeps the pipeline busy.)
        """
        contention = self.contention_factor(profile, share, threads_per_core)
        return profile.activity * (
            STALL_POWER_FRACTION + (1.0 - STALL_POWER_FRACTION) / contention
        )

    def effective_mips(
        self,
        profile: WorkloadProfile,
        share: SocketShare,
        frequencies: Sequence[float],
        threads_per_core: int = 1,
    ) -> float:
        """Aggregate MIPS of the workload's threads across the server.

        Per-thread MIPS is the dedicated-core value divided by the same
        contention/sharing stretch that lengthens execution time — retired
        instructions are conserved.
        """
        if len(frequencies) != len(share.threads_per_socket):
            raise WorkloadError(
                "need one frequency per socket: got "
                f"{len(frequencies)} for {len(share.threads_per_socket)} sockets"
            )
        stretch = self.stretch_factor(profile, share, threads_per_core)
        total = 0.0
        for n_threads, freq in zip(share.threads_per_socket, frequencies):
            total += n_threads * profile.mips_per_thread(freq) / stretch
        return total
