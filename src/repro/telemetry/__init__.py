"""AMESTER-style telemetry: sensors, CPM readers, and the 32 ms poller.

The paper reads its platform through the IBM AMESTER tool at a minimum
sampling interval of 32 ms, with CPMs readable in *sample* mode (an
instantaneous snapshot) or *sticky* mode (the worst — smallest — code seen
in the past window).  This package reproduces those read semantics against
the simulator, so the analysis code consumes the same kind of data the
paper's authors had.
"""

from .amester import Amester, TelemetryRecord
from .cpm_reader import CpmReadMode, CpmReader
from .sensors import SensorReading, SocketSensors

__all__ = [
    "Amester",
    "CpmReadMode",
    "CpmReader",
    "SensorReading",
    "SocketSensors",
    "TelemetryRecord",
]
