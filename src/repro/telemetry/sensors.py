"""Platform sensors: Vdd rail power, VRM current, die temperature.

Each sensor reads from a settled :class:`~repro.sim.socket.SocketSolution`
— the simulator's equivalent of the service processor's register file.
Readings carry the sensor name and unit so traces are self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..errors import SensorError

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.socket import ProcessorSocket, SocketSolution


@dataclass(frozen=True)
class SensorReading:
    """One sensor sample."""

    name: str
    value: float
    unit: str

    def __str__(self) -> str:
        return f"{self.name}={self.value:.3f}{self.unit}"


class SocketSensors:
    """The sensor set of one socket, as AMESTER exposes it."""

    #: Known sensor names and their units.
    SENSORS: Dict[str, str] = {
        "vdd_power": "W",
        "vdd_current": "A",
        "vdd_setpoint": "V",
        "vcs_power": "W",
        "temperature": "C",
        "frequency_mean": "Hz",
        "frequency_min": "Hz",
    }

    def __init__(self, socket: "ProcessorSocket") -> None:
        self._socket = socket

    def read(self, name: str, solution: "SocketSolution") -> SensorReading:
        """Read one named sensor from a settled state."""
        if name not in self.SENSORS:
            raise SensorError(
                f"unknown sensor {name!r}; available: {sorted(self.SENSORS)}"
            )
        value = getattr(self, f"_read_{name}")(solution)
        return SensorReading(name=name, value=value, unit=self.SENSORS[name])

    def read_all(self, solution: "SocketSolution") -> Dict[str, SensorReading]:
        """Read every sensor."""
        return {name: self.read(name, solution) for name in self.SENSORS}

    def _read_vdd_power(self, solution: "SocketSolution") -> float:
        return solution.chip_power

    def _read_vdd_current(self, solution: "SocketSolution") -> float:
        return solution.total_current

    def _read_vdd_setpoint(self, solution: "SocketSolution") -> float:
        return solution.drops.setpoint

    def _read_vcs_power(self, solution: "SocketSolution") -> float:
        return self._socket.chip.vcs_power(solution.temperature)

    def _read_temperature(self, solution: "SocketSolution") -> float:
        return solution.temperature

    def _read_frequency_mean(self, solution: "SocketSolution") -> float:
        return solution.mean_frequency

    def _read_frequency_min(self, solution: "SocketSolution") -> float:
        return solution.min_frequency
