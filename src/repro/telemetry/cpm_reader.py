"""CPM reads in sample mode and sticky mode.

Sec. 4.1 of the paper: "In sticky mode, AMESTER reads the worst-case, i.e.
smallest, output of each CPM during the past 32 ms, which is useful for
quantifying worst-case droops.  In sample mode, AMESTER provides a
real-time sample of each CPM, which is useful for characterizing normal
operation."

Against the simulator:

* **sample mode** reads the CPM codes at the typical-condition operating
  point (the settled voltages, which already include the typical ripple
  trough);
* **sticky mode** additionally draws the worst-case droop events of the
  window from the socket's di/dt process and reports the code at the
  deepest instantaneous voltage.

Both modes are per-core (the reader returns the codes of every CPM in a
core; the DPLL loop and most analyses use the minimum).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..faults.injector import fault_injector

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.socket import ProcessorSocket, SocketSolution


class CpmReadMode(enum.Enum):
    """AMESTER CPM read semantics."""

    #: Instantaneous snapshot (typical operation).
    SAMPLE = "sample"

    #: Worst (smallest) code over the past window (droop capture).
    STICKY = "sticky"


class CpmReader:
    """Reads CPM codes from a settled socket state.

    Parameters
    ----------
    socket:
        The socket to read.
    window:
        Sticky-mode window length (s); the paper's interval is 32 ms.
    seed:
        Seed of the droop-event draw used by sticky mode.
    """

    def __init__(self, socket: "ProcessorSocket", window: float = 0.032, seed: int = 23) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._socket = socket
        self._window = window
        self._rng = np.random.default_rng(seed)
        #: Last codes served per (core, mode) — only ever written while a
        #: fault injector is installed, so it can replay a frozen window
        #: during an injected stale-telemetry fault.  Untouched (and
        #: empty) on the fault-free path.
        self._last_codes: Dict[Tuple[int, str], Tuple[int, ...]] = {}

    @property
    def window(self) -> float:
        """Sticky-mode window (s)."""
        return self._window

    def read_core(
        self,
        solution: "SocketSolution",
        core_id: int,
        mode: CpmReadMode = CpmReadMode.SAMPLE,
    ) -> List[int]:
        """Codes of every CPM in ``core_id`` under the given mode."""
        chip = self._socket.chip
        voltage = solution.core_voltages[core_id]
        frequency = solution.frequencies[core_id]
        if mode is CpmReadMode.STICKY:
            n_active = chip.n_active_cores()
            droop = self._socket.path.noise.worst_in_window(
                n_active, self._window, self._rng
            )
            voltage -= droop
        margin = chip.timing.margin(voltage, frequency)
        codes = chip.cpm_bank.read_core(core_id, margin, frequency)
        injector = fault_injector()
        if injector.enabled:
            socket_id = getattr(self._socket, "socket_id", 0)
            key = (core_id, mode.value)
            if injector.stale_active(socket_id):
                frozen = self._last_codes.get(key)
                if frozen is not None:
                    injector.record_stale()
                    return list(frozen)
            codes = injector.transform_codes(socket_id, core_id, codes)
            self._last_codes[key] = tuple(codes)
        return codes

    def read_chip(
        self,
        solution: "SocketSolution",
        mode: CpmReadMode = CpmReadMode.SAMPLE,
    ) -> List[List[int]]:
        """Codes of every CPM on the die, per core."""
        return [
            self.read_core(solution, core_id, mode)
            for core_id in range(self._socket.chip.n_cores)
        ]

    def worst_codes(
        self,
        solution: "SocketSolution",
        mode: CpmReadMode = CpmReadMode.SAMPLE,
    ) -> List[int]:
        """Per-core minimum code — the quantity the control loops compare."""
        return [min(codes) for codes in self.read_chip(solution, mode)]

    def estimate_drop(
        self,
        solution: "SocketSolution",
        core_id: int,
        mode: CpmReadMode = CpmReadMode.SAMPLE,
        reference_code: float = None,
    ) -> float:
        """Voltage drop (V) inferred from CPM codes — the Sec. 4.1 method.

        Converts the observed worst code of a core back to volts using the
        CPM transfer function, relative to ``reference_code`` (defaults to
        the code the core would show with zero drop at its clock).  This is
        the "CPMs as performance counters for voltage" technique.
        """
        chip = self._socket.chip
        frequency = solution.frequencies[core_id]
        cpms = chip.cpm_bank.core_cpms(core_id)
        observed = min(self.read_core(solution, core_id, mode))
        worst_cpm = min(cpms, key=lambda c: c.read(
            chip.timing.margin(solution.core_voltages[core_id], frequency), frequency
        ))
        if reference_code is None:
            zero_drop_margin = chip.timing.margin(
                solution.drops.setpoint, frequency
            )
            reference_code = worst_cpm.read(zero_drop_margin, frequency)
        per_bit = worst_cpm.volts_per_bit(frequency)
        return max(reference_code - observed, 0) * per_bit
