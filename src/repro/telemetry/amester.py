"""The AMESTER-style poller: periodic sensor + CPM trace recording.

:class:`Amester` polls a socket at a fixed interval (≥ 32 ms — the service
processor's floor, which the real tool enforces) and accumulates
:class:`TelemetryRecord` rows.  It is the measurement harness the Fig. 6
and Fig. 9 experiments use: everything those figures plot passes through
this interface rather than peeking at simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from ..errors import SensorError
from .cpm_reader import CpmReadMode, CpmReader
from .sensors import SensorReading, SocketSensors

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.socket import ProcessorSocket, SocketSolution

#: The service processor cannot sample faster than this (s).
MIN_INTERVAL = 0.032


@dataclass(frozen=True)
class TelemetryRecord:
    """One polling interval's worth of telemetry."""

    #: Sample timestamp (s since trace start).
    time: float

    #: All platform sensors.
    sensors: Dict[str, SensorReading]

    #: Per-core sample-mode worst CPM codes.
    cpm_sample: tuple

    #: Per-core sticky-mode worst CPM codes.
    cpm_sticky: tuple

    def sensor(self, name: str) -> float:
        """Value of one sensor."""
        return self.sensors[name].value


@dataclass
class TelemetryTrace:
    """An append-only sequence of records with series extraction."""

    records: List[TelemetryRecord] = field(default_factory=list)

    def append(self, record: TelemetryRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def series(self, sensor: str) -> List[float]:
        """All samples of one sensor, in time order."""
        return [r.sensor(sensor) for r in self.records]

    def cpm_series(self, core_id: int, mode: CpmReadMode) -> List[int]:
        """All worst-code samples of one core under one read mode."""
        if mode is CpmReadMode.SAMPLE:
            return [r.cpm_sample[core_id] for r in self.records]
        return [r.cpm_sticky[core_id] for r in self.records]

    def to_csv(self) -> str:
        """Render the trace as CSV (time, sensors, per-core CPM columns).

        The practical export path: AMESTER users log to CSV and analyze
        offline; so do users of this simulator.
        """
        if not self.records:
            return ""
        first = self.records[0]
        sensor_names = sorted(first.sensors)
        n_cores = len(first.cpm_sample)
        header = (
            ["time_s"]
            + sensor_names
            + [f"cpm_sample_c{i}" for i in range(n_cores)]
            + [f"cpm_sticky_c{i}" for i in range(n_cores)]
        )
        lines = [",".join(header)]
        for record in self.records:
            row = [f"{record.time:.6f}"]
            row += [f"{record.sensor(name):.6g}" for name in sensor_names]
            row += [str(c) for c in record.cpm_sample]
            row += [str(c) for c in record.cpm_sticky]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.records)


class Amester:
    """Periodic telemetry recorder for one socket."""

    def __init__(
        self,
        socket: "ProcessorSocket",
        interval: float = MIN_INTERVAL,
        seed: int = 23,
    ) -> None:
        if interval < MIN_INTERVAL:
            raise SensorError(
                f"sampling interval {interval*1000:.1f} ms is below the "
                f"service processor's {MIN_INTERVAL*1000:.0f} ms floor"
            )
        self._socket = socket
        self._interval = interval
        self._sensors = SocketSensors(socket)
        self._cpm_reader = CpmReader(socket, window=interval, seed=seed)
        self._trace = TelemetryTrace()
        self._time = 0.0

    @property
    def interval(self) -> float:
        """Polling interval (s)."""
        return self._interval

    @property
    def trace(self) -> TelemetryTrace:
        """Everything recorded so far."""
        return self._trace

    def poll(self, solution: "SocketSolution") -> TelemetryRecord:
        """Record one interval at the given settled state."""
        record = TelemetryRecord(
            time=self._time,
            sensors=self._sensors.read_all(solution),
            cpm_sample=tuple(
                self._cpm_reader.worst_codes(solution, CpmReadMode.SAMPLE)
            ),
            cpm_sticky=tuple(
                self._cpm_reader.worst_codes(solution, CpmReadMode.STICKY)
            ),
        )
        self._trace.append(record)
        self._time += self._interval
        return record

    def poll_many(self, solution: "SocketSolution", count: int) -> List[TelemetryRecord]:
        """Record ``count`` consecutive intervals at a steady state.

        The electrical state is steady, but sticky-mode CPM codes still
        vary record-to-record because droop events are stochastic.
        """
        if count < 1:
            raise SensorError(f"count must be >= 1, got {count}")
        return [self.poll(solution) for _ in range(count)]
