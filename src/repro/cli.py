"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``workloads``
    List the benchmark catalog with its calibrated traits.
``measure``
    Measure one workload at one placement under one guardband mode.
``sweep``
    The Fig. 3/4-style core-scaling sweep for one workload.
``figure``
    Regenerate one of the paper's figures and print its series.
``audit``
    Reliability-audit a settled operating point.
``fleet``
    Simulate a fleet day: online AGS scheduling vs the static-guardband
    and consolidation baselines.
``metrics``
    Summarize a ``--metrics-out`` snapshot (or re-render it as
    Prometheus text).
``chaos``
    Run one fleet scenario twice — fault-free, then under a seeded
    fault plan — and print the degradation report (see
    ``docs/RESILIENCE.md``).  ``chaos campaign`` instead drives every
    catalog scenario under a seeded randomized plan with the strict
    invariant watchdog armed and prints the degradation matrix.
``scenario``
    Run, list, validate or golden-check declarative scenario files
    (see ``docs/SCENARIOS.md`` and the catalog under ``scenarios/``).

Every subcommand accepts the shared options ``--workers``,
``--cache-dir``, ``--timings``, ``--seed``, ``--debug``,
``--metrics-out`` and ``--trace-spans`` (hoisted into one parent
parser).  ``--metrics-out`` and ``--trace-spans`` enable the
zero-perturbation observability layer for the run and write its
registry snapshot / span JSONL on exit; see ``docs/OBSERVABILITY.md``.

Simulator errors (:class:`~repro.errors.ReproError` subclasses) exit
with a one-line ``error: <Type>: <message>`` on stderr and a distinct
nonzero code per error family; ``--debug`` re-raises the full
traceback instead.

Every command prints plain text tables; nothing writes to disk unless
``--trace-out``, ``--cache-dir``, ``--metrics-out`` or ``--trace-spans``
asks for it.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import List, Optional

from . import __version__
from .api import measure
from .config import ServerConfig
from .errors import (
    CalibrationError,
    ConfigError,
    ConvergenceError,
    FaultError,
    ReproError,
    ScenarioError,
    SchedulingError,
    SensorError,
    SweepError,
    WatchdogError,
    WorkloadError,
)
from .guardband import GuardbandMode, audit_operating_point
from .obs import Observability, install, load_metrics, observability
from .sim.batch import SweepRunner, set_default_runner
from .sim.cache import OperatingPointCache
from .sim.run import build_server
from .workloads import all_profiles, get_profile

#: Figures the ``figure`` subcommand can regenerate.
FIGURES = ("fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
           "fig12", "fig13", "fig14", "fig15", "fig16", "fig17")

#: Exit code per simulator error family, checked subclass-before-base
#: (``SweepError``, ``FaultError``, ``ScenarioError`` and
#: ``WatchdogError`` must precede ``ReproError``).  Codes 0-2 are
#: reserved: success, generic failure, argparse usage.  Codes 3-11 were
#: assigned before ``ScenarioError`` existed; the base-class catch-all
#: keeps 11, so new families append past it.  The registry test
#: (``tests/test_error_contracts.py``) asserts every ``ReproError``
#: subclass maps to a distinct code — extend this table when adding an
#: error family.
ERROR_EXIT_CODES = (
    (WorkloadError, 3),
    (ConfigError, 4),
    (SchedulingError, 5),
    (ConvergenceError, 6),
    (CalibrationError, 7),
    (SensorError, 8),
    (SweepError, 9),
    (FaultError, 10),
    (ScenarioError, 12),
    (WatchdogError, 13),
    (ReproError, 11),
)

#: Metric families the ``metrics`` subcommand rolls up as resilience.
RESILIENCE_FAMILIES = (
    "faults_injected_total",
    "fallback_transitions_total",
    "tasks_retried_total",
    "fallback_static_seconds",
)


#: Numeric options validated uniformly after parsing, keyed by argparse
#: ``dest``.  Validation deliberately happens *post-parse* rather than in
#: ``type=`` callbacks: argparse turns a type failure into a usage dump
#: with exit code 2, whereas an out-of-range value is a simulator
#: configuration error and must exit like one — a single ``error:`` line
#: with the :class:`ConfigError` code.  Keeping the tables here (next to
#: the shared parent parser) means every subcommand gets the same rules.
_POSITIVE_INT_OPTIONS = (
    "workers", "servers", "threads", "smt", "shards", "cell_servers",
)
_NONNEGATIVE_INT_OPTIONS = ("crash_server", "corrupt_server", "corrupt_socket")
_POSITIVE_FLOAT_OPTIONS = (
    "duration", "rate", "threshold", "power_cap", "power_budget",
    "cap_interval", "cap_gain",
)
_FRACTION_OPTIONS = ("lc_fraction",)
_NONNEGATIVE_FLOAT_OPTIONS = (
    "crash_at", "repair_after", "corrupt_at", "corrupt_for",
)


def _option_name(dest: str) -> str:
    return "--" + dest.replace("_", "-")


def validate_numeric_args(args: argparse.Namespace) -> None:
    """Reject out-of-range or non-finite numeric options uniformly.

    NaN deserves special mention: it slips through every ordered
    comparison (``nan <= 0`` is False), and a NaN ``--duration`` used to
    hang the trace generator forever.  Finiteness is checked explicitly.
    """
    for dest in _POSITIVE_INT_OPTIONS:
        value = getattr(args, dest, None)
        if value is not None and value < 1:
            raise ConfigError(f"{_option_name(dest)} must be >= 1, got {value}")
    for dest in _NONNEGATIVE_INT_OPTIONS:
        value = getattr(args, dest, None)
        if value is not None and value < 0:
            raise ConfigError(f"{_option_name(dest)} must be >= 0, got {value}")
    for dest in _POSITIVE_FLOAT_OPTIONS:
        value = getattr(args, dest, None)
        if value is None:
            continue
        if not math.isfinite(value) or value <= 0:
            raise ConfigError(
                f"{_option_name(dest)} must be a positive finite number, "
                f"got {value}"
            )
    for dest in _FRACTION_OPTIONS:
        value = getattr(args, dest, None)
        if value is None:
            continue
        if not math.isfinite(value) or not 0 <= value <= 1:
            raise ConfigError(
                f"{_option_name(dest)} must be in [0, 1], got {value}"
            )
    for dest in _NONNEGATIVE_FLOAT_OPTIONS:
        value = getattr(args, dest, None)
        if value is None:
            continue
        if not math.isfinite(value) or value < 0:
            raise ConfigError(
                f"{_option_name(dest)} must be a non-negative finite "
                f"number, got {value}"
            )


def _common_options() -> argparse.ArgumentParser:
    """The parent parser every subcommand inherits.

    Batch-runner knobs (``--workers``/``--cache-dir``/``--timings``), the
    deterministic ``--seed``, and the observability switches
    (``--metrics-out``/``--trace-spans``) used to be scattered over
    individual subcommands; hoisting them here makes every command accept
    them uniformly.
    """
    common = argparse.ArgumentParser(add_help=False)
    runner = common.add_argument_group("batch runner")
    runner.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for independent sweep points (default 1: "
        "in-process, bit-identical to the parallel schedule)",
    )
    runner.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist settled operating points as JSON under DIR and reuse "
        "them across invocations (e.g. .repro_cache)",
    )
    runner.add_argument(
        "--timings",
        action="store_true",
        help="print per-task wall times and cache hit rates after the run",
    )
    common.add_argument(
        "--seed", type=int, default=7, help="die/traffic seed (default 7)"
    )
    common.add_argument(
        "--debug",
        action="store_true",
        help="re-raise simulator errors with the full traceback instead of "
        "the one-line stderr summary",
    )
    obs = common.add_argument_group("observability")
    obs.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable the metrics registry for this run and write its JSON "
        "snapshot to PATH (summarize with `repro metrics PATH`)",
    )
    obs.add_argument(
        "--trace-spans",
        metavar="PATH",
        default=None,
        help="enable span tracing for this run and write the spans as "
        "canonical JSONL to PATH",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Adaptive guardband scheduling on a simulated POWER7+ "
            "(MICRO 2015 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)
    common = [_common_options()]

    commands.add_parser(
        "workloads", parents=common, help="list the benchmark catalog"
    )

    measure_cmd = commands.add_parser(
        "measure", parents=common, help="measure one workload placement"
    )
    measure_cmd.add_argument("workload", help="benchmark name, e.g. raytrace")
    measure_cmd.add_argument(
        "-n", "--threads", type=int, default=1, help="thread count (default 1)"
    )
    measure_cmd.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GuardbandMode if m is not GuardbandMode.STATIC],
        default=GuardbandMode.UNDERVOLT.value,
        help="adaptive mode to compare against the static guardband",
    )
    measure_cmd.add_argument(
        "--smt", type=int, default=1, help="threads stacked per core (default 1)"
    )

    sweep_cmd = commands.add_parser(
        "sweep", parents=common, help="core-scaling sweep (Figs. 3/4)"
    )
    sweep_cmd.add_argument("workload")
    sweep_cmd.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GuardbandMode if m is not GuardbandMode.STATIC],
        default=GuardbandMode.UNDERVOLT.value,
    )

    figure = commands.add_parser(
        "figure", parents=common, help="regenerate a paper figure"
    )
    figure.add_argument("name", choices=FIGURES)

    audit = commands.add_parser(
        "audit",
        parents=common,
        help="reliability-audit a settled operating point",
    )
    audit.add_argument("workload")
    audit.add_argument("-n", "--threads", type=int, default=8)
    audit.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GuardbandMode],
        default=GuardbandMode.UNDERVOLT.value,
    )

    fleet = commands.add_parser(
        "fleet",
        parents=common,
        help="simulate a day of job arrivals across a fleet of servers",
    )
    fleet.add_argument(
        "--servers", type=int, default=4, help="fleet size (default 4)"
    )
    fleet.add_argument(
        "--duration",
        type=float,
        default=86_400.0,
        help="trace horizon in seconds (default 86400: one day)",
    )
    fleet.add_argument(
        "--rate",
        type=float,
        default=18.0,
        help="mean arrival rate in jobs/hour (default 18)",
    )
    fleet.add_argument(
        "--lc-fraction",
        type=float,
        default=0.15,
        help="fraction of arrivals that are latency-critical (default 0.15)",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for sharded execution (default 1); any "
        "value produces the identical event log and hash",
    )
    fleet.add_argument(
        "--cell-servers",
        type=int,
        default=None,
        metavar="N",
        help="partition the fleet into independent cells of N servers "
        "(default: one cell spanning the whole fleet); the cell layout, "
        "unlike --shards, is part of the run's identity",
    )
    fleet.add_argument(
        "--no-advisor-gate",
        action="store_true",
        help="disable the colocation-advisor QoS gate (ablation)",
    )
    fleet.add_argument(
        "--power-cap",
        type=float,
        default=None,
        metavar="WATTS",
        help="enforce a per-server power cap: throttled epochs walk down "
        "the DVFS table until the settled server power fits",
    )
    fleet.add_argument(
        "--power-budget",
        type=float,
        default=None,
        metavar="WATTS",
        help="track a fleet-wide power budget with the integral power-cap "
        "coordinator (decomposed per cell when --cell-servers is set)",
    )
    fleet.add_argument(
        "--cap-interval",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="seconds between coordinator ticks (default 60)",
    )
    fleet.add_argument(
        "--cap-gain",
        type=float,
        default=0.5,
        help="coordinator integral gain in (0, 2] (default 0.5)",
    )
    fleet.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the AGS run's structured event log as JSONL to PATH",
    )

    commands.add_parser(
        "selfcheck",
        parents=common,
        help="validate the model against the paper's calibration anchors",
    )

    commands.add_parser(
        "report",
        parents=common,
        help="run the full evaluation and print a markdown report",
    )

    export = commands.add_parser(
        "export",
        parents=common,
        help="regenerate one figure's data and print it as JSON",
    )
    export.add_argument("name", choices=FIGURES)

    chaos = commands.add_parser(
        "chaos",
        parents=common,
        help="run a fleet scenario fault-free and degraded; report the delta",
    )
    chaos.add_argument(
        "action",
        nargs="?",
        choices=("run", "campaign"),
        default="run",
        help="run (default): one ad-hoc fleet day under the flag-built "
        "plan; campaign: every catalog scenario under a seeded "
        "randomized fault plan with the strict invariant watchdog "
        "armed, printing the degradation matrix",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="campaign only: shrink every scenario's traffic to smoke "
        "scale so the whole catalog finishes in CI time",
    )
    chaos.add_argument(
        "--dir",
        dest="catalog_dir",
        metavar="DIR",
        default=None,
        help="campaign only: catalog directory (default: the repo's "
        "scenarios/ directory)",
    )
    chaos.add_argument(
        "--servers", type=int, default=2, help="fleet size (default 2)"
    )
    chaos.add_argument(
        "--duration",
        type=float,
        default=14_400.0,
        help="trace horizon in seconds (default 14400: four hours)",
    )
    chaos.add_argument(
        "--rate",
        type=float,
        default=18.0,
        help="mean arrival rate in jobs/hour (default 18)",
    )
    chaos.add_argument(
        "--lc-fraction",
        type=float,
        default=0.15,
        help="fraction of arrivals that are latency-critical (default 0.15)",
    )
    chaos.add_argument(
        "--crash-server",
        type=int,
        default=1,
        help="server id to crash (default 1)",
    )
    chaos.add_argument(
        "--crash-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="crash time (default: a quarter into the horizon)",
    )
    chaos.add_argument(
        "--repair-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="repair delay after the crash (default: a quarter horizon)",
    )
    chaos.add_argument(
        "--no-crash",
        action="store_true",
        help="drop the server crash from the plan",
    )
    chaos.add_argument(
        "--corrupt-server",
        type=int,
        default=0,
        help="server whose CPM stream gets pinned (default 0)",
    )
    chaos.add_argument(
        "--corrupt-socket",
        type=int,
        default=0,
        help="socket whose CPM stream gets pinned (default 0)",
    )
    chaos.add_argument(
        "--corrupt-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="corruption onset (default: 30%% into the horizon)",
    )
    chaos.add_argument(
        "--corrupt-for",
        type=float,
        default=None,
        metavar="SECONDS",
        help="corruption window length (default: a fifth of the horizon)",
    )
    chaos.add_argument(
        "--no-corrupt",
        action="store_true",
        help="drop the CPM corruption from the plan",
    )
    chaos.add_argument(
        "--kill-job",
        type=int,
        action="append",
        default=None,
        metavar="JOB_ID",
        help="kill this running job halfway through (repeatable)",
    )
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the injector's jitter stream (default 0)",
    )

    bench = commands.add_parser(
        "bench",
        parents=common,
        help="time a benchmark suite into a trend file, or gate the trend",
    )
    bench.add_argument(
        "suite",
        choices=("fleet", "region", "sweep", "scenario", "cap", "gate"),
        help="fleet: time the fleet day (scalar baseline vs sharded); "
        "region: time a region-scale day against the shared settle "
        "cache (cold vs warm, digest checked across shard counts); "
        "sweep: time the Fig. 13 borrowing build; scenario: time a "
        "catalog scenario end to end; cap: time the power-capped "
        "rack-budget scenario; gate: fail if the newest entry "
        "regressed past the threshold",
    )
    bench.add_argument(
        "paths",
        nargs="*",
        metavar="TREND_FILE",
        help="trend files for 'gate' (default: every BENCH_*.json present)",
    )
    bench.add_argument(
        "--servers", type=int, default=8, help="fleet size (default 8)"
    )
    bench.add_argument(
        "--duration",
        type=float,
        default=7200.0,
        help="fleet trace horizon in seconds (default 7200)",
    )
    bench.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="fleet arrival rate in jobs/hour (default 200)",
    )
    bench.add_argument(
        "--lc-fraction",
        type=float,
        default=0.2,
        help="latency-critical fraction of arrivals (default 0.2)",
    )
    bench.add_argument(
        "--cell-servers",
        type=int,
        default=None,
        metavar="N",
        help="cell width for the sharded run (default: whole fleet)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=2,
        help="highest shard count to verify and time (default 2); the "
        "suite always times 1 shard as well and asserts one digest",
    )
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the scalar monolithic baseline (no speedup recorded)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="after timing (fleet/region suites), run one cold in-process "
        "day under cProfile and write the top-N cumulative report next "
        "to the trend file (never recorded in the trend)",
    )
    bench.add_argument(
        "--scenario-name",
        metavar="NAME",
        default=None,
        help="catalog scenario the 'scenario' suite times (default: "
        "heterogeneous_aging)",
    )
    bench.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help="trend file to append to (defaults to BENCH_fleet.json, "
        "BENCH_sweep.json, BENCH_scenario.json or BENCH_cap.json per "
        "suite)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed fractional slowdown for 'gate' (default 0.20)",
    )

    scenario = commands.add_parser(
        "scenario",
        parents=common,
        help="run, list, validate or golden-check declarative scenarios",
    )
    scenario.add_argument(
        "action",
        choices=("run", "list", "validate", "check"),
        help="run: execute scenario files and print summaries; list: show "
        "the catalog; validate: parse and validate files without running; "
        "check: run under each scenario's pinned seed and adjudicate its "
        "golden assertions",
    )
    scenario.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="scenario TOML file(s); for 'check' and 'list' the shipped "
        "catalog is the default",
    )
    scenario.add_argument(
        "--dir",
        dest="catalog_dir",
        metavar="DIR",
        default=None,
        help="catalog directory for 'list'/'check' (default: the repo's "
        "scenarios/ directory)",
    )
    scenario.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes for sharded execution (default 1); any "
        "value produces the identical event log and hash",
    )
    scenario.add_argument(
        "--skip-slow",
        action="store_true",
        help="skip scenarios tagged 'slow' (the fast regression loop)",
    )
    scenario.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="override a scenario document key for 'run', e.g. "
        "--set policy.pdn_backend=flexwatts or "
        "--set policy.fleet_power_budget_w=1100 (repeatable; golden "
        "blocks are dropped when any override is applied)",
    )
    scenario.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the run's structured event log as JSONL to PATH "
        "('run' with a single file only)",
    )

    metrics = commands.add_parser(
        "metrics",
        parents=common,
        help="summarize a --metrics-out snapshot file",
    )
    metrics.add_argument("path", help="JSON snapshot written by --metrics-out")
    metrics.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text exposition instead of the summary table",
    )
    return parser


def exit_code_for(exc: ReproError) -> int:
    """The CLI exit code for one simulator error (subclass-first)."""
    for error_type, code in ERROR_EXIT_CODES:
        if isinstance(exc, error_type):
            return code
    return 1  # pragma: no cover - table ends with the base class


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "workloads": _cmd_workloads,
        "measure": _cmd_measure,
        "sweep": _cmd_sweep,
        "figure": _cmd_figure,
        "audit": _cmd_audit,
        "fleet": _cmd_fleet,
        "selfcheck": _cmd_selfcheck,
        "report": _cmd_report,
        "export": _cmd_export,
        "metrics": _cmd_metrics,
        "chaos": _cmd_chaos,
        "bench": _cmd_bench,
        "scenario": _cmd_scenario,
    }[args.command]
    try:
        validate_numeric_args(args)
        return _run_handler(handler, args)
    except ReproError as exc:
        if getattr(args, "debug", False):
            raise
        message = str(exc).splitlines()[0] if str(exc) else "(no detail)"
        print(
            f"error: {type(exc).__name__}: {message}", file=sys.stderr
        )
        return exit_code_for(exc)


def _run_handler(handler, args: argparse.Namespace) -> int:
    """Run one command, wiring up observability when asked for."""
    metrics_out = getattr(args, "metrics_out", None)
    trace_spans = getattr(args, "trace_spans", None)
    if not metrics_out and not trace_spans:
        return handler(args)
    # Either observability switch turns the layer on for the whole run;
    # outputs are written after the handler finishes, whatever its exit
    # code, and the previous process-wide handle is always restored.
    previous = install(Observability(enabled=True))
    try:
        code = handler(args)
        obs = observability()
        if metrics_out:
            obs.metrics.write_json(metrics_out)
            print(f"wrote {len(obs.metrics)} metric families to {metrics_out}")
        if trace_spans:
            obs.tracer.write_jsonl(trace_spans)
            print(f"wrote {len(obs.tracer.spans)} spans to {trace_spans}")
    finally:
        install(previous)
    return code


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_workloads(args: argparse.Namespace) -> int:
    print(
        f"{'name':>16} {'suite':>10} {'act':>5} {'ipc':>5} {'mem':>5} "
        f"{'bw':>5} {'share':>6} {'scalable':>9}"
    )
    for p in all_profiles():
        print(
            f"{p.name:>16} {p.suite:>10} {p.activity:>5.2f} {p.ipc:>5.2f} "
            f"{p.memory_intensity:>5.2f} {p.bandwidth_demand:>5.1f} "
            f"{p.sharing_intensity:>6.2f} {str(p.scalable):>9}"
        )
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    profile = get_profile(args.workload)
    mode = GuardbandMode(args.mode)
    result = measure(
        profile,
        mode=mode,
        n_threads=args.threads,
        threads_per_core=args.smt,
        seed=args.seed,
    )
    s0s = result.static.point.socket_point(0)
    s0a = result.adaptive.point.socket_point(0)
    print(f"{profile.name}: {args.threads} thread(s), mode={mode.value}")
    print(f"  static:   {s0s.chip_power:7.1f} W at {s0s.frequency/1e6:.0f} MHz")
    print(
        f"  adaptive: {s0a.chip_power:7.1f} W at {s0a.frequency/1e6:.0f} MHz "
        f"(undervolt {s0a.undervolt*1000:.1f} mV)"
    )
    if mode is GuardbandMode.UNDERVOLT:
        saving = 1 - s0a.chip_power / s0s.chip_power
        print(f"  power saving: {saving:.1%}")
    else:
        print(f"  frequency boost: {result.frequency_boost_fraction:.1%}")
        print(f"  speedup: {result.speedup_fraction:.1%}")
    return 0


def _runner_from_args(args: argparse.Namespace) -> SweepRunner:
    """Build the batch runner the command's options describe."""
    return SweepRunner(
        max_workers=args.workers,
        cache=OperatingPointCache(disk_dir=args.cache_dir),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    profile = get_profile(args.workload)
    mode = GuardbandMode(args.mode)
    runner = _runner_from_args(args)
    core_counts = range(1, ServerConfig().chip.n_cores + 1)
    results = runner.core_scaling_sweep(profile, mode, core_counts)
    print(f"{profile.name}, mode={mode.value}")
    print(f"{'cores':>6} {'static W':>9} {'adaptive W':>11} {'metric':>8}")
    for n, result in zip(core_counts, results):
        s0s = result.static.point.socket_point(0)
        s0a = result.adaptive.point.socket_point(0)
        if mode is GuardbandMode.UNDERVOLT:
            metric = f"{1 - s0a.chip_power / s0s.chip_power:7.1%}"
        else:
            metric = f"{result.frequency_boost_fraction:7.1%}"
        print(f"{n:>6} {s0s.chip_power:>9.1f} {s0a.chip_power:>11.1f} {metric:>8}")
    if args.timings:
        print()
        print(runner.reports[-1].summary())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import figures as fig_builders

    printers = {
        "fig3": _print_fig3,
        "fig4": _print_fig4,
        "fig5": _print_fig5,
        "fig6": _print_fig6,
        "fig7": _print_fig7,
        "fig9": _print_fig9,
        "fig10": _print_fig10,
        "fig12": _print_fig12,
        "fig13": _print_fig13,
        "fig14": _print_fig14,
        "fig15": _print_fig15,
        "fig16": _print_fig16,
        "fig17": _print_fig17,
    }
    # The figure builders pick up the process-wide default runner; swap in
    # one configured from the command's options for the duration.
    runner = _runner_from_args(args)
    previous = set_default_runner(runner)
    try:
        printers[args.name](fig_builders)
    finally:
        set_default_runner(previous)
    if args.timings:
        print()
        print(runner.timings_summary())
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    profile = get_profile(args.workload)
    server = build_server(seed=args.seed)
    mode = GuardbandMode(args.mode)
    result = measure(profile, mode=mode, n_threads=args.threads, server=server)
    solution = result.adaptive.point.socket_point(0).solution
    report = audit_operating_point(
        server.sockets[0],
        solution,
        server.config,
        frequency_is_servoed=(mode is GuardbandMode.OVERCLOCK),
    )
    print(
        f"audit: {profile.name}, {args.threads} thread(s), mode={mode.value}"
    )
    print(f"{'core':>5} {'typ slack mV':>13} {'droop slack mV':>15} {'CPM':>4} {'ok':>3}")
    for f in report.findings:
        print(
            f"{f.core_id:>5} {f.typical_slack*1000:>13.1f} "
            f"{f.droop_slack*1000:>15.1f} {f.worst_cpm_code:>4} "
            f"{'yes' if f.passed else 'NO':>3}"
        )
    print("PASSED" if report.passed else "FAILED")
    return 0 if report.passed else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetConfig, TrafficConfig, run_comparison
    from .fleet.metrics import summarize_by_class
    from .fleet.traffic import LATENCY_CRITICAL
    from .sim.cache import canonical_json

    traffic = TrafficConfig(
        duration_seconds=args.duration,
        jobs_per_hour=args.rate,
        lc_fraction=args.lc_fraction,
    )
    config = FleetConfig(
        n_servers=args.servers,
        traffic=traffic,
        seed=args.seed,
        power_cap_w=args.power_cap,
        fleet_power_budget_w=args.power_budget,
        cap_interval_seconds=args.cap_interval,
        cap_gain=args.cap_gain,
    )
    runner = _runner_from_args(args)
    gate = not args.no_advisor_gate
    sharded = args.shards > 1 or args.cell_servers is not None
    if sharded:
        from .fleet.shard import run_sharded_comparison

        comparison = run_sharded_comparison(
            config,
            n_shards=args.shards,
            cell_servers=args.cell_servers,
            advisor_gate=gate,
            workers=args.workers,
        )
    else:
        comparison = run_comparison(config, runner=runner, advisor_gate=gate)
    ags = comparison.ags
    consolidation = comparison.consolidation
    hours = args.duration / 3600.0
    cells = ""
    if sharded:
        from .fleet.shard import CellLayout

        layout = CellLayout(
            n_servers=args.servers,
            cell_servers=args.cell_servers or args.servers,
        )
        cells = (
            f", {layout.n_cells} cell(s) x {layout.cell_servers} server(s) "
            f"over {args.shards} shard(s)"
        )
    print(
        f"fleet: {args.servers} server(s), {hours:g} h, seed {args.seed}, "
        f"advisor gate {'on' if gate else 'OFF'}{cells}"
    )
    print(
        f"jobs: {ags.n_arrivals} arrived, {ags.n_completions} completed, "
        f"{ags.n_running} running, {ags.n_queued} queued at horizon "
        f"({'conserved' if ags.conserved else 'NOT CONSERVED'})"
    )
    print(
        f"energy: AGS {ags.adaptive_energy_kwh:.3f} kWh | "
        f"static guardband {ags.static_energy_kwh:.3f} kWh | "
        f"consolidation {consolidation.adaptive_energy_kwh:.3f} kWh"
    )
    print(
        f"AGS saving: {comparison.saving_vs_static:.1%} vs static guardband, "
        f"{comparison.saving_vs_consolidation:.1%} vs consolidation "
        f"(which cannot meet the boost SLA at all)"
    )
    print(
        f"qos: {ags.qos_violations} violation(s); "
        f"SLA {config.required_frequency/1e6:.0f} MHz on "
        "latency-critical sockets"
    )
    for job_class, stats in summarize_by_class(ags).items():
        tag = "LC" if job_class == LATENCY_CRITICAL else job_class
        print(
            f"  {tag}: {stats['arrivals']:.0f} job(s), "
            f"mean latency {stats['mean_latency_s']:.0f} s, "
            f"mean slowdown {stats['mean_slowdown']:.2f}"
        )
        print(
            f"      latency p50/p95/p99: {stats['p50_latency_s']:.0f}/"
            f"{stats['p95_latency_s']:.0f}/{stats['p99_latency_s']:.0f} s, "
            f"slowdown p50/p95/p99: {stats['p50_slowdown']:.2f}/"
            f"{stats['p95_slowdown']:.2f}/{stats['p99_slowdown']:.2f}"
        )
    if args.power_cap is not None:
        print(
            f"power cap: {args.power_cap:g} W/server enforced, "
            f"{ags.cap_throttle_epochs} throttled epoch(s)"
        )
    if args.power_budget is not None:
        print(
            f"power budget: {ags.cap_budget_w:g} W fleet-wide, "
            f"steady measured {ags.cap_measured_steady_w:.1f} W "
            f"(tracking error {ags.cap_tracking_error:.1%}), "
            f"{ags.powercap_ticks} coordinator tick(s), "
            f"{ags.cap_throttle_epochs} throttled epoch(s)"
        )
    print(
        f"epochs: {ags.n_epochs} (AGS) + {consolidation.n_epochs} "
        "(consolidation) placements settled"
    )
    print(f"event log: {ags.event_log_hash} ({len(ags.events)} entries)")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for entry in ags.events:
                handle.write(canonical_json(entry) + "\n")
        print(f"wrote {len(ags.events)} events to {args.trace_out}")
    if args.timings:
        print()
        print(runner.timings_summary())
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from .analysis.selfcheck import run_selfcheck

    report = run_selfcheck(progress=lambda msg: print(f"  measuring {msg}..."))
    print()
    for check in report.checks:
        print(check)
    print()
    print("SELFCHECK PASSED" if report.passed else "SELFCHECK FAILED")
    return 0 if report.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    print(generate_report(progress=lambda m: print(f"<!-- measuring {m} -->")))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .analysis.export import export_figure

    print(export_figure(args.name))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import chaos_plan, run_chaos
    from .fleet import FleetConfig, TrafficConfig

    if args.action == "campaign":
        return _cmd_chaos_campaign(args)
    traffic = TrafficConfig(
        duration_seconds=args.duration,
        jobs_per_hour=args.rate,
        lc_fraction=args.lc_fraction,
    )
    config = FleetConfig(
        n_servers=args.servers, traffic=traffic, seed=args.seed
    )
    plan = chaos_plan(
        args.duration,
        crash_server=None if args.no_crash else args.crash_server,
        crash_at_seconds=args.crash_at,
        repair_after_seconds=args.repair_after,
        corrupt_server=None if args.no_corrupt else args.corrupt_server,
        corrupt_socket=args.corrupt_socket,
        corrupt_at_seconds=args.corrupt_at,
        corrupt_for_seconds=args.corrupt_for,
        kill_jobs=tuple(args.kill_job or ()),
        seed=args.fault_seed,
    )
    if plan.is_empty:
        raise FaultError(
            "the chaos plan is empty: --no-crash and --no-corrupt with no "
            "--kill-job leaves nothing to inject"
        )
    runner = _runner_from_args(args)
    report = run_chaos(config, plan, runner=runner)
    print(report.render())
    if args.timings:
        print()
        print(runner.timings_summary())
    return 0


def _cmd_chaos_campaign(args: argparse.Namespace) -> int:
    """Every catalog scenario under seeded randomized faults."""
    from .faults.campaign import run_campaign
    from .scenarios import load_catalog

    scenarios = load_catalog(args.catalog_dir)
    report = run_campaign(
        scenarios=scenarios,
        seed=args.fault_seed,
        smoke=args.smoke,
        strict=True,
        workers=args.workers,
        progress=lambda name: print(f"  campaigning {name}..."),
    )
    print(report.render())
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        CAP_BENCH_FILE,
        DEFAULT_BENCH_SCENARIO,
        DEFAULT_CAP_BENCH_SCENARIO,
        FLEET_BENCH_FILE,
        REGRESSION_THRESHOLD,
        SCENARIO_BENCH_FILE,
        SWEEP_BENCH_FILE,
        bench_cap,
        bench_fig13_sweep,
        bench_fleet_day,
        bench_fleet_region,
        bench_scenario,
        profile_fleet_day,
        gate_trend,
    )

    def _maybe_profile(out: str) -> None:
        if not getattr(args, "profile", False):
            return
        report = profile_fleet_day(
            n_servers=args.servers,
            duration_seconds=args.duration,
            jobs_per_hour=args.rate,
            lc_fraction=args.lc_fraction,
            cell_servers=args.cell_servers,
            seed=args.seed,
            out_path=out,
        )
        print(f"profile (top {report['top_n']} by cumulative time): "
              f"{report['profile_path']}")

    if args.suite == "fleet":
        out = args.bench_out or FLEET_BENCH_FILE
        shard_counts = (1,) if args.shards <= 1 else (1, args.shards)
        report = bench_fleet_day(
            n_servers=args.servers,
            duration_seconds=args.duration,
            jobs_per_hour=args.rate,
            lc_fraction=args.lc_fraction,
            cell_servers=args.cell_servers,
            shard_counts=shard_counts,
            seed=args.seed,
            baseline=not args.no_baseline,
            out_path=out,
        )
        print(
            f"fleet day: {report['n_servers']} server(s), "
            f"{report['n_jobs']} job(s), {report['n_cells']} cell(s) x "
            f"{report['cell_servers']} server(s)"
        )
        for shards, wall in sorted(report["sharded_wall_seconds"].items()):
            print(f"  sharded ({shards} shard(s)): {wall:.3f}s")
        print(f"  digest: {report['sharded_digest'][:16]}... "
              "(identical across shard counts)")
        if "baseline_wall_seconds" in report:
            print(
                f"  scalar baseline: {report['baseline_wall_seconds']:.3f}s"
                f"  -> speedup x{report['speedup']:.2f}"
            )
        _maybe_profile(out)
        print(f"recorded in {out}")
        return 0
    if args.suite == "region":
        out = args.bench_out or FLEET_BENCH_FILE
        if args.shards <= 1:
            shard_counts = (1,)
        elif args.shards < 4:
            shard_counts = (1, args.shards)
        else:
            shard_counts = (1, 2, args.shards)
        report = bench_fleet_region(
            n_servers=args.servers,
            duration_seconds=args.duration,
            jobs_per_hour=args.rate,
            lc_fraction=args.lc_fraction,
            cell_servers=args.cell_servers or 16,
            shard_counts=shard_counts,
            seed=args.seed,
            out_path=out,
        )
        print(
            f"region day: {report['n_servers']} server(s), "
            f"{report['n_jobs']} job(s)"
        )
        for shards, wall in sorted(report["wall_seconds"].items()):
            print(f"  {shards} shard(s): {wall:.3f}s")
        print(f"  digest: {report['digest'][:16]}... "
              "(identical across shard counts)")
        print(
            f"  warm settle-cache rerun: {report['warm_wall_seconds']:.3f}s "
            f"(cold {report['cold_wall_seconds']:.3f}s)"
        )
        print(f"  settle cache: {report['settle_cache_summary']}")
        _maybe_profile(out)
        print(f"recorded in {out}")
        return 0
    if args.suite == "sweep":
        out = args.bench_out or SWEEP_BENCH_FILE
        report = bench_fig13_sweep(out_path=out)
        print(
            f"fig13 borrowing sweep: {report['n_points']} point(s) in "
            f"{report['wall_seconds']:.3f}s"
        )
        print(f"recorded in {out}")
        return 0
    if args.suite == "scenario":
        out = args.bench_out or SCENARIO_BENCH_FILE
        shard_counts = (1,) if args.shards <= 1 else (1, args.shards)
        report = bench_scenario(
            name=args.scenario_name or DEFAULT_BENCH_SCENARIO,
            shard_counts=shard_counts,
            out_path=out,
        )
        print(
            f"scenario {report['scenario']}: {report['n_servers']} "
            f"server(s), {report['n_jobs']} job(s)"
        )
        for shards, wall in sorted(report["wall_seconds"].items()):
            print(f"  {shards} shard(s): {wall:.3f}s")
        print(f"  digest: {report['digest'][:16]}... "
              "(identical across shard counts)")
        print(f"recorded in {out}")
        return 0

    if args.suite == "cap":
        out = args.bench_out or CAP_BENCH_FILE
        shard_counts = (1,) if args.shards <= 1 else (1, args.shards)
        report = bench_cap(
            name=args.scenario_name or DEFAULT_CAP_BENCH_SCENARIO,
            shard_counts=shard_counts,
            out_path=out,
        )
        print(
            f"cap scenario {report['scenario']}: {report['n_servers']} "
            f"server(s), {report['n_jobs']} job(s), "
            f"budget {report['budget_w']:g} W"
        )
        print(
            f"  {report['throttle_epochs']} throttled epoch(s), tracking "
            f"error {report['tracking_error']:.1%}"
        )
        for shards, wall in sorted(report["wall_seconds"].items()):
            print(f"  {shards} shard(s): {wall:.3f}s")
        print(f"  digest: {report['digest'][:16]}... "
              "(identical across shard counts)")
        print(f"recorded in {out}")
        return 0

    # suite == "gate"
    paths = args.paths or [
        path
        for path in (FLEET_BENCH_FILE, SWEEP_BENCH_FILE,
                     SCENARIO_BENCH_FILE, CAP_BENCH_FILE)
        if os.path.exists(path)
    ]
    if not paths:
        raise ConfigError(
            "no trend files to gate; run 'repro bench fleet' or "
            "'repro bench sweep' first, or pass paths explicitly"
        )
    threshold = (
        args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
    )
    from .bench import BenchTrend

    failed = False
    for path in paths:
        trend = BenchTrend.load(path)
        for verdict in gate_trend(path, threshold=threshold):
            status = "ok" if verdict.passed else "REGRESSED"
            line = f"{path}: {verdict.name}: {status} ({verdict.message})"
            latest = trend.latest(verdict.name)
            cache_meta = (latest.meta.get("settle_cache") if latest else None)
            if isinstance(cache_meta, dict) and "hit_rate" in cache_meta:
                line += (
                    f"; settle-cache hit rate "
                    f"{float(cache_meta['hit_rate']):.0%}"
                )
            print(line)
            failed = failed or not verdict.passed
    return 1 if failed else 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .scenarios import (
        catalog_paths,
        check_result,
        codec,
        load_catalog,
        run_scenario,
    )
    from .sim.cache import canonical_json

    if args.overrides and args.action != "run":
        raise ScenarioError("--set only applies to 'scenario run'")
    if args.action == "list":
        scenarios = (
            tuple(codec.load(path) for path in args.files)
            if args.files
            else load_catalog(args.catalog_dir)
        )
        print(f"{'name':>28} {'servers':>8} {'hours':>6} {'golden':>7}  description")
        for s in scenarios:
            hours = s.traffic.duration_seconds / 3600.0
            tags = f" [{', '.join(s.tags)}]" if s.tags else ""
            print(
                f"{s.name:>28} {s.topology.n_servers:>8} {hours:>6g} "
                f"{'yes' if not s.golden.is_empty else 'no':>7}  "
                f"{s.description}{tags}"
            )
        return 0

    if args.action == "validate":
        if not args.files:
            raise ScenarioError("scenario validate needs at least one FILE")
        for path in args.files:
            scenario = codec.load(path)
            print(
                f"{path}: ok ({scenario.name}: "
                f"{scenario.topology.n_servers} server(s) in "
                f"{len(scenario.topology.groups)} group(s), "
                f"{len(scenario.faults.windows)} fault window(s))"
            )
        return 0

    if args.action == "run":
        if not args.files:
            raise ScenarioError("scenario run needs at least one FILE")
        if args.trace_out and len(args.files) > 1:
            raise ScenarioError("--trace-out needs exactly one FILE")
        for path in args.files:
            scenario = codec.load(path)
            if args.overrides:
                scenario = _apply_scenario_overrides(
                    scenario, args.overrides
                )
            result = run_scenario(
                scenario,
                seed=args.seed,
                n_shards=args.shards,
                workers=args.workers,
            )
            _print_scenario_result(result, seed=args.seed)
            if args.trace_out:
                with open(args.trace_out, "w", encoding="utf-8") as handle:
                    for entry in result.fleet.events:
                        handle.write(canonical_json(entry) + "\n")
                print(
                    f"wrote {len(result.fleet.events)} events to "
                    f"{args.trace_out}"
                )
        return 0

    # action == "check": pinned seeds, golden adjudication.
    if args.files:
        scenarios = tuple(codec.load(path) for path in args.files)
    else:
        scenarios = load_catalog(args.catalog_dir)
    checkable = [s for s in scenarios if not s.golden.is_empty]
    skipped_golden = len(scenarios) - len(checkable)
    if args.skip_slow:
        skipped_slow = sum(1 for s in checkable if s.is_slow)
        checkable = [s for s in checkable if not s.is_slow]
    else:
        skipped_slow = 0
    if not checkable:
        raise ScenarioError("no scenarios with golden blocks to check")
    failed = False
    for scenario in checkable:
        result = run_scenario(
            scenario, n_shards=args.shards, workers=args.workers
        )
        verdict = check_result(result)
        status = "ok" if verdict.passed else "FAILED"
        print(f"{scenario.name}: {status}")
        for failure in verdict.failures:
            print(f"  {failure}")
        failed = failed or not verdict.passed
    notes = []
    if skipped_slow:
        notes.append(f"{skipped_slow} slow scenario(s) skipped")
    if skipped_golden:
        notes.append(f"{skipped_golden} without goldens skipped")
    summary = f"checked {len(checkable)} scenario(s)"
    if notes:
        summary += " (" + ", ".join(notes) + ")"
    print(summary)
    return 1 if failed else 0


def _parse_override_value(raw: str):
    """KEY=VALUE values: int, then float, then bool words, then string."""
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _apply_scenario_overrides(scenario, overrides):
    """Rebuild a scenario with dotted-key document overrides applied.

    Overrides go through the document round trip (dump, patch, reload),
    so every patched value passes the same strict codec validation a
    hand-edited TOML file would.  Any override invalidates the golden
    block — the pinned assertions describe the unpatched scenario — so
    goldens are dropped.
    """
    from .scenarios import codec

    document = codec.scenario_to_document(scenario)
    document.pop("golden", None)
    for item in overrides:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ScenarioError(
                f"--set needs KEY=VALUE, got {item!r}"
            )
        parts = key.split(".")
        table = document
        for part in parts[:-1]:
            node = table.setdefault(part, {})
            if not isinstance(node, dict):
                raise ScenarioError(
                    f"--set {key}: {part!r} is not a table"
                )
            table = node
        table[parts[-1]] = _parse_override_value(raw)
    return codec.scenario_from_document(document)


def _print_scenario_result(result, seed: int) -> None:
    scenario = result.scenario
    fleet = result.fleet
    hours = scenario.traffic.duration_seconds / 3600.0
    print(
        f"scenario {scenario.name}: {scenario.topology.n_servers} server(s) "
        f"in {len(scenario.topology.groups)} group(s), {hours:g} h, "
        f"policy {scenario.policy.policy}, seed {seed}"
    )
    if scenario.description:
        print(f"  {scenario.description}")
    print(
        f"jobs: {fleet.n_arrivals} arrived, {fleet.n_completions} completed, "
        f"{fleet.n_running} running, {fleet.n_queued} queued "
        f"({'conserved' if fleet.conserved else 'NOT CONSERVED'})"
    )
    print(
        f"energy: adaptive {fleet.adaptive_energy_kwh:.3f} kWh vs static "
        f"{fleet.static_energy_kwh:.3f} kWh "
        f"(saving {fleet.saving_fraction:.1%})"
    )
    print(
        f"qos: {fleet.qos_violations} violation(s); faults: "
        f"{fleet.n_server_crashes} crash(es), {fleet.n_job_kills} kill(s), "
        f"{fleet.n_requeues} requeue(s), "
        f"{fleet.total_fallback_seconds:.0f} fallback socket-second(s)"
    )
    if scenario.policy.server_power_cap_w is not None:
        print(
            f"power cap: {scenario.policy.server_power_cap_w:g} W per "
            f"server enforced; {fleet.cap_throttle_epochs} throttled "
            f"epoch(s), {result.cap_exceeded_epochs} epoch(s) still over "
            "(best-effort floor)"
        )
    if scenario.policy.fleet_power_budget_w is not None:
        print(
            f"power budget: {fleet.cap_budget_w:g} W fleet-wide, steady "
            f"measured {fleet.cap_measured_steady_w:.1f} W (tracking "
            f"error {fleet.cap_tracking_error:.1%}), "
            f"{fleet.powercap_ticks} coordinator tick(s)"
        )
    for group in result.groups:
        print(
            f"  group {group.name}: {group.servers} server(s), "
            f"age {group.age_years:g} y, {group.n_arrivals} arrival(s), "
            f"{group.adaptive_energy_kwh:.3f} kWh, "
            f"{group.qos_violations} violation(s), "
            f"{group.fallback_seconds:.0f} fallback s"
        )
    if result.retries:
        recoveries = ", ".join(
            f"cell {r.cell_index} attempt {r.attempt} ({r.reason} -> "
            f"{r.recovered_via})"
            for r in result.retries
        )
        print(f"shard recoveries: {recoveries}")
    print(f"event log: {fleet.event_log_hash} ({len(fleet.events)} entries)")


def _cmd_metrics(args: argparse.Namespace) -> int:
    try:
        registry = load_metrics(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read metrics snapshot {args.path}: {exc}")
        return 1
    if args.prometheus:
        print(registry.render_text(), end="")
        return 0
    print(f"metrics snapshot: {args.path} ({len(registry)} families)")
    for family in registry.families():
        print(f"{family.name} ({family.kind})")
        for label_values, child in family.children():
            labels = (
                "{" + ", ".join(
                    f"{n}={v}"
                    for n, v in zip(family.label_names, label_values)
                ) + "}"
                if family.label_names
                else ""
            )
            if family.kind == "histogram":
                print(
                    f"  {labels or '(all)'}: count {child.count}, "
                    f"sum {child.sum:.6g}, mean {child.mean:.6g}"
                )
            else:
                print(f"  {labels or '(all)'}: {child.value:.6g}")
    _print_resilience_summary(registry)
    return 0


def _print_resilience_summary(registry) -> None:
    """Roll up the fault/fallback/retry families, when any were recorded."""
    present = {
        family.name: family
        for family in registry.families()
        if family.name in RESILIENCE_FAMILIES
    }
    if not present:
        return
    print()
    print("resilience summary")
    family = present.get("faults_injected_total")
    if family is not None:
        total = sum(child.value for _, child in family.children())
        by_kind = ", ".join(
            f"{values[0]} x{child.value:g}"
            for values, child in sorted(family.children())
        )
        print(f"  faults injected: {total:g} ({by_kind})")
    family = present.get("fallback_transitions_total")
    if family is not None:
        # Label order is (direction, layer, reason).
        entered = sum(
            child.value
            for values, child in family.children()
            if values[0] == "enter"
        )
        exited = sum(
            child.value
            for values, child in family.children()
            if values[0] == "exit"
        )
        print(
            f"  fallback transitions: {entered:g} entered, {exited:g} exited"
            + (" (still in fallback)" if entered > exited else "")
        )
    family = present.get("tasks_retried_total")
    if family is not None:
        by_layer = ", ".join(
            f"{values[0]} x{child.value:g}"
            for values, child in sorted(family.children())
        )
        print(f"  tasks retried: {by_layer}")
    family = present.get("fallback_static_seconds")
    if family is not None:
        for _, child in family.children():
            if child.count:
                print(
                    f"  static-fallback dwell: {child.count} window(s), "
                    f"total {child.sum:.0f} s, mean {child.mean:.0f} s"
                )


# ----------------------------------------------------------------------
# Figure printers
# ----------------------------------------------------------------------
def _print_fig3(figures) -> None:
    series = figures.fig3_core_scaling_power()
    print("Fig. 3 — raytrace power vs active cores (undervolt)")
    for i, n in enumerate(series.core_counts):
        print(
            f"  {n} cores: static {series.static_power[i]:6.1f} W, adaptive "
            f"{series.adaptive_power[i]:6.1f} W "
            f"({series.power_saving_percent(i):4.1f}% saved)"
        )


def _print_fig4(figures) -> None:
    series = figures.fig4_core_scaling_frequency()
    print("Fig. 4 — lu_cb frequency vs active cores (overclock)")
    for i, n in enumerate(series.core_counts):
        print(
            f"  {n} cores: {series.adaptive_frequency[i]/1e6:.0f} MHz "
            f"(+{series.frequency_boost_percent(i):.1f}%), speedup "
            f"{series.speedup_percent(i):.1f}%"
        )


def _print_fig5(figures) -> None:
    for mode in (GuardbandMode.UNDERVOLT, GuardbandMode.OVERCLOCK):
        series = figures.fig5_workload_heterogeneity(mode)
        print(f"Fig. 5 — {mode.value} improvement (%) at 1 and 8 cores")
        for workload, values in series.improvements.items():
            print(f"  {workload:>12}: {values[0]:5.1f} -> {values[7]:5.1f}")


def _print_fig6(figures) -> None:
    result = figures.fig6_cpm_voltage_mapping()
    print(
        f"Fig. 6 — CPM mapping: {result.mv_per_bit:.1f} mV/bit "
        f"(r^2={result.nominal_fit.r_squared:.3f})"
    )
    print(
        "  per-core mV/bit: "
        + " ".join(f"{s:.1f}" for s in result.core_sensitivity_mv)
    )


def _print_fig7(figures) -> None:
    out = figures.fig7_voltage_drop_scaling()
    print("Fig. 7 — core-0 voltage drop (%) at 1 and 8 active cores")
    for workload, series in out.items():
        c0 = series.drops_percent[0]
        print(f"  {workload:>12}: {c0[0]:4.1f} -> {c0[7]:4.1f}")


def _print_fig9(figures) -> None:
    out = figures.fig9_drop_decomposition()
    print("Fig. 9 — drop decomposition at 8 cores (% of nominal)")
    for workload, s in out.items():
        print(
            f"  {workload:>15}: LL {s.loadline[7]:.2f}, IR {s.ir_drop[7]:.2f}, "
            f"typ {s.typical_didt[7]:.2f}, worst {s.worst_didt[7]:.2f}"
        )


def _print_fig10(figures) -> None:
    result = figures.fig10_passive_drop_correlation()
    print(
        f"Fig. 10 — power->drop r^2={result.power_vs_drop.r_squared:.3f}, "
        f"drop->undervolt slope {result.drop_vs_undervolt.slope:.2f} mV/mV"
    )


def _print_fig12(figures) -> None:
    series = figures.fig12_borrowing_scaling()
    print("Fig. 12 — raytrace loadline borrowing gain")
    for i, n in enumerate(series.core_counts):
        print(f"  {n} cores: {series.borrowing_gain_percent(i):4.1f}%")


def _print_fig13(figures) -> None:
    series = figures.fig13_borrowing_all_workloads()
    print(
        f"Fig. 13 — avg improvement at 8 cores: baseline "
        f"{series.average(7, 'baseline'):.1f}%, borrowing "
        f"{series.average(7, 'borrowing'):.1f}%"
    )


def _print_fig14(figures) -> None:
    result = figures.fig14_borrowing_energy()
    print(
        f"Fig. 14 — mean power {result.mean_power_improvement:+.1f}%, mean "
        f"energy {result.mean_energy_improvement:+.1f}%"
    )
    for r in list(result.rows[:3]) + list(result.rows[-3:]):
        print(
            f"  {r.workload:>15}: energy {r.energy_improvement_percent:+6.1f}%"
        )


def _print_fig15(figures) -> None:
    points = figures.fig15_colocation_frequency()
    print("Fig. 15 — coremark frequency under colocation")
    for p in points:
        print(
            f"  <{p.n_coremark},{p.n_other}> vs {p.other:>6}: "
            f"{p.coremark_frequency/1e6:.0f} MHz"
        )


def _print_fig16(figures) -> None:
    result = figures.fig16_mips_predictor()
    print(
        f"Fig. 16 — MIPS predictor RMSE {result.relative_rmse*100:.2f}% over "
        f"{len(result.samples)} workloads"
    )


def _print_fig17(figures) -> None:
    result = figures.fig17_websearch_qos()
    print("Fig. 17 — WebSearch QoS violations")
    for level, rate in result.violation_rates.items():
        print(f"  {level:>6}: {rate:.1%} at {result.frequencies[level]/1e6:.0f} MHz")
    print(f"  tail improvement after mapping: {result.tail_improvement_percent:.1f}%")


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
