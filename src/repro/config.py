"""Configuration dataclasses for the simulated POWER7+ platform.

Every tunable of the model lives here, with defaults calibrated against the
measurements published in the paper (see ``DESIGN.md`` section 4 for the
anchor table).  The configs are plain frozen dataclasses: construct one,
optionally ``dataclasses.replace`` a few fields, and hand it to the model
constructors.  Validation happens eagerly in ``__post_init__``.

The three layers mirror the physical system:

* :class:`ChipConfig` — the POWER7+ die: core count, DVFS range, timing
  model, power model, CPM and DPLL characteristics.
* :class:`PdnConfig` — everything between the VRM and the transistors:
  loadline resistance, on-chip IR-drop network, di/dt noise process.
* :class:`GuardbandConfig` — the firmware: static guardband size,
  calibration target, voltage step and control interval.
* :class:`ServerConfig` — the Power 720 box: number of sockets, peripheral
  power, and one of each config above.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .units import ghz, mhz, mohm, ms, mv, ns


@dataclass(frozen=True)
class VcsConfig:
    """Parameters of the Vcs power domain (on-chip storage structures).

    POWER7+ splits its supply into Vdd (core/cache logic) and Vcs (storage
    arrays) — Sec. 2.1.  Vcs is *not* adaptively managed: the arrays need a
    retention floor, so the rail holds a fixed voltage and its power varies
    only with access activity and temperature.  It is modelled so the
    platform can report total processor power, but it deliberately sits
    outside the guardband control loops, exactly as in the machine.
    """

    #: Fixed Vcs rail voltage (V).
    voltage: float = 1.05

    #: Array leakage at the rail voltage and 35C (W).
    leakage_nominal: float = 9.0

    #: Access-driven dynamic power per active core at full activity (W).
    dynamic_per_core: float = 0.8

    #: Dynamic floor when the chip is idle but clocked (W).
    dynamic_idle: float = 1.2

    #: Leakage multiplier per degree C above 35C.
    temp_coeff: float = 0.010

    def __post_init__(self) -> None:
        if self.voltage <= 0:
            raise ConfigError("Vcs voltage must be positive")
        if self.leakage_nominal < 0 or self.dynamic_per_core < 0:
            raise ConfigError("Vcs power terms must be >= 0")
        if self.dynamic_idle < 0:
            raise ConfigError("Vcs idle dynamic must be >= 0")


@dataclass(frozen=True)
class ChipConfig:
    """Parameters of one POWER7+ die.

    The timing model is the linear relation the paper measures in Fig. 6a:
    the minimum voltage at which the circuit meets timing at frequency ``f``
    is ``vmin_intercept + vmin_slope * f``.  The default slope (0.2 V/GHz)
    reproduces both the ~10% single-core overclocking headroom (Fig. 4a) and
    the ~170 mV margin observed at 2.8 GHz / 940 mV in Fig. 6a.
    """

    #: Number of physical cores on the die.
    n_cores: int = 8

    #: Simultaneous multithreading ways per core (POWER7+ is SMT4).
    smt_ways: int = 4

    #: Lowest DVFS frequency (Hz).
    f_min: float = ghz(2.8)

    #: Nominal (static-guardband target) frequency (Hz).
    f_nominal: float = ghz(4.2)

    #: DVFS/DPLL frequency step (Hz).  The paper reports 28 MHz steps.
    f_step: float = mhz(28)

    #: Hard DPLL ceiling in overclocking mode (Hz).  ~11% above nominal.
    f_ceiling: float = ghz(4.66)

    #: Intercept of the Vmin(f) timing wall (V).
    vmin_intercept: float = 0.210

    #: Slope of the Vmin(f) timing wall (V per Hz).
    vmin_slope: float = 0.200 / ghz(1)

    #: Effective switched capacitance of one fully active core (F).
    #: Chosen so that one raytrace-class core at ~1.22 V / 4.2 GHz adds ~10 W
    #: (Fig. 3a: ~72 W at one active core, ~144 W at eight).
    core_ceff: float = 1.65e-9

    #: Effective switched capacitance of the Vdd-rail uncore logic (F).
    #: Small by design: the big storage arrays live on the separate Vcs
    #: domain (Sec. 2.1), so the measured Vdd rail is core-dominated.
    uncore_ceff: float = 0.9e-9

    #: Fraction of uncore activity attributable to each active core.
    uncore_activity_per_core: float = 0.05

    #: Uncore activity floor when the chip is idle but clocked.
    uncore_activity_idle: float = 0.20

    #: Leakage power of one powered-on core at nominal V and 35C (W).
    #: The Vdd rail is core-dominated: the large L3 sits on the separate
    #: Vcs domain, so most idle Vdd power is gateable core leakage — the
    #: property loadline borrowing's idle-power half depends on (Fig. 12a).
    core_leakage_nominal: float = 6.4

    #: Leakage power of the Vdd-rail uncore logic at nominal V and 35C (W).
    uncore_leakage_nominal: float = 2.0

    #: Voltage exponent of leakage power (P_leak ∝ V**exp).
    leakage_voltage_exponent: float = 3.0

    #: Leakage multiplier per degree C above the reference temperature.
    leakage_temp_coeff: float = 0.010

    #: Reference temperature for the leakage model (C).  The paper's die
    #: runs 27–38C (Sec. 4.1), so nominal leakage is anchored at 35C.
    leakage_temp_ref: float = 35.0

    #: Residual leakage fraction of a power-gated core (header losses).
    power_gate_residual: float = 0.03

    #: Idle (clocked, no work) core activity factor.
    idle_activity: float = 0.10

    #: Number of CPM sensors per core (paper: 5 per core, 40 per chip).
    cpms_per_core: int = 5

    #: CPM edge-detector codes run 0..cpm_code_max (12-position detector).
    cpm_code_max: int = 11

    #: Timing margin represented by one CPM code step at f_nominal (V).
    #: The paper measures ~21 mV/bit (Fig. 6).
    cpm_mv_per_bit: float = mv(21)

    #: Relative sigma of per-CPM sensitivity (process variation, Fig. 6b).
    cpm_sensitivity_sigma: float = 0.12

    #: Relative sigma of per-CPM calibration offset in code units.
    cpm_offset_sigma: float = 0.25

    #: Maximum DPLL slew: fraction of current frequency per slew interval.
    dpll_slew_fraction: float = 0.07

    #: DPLL slew interval (s).  Paper: 7% in under 10 ns.
    dpll_slew_interval: float = ns(10)

    #: The Vcs (storage) domain riding alongside the Vdd rail.
    vcs: "VcsConfig" = field(default_factory=lambda: VcsConfig())

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.smt_ways < 1:
            raise ConfigError(f"smt_ways must be >= 1, got {self.smt_ways}")
        if not self.f_min < self.f_nominal <= self.f_ceiling:
            raise ConfigError(
                "require f_min < f_nominal <= f_ceiling, got "
                f"{self.f_min} / {self.f_nominal} / {self.f_ceiling}"
            )
        if self.f_step <= 0:
            raise ConfigError(f"f_step must be positive, got {self.f_step}")
        if self.vmin_slope <= 0:
            raise ConfigError("vmin_slope must be positive")
        if self.cpm_code_max < 1:
            raise ConfigError("cpm_code_max must be >= 1")
        if self.cpms_per_core < 1:
            raise ConfigError("cpms_per_core must be >= 1")
        if not 0 <= self.power_gate_residual < 1:
            raise ConfigError("power_gate_residual must be in [0, 1)")

    def vmin(self, frequency: float) -> float:
        """Minimum voltage (V) at which the circuit meets timing at ``frequency``."""
        return self.vmin_intercept + self.vmin_slope * frequency

    def fmax_at(self, voltage: float) -> float:
        """Highest frequency (Hz) the circuit can meet timing at ``voltage``."""
        return (voltage - self.vmin_intercept) / self.vmin_slope

    @property
    def n_cpms(self) -> int:
        """Total CPM count on the die (paper: 40)."""
        return self.n_cores * self.cpms_per_core


@dataclass(frozen=True)
class DidtConfig:
    """Parameters of the di/dt (inductive noise) process.

    The paper (Sec. 4.3, Fig. 9) distinguishes *typical-case* ripple, which
    shrinks as activity staggers across more cores, from *worst-case* droops,
    rare alignment events whose magnitude grows slightly with core count.
    """

    #: Typical-case ripple amplitude of one active core at full activity (V).
    ripple_single_core: float = mv(21)

    #: Exponent of the 1/N**k smoothing of typical ripple with active cores.
    ripple_smoothing_exponent: float = 0.45

    #: Worst-case droop magnitude with one active core (V).
    droop_single_core: float = mv(26)

    #: Additional worst-case droop per extra active core, as a fraction of
    #: the single-core droop when all remaining cores are active.  Aligned
    #: multicore surges more than double the single-core droop at eight
    #: active cores — the magnified worst-case noise of Sec. 4.3.
    droop_alignment_gain: float = 0.9

    #: Mean rate of worst-case droop events per active core (events/s).
    #: Deep aligned droops are rare (Sec. 4.3: "such large worst-case
    #: droops occur infrequently") — most 32 ms sticky windows are empty.
    droop_rate_per_core: float = 1.0

    #: Duration of one droop event (s).
    droop_duration: float = 120e-9

    def __post_init__(self) -> None:
        if self.ripple_single_core < 0 or self.droop_single_core < 0:
            raise ConfigError("noise magnitudes must be non-negative")
        if self.ripple_smoothing_exponent < 0:
            raise ConfigError("ripple_smoothing_exponent must be >= 0")
        if self.droop_rate_per_core < 0:
            raise ConfigError("droop_rate_per_core must be >= 0")


@dataclass(frozen=True)
class PdnConfig:
    """Power-delivery parameters between the VRM and one die.

    The passive drop is ``(r_loadline + r_ir_shared) * I_chip`` plus a
    per-core local term ``r_ir_local * I_core`` — this split reproduces the
    paper's observation (Fig. 7) that voltage drop has a chip-wide global
    component plus a localized component that jumps when a specific core is
    activated.
    """

    #: VRM loadline resistance (ohm).  Per-socket delivery path.
    r_loadline: float = mohm(0.24)

    #: Shared on-chip grid resistance seen by total chip current (ohm).
    r_ir_shared: float = mohm(0.10)

    #: Local per-core branch resistance seen by that core's current (ohm).
    r_ir_local: float = mohm(0.70)

    #: Neighbour coupling: fraction of a core's local drop leaking into
    #: adjacent cores of the 2x4 floorplan.
    ir_neighbour_coupling: float = 0.38

    #: VRM output voltage step (V).  POWER7+ VRMs step in 6.25 mV.
    vrm_step: float = mv(6.25)

    #: di/dt noise process parameters.
    didt: DidtConfig = field(default_factory=DidtConfig)

    def __post_init__(self) -> None:
        for name in ("r_loadline", "r_ir_shared", "r_ir_local"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if not 0 <= self.ir_neighbour_coupling <= 1:
            raise ConfigError("ir_neighbour_coupling must be in [0, 1]")
        if self.vrm_step <= 0:
            raise ConfigError("vrm_step must be positive")


@dataclass(frozen=True)
class GuardbandConfig:
    """Firmware-level guardband management parameters.

    ``static_guardband`` is the voltage the traditional (static) policy adds
    on top of the worst-case-stressed Vmin at the target frequency; it covers
    loadline, IR drop, worst-case di/dt, aging and calibration error.  With
    the default chip timing model this puts the static Vdd at
    ``vmin(4.2 GHz) + static_guardband ≈ 1.235 V``, matching Fig. 10b.
    """

    #: Total static guardband above Vmin(f_target) (V).
    static_guardband: float = mv(185)

    #: CPM code the calibration procedure targets (paper: ~2).
    calibration_code: int = 2

    #: Firmware control loop interval (s).  Paper: 32 ms.
    control_interval: float = ms(32)

    #: Undervolting convergence tolerance on frequency (fraction of target).
    frequency_tolerance: float = 0.002

    #: Extra deterministic margin the firmware reserves beyond the CPM
    #: calibration point, covering mechanism nondeterminism (V).
    nondeterminism_margin: float = mv(3)

    def __post_init__(self) -> None:
        if self.static_guardband <= 0:
            raise ConfigError("static_guardband must be positive")
        if self.calibration_code < 0:
            raise ConfigError("calibration_code must be >= 0")
        if self.control_interval <= 0:
            raise ConfigError("control_interval must be positive")


@dataclass(frozen=True)
class ServerConfig:
    """An IBM Power 720 Express (7R2)-class server: two sockets, shared VRM.

    Peripheral power (memory, storage, network, fans) is modelled as a
    constant because the paper holds those components powered throughout
    (Sec. 5.1.1: "Other components such as memory chips and disks are
    powered on steadily throughout our analysis").
    """

    #: Number of processor sockets.
    n_sockets: int = 2

    #: Per-die configuration (identical dies).
    chip: ChipConfig = field(default_factory=ChipConfig)

    #: Per-socket power delivery configuration (identical paths).
    pdn: PdnConfig = field(default_factory=PdnConfig)

    #: Firmware configuration.
    guardband: GuardbandConfig = field(default_factory=GuardbandConfig)

    #: Constant peripheral power for the whole server (W).
    peripheral_power: float = 120.0

    #: Named power-delivery backend (see :mod:`repro.pdn.backends`).
    #: Resolved against the registry when a server is built; unknown
    #: names fail there with the registered names listed.
    pdn_backend: str = "power7"

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigError(f"n_sockets must be >= 1, got {self.n_sockets}")
        if self.peripheral_power < 0:
            raise ConfigError("peripheral_power must be >= 0")
        if not self.pdn_backend or not isinstance(self.pdn_backend, str):
            raise ConfigError("pdn_backend must be a non-empty string")

    @property
    def total_cores(self) -> int:
        """Total physical cores in the server."""
        return self.n_sockets * self.chip.n_cores

    @property
    def static_vdd(self) -> float:
        """The fixed Vdd used by the static-guardband policy (V)."""
        return self.chip.vmin(self.chip.f_nominal) + self.guardband.static_guardband


DEFAULT_SERVER = ServerConfig()
"""A ready-made default server configuration (two POWER7+ sockets)."""
