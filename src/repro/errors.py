"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the simulator derive from :class:`ReproError` so that
callers can catch simulator problems without masking genuine Python bugs
(``TypeError`` and friends are deliberately *not* wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration object failed validation.

    Raised eagerly at construction time (see ``__post_init__`` on the
    dataclasses in :mod:`repro.config`) so that a bad parameter fails at the
    call site that supplied it rather than deep inside a simulation step.
    """


class ConvergenceError(ReproError):
    """The electrical fixed-point solver failed to converge.

    The voltage/current/power state of a socket is mutually dependent and is
    solved by damped iteration.  Under every supported configuration the
    iteration contracts; failure indicates parameters far outside the
    validated envelope (for example a loadline resistance large enough that
    the chip cannot be powered at all).
    """


class CalibrationError(ReproError):
    """CPM calibration could not reach the requested target code."""


class SchedulingError(ReproError):
    """A scheduler was asked to produce an impossible placement.

    Examples: more threads than hardware thread slots, or a pinned critical
    workload that does not fit on the requested socket.
    """


class SensorError(ReproError):
    """A telemetry read was malformed (unknown sensor, bad sampling mode)."""


class WorkloadError(ReproError):
    """An unknown benchmark name or invalid workload parameter."""


class FaultError(ReproError):
    """A fault-injection plan or spec is invalid.

    Raised eagerly when a :class:`~repro.faults.spec.FaultSpec` fails
    validation (negative window, bad target) or when a plan references an
    entity the simulation does not have (e.g. a server id beyond the
    fleet size).
    """


class ScenarioError(ReproError):
    """A scenario file or :class:`~repro.scenarios.Scenario` is invalid.

    Raised eagerly when a scenario TOML document fails to parse, carries
    unknown keys, or fails cross-field validation (for example a fault
    window opening beyond the traffic horizon) — so ``repro scenario``
    commands fail with a distinct exit code instead of a traceback.
    """


class WatchdogError(ReproError):
    """A runtime invariant the watchdog enforces was violated.

    Raised only in *strict* mode (tests and chaos runs); production-style
    runs count violations through the observability layer instead so a
    tripped invariant degrades to telemetry rather than an abort.  See
    :mod:`repro.faults.watchdog`.
    """


class SweepError(ReproError):
    """One or more tasks of a sweep batch failed to execute.

    Carries the per-task failure manifest so callers can tell *which*
    points died (and why) while the successful remainder of the batch is
    already cached; see :attr:`failures` and
    :class:`~repro.sim.batch.TaskFailure`.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        #: The :class:`~repro.sim.batch.TaskFailure` manifest.
        self.failures = tuple(failures)
