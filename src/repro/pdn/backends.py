"""Pluggable power-delivery backends: one registry, many PDN models.

The simulator's electrical core is :class:`~repro.pdn.delivery.
PowerDeliveryPath` — VRM rail, loadline, IR grid, di/dt noise.  Until
now the POWER7+ loadline model was hard-wired into
:class:`~repro.sim.server.Power720Server`.  FlexWatts (PAPERS.md) makes
the case that the delivery network itself is a design variable: hybrid
on-board/on-chip regulation trades loadline resistance against local
conversion loss.  To compare delivery models *inside one scenario*, the
PDN is now a named backend resolved through this registry.

A backend is anything implementing :class:`PdnBackend`: a ``name`` and a
``build_path`` hook that constructs the delivery path for one socket.
``ServerConfig.pdn_backend`` selects the backend by name; the scenario
policy key ``policy.pdn_backend`` and the ``measure(pdn_backend=...)``
facade kwarg thread down to it.

Two backends ship in-tree:

``power7``
    The paper's POWER7+ loadline model, bit-identical to the previously
    hard-wired path.  This is the default; every existing golden hash
    is pinned against it.

``flexwatts``
    A simplified FlexWatts-style hybrid: an on-board regulation stage
    close to the socket cuts the effective loadline resistance roughly
    in half, at the cost of a higher shared-grid resistance (the board
    VR's output network sits in the shared path) and slightly stronger
    neighbour coupling.  It reuses the same electrical solver — only
    the :class:`~repro.config.PdnConfig` resistances differ — so it is
    exactly as deterministic as the default.

Unknown names raise :class:`~repro.errors.ConfigError` listing what is
registered, so a typo in a scenario file fails loudly at build time.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Dict, Tuple

from ..config import PdnConfig
from ..errors import ConfigError
from .delivery import PowerDeliveryPath

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..floorplan import Floorplan
    from .vrm import VoltageRegulatorModule


@dataclasses.dataclass(frozen=True)
class PdnBackend:
    """A named power-delivery model.

    ``transform`` maps the server's :class:`PdnConfig` to the effective
    electrical configuration this backend simulates; ``build_path``
    constructs the per-socket delivery path from it.  Keeping the
    transform explicit (rather than an opaque builder) means a backend
    is introspectable: ``backend.effective_config(cfg)`` shows exactly
    which resistances a scenario ran with.
    """

    #: Registry key; also what ``ServerConfig.pdn_backend`` names.
    name: str

    #: One-line description surfaced in error messages and docs.
    description: str

    #: PdnConfig → effective PdnConfig for this delivery model.
    transform: Callable[[PdnConfig], PdnConfig]

    def effective_config(self, config: PdnConfig) -> PdnConfig:
        """The electrical configuration this backend actually simulates."""
        return self.transform(config)

    def build_vrm(
        self, config: PdnConfig, n_rails: int
    ) -> "VoltageRegulatorModule":
        """Construct the shared VRM under this backend.

        The VRM owns the loadline drop, so it must see the same
        effective configuration as the per-socket paths.
        """
        from .vrm import VoltageRegulatorModule

        return VoltageRegulatorModule(
            self.effective_config(config), n_rails=n_rails
        )

    def build_path(
        self,
        config: PdnConfig,
        floorplan: "Floorplan",
        vrm: "VoltageRegulatorModule",
        rail: int,
    ) -> PowerDeliveryPath:
        """Construct one socket's delivery path under this backend."""
        return PowerDeliveryPath(
            self.effective_config(config), floorplan, vrm, rail
        )


_REGISTRY: Dict[str, PdnBackend] = {}

#: Name of the backend every config defaults to.
DEFAULT_BACKEND = "power7"


def register_backend(backend: PdnBackend) -> PdnBackend:
    """Add ``backend`` to the registry (last registration wins)."""
    if not backend.name:
        raise ConfigError("PDN backend name must be a non-empty string")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> PdnBackend:
    """Resolve a backend by name; unknown names list what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigError(
            f"unknown PDN backend {name!r}; registered backends: {known}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def _power7_transform(config: PdnConfig) -> PdnConfig:
    # The POWER7+ loadline model *is* the PdnConfig — identity.
    return config


def _flexwatts_transform(config: PdnConfig) -> PdnConfig:
    # Hybrid on-board VR: the regulation point moves next to the socket,
    # halving the effective loadline the cores see.  The board VR's
    # output network now sits in the shared path (higher r_ir_shared)
    # and couples the sockets slightly more strongly.  Local per-core
    # grid and di/dt behaviour are unchanged — same die, same grid.
    return dataclasses.replace(
        config,
        r_loadline=config.r_loadline * 0.5,
        r_ir_shared=config.r_ir_shared * 1.6,
        ir_neighbour_coupling=min(1.0, config.ir_neighbour_coupling * 1.15),
    )


POWER7_BACKEND = register_backend(
    PdnBackend(
        name="power7",
        description="POWER7+ loadline model (paper default)",
        transform=_power7_transform,
    )
)

FLEXWATTS_BACKEND = register_backend(
    PdnBackend(
        name="flexwatts",
        description=(
            "simplified FlexWatts-style hybrid: on-board VR halves the "
            "loadline, shared-grid resistance and coupling rise"
        ),
        transform=_flexwatts_transform,
    )
)
