"""Power delivery network: VRM, loadline, on-chip IR drop, di/dt noise.

The decomposition of on-chip voltage drop follows the paper's Fig. 8:

``V_transistor = V_vrm_setpoint − loadline − IR drop − di/dt noise``

with the loadline at the VRM, the IR drop across the package and on-chip
grid, and di/dt noise split into a typical-case ripple and rare worst-case
droop events.
"""

from .backends import (
    DEFAULT_BACKEND,
    PdnBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .decomposition import DecomposedDrop, DropDecomposer
from .delivery import DropBreakdown, PowerDeliveryPath
from .didt import DidtNoiseModel, DroopEvent
from .irdrop import IrDropNetwork
from .vrm import VoltageRegulatorModule

__all__ = [
    "DEFAULT_BACKEND",
    "DecomposedDrop",
    "DidtNoiseModel",
    "DroopEvent",
    "DropBreakdown",
    "DropDecomposer",
    "IrDropNetwork",
    "PdnBackend",
    "PowerDeliveryPath",
    "VoltageRegulatorModule",
    "backend_names",
    "get_backend",
    "register_backend",
]
