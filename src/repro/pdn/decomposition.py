"""Measurement-side voltage-drop decomposition (the Sec. 4.3 methodology).

The paper decomposes measured on-chip voltage drop into four components
using a mixture of VRM current sensing and CPM reads:

1. **loadline** — VRM current sensor × loadline resistance;
2. **IR drop** — VRM current sensor × grid resistance (the "heuristic
   equation verified against hardware measurements");
3. **typical-case di/dt** — sample-mode CPM converted to volts, minus the
   passive component;
4. **worst-case di/dt** — sticky-mode (window-minimum) CPM converted to
   volts, minus the sample-mode long-term average.

:class:`DropDecomposer` implements the same arithmetic against the
simulator's telemetry, so the Fig. 9 benchmark exercises the *measurement
path*, not just the ground-truth model — exactly the way the authors could
only observe their hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PdnConfig


@dataclass(frozen=True)
class DecomposedDrop:
    """One core's measured voltage drop split into Fig. 8's components.

    All fields in volts, all non-negative.
    """

    loadline: float
    ir_drop: float
    typical_didt: float
    worst_didt: float

    @property
    def passive(self) -> float:
        """Loadline plus IR drop — the component that scales with power."""
        return self.loadline + self.ir_drop

    @property
    def total(self) -> float:
        """Total decomposed drop."""
        return self.loadline + self.ir_drop + self.typical_didt + self.worst_didt

    def as_percent_of(self, nominal: float) -> "DecomposedDrop":
        """Re-express every component as a percentage of ``nominal`` volts."""
        if nominal <= 0:
            raise ValueError(f"nominal must be positive, got {nominal}")
        scale = 100.0 / nominal
        return DecomposedDrop(
            loadline=self.loadline * scale,
            ir_drop=self.ir_drop * scale,
            typical_didt=self.typical_didt * scale,
            worst_didt=self.worst_didt * scale,
        )


class DropDecomposer:
    """Splits sensor readings into loadline / IR / typical / worst di/dt."""

    def __init__(self, config: PdnConfig) -> None:
        self._config = config

    def passive_from_current(self, chip_current: float) -> tuple:
        """(loadline, ir) drop in volts from a VRM current-sensor reading.

        This is the paper's heuristic equation: both passive terms are
        proportional to the sensed chip current.  The IR term uses the
        shared-grid resistance plus the floorplan-average local resistance
        contribution of a uniformly loaded chip.
        """
        if chip_current < 0:
            raise ValueError(f"chip_current must be >= 0, got {chip_current}")
        loadline = self._config.r_loadline * chip_current
        ir = self._config.r_ir_shared * chip_current
        return loadline, ir

    def decompose(
        self,
        chip_current: float,
        sample_mode_drop: float,
        sticky_mode_drop: float,
        local_ir: float = 0.0,
    ) -> DecomposedDrop:
        """Full decomposition from one telemetry window.

        Parameters
        ----------
        chip_current:
            VRM current-sensor reading (A).
        sample_mode_drop:
            Long-term-average total drop from sample-mode CPM reads (V).
        sticky_mode_drop:
            Window-worst total drop from sticky-mode CPM reads (V).
        local_ir:
            Optional per-core local IR contribution (V) if the caller has
            attributed it (the paper folds it into "IR drop").
        """
        loadline, ir_shared = self.passive_from_current(chip_current)
        ir = ir_shared + max(local_ir, 0.0)
        typical = max(sample_mode_drop - loadline - ir, 0.0)
        worst = max(sticky_mode_drop - sample_mode_drop, 0.0)
        return DecomposedDrop(
            loadline=loadline,
            ir_drop=ir,
            typical_didt=typical,
            worst_didt=worst,
        )
