"""di/dt (inductive) noise model: typical-case ripple and worst-case droops.

The paper's Sec. 4.3 measures two opposite multicore trends, both of which
this model reproduces:

* **typical-case ripple shrinks** as more cores are active, because
  microarchitectural activity staggers across cores and smooths aggregate
  current (noise smoothing, after Reddi et al. and Miller et al.);
* **worst-case droops grow slightly**, because occasionally the cores'
  current surges align (synchronous behaviour or random alignment).

Magnitudes are workload traits: a workload with bursty pipeline behaviour
(e.g. lu_cb) carries larger single-core ripple and droop than a steady
streaming workload.  The model exposes

``typical_ripple(n)``  – amplitude of the ripple with ``n`` active cores;
``worst_droop(n)``     – magnitude of an aligned droop event;
``sample_events(...)`` – a seeded Poisson draw of droop events over a
                         measurement window, used by sticky-mode CPM reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import DidtConfig


@dataclass(frozen=True)
class DroopEvent:
    """One worst-case droop event inside a measurement window."""

    #: Time offset of the event inside the window (s).
    time: float

    #: Depth of the droop below the typical-case floor (V).
    magnitude: float


class DidtNoiseModel:
    """Workload-scaled di/dt noise process.

    Parameters
    ----------
    config:
        Platform-level noise parameters.
    ripple_scale, droop_scale:
        Workload traits multiplying the platform ripple/droop magnitudes;
        1.0 means a raytrace-class workload.
    """

    def __init__(
        self,
        config: DidtConfig,
        ripple_scale: float = 1.0,
        droop_scale: float = 1.0,
    ) -> None:
        if ripple_scale < 0 or droop_scale < 0:
            raise ValueError("noise scales must be >= 0")
        self._config = config
        self._ripple_scale = ripple_scale
        self._droop_scale = droop_scale

    @property
    def config(self) -> DidtConfig:
        """The platform noise parameters."""
        return self._config

    def typical_ripple(self, n_active_cores: int) -> float:
        """Typical-case ripple amplitude (V) with ``n_active_cores`` active.

        Per-core ripple adds incoherently, so the chip-level amplitude per
        unit of activity falls off as ``n**-k`` with the configured
        smoothing exponent — zero active cores means no activity-driven
        ripple at all.
        """
        self._check_n(n_active_cores)
        if n_active_cores == 0:
            return 0.0
        smoothing = n_active_cores**-self._config.ripple_smoothing_exponent
        return self._config.ripple_single_core * self._ripple_scale * smoothing

    def worst_droop(self, n_active_cores: int) -> float:
        """Worst-case aligned droop magnitude (V).

        Grows from the single-core value toward ``(1 + alignment_gain)``
        times it as the remaining cores activate: more cores give more
        opportunities for (rare) synchronized current surges.
        """
        self._check_n(n_active_cores)
        if n_active_cores == 0:
            return 0.0
        base = self._config.droop_single_core * self._droop_scale
        if n_active_cores == 1:
            return base
        growth = self._config.droop_alignment_gain * (n_active_cores - 1) / 7.0
        return base * (1.0 + growth)

    def event_rate(self, n_active_cores: int) -> float:
        """Mean worst-case droop events per second."""
        self._check_n(n_active_cores)
        return self._config.droop_rate_per_core * n_active_cores

    def sample_events(
        self,
        n_active_cores: int,
        window: float,
        rng: np.random.Generator,
    ) -> List[DroopEvent]:
        """Draw the droop events inside one measurement window.

        Event count is Poisson with the active-core-scaled rate; each event's
        depth is the worst-case magnitude jittered by ±20% (alignment is
        never perfectly identical twice).
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._check_n(n_active_cores)
        if n_active_cores == 0:
            return []
        count = int(rng.poisson(self.event_rate(n_active_cores) * window))
        magnitude = self.worst_droop(n_active_cores)
        events = []
        for _ in range(count):
            depth = magnitude * float(rng.uniform(0.8, 1.2))
            events.append(DroopEvent(time=float(rng.uniform(0, window)), magnitude=depth))
        return events

    def worst_in_window(
        self,
        n_active_cores: int,
        window: float,
        rng: np.random.Generator,
    ) -> float:
        """Deepest droop (V) observed in one window; 0 if no event fired."""
        events = self.sample_events(n_active_cores, window, rng)
        if not events:
            return 0.0
        return max(event.magnitude for event in events)

    @staticmethod
    def _check_n(n_active_cores: int) -> None:
        if n_active_cores < 0:
            raise ValueError(
                f"n_active_cores must be >= 0, got {n_active_cores}"
            )
