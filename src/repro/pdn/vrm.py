"""Voltage regulator module (VRM) with loadline and per-rail setpoints.

A server VRM regulates its output at the *sense point*; the effective output
voltage droops below the setpoint proportionally to load current — the
*loadline* (also called adaptive voltage positioning).  The paper identifies
this loadline as one of the two passive effects that erode adaptive
guardbanding's benefit at high load (Sec. 4.3), and loadline borrowing
(Sec. 5.1) exploits the fact that each socket has its *own* delivery path
from the shared VRM chip: spreading current across paths shrinks each
path's drop.

:class:`VoltageRegulatorModule` models one VRM chip with one rail per
socket.  Each rail has an independent setpoint (quantized to the VRM's
6.25 mV step) and an independent loadline resistance, plus a current sensor
per rail — the sensor the paper uses to quantify the passive drop
(Sec. 4.3: "To measure passive voltage drop ... we use VRM's current
sensors").
"""

from __future__ import annotations

import math
from typing import List

from ..config import PdnConfig
from ..errors import ConfigError


class VoltageRegulatorModule:
    """Multi-rail VRM with per-rail loadline and current sensing."""

    def __init__(self, config: PdnConfig, n_rails: int = 2) -> None:
        if n_rails < 1:
            raise ConfigError(f"n_rails must be >= 1, got {n_rails}")
        self._config = config
        self._n_rails = n_rails
        self._setpoints = [0.0] * n_rails
        self._currents = [0.0] * n_rails

    @property
    def n_rails(self) -> int:
        """Number of output rails (one per socket)."""
        return self._n_rails

    @property
    def step(self) -> float:
        """Setpoint quantization step (V)."""
        return self._config.vrm_step

    def quantize(self, voltage: float) -> float:
        """Snap a requested setpoint up to the VRM step grid.

        Rounding *up* is the safe direction for a guardband controller: the
        delivered voltage is never below what the caller asked for.
        """
        # The 1e-9 relative slack keeps values that are already on the grid
        # from being bumped a full step up by floating-point noise.
        steps = math.ceil(voltage / self._config.vrm_step - 1e-9)
        return steps * self._config.vrm_step

    def set_rail(self, rail: int, voltage: float) -> float:
        """Program one rail's setpoint; returns the quantized value."""
        self._check_rail(rail)
        if voltage <= 0:
            raise ValueError(f"setpoint must be positive, got {voltage}")
        quantized = self.quantize(voltage)
        self._setpoints[rail] = quantized
        return quantized

    def setpoint(self, rail: int) -> float:
        """Programmed setpoint of one rail (V)."""
        self._check_rail(rail)
        return self._setpoints[rail]

    def record_current(self, rail: int, current: float) -> None:
        """Update one rail's current-sensor reading (A)."""
        self._check_rail(rail)
        if current < 0:
            raise ValueError(f"current must be >= 0, got {current}")
        self._currents[rail] = current

    def sensed_current(self, rail: int) -> float:
        """Most recent current-sensor reading of one rail (A)."""
        self._check_rail(rail)
        return self._currents[rail]

    def loadline_drop(self, rail: int, current: float = None) -> float:
        """Loadline voltage drop (V) of one rail at ``current`` amps.

        With ``current`` omitted, uses the rail's sensed current — this is
        exactly the heuristic the paper describes for quantifying passive
        drop from the VRM current sensor.
        """
        self._check_rail(rail)
        amps = self._currents[rail] if current is None else current
        if amps < 0:
            raise ValueError(f"current must be >= 0, got {amps}")
        return self._config.r_loadline * amps

    def output_voltage(self, rail: int, current: float = None) -> float:
        """Effective rail output voltage after the loadline (V)."""
        return self.setpoint(rail) - self.loadline_drop(rail, current)

    def rail_currents(self) -> List[float]:
        """Sensed currents of every rail (A)."""
        return list(self._currents)

    def _check_rail(self, rail: int) -> None:
        if not 0 <= rail < self._n_rails:
            raise ValueError(f"rail must be in [0, {self._n_rails}), got {rail}")
