"""On-chip IR-drop network over the 2x4 core floorplan.

The resistive drop between the package bumps and each core's transistors
has two components the paper's Fig. 7 separates empirically:

* a **global** term — total chip current through the shared package/grid
  resistance drops the whole Vdd plane together, which is why idle cores
  see rising voltage drop when *other* cores are activated;
* a **local** term — each core's own current through its local branch
  resistance, which is why a core's measured drop jumps by ~2% the moment
  that core itself is activated, and couples (attenuated) into floorplan
  neighbours.

:class:`IrDropNetwork` computes the per-core IR drop from per-core
currents using the shared resistance plus a neighbour-coupling weight
matrix built from the floorplan's Manhattan distances.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import PdnConfig
from ..floorplan import Floorplan


class IrDropNetwork:
    """Per-core IR drop as a linear map over per-core currents."""

    def __init__(self, config: PdnConfig, floorplan: Floorplan) -> None:
        self._config = config
        self._floorplan = floorplan
        weights = np.asarray(
            floorplan.coupling_weights(config.ir_neighbour_coupling), dtype=float
        )
        # The matrix maps per-core currents (A) to per-core local IR drops
        # (V): a core's own current sees the full branch resistance, and a
        # fraction (decaying geometrically with Manhattan distance) of every
        # other core's current is felt through the shared grid.
        self._local_matrix = config.r_ir_local * weights
        self._n_cores = floorplan.n_cores

    @property
    def n_cores(self) -> int:
        """Number of cores the network spans."""
        return self._n_cores

    def shared_drop(self, total_current: float) -> float:
        """Global grid drop (V) from total chip current."""
        if total_current < 0:
            raise ValueError(f"total_current must be >= 0, got {total_current}")
        return self._config.r_ir_shared * total_current

    def local_drops(self, core_currents: Sequence[float]) -> List[float]:
        """Per-core local IR drop (V) including neighbour coupling."""
        currents = np.asarray(core_currents, dtype=float)
        if currents.shape != (self._n_cores,):
            raise ValueError(
                f"expected {self._n_cores} core currents, got {currents.shape}"
            )
        if np.any(currents < 0):
            raise ValueError("core currents must be >= 0")
        return list(self._local_matrix @ currents)

    def core_drops(self, core_currents: Sequence[float]) -> List[float]:
        """Total per-core IR drop: shared grid term plus local term."""
        shared = self.shared_drop(float(np.sum(core_currents)))
        return [shared + local for local in self.local_drops(core_currents)]

    def worst_drop(self, core_currents: Sequence[float]) -> float:
        """Largest per-core IR drop — what limits chip-wide undervolting."""
        return max(self.core_drops(core_currents))
