"""One socket's complete power delivery path: VRM rail → package → cores.

:class:`PowerDeliveryPath` composes the three drop mechanisms of Fig. 8 for
a single socket and answers the central electrical question of the
simulator: *given a VRM setpoint and per-core currents, what voltage do the
transistors of each core actually see?*

The returned :class:`DropBreakdown` carries each component separately so
the analysis layer can regenerate the stacked decomposition of Fig. 9
without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import PdnConfig
from ..faults.injector import fault_injector
from ..floorplan import Floorplan
from .didt import DidtNoiseModel
from .irdrop import IrDropNetwork
from .vrm import VoltageRegulatorModule


@dataclass(frozen=True)
class DropBreakdown:
    """Per-core voltage drop decomposition for one operating point.

    All entries are in volts.  ``core_voltages`` is the final on-die voltage
    per core under *typical* conditions (worst-case droops are transient
    events layered on top by the telemetry and firmware models).
    """

    #: VRM setpoint the rail was programmed to.
    setpoint: float

    #: Loadline drop at the VRM (scalar — shared by the whole socket).
    loadline: float

    #: Shared on-chip grid IR drop (scalar).
    ir_shared: float

    #: Per-core local IR drop.
    ir_local: tuple

    #: Typical-case di/dt ripple amplitude (scalar).
    typical_didt: float

    #: Worst-case droop magnitude that events in this state would reach.
    worst_didt: float

    #: Per-core on-die voltage under typical conditions.
    core_voltages: tuple

    @property
    def passive_total(self) -> float:
        """Loadline + shared IR + mean local IR — the paper's passive drop."""
        return self.loadline + self.ir_shared + float(np.mean(self.ir_local))

    def passive_at(self, core_id: int) -> float:
        """Passive (loadline + IR) drop at one core."""
        return self.loadline + self.ir_shared + self.ir_local[core_id]

    def total_at(self, core_id: int) -> float:
        """Typical-condition total drop at one core (excludes rare droops)."""
        return self.passive_at(core_id) + self.typical_didt

    def worst_total_at(self, core_id: int) -> float:
        """Drop at one core during a worst-case droop event."""
        return self.passive_at(core_id) + self.worst_didt

    @property
    def worst_core(self) -> int:
        """Index of the core with the lowest typical-condition voltage."""
        return int(np.argmin(self.core_voltages))

    @property
    def min_voltage(self) -> float:
        """Lowest per-core typical-condition voltage."""
        return float(np.min(self.core_voltages))


class PowerDeliveryPath:
    """VRM rail plus IR network plus noise model for one socket."""

    def __init__(
        self,
        config: PdnConfig,
        floorplan: Floorplan,
        vrm: VoltageRegulatorModule,
        rail: int,
        noise: Optional[DidtNoiseModel] = None,
    ) -> None:
        self._config = config
        self._vrm = vrm
        self._rail = rail
        self._ir = IrDropNetwork(config, floorplan)
        self._noise = noise or DidtNoiseModel(config.didt)

    @property
    def vrm(self) -> VoltageRegulatorModule:
        """The shared VRM chip this path draws from."""
        return self._vrm

    @property
    def rail(self) -> int:
        """The VRM rail index feeding this socket."""
        return self._rail

    @property
    def noise(self) -> DidtNoiseModel:
        """The di/dt noise model in effect (workload-scaled)."""
        return self._noise

    def set_noise(self, noise: DidtNoiseModel) -> None:
        """Swap the noise model (the scheduler re-scales it per workload)."""
        self._noise = noise

    def set_voltage(self, voltage: float) -> float:
        """Program this socket's rail setpoint; returns the quantized value."""
        return self._vrm.set_rail(self._rail, voltage)

    @property
    def setpoint(self) -> float:
        """Currently programmed rail setpoint (V)."""
        return self._vrm.setpoint(self._rail)

    def deliver(
        self,
        core_currents: Sequence[float],
        uncore_current: float,
        n_active_cores: int,
    ) -> DropBreakdown:
        """Compute per-core on-die voltages for the given current draw.

        Parameters
        ----------
        core_currents:
            Per-core current draw (A) at the present operating point.
        uncore_current:
            Uncore current (A) — contributes to loadline and shared-grid
            drop but has no per-core local branch.
        n_active_cores:
            Number of cores actively running threads (drives di/dt scaling).
        """
        if uncore_current < 0:
            raise ValueError(f"uncore_current must be >= 0, got {uncore_current}")
        total = float(np.sum(core_currents)) + uncore_current
        self._vrm.record_current(self._rail, total)
        loadline = self._vrm.loadline_drop(self._rail, total)
        injected_droop = 0.0
        injector = fault_injector()
        if injector.enabled:
            # Fault hooks: a loadline-excursion fault scales the resistive
            # drop; a VRM-droop fault sags the delivered rail directly.
            # Both bail to the fault-free arithmetic when inactive.
            scale = injector.loadline_scale(self._rail)
            if scale != 1.0:
                loadline *= scale
            injected_droop = injector.rail_droop(self._rail)
        ir_shared = self._ir.shared_drop(total)
        ir_local = self._ir.local_drops(core_currents)
        ripple = self._noise.typical_ripple(n_active_cores)
        droop = self._noise.worst_droop(n_active_cores)
        setpoint = self.setpoint
        if isinstance(core_currents, np.ndarray):
            # Array backend: fold the scalar drops first (same
            # left-associative order as the comprehension below), then
            # subtract the per-core terms elementwise — bit-identical.
            prefix = setpoint - injected_droop - loadline - ir_shared
            voltages = tuple(
                (prefix - np.asarray(ir_local) - ripple).tolist()
            )
        else:
            voltages = tuple(
                setpoint - injected_droop - loadline - ir_shared - local - ripple
                for local in ir_local
            )
        return DropBreakdown(
            setpoint=setpoint,
            loadline=loadline,
            ir_shared=ir_shared,
            ir_local=tuple(ir_local),
            typical_didt=ripple,
            worst_didt=droop,
            core_voltages=voltages,
        )
