"""repro — a simulated-POWER7+ reproduction of *Adaptive Guardband
Scheduling to Improve System-Level Efficiency of the POWER7+* (MICRO 2015).

The package layers, bottom-up:

* :mod:`repro.pdn` — VRM, loadline, on-chip IR drop, di/dt noise.
* :mod:`repro.chip` — the eight-core die: CPMs, DPLLs, power, thermal.
* :mod:`repro.guardband` — static / undervolting / overclocking firmware.
* :mod:`repro.workloads` — calibrated benchmark catalog and runtime models.
* :mod:`repro.sim` — socket and two-socket-server electrical solving.
* :mod:`repro.core` — the paper's contribution: adaptive guardband
  scheduling (loadline borrowing and adaptive mapping).
* :mod:`repro.telemetry` — AMESTER-style sensor sampling.
* :mod:`repro.analysis` — metric/figure builders for the evaluation.
* :mod:`repro.obs` — zero-perturbation metrics and span tracing.
* :mod:`repro.faults` — deterministic fault injection and chaos reports.
* :mod:`repro.api` — the unified ``measure``/``sweep`` facade.

Quickstart::

    from repro import GuardbandMode, measure

    result = measure("raytrace", n_threads=1, mode=GuardbandMode.UNDERVOLT)
    print(f"power saving: {result.power_saving_fraction:.1%}")
"""

from .api import measure, sweep
from .config import (
    ChipConfig,
    DidtConfig,
    GuardbandConfig,
    PdnConfig,
    ServerConfig,
)
from .faults import FaultInjector, FaultPlan, chaos_plan, injected, run_chaos
from .guardband import GuardbandController, GuardbandMode
from .sim import Power720Server, RunResult, SteadyState
from .sim.run import (
    build_server,
    core_scaling_sweep,
    measure_consolidated,
    measure_placement,
)
from .workloads import (
    SCALABLE_BENCHMARKS,
    WorkloadProfile,
    all_profiles,
    get_profile,
    profile_names,
)

__version__ = "1.0.0"

__all__ = [
    "ChipConfig",
    "DidtConfig",
    "FaultInjector",
    "FaultPlan",
    "GuardbandConfig",
    "GuardbandController",
    "GuardbandMode",
    "PdnConfig",
    "Power720Server",
    "RunResult",
    "SCALABLE_BENCHMARKS",
    "ServerConfig",
    "SteadyState",
    "WorkloadProfile",
    "__version__",
    "all_profiles",
    "build_server",
    "chaos_plan",
    "core_scaling_sweep",
    "get_profile",
    "injected",
    "measure",
    "measure_consolidated",
    "measure_placement",
    "profile_names",
    "run_chaos",
    "sweep",
]
