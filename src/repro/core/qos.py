"""QoS bookkeeping for latency-critical workloads (Sec. 5.2).

:class:`QosSpec` declares the SLA: the tail-latency percentile target and
the violation-rate threshold above which the scheduler must act.
:class:`QosMonitor` accumulates per-window tail-latency observations and
answers the Fig. 18 decision points ("QoS violated?", "violation rate >
threshold?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import SchedulingError


@dataclass(frozen=True)
class QosSpec:
    """The service-level agreement of one critical workload."""

    #: Tail-latency target (s) the percentile must stay under.
    latency_target: float = 0.5

    #: Percentile the target applies to (the paper uses the 90th).
    percentile: float = 90.0

    #: Violation-rate threshold that triggers co-runner swapping.
    violation_threshold: float = 0.25

    #: Whether the workload's QoS responds to clock frequency (Fig. 18's
    #: "QoS sensitive to frequency?" branch).
    frequency_sensitive: bool = True

    def __post_init__(self) -> None:
        if self.latency_target <= 0:
            raise SchedulingError("latency_target must be positive")
        if not 0 < self.percentile < 100:
            raise SchedulingError("percentile must be in (0, 100)")
        if not 0 <= self.violation_threshold <= 1:
            raise SchedulingError("violation_threshold must be in [0, 1]")


@dataclass
class QosMonitor:
    """Sliding log of per-window tail latencies against a spec."""

    spec: QosSpec
    #: Number of most-recent windows considered by the rate queries.
    horizon: int = 100
    _observations: List[float] = field(default_factory=list)

    def record(self, tail_latency: float) -> None:
        """Log one measurement window's tail latency (s)."""
        if tail_latency < 0:
            raise SchedulingError("tail_latency must be >= 0")
        self._observations.append(tail_latency)

    def record_many(self, tail_latencies) -> None:
        """Log a batch of windows."""
        for value in tail_latencies:
            self.record(float(value))

    @property
    def n_windows(self) -> int:
        """Total windows logged."""
        return len(self._observations)

    def recent(self) -> List[float]:
        """The windows inside the sliding horizon."""
        return self._observations[-self.horizon:]

    def violation_rate(self) -> float:
        """Fraction of recent windows above the latency target."""
        recent = self.recent()
        if not recent:
            return 0.0
        violations = sum(1 for v in recent if v > self.spec.latency_target)
        return violations / len(recent)

    def violated(self) -> bool:
        """Fig. 18's trigger: does the violation rate exceed the threshold?"""
        return self.violation_rate() > self.spec.violation_threshold

    def reset(self) -> None:
        """Forget all observations (after a co-runner swap)."""
        self._observations.clear()
