"""Trace-driven AGS: scheduling a time-varying utilization profile.

Datacenter load is diurnal; the paper's two scenarios (lightly utilized →
loadline borrowing, heavily utilized → QoS-aware mapping) are *phases* of
the same machine's day.  :class:`DynamicAgsDriver` replays a demand trace
— threads requested per interval — through the AGS facade with hysteresis
on re-placement (moving threads between sockets is not free, so the
scheduler acts only when the demand level actually changes), and records
per-interval power for both AGS and the consolidation baseline.

This is the harness for energy-proportionality studies: feed it a day,
integrate the power traces, compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import SchedulingError
from ..guardband import GuardbandMode
from ..sim.batch import SweepRunner, SweepTask, default_runner
from ..sim.server import Power720Server
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import RuntimeModel
from .ags import AdaptiveGuardbandScheduler
from .consolidation import ConsolidationScheduler


@dataclass(frozen=True)
class IntervalResult:
    """One trace interval's measured state."""

    #: Interval index in the trace.
    index: int

    #: Threads demanded this interval.
    demand: int

    #: Whether the scheduler re-placed threads this interval.
    rescheduled: bool

    #: AGS chip power (W).
    ags_power: float

    #: Consolidation-baseline chip power (W).
    baseline_power: float

    @property
    def saving_fraction(self) -> float:
        """AGS's relative power saving this interval."""
        return 1.0 - self.ags_power / self.baseline_power


@dataclass(frozen=True)
class TraceResult:
    """A full trace replay."""

    intervals: tuple

    #: Interval length (s) used for the energy integrals.
    interval_seconds: float

    @property
    def ags_energy(self) -> float:
        """AGS chip energy over the trace (J)."""
        return sum(i.ags_power for i in self.intervals) * self.interval_seconds

    @property
    def baseline_energy(self) -> float:
        """Baseline chip energy over the trace (J)."""
        return sum(i.baseline_power for i in self.intervals) * self.interval_seconds

    @property
    def energy_saving_fraction(self) -> float:
        """Relative energy saving of AGS over the whole trace."""
        return 1.0 - self.ags_energy / self.baseline_energy

    @property
    def n_reschedules(self) -> int:
        """Placement changes AGS made."""
        return sum(1 for i in self.intervals if i.rescheduled)


class DynamicAgsDriver:
    """Replay a demand trace through AGS vs the consolidation baseline."""

    def __init__(
        self,
        server: Power720Server,
        profile: WorkloadProfile,
        total_cores_on: int = 8,
        interval_seconds: float = 60.0,
        runtime_model: Optional[RuntimeModel] = None,
        runner: Optional[SweepRunner] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise SchedulingError("interval_seconds must be positive")
        self.server = server
        self.profile = profile
        self.total_cores_on = total_cores_on
        self.interval_seconds = interval_seconds
        self.runtime = runtime_model or RuntimeModel()
        self.ags = AdaptiveGuardbandScheduler(server.config)
        self.baseline = ConsolidationScheduler(server.config)
        #: Batch runner the measurements route through; ``None`` picks up
        #: the process-wide default (and its shared operating-point cache),
        #: so diurnal replays reuse points other builders already settled.
        self._runner = runner

    def replay(self, demand_trace: Sequence[int]) -> TraceResult:
        """Run the whole trace and return per-interval measurements.

        Hysteresis: the placement is recomputed only when the demand
        changes from the previous interval; flat segments reuse the
        settled electrical state (the firmware holds its converged
        setpoint for an unchanged load).
        """
        if not demand_trace:
            raise SchedulingError("demand_trace must be non-empty")
        intervals: List[IntervalResult] = []
        previous_demand = None
        ags_power = baseline_power = 0.0
        for index, demand in enumerate(demand_trace):
            if demand < 1:
                raise SchedulingError(
                    f"interval {index}: demand must be >= 1 thread "
                    "(model an idle machine as a powered-off server instead)"
                )
            rescheduled = demand != previous_demand
            if rescheduled:
                ags_power = self._measure(
                    self.ags.schedule_batch(
                        self.profile, demand, self.total_cores_on
                    )
                )
                baseline_power = self._measure(
                    self.baseline.schedule(self.profile, demand, self.total_cores_on)
                )
                previous_demand = demand
            intervals.append(
                IntervalResult(
                    index=index,
                    demand=demand,
                    rescheduled=rescheduled,
                    ags_power=ags_power,
                    baseline_power=baseline_power,
                )
            )
        return TraceResult(
            intervals=tuple(intervals), interval_seconds=self.interval_seconds
        )

    def _measure(self, placement) -> float:
        """Settle ``placement`` under the undervolting firmware (W).

        Routed through the batch sweep runner rather than settling on
        ``self.server`` directly: the runner rebuilds an electrically
        identical server from ``(config, seed)`` — bit-identical results —
        and memoizes the point in the shared operating-point cache, so a
        day-long replay whose demand levels repeat settles each level once.
        """
        runner = self._runner if self._runner is not None else default_runner()
        task = SweepTask.scheduled(
            placement,
            self.profile,
            GuardbandMode.UNDERVOLT,
            runtime_params=self.runtime.sweep_params(),
        )
        report = runner.run(
            [task], self.server.config, seed_root=self.server.seed
        )
        return report.results[0].adaptive.point.chip_power


def diurnal_trace(
    n_intervals: int = 24,
    low: int = 1,
    high: int = 8,
) -> List[int]:
    """A canonical day: demand ramps up to a midday peak and back down.

    A deterministic triangle wave between ``low`` and ``high`` threads —
    enough structure for energy-proportionality comparisons without
    pulling randomness into the examples.
    """
    if n_intervals < 2:
        raise SchedulingError("n_intervals must be >= 2")
    if not 1 <= low <= high:
        raise SchedulingError("need 1 <= low <= high")
    trace = []
    half = n_intervals / 2.0
    for i in range(n_intervals):
        position = i / half if i < half else (n_intervals - i) / half
        demand = low + round((high - low) * position)
        trace.append(max(low, min(high, demand)))
    return trace
