"""Placement data structures shared by the AGS schedulers.

A :class:`Placement` says, for each socket, which workloads run how many
threads, and how many cores stay powered on.  Schedulers *produce*
placements; :meth:`Placement.apply` realizes one on a server.  Keeping the
decision and the actuation separate makes scheduler policies trivially
testable without touching the electrical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple

from ..errors import SchedulingError
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import SocketShare

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.server import Power720Server


@dataclass(frozen=True)
class ThreadGroup:
    """``n_threads`` threads of one workload on one socket."""

    profile: WorkloadProfile
    n_threads: int

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise SchedulingError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )


@dataclass(frozen=True)
class Placement:
    """A complete scheduling decision for the server."""

    #: Per-socket tuples of thread groups.
    groups: Tuple[Tuple[ThreadGroup, ...], ...]

    #: Per-socket count of cores to keep powered on (rest power-gated).
    #: ``None`` disables gating entirely.
    keep_on: Tuple[int, ...] = None

    #: Maximum SMT threads stacked per core during placement.
    threads_per_core: int = 1

    def __post_init__(self) -> None:
        if self.keep_on is not None and len(self.keep_on) != len(self.groups):
            raise SchedulingError(
                "keep_on must have one entry per socket: "
                f"{len(self.keep_on)} vs {len(self.groups)} sockets"
            )

    @property
    def n_sockets(self) -> int:
        """Number of sockets the placement spans."""
        return len(self.groups)

    def threads_on(self, socket_id: int) -> int:
        """Total threads placed on one socket."""
        return sum(g.n_threads for g in self.groups[socket_id])

    @property
    def total_threads(self) -> int:
        """Total threads across the server."""
        return sum(self.threads_on(s) for s in range(self.n_sockets))

    def share_of(self, workload: str) -> SocketShare:
        """Per-socket thread counts of one workload (for runtime models)."""
        counts = []
        for socket_groups in self.groups:
            counts.append(
                sum(g.n_threads for g in socket_groups if g.profile.name == workload)
            )
        if sum(counts) == 0:
            raise SchedulingError(f"workload {workload!r} is not in this placement")
        return SocketShare(tuple(counts))

    def workloads(self) -> Sequence[str]:
        """Names of all workloads in the placement (deduplicated, ordered)."""
        seen = []
        for socket_groups in self.groups:
            for group in socket_groups:
                if group.profile.name not in seen:
                    seen.append(group.profile.name)
        return tuple(seen)

    def apply(self, server: "Power720Server") -> None:
        """Realize the placement: clear, place every group, gate spares."""
        if self.n_sockets != server.n_sockets:
            raise SchedulingError(
                f"placement spans {self.n_sockets} sockets, server has "
                f"{server.n_sockets}"
            )
        server.clear()
        for socket_id, socket_groups in enumerate(self.groups):
            for group in socket_groups:
                server.place(
                    socket_id,
                    group.profile,
                    group.n_threads,
                    threads_per_core=self.threads_per_core,
                )
        if self.keep_on is not None:
            server.gate_unused(list(self.keep_on))
