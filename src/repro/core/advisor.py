"""Colocation advisor: rank real co-runner candidates by predicted safety.

Fig. 18's scheduler picks among whatever candidates the job queue offers;
operators face the inverse question at placement time: *given my critical
workload and its frequency requirement, which of the queued batch jobs may
share the chip?*  :class:`ColocationAdvisor` answers it with the same
MIPS-based predictor — rank every candidate mix by predicted adaptive
frequency, split at the requirement, and optionally verify the marginal
cases on the simulator (the predictor is for the fast path; verification
is the slow, exact path the scheduler can afford for borderline calls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import SchedulingError
from ..guardband import GuardbandMode
from ..workloads.profile import WorkloadProfile
from .predictor import MipsFrequencyPredictor

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.server import Power720Server


@dataclass(frozen=True)
class ColocationVerdict:
    """One candidate's ranking entry."""

    candidate: str

    #: Chip MIPS of critical + candidates mix.
    mix_mips: float

    #: Predicted adaptive frequency of the mix (Hz).
    predicted_frequency: float

    #: Whether the prediction clears the requirement.
    predicted_safe: bool

    #: Settled frequency from verification (None when not verified).
    verified_frequency: Optional[float] = None

    @property
    def verified(self) -> bool:
        """Whether this verdict carries a simulator verification."""
        return self.verified_frequency is not None


class ColocationAdvisor:
    """Rank candidate co-runners for one critical workload."""

    def __init__(
        self,
        server: "Power720Server",
        critical: WorkloadProfile,
        predictor: MipsFrequencyPredictor,
    ) -> None:
        if not predictor.fitted:
            raise SchedulingError("advisor needs a fitted predictor")
        self.server = server
        self.critical = critical
        self.predictor = predictor

    def mix_mips(self, candidate: WorkloadProfile) -> float:
        """Chip MIPS of the critical thread plus candidate on the rest."""
        f_nom = self.server.config.chip.f_nominal
        n_other = self.server.config.chip.n_cores - 1
        return self.critical.mips_per_thread(f_nom) + n_other * (
            candidate.mips_per_thread(f_nom)
        )

    def rank(
        self,
        candidates: Sequence[WorkloadProfile],
        required_frequency: float,
        verify_margin: Optional[float] = None,
    ) -> List[ColocationVerdict]:
        """Rank ``candidates`` by predicted frequency, best first.

        Parameters
        ----------
        required_frequency:
            The critical workload's frequency requirement (Hz) from its
            frequency–QoS model.
        verify_margin:
            When given, candidates whose predicted frequency falls within
            ``±verify_margin`` Hz of the requirement are settled on the
            simulator and their verdicts re-decided from the measurement.
        """
        if required_frequency <= 0:
            raise SchedulingError("required_frequency must be positive")
        if not candidates:
            raise SchedulingError("need at least one candidate")
        verdicts = []
        for candidate in candidates:
            mips = self.mix_mips(candidate)
            predicted = self.predictor.predict(mips)
            safe = predicted >= required_frequency
            verified_frequency = None
            if (
                verify_margin is not None
                and abs(predicted - required_frequency) <= verify_margin
            ):
                verified_frequency = self._settle(candidate)
                safe = verified_frequency >= required_frequency
            verdicts.append(
                ColocationVerdict(
                    candidate=candidate.name,
                    mix_mips=mips,
                    predicted_frequency=predicted,
                    predicted_safe=safe,
                    verified_frequency=verified_frequency,
                )
            )
        verdicts.sort(key=lambda v: v.predicted_frequency, reverse=True)
        return verdicts

    def safe_candidates(
        self,
        candidates: Sequence[WorkloadProfile],
        required_frequency: float,
    ) -> List[str]:
        """Names of the candidates predicted to hold the requirement."""
        return [
            v.candidate
            for v in self.rank(candidates, required_frequency)
            if v.predicted_safe
        ]

    def _settle(self, candidate: WorkloadProfile) -> float:
        """Exact path: place the mix and settle the overclocking servo."""
        server = self.server
        server.clear()
        n_cores = server.config.chip.n_cores
        server.place_per_core(0, [self.critical] + [candidate] * (n_cores - 1))
        point = server.operate(GuardbandMode.OVERCLOCK)
        return point.socket_point(0).solution.frequencies[0]
