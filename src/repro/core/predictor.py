"""The MIPS-based adaptive-frequency predictor (Sec. 5.2.1, Fig. 16).

Adaptive guardbanding's frequency depends on chip power (through passive
voltage drop), and chip power tracks aggregate MIPS to first order — so a
single linear model ``f = a + b * chip_MIPS`` predicts the settled
frequency of *any* workload mix from hardware counters alone.  The paper
fits it over SPEC CPU2006, PARSEC and SPLASH-2 at full core count and
reports 0.3% RMSE; the same procedure here lands in the same range.

The model is deliberately tiny: the scheduler evaluates it for every
candidate co-runner combination every scheduling quantum, so closed-form
evaluation speed matters more than the last fraction of accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import SchedulingError


@dataclass(frozen=True)
class PredictorSample:
    """One training observation: a workload mix at full utilization."""

    #: Aggregate chip MIPS from the per-core hardware counters.
    chip_mips: float

    #: Settled adaptive-guardbanding frequency (Hz).
    frequency: float

    #: Benchmark (mix) name, for diagnostics.
    workload: str = ""


class MipsFrequencyPredictor:
    """Linear chip-MIPS → frequency model with least-squares fitting."""

    def __init__(self) -> None:
        self._intercept = None
        self._slope = None
        self._samples: List[PredictorSample] = []

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced coefficients."""
        return self._intercept is not None

    @property
    def intercept(self) -> float:
        """Frequency at zero MIPS (Hz)."""
        self._require_fit()
        return self._intercept

    @property
    def slope(self) -> float:
        """Frequency change per MIPS (Hz per MIPS; negative)."""
        self._require_fit()
        return self._slope

    def fit(self, samples: Sequence[PredictorSample]) -> "MipsFrequencyPredictor":
        """Least-squares fit over the training mixes.

        Returns ``self`` so construction and fitting chain naturally.
        """
        if len(samples) < 2:
            raise SchedulingError(
                f"need at least 2 samples to fit, got {len(samples)}"
            )
        self._samples = list(samples)
        x = np.array([s.chip_mips for s in samples])
        y = np.array([s.frequency for s in samples])
        slope, intercept = np.polyfit(x, y, deg=1)
        self._slope = float(slope)
        self._intercept = float(intercept)
        return self

    def predict(self, chip_mips: float) -> float:
        """Predicted adaptive frequency (Hz) at ``chip_mips``."""
        self._require_fit()
        if chip_mips < 0:
            raise SchedulingError(f"chip_mips must be >= 0, got {chip_mips}")
        return self._intercept + self._slope * chip_mips

    def rmse(self, samples: Sequence[PredictorSample] = None) -> float:
        """Relative root-mean-square error over ``samples``.

        Defaults to the training set — the quantity the paper quotes
        (0.3%).  Relative to the mean observed frequency.
        """
        self._require_fit()
        samples = self._samples if samples is None else list(samples)
        if not samples:
            raise SchedulingError("no samples to evaluate RMSE on")
        y = np.array([s.frequency for s in samples])
        pred = np.array([self.predict(s.chip_mips) for s in samples])
        return float(np.sqrt(np.mean((pred - y) ** 2)) / np.mean(y))

    def max_mips_for(self, frequency: float) -> float:
        """Largest chip MIPS that still predicts at least ``frequency``.

        This is the scheduler's co-runner budget: given the critical
        workload's required frequency, any candidate mix whose total MIPS
        stays below this bound is predicted QoS-safe.
        """
        self._require_fit()
        if self._slope >= 0:
            raise SchedulingError(
                "fitted slope is non-negative; MIPS budget is unbounded"
            )
        return (frequency - self._intercept) / self._slope

    def _require_fit(self) -> None:
        if not self.fitted:
            raise SchedulingError("predictor has not been fitted")
