"""The conventional consolidation scheduler (the AGS baseline).

Conventional wisdom for multi-socket servers: pack work onto as few
processors as possible so idle processors can sleep (Sec. 5.1's framing,
after Lo et al. and Leverich & Kozyrakis).  All threads go to socket 0; all
spare powered-on cores stay there too; every other socket is fully gated.
On a server with adaptive guardbanding this concentrates the current draw
on one delivery path — precisely what loadline borrowing avoids.
"""

from __future__ import annotations

from ..config import ServerConfig
from ..errors import SchedulingError
from ..workloads.profile import WorkloadProfile
from .placement import Placement, ThreadGroup


class ConsolidationScheduler:
    """Pack everything onto socket 0, gate the rest."""

    def __init__(self, config: ServerConfig) -> None:
        self._config = config

    def schedule(
        self,
        profile: WorkloadProfile,
        n_threads: int,
        total_cores_on: int = None,
        threads_per_core: int = 1,
    ) -> Placement:
        """Consolidated placement of ``n_threads`` of one workload.

        Parameters
        ----------
        total_cores_on:
            Server-wide count of cores to keep powered (the responsiveness
            reserve of Sec. 5.1.1; defaults to one socket's worth).  All of
            them sit on socket 0; every other socket is fully gated.
        threads_per_core:
            SMT stacking depth (1 for the paper's one-thread-per-core runs,
            4 for the 32-thread SPECrate-style runs of Fig. 14).
        """
        n_sockets = self._config.n_sockets
        per_socket = self._config.chip.n_cores
        if total_cores_on is None:
            total_cores_on = per_socket
        cores_needed = -(-n_threads // threads_per_core)
        if cores_needed > per_socket:
            raise SchedulingError(
                f"{n_threads} thread(s) at {threads_per_core}/core need "
                f"{cores_needed} cores; socket 0 has {per_socket}"
            )
        if total_cores_on > per_socket:
            raise SchedulingError(
                "consolidation keeps every powered core on socket 0; "
                f"{total_cores_on} exceeds its {per_socket} cores"
            )
        if total_cores_on < cores_needed:
            raise SchedulingError(
                f"keeping {total_cores_on} cores on cannot host "
                f"{cores_needed} busy cores"
            )
        groups = [(ThreadGroup(profile, n_threads),)] + [()] * (n_sockets - 1)
        keep_on = [total_cores_on] + [0] * (n_sockets - 1)
        return Placement(
            groups=tuple(groups),
            keep_on=tuple(keep_on),
            threads_per_core=threads_per_core,
        )
