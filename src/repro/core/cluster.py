"""Cluster-level AGS: the paper's deferred future work (Sec. 5.1.1).

The paper scopes loadline borrowing to one server and sketches the cluster
story: *"When workloads are consolidated across multiple servers, the idle
power reduction from turning off the unused memory and hard drive
outweighs adaptive guardbanding's processor power savings.  In this case,
the scheduler will consolidate workloads onto fewer servers first, then on
each server loadline borrowing can be used to further improve cluster
power consumption."*

:class:`ClusterScheduler` implements exactly that two-level policy:

1. **across servers** — first-fit-decreasing bin packing onto as few
   servers as possible; empty servers power off entirely (chips *and*
   peripherals);
2. **within a server** — each job's threads balance across the two
   sockets (loadline borrowing) with spare cores gated, or consolidate
   onto socket 0 for the baseline comparison.

Evaluation realizes every powered server on the electrical simulator and
sums true cluster power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ServerConfig
from ..errors import SchedulingError
from ..guardband import GuardbandMode
from ..sim.server import Power720Server
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import RuntimeModel
from .evaluate import apply_with_contention
from .placement import Placement, ThreadGroup


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a workload and its thread count."""

    profile: WorkloadProfile
    n_threads: int

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise SchedulingError(f"n_threads must be >= 1, got {self.n_threads}")


@dataclass(frozen=True)
class ClusterPlan:
    """The two-level scheduling decision."""

    #: Per-server job lists (empty tuple = server powered off).
    assignments: Tuple[Tuple[Job, ...], ...]

    #: Per-server placements (None for powered-off servers).
    placements: Tuple[Optional[Placement], ...]

    @property
    def n_servers_on(self) -> int:
        """Servers left powered."""
        return sum(1 for jobs in self.assignments if jobs)

    def jobs_on(self, server_id: int) -> Tuple[Job, ...]:
        """The jobs assigned to one server."""
        return self.assignments[server_id]


@dataclass(frozen=True)
class ClusterMeasurement:
    """Measured outcome of one plan."""

    plan: ClusterPlan

    #: Per-server chip power (W); 0 for powered-off servers.
    chip_power: Tuple[float, ...]

    #: Per-server total power including peripherals; 0 when off.
    server_power: Tuple[float, ...]

    @property
    def cluster_power(self) -> float:
        """Total cluster wall power (W)."""
        return sum(self.server_power)

    @property
    def cluster_chip_power(self) -> float:
        """Total processor Vdd power (W)."""
        return sum(self.chip_power)


class ClusterScheduler:
    """Two-level scheduler over a homogeneous rack of Power 720 servers."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        n_servers: int = 4,
        threads_per_core: int = 1,
    ) -> None:
        if n_servers < 1:
            raise SchedulingError(f"n_servers must be >= 1, got {n_servers}")
        self.config = config or ServerConfig()
        self.n_servers = n_servers
        self.threads_per_core = threads_per_core
        self._capacity = (
            self.config.total_cores * threads_per_core
        )

    @property
    def server_capacity(self) -> int:
        """Thread slots one server offers."""
        return self._capacity

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def schedule(
        self,
        jobs: Sequence[Job],
        within: str = "borrowing",
        across: str = "consolidate",
    ) -> ClusterPlan:
        """Produce the two-level plan.

        Parameters
        ----------
        within:
            ``"borrowing"`` (AGS) or ``"consolidation"`` (baseline) for
            the per-server socket placement.
        across:
            ``"consolidate"`` packs jobs onto as few servers as possible
            (AGS and the paper's cluster wisdom alike); ``"spread"``
            round-robins jobs across all servers (the anti-pattern that
            wastes peripheral power).
        """
        if within not in ("borrowing", "consolidation"):
            raise SchedulingError(f"unknown within-policy {within!r}")
        if across not in ("consolidate", "spread"):
            raise SchedulingError(f"unknown across-policy {across!r}")
        buckets: List[List[Job]] = [[] for _ in range(self.n_servers)]
        loads = [0] * self.n_servers
        # First-fit-decreasing with a content-only tie break: jobs of equal
        # size order by workload name, never by input position, so any two
        # permutations of the same job list produce the same plan.
        ordered = sorted(jobs, key=lambda j: (-j.n_threads, j.profile.name))
        for index, job in enumerate(ordered):
            if job.n_threads > self._capacity:
                raise SchedulingError(
                    f"job {job.profile.name} needs {job.n_threads} threads; "
                    f"a server offers {self._capacity}"
                )
            if across == "consolidate":
                target = self._first_fit(loads, job.n_threads)
            else:
                target = self._round_robin_fit(loads, job.n_threads, index)
            buckets[target].append(job)
            loads[target] += job.n_threads
        placements = tuple(
            self._server_placement(tuple(bucket), within) if bucket else None
            for bucket in buckets
        )
        return ClusterPlan(
            assignments=tuple(tuple(bucket) for bucket in buckets),
            placements=placements,
        )

    def _first_fit(self, loads: List[int], demand: int) -> int:
        for server_id, load in enumerate(loads):
            if load + demand <= self._capacity:
                return server_id
        raise SchedulingError(
            f"cluster of {self.n_servers} servers cannot fit {demand} more thread(s)"
        )

    def _round_robin_fit(self, loads: List[int], demand: int, index: int) -> int:
        for offset in range(self.n_servers):
            server_id = (index + offset) % self.n_servers
            if loads[server_id] + demand <= self._capacity:
                return server_id
        raise SchedulingError(
            f"cluster of {self.n_servers} servers cannot fit {demand} more thread(s)"
        )

    def _server_placement(self, jobs: Tuple[Job, ...], within: str) -> Placement:
        """Socket-level placement of several jobs on one server."""
        n_sockets = self.config.n_sockets
        per_socket: List[List[ThreadGroup]] = [[] for _ in range(n_sockets)]
        socket_loads = [0] * n_sockets
        per_socket_slots = self.config.chip.n_cores * self.threads_per_core
        for job in jobs:
            if within == "borrowing":
                shares = self._balance(job.n_threads, socket_loads, per_socket_slots)
            else:
                shares = self._pack(job.n_threads, socket_loads, per_socket_slots)
            for socket_id, n_threads in enumerate(shares):
                if n_threads:
                    per_socket[socket_id].append(ThreadGroup(job.profile, n_threads))
                    socket_loads[socket_id] += n_threads
        # Gate everything that is not busy: the cluster scenario has no
        # per-server responsiveness reserve — spare capacity is spare
        # *servers* (kept off until needed).
        keep_on = tuple(
            -(-load // self.threads_per_core) for load in socket_loads
        )
        return Placement(
            groups=tuple(tuple(groups) for groups in per_socket),
            keep_on=keep_on,
            threads_per_core=self.threads_per_core,
        )

    @staticmethod
    def _balance(demand: int, loads: List[int], limit: int) -> List[int]:
        """Spread a job's threads to equalize socket loads."""
        shares = [0] * len(loads)
        for _ in range(demand):
            candidates = [
                i for i in range(len(loads)) if loads[i] + shares[i] < limit
            ]
            if not candidates:
                raise SchedulingError("server sockets are full")
            target = min(candidates, key=lambda i: loads[i] + shares[i])
            shares[target] += 1
        return shares

    @staticmethod
    def _pack(demand: int, loads: List[int], limit: int) -> List[int]:
        """Fill socket 0 first, then spill."""
        shares = [0] * len(loads)
        remaining = demand
        for i in range(len(loads)):
            room = limit - loads[i]
            take = min(room, remaining)
            shares[i] = take
            remaining -= take
            if remaining == 0:
                return shares
        raise SchedulingError("server sockets are full")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        plan: ClusterPlan,
        mode: GuardbandMode = GuardbandMode.UNDERVOLT,
        runtime_model: Optional[RuntimeModel] = None,
        seed: int = 7,
    ) -> ClusterMeasurement:
        """Realize every powered server on the simulator and sum power."""
        runtime = runtime_model or RuntimeModel()
        chip_power = []
        server_power = []
        for server_id, placement in enumerate(plan.placements):
            if placement is None:
                chip_power.append(0.0)
                server_power.append(0.0)
                continue
            server = Power720Server(self.config, seed=seed + server_id)
            apply_with_contention(server, placement, runtime)
            point = server.operate(mode)
            chip_power.append(point.chip_power)
            server_power.append(point.server_power)
        return ClusterMeasurement(
            plan=plan,
            chip_power=tuple(chip_power),
            server_power=tuple(server_power),
        )
