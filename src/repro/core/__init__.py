"""Adaptive guardband scheduling (AGS) — the paper's contribution.

Two scheduling policies compensate for adaptive guardbanding's system-level
inefficiencies:

* **Loadline borrowing** (:mod:`~repro.core.loadline_borrowing`) for
  lightly-utilized servers: spread active cores across sockets, power-gate
  the rest, and let each socket's firmware undervolt deeper (Sec. 5.1).
* **Adaptive mapping** (:mod:`~repro.core.adaptive_mapping`) for highly
  utilized servers with latency-critical workloads: predict the adaptive
  frequency of candidate co-runner mixes with a MIPS-based linear model and
  swap out malicious co-runners before they break QoS (Sec. 5.2).

The :class:`~repro.core.ags.AdaptiveGuardbandScheduler` facade picks the
policy by utilization, mirroring the two enterprise scenarios of Sec. 5.
"""

from .adaptive_mapping import AdaptiveMappingScheduler, MappingDecision
from .ags import AdaptiveGuardbandScheduler, AgsPolicy
from .cluster import ClusterScheduler, Job
from .consolidation import ConsolidationScheduler
from .dynamic import DynamicAgsDriver, diurnal_trace
from .loadline_borrowing import LoadlineBorrowingScheduler
from .placement import Placement, ThreadGroup
from .predictor import MipsFrequencyPredictor, PredictorSample
from .qos import QosMonitor, QosSpec

__all__ = [
    "AdaptiveGuardbandScheduler",
    "AdaptiveMappingScheduler",
    "AgsPolicy",
    "ClusterScheduler",
    "ConsolidationScheduler",
    "DynamicAgsDriver",
    "Job",
    "LoadlineBorrowingScheduler",
    "MappingDecision",
    "MipsFrequencyPredictor",
    "Placement",
    "PredictorSample",
    "QosMonitor",
    "QosSpec",
    "ThreadGroup",
    "diurnal_trace",
]
