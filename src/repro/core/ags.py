"""The AGS facade: pick the right policy for the utilization regime.

Sec. 5 frames adaptive guardband scheduling around two enterprise
scenarios: a lightly-utilized server with idle resources (loadline
borrowing) and a highly-utilized server hosting a latency-critical
workload (adaptive mapping).  :class:`AdaptiveGuardbandScheduler` is the
middleware-layer entry point that dispatches between them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from ..config import ServerConfig
from ..errors import SchedulingError
from ..workloads.profile import WorkloadProfile
from .adaptive_mapping import AdaptiveMappingScheduler
from .consolidation import ConsolidationScheduler
from .loadline_borrowing import LoadlineBorrowingScheduler
from .placement import Placement
from .predictor import MipsFrequencyPredictor
from .qos import QosSpec

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.server import Power720Server


class AgsPolicy(enum.Enum):
    """Which AGS policy a scheduling request resolved to."""

    #: Light load: spread across sockets for deeper undervolting.
    LOADLINE_BORROWING = "loadline_borrowing"

    #: Heavy load with a critical workload: co-runner management.
    ADAPTIVE_MAPPING = "adaptive_mapping"

    #: Fallback: conventional consolidation (AGS disabled).
    CONSOLIDATION = "consolidation"


class AdaptiveGuardbandScheduler:
    """Utilization-aware dispatch between the two AGS policies."""

    def __init__(
        self,
        config: ServerConfig,
        utilization_threshold: float = 0.5,
    ) -> None:
        """
        Parameters
        ----------
        utilization_threshold:
            Fraction of server cores above which the load counts as
            "heavy" (the paper's light scenario keeps ≤50% utilization).
        """
        if not 0 < utilization_threshold <= 1:
            raise SchedulingError("utilization_threshold must be in (0, 1]")
        self.config = config
        self.utilization_threshold = utilization_threshold
        self.borrowing = LoadlineBorrowingScheduler(config)
        self.consolidation = ConsolidationScheduler(config)

    def classify(self, n_threads: int, threads_per_core: int = 1) -> AgsPolicy:
        """Light vs heavy: does the load exceed the utilization threshold?"""
        if n_threads < 1:
            raise SchedulingError(f"n_threads must be >= 1, got {n_threads}")
        cores_needed = -(-n_threads // threads_per_core)
        utilization = cores_needed / self.config.total_cores
        if utilization <= self.utilization_threshold:
            return AgsPolicy.LOADLINE_BORROWING
        return AgsPolicy.ADAPTIVE_MAPPING

    def schedule_batch(
        self,
        profile: WorkloadProfile,
        n_threads: int,
        total_cores_on: Optional[int] = None,
        threads_per_core: int = 1,
        use_ags: bool = True,
    ) -> Placement:
        """Placement for a throughput (batch) workload.

        With AGS on, light loads get loadline borrowing; with AGS off (or
        heavy loads that simply fill the machine) the conventional
        consolidation applies per socket.
        """
        if use_ags and self.classify(n_threads, threads_per_core) is (
            AgsPolicy.LOADLINE_BORROWING
        ):
            return self.borrowing.schedule(
                profile, n_threads, total_cores_on, threads_per_core
            )
        return self.consolidation.schedule(
            profile, n_threads, total_cores_on, threads_per_core
        )

    def mapping_scheduler(
        self,
        server: "Power720Server",
        critical: WorkloadProfile,
        spec: QosSpec,
        candidates: Sequence[WorkloadProfile],
        predictor: MipsFrequencyPredictor,
        **kwargs,
    ) -> AdaptiveMappingScheduler:
        """An adaptive-mapping loop for a critical workload on ``server``."""
        return AdaptiveMappingScheduler(
            server=server,
            critical=critical,
            spec=spec,
            candidates=candidates,
            predictor=predictor,
            **kwargs,
        )
