"""Loadline borrowing: the light-load AGS policy (Sec. 5.1).

Instead of consolidating onto one socket, loadline borrowing balances the
active threads *and* the powered-on core reserve evenly across sockets and
power-gates all remaining cores.  Each socket then carries roughly half the
current, so each delivery path's passive drop (loadline + IR) shrinks, and
each socket's undervolting firmware can remove more guardband — the
"borrowing" of the sibling socket's loadline headroom.

The policy is placement-only: it needs no firmware change and no hardware
change, which is the paper's point — the scheduler reclaims what the
physics takes away.
"""

from __future__ import annotations

from ..config import ServerConfig
from ..errors import SchedulingError
from ..workloads.profile import WorkloadProfile
from .placement import Placement, ThreadGroup


class LoadlineBorrowingScheduler:
    """Balance threads and the powered-core reserve across all sockets."""

    def __init__(self, config: ServerConfig) -> None:
        self._config = config

    def schedule(
        self,
        profile: WorkloadProfile,
        n_threads: int,
        total_cores_on: int = None,
        threads_per_core: int = 1,
    ) -> Placement:
        """Balanced placement of ``n_threads`` of one workload.

        ``total_cores_on`` is the same server-wide responsiveness reserve
        the consolidation baseline keeps (defaults to one socket's worth);
        borrowing splits it evenly so both comparisons power the same
        number of cores.
        """
        n_sockets = self._config.n_sockets
        per_socket = self._config.chip.n_cores
        if total_cores_on is None:
            total_cores_on = per_socket
        if total_cores_on > n_sockets * per_socket:
            raise SchedulingError(
                f"cannot keep {total_cores_on} cores on: server has "
                f"{n_sockets * per_socket}"
            )
        thread_split = self._split(n_threads, n_sockets)
        cores_on_split = self._split(total_cores_on, n_sockets)
        groups = []
        for threads, cores_on in zip(thread_split, cores_on_split):
            cores_needed = -(-threads // threads_per_core)
            if cores_needed > per_socket:
                raise SchedulingError(
                    f"{threads} thread(s) at {threads_per_core}/core exceed "
                    f"one socket's {per_socket} cores"
                )
            if cores_needed > cores_on:
                raise SchedulingError(
                    f"socket reserve of {cores_on} powered cores cannot host "
                    f"{cores_needed} busy cores"
                )
            groups.append((ThreadGroup(profile, threads),) if threads else ())
        return Placement(
            groups=tuple(groups),
            keep_on=tuple(cores_on_split),
            threads_per_core=threads_per_core,
        )

    @staticmethod
    def _split(total: int, n_sockets: int) -> list:
        """Spread ``total`` as evenly as possible across sockets."""
        base, extra = divmod(total, n_sockets)
        return [base + (1 if i < extra else 0) for i in range(n_sockets)]
