"""Placement evaluation: settle a scheduling decision on the server.

:func:`measure_scheduled` realizes a :class:`~repro.core.placement.Placement`
with *contention-adjusted* thread activity — threads stalled on a saturated
memory subsystem switch less logic, so their dynamic power drops with the
same factor that stretches their execution.  This coupling is what makes
the Fig. 14 extremes come out right: spreading a bandwidth-starved workload
across sockets speeds it up *and* raises its chip activity (possibly above
the consolidated power, as the paper observes for radix and fft), while the
shorter runtime still wins on energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..errors import SchedulingError
from ..guardband import GuardbandMode
from ..sim.results import RunResult
from ..sim.run import active_mean_frequency
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import RuntimeModel
from .placement import Placement

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.server import Power720Server, ServerOperatingPoint


def apply_with_contention(
    server: "Power720Server",
    placement: Placement,
    runtime: RuntimeModel,
) -> None:
    """Realize ``placement`` with contention-adjusted per-thread activity."""
    server.clear()
    tpc = placement.threads_per_core
    for socket_id, socket_groups in enumerate(placement.groups):
        for group in socket_groups:
            share = placement.share_of(group.profile.name)
            activity = runtime.effective_activity(group.profile, share, tpc)
            adjusted = group.profile.with_activity(activity)
            server.place(socket_id, adjusted, group.n_threads, threads_per_core=tpc)
    if placement.keep_on is not None:
        server.gate_unused(list(placement.keep_on))


def measure_scheduled(
    server: "Power720Server",
    placement: Placement,
    profile: WorkloadProfile,
    mode: GuardbandMode,
    runtime_model: Optional[RuntimeModel] = None,
    f_target: Optional[float] = None,
) -> RunResult:
    """Static-vs-adaptive measurement pair for one scheduling decision.

    ``profile`` names the workload whose runtime/energy metrics the result
    carries (placements hold a single workload in the scheduler
    comparisons; mixed placements should be measured per workload).

    Thin wrapper over :func:`repro.api.measure` (the canonical
    implementation); kept for backwards compatibility.
    """
    from ..api import measure

    return measure(
        profile,
        mode=mode,
        schedule=placement,
        server=server,
        runtime_model=runtime_model,
        f_target=f_target,
    )


@dataclass(frozen=True)
class WorkloadOutcome:
    """One workload's share of a mixed-placement measurement."""

    workload: str

    #: Estimated execution time (s) at the settled adaptive frequency.
    execution_time: float

    #: Aggregate effective MIPS the workload retires.
    mips: float


@dataclass(frozen=True)
class MixedMeasurement:
    """A colocated placement settled in one mode, with per-workload views."""

    placement: Placement
    mode: GuardbandMode
    point: "ServerOperatingPoint"
    outcomes: Dict[str, WorkloadOutcome]

    @property
    def chip_power(self) -> float:
        """Total Vdd power (W) of the whole mix."""
        return self.point.chip_power

    def outcome(self, workload: str) -> WorkloadOutcome:
        """One colocated workload's outcome."""
        try:
            return self.outcomes[workload]
        except KeyError:
            raise SchedulingError(
                f"{workload!r} is not in this placement; it holds "
                f"{sorted(self.outcomes)}"
            ) from None


def measure_mixed(
    server: "Power720Server",
    placement: Placement,
    mode: GuardbandMode,
    runtime_model: Optional[RuntimeModel] = None,
    f_target: Optional[float] = None,
) -> MixedMeasurement:
    """Settle a placement that colocates several workloads.

    Unlike :func:`measure_scheduled` (single workload, static-vs-adaptive
    pair), this measures one mode and reports a per-workload breakdown —
    the view a colocation study needs: everyone shares the same chip power
    and frequency, but each workload's runtime stretches by its own
    contention and sharing factors.
    """
    runtime = runtime_model or RuntimeModel()
    apply_with_contention(server, placement, runtime)
    point = server.operate(mode, f_target)
    frequency = active_mean_frequency(point)
    f_nominal = server.config.chip.f_nominal
    per_socket_freqs = [
        point.socket_point(sid).solution.mean_frequency
        for sid in range(server.n_sockets)
    ]
    outcomes = {}
    for workload in placement.workloads():
        share = placement.share_of(workload)
        profile = _find_profile(placement, workload)
        outcomes[workload] = WorkloadOutcome(
            workload=workload,
            execution_time=runtime.execution_time(
                profile,
                share,
                frequency=frequency,
                reference_frequency=f_nominal,
                threads_per_core=placement.threads_per_core,
            ),
            mips=runtime.effective_mips(
                profile,
                share,
                per_socket_freqs,
                threads_per_core=placement.threads_per_core,
            ),
        )
    return MixedMeasurement(
        placement=placement, mode=mode, point=point, outcomes=outcomes
    )


def _find_profile(placement: Placement, workload: str) -> WorkloadProfile:
    for socket_groups in placement.groups:
        for group in socket_groups:
            if group.profile.name == workload:
                return group.profile
    raise SchedulingError(f"{workload!r} not found in placement")
