"""Adaptive mapping: the heavy-load AGS policy (Sec. 5.2, Fig. 18).

The scheduler protects a latency-critical workload (WebSearch) from
*malicious co-runners* — workload mixes whose chip-wide activity drags the
adaptive-guardbanding frequency, and with it the critical workload's tail
latency, below the SLA.  Per scheduling quantum it walks Fig. 18's loop:

1. log the critical workload's QoS and the chip's frequency;
2. if the violation rate exceeds the threshold and the workload is
   frequency sensitive, look up the *desired frequency* in the
   application-specific frequency–QoS model;
3. ask the MIPS-based frequency predictor which candidate co-runners keep
   the chip at or above that frequency;
4. swap the current co-runner for the best predicted-safe candidate (or
   the lightest candidate when none is predicted safe).

Both shaded Fig. 18 components are real objects here: the
:class:`FrequencyQosModel` (learned from logged observations) and the
:class:`~repro.core.predictor.MipsFrequencyPredictor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..errors import SchedulingError
from ..guardband import GuardbandMode
from ..workloads.profile import WorkloadProfile
from ..workloads.websearch import WebSearchModel
from .predictor import MipsFrequencyPredictor
from .qos import QosMonitor, QosSpec

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sim.server import Power720Server


class FrequencyQosModel:
    """Learned mapping: core frequency → QoS violation rate.

    The scheduler appends an observation per quantum ("Append to freq-QoS
    model" in Fig. 18) and inverts the relation to find the lowest
    frequency whose predicted violation rate meets the threshold.
    Monotone linear interpolation over the logged points — tail latency
    falls monotonically with frequency in the regime of interest.
    """

    def __init__(self) -> None:
        self._frequencies: List[float] = []
        self._violation_rates: List[float] = []

    @property
    def n_observations(self) -> int:
        """Number of logged (frequency, violation-rate) points."""
        return len(self._frequencies)

    def observe(self, frequency: float, violation_rate: float) -> None:
        """Log one quantum's observation."""
        if frequency <= 0:
            raise SchedulingError("frequency must be positive")
        if not 0 <= violation_rate <= 1:
            raise SchedulingError("violation_rate must be in [0, 1]")
        self._frequencies.append(frequency)
        self._violation_rates.append(violation_rate)

    def predict_violation(self, frequency: float) -> float:
        """Interpolated violation rate at ``frequency``."""
        if self.n_observations == 0:
            raise SchedulingError("frequency-QoS model has no observations")
        order = np.argsort(self._frequencies)
        freqs = np.array(self._frequencies)[order]
        rates = np.array(self._violation_rates)[order]
        # Enforce monotone non-increasing rates before interpolating: the
        # raw log is noisy, the underlying relation is not.  Taking the
        # running max from the high-frequency side keeps the model
        # conservative — a noisy good window never hides a bad frequency.
        rates = np.maximum.accumulate(rates[::-1])[::-1]
        return float(np.interp(frequency, freqs, rates))

    def required_frequency(self, threshold: float) -> float:
        """Lowest logged-range frequency meeting the violation threshold.

        Falls back to the highest observed frequency when even that point
        violates (the scheduler then simply asks for the safest known mix).
        """
        if self.n_observations == 0:
            raise SchedulingError("frequency-QoS model has no observations")
        candidates = sorted(set(self._frequencies))
        for frequency in candidates:
            if self.predict_violation(frequency) <= threshold:
                return frequency
        return candidates[-1]


@dataclass(frozen=True)
class MappingDecision:
    """Outcome of one scheduling quantum."""

    #: Co-runner in place while this quantum was measured.
    corunner: str

    #: Violation rate observed this quantum.
    violation_rate: float

    #: Critical core's settled frequency this quantum (Hz).
    frequency: float

    #: Mean per-window tail latency this quantum (s).
    mean_tail_latency: float

    #: Co-runner selected for the next quantum (same name = no swap).
    next_corunner: str

    #: Frequency the scheduler decided it needs (None when no action).
    required_frequency: Optional[float] = None

    @property
    def swapped(self) -> bool:
        """Whether the scheduler replaced the co-runner."""
        return self.next_corunner != self.corunner


class AdaptiveMappingScheduler:
    """The Fig. 18 feedback loop over the simulated server."""

    def __init__(
        self,
        server: "Power720Server",
        critical: WorkloadProfile,
        spec: QosSpec,
        candidates: Sequence[WorkloadProfile],
        predictor: MipsFrequencyPredictor,
        latency_model: Optional[WebSearchModel] = None,
        windows_per_quantum: int = 50,
        seed: int = 31,
    ) -> None:
        if not candidates:
            raise SchedulingError("need at least one candidate co-runner")
        self.server = server
        self.critical = critical
        self.spec = spec
        self.candidates = {c.name: c for c in candidates}
        self.predictor = predictor
        self.latency_model = latency_model or WebSearchModel()
        self.monitor = QosMonitor(spec)
        self.qos_model = FrequencyQosModel()
        self.windows_per_quantum = windows_per_quantum
        self._seed = seed
        self._quantum = 0

    # ------------------------------------------------------------------
    # Measurement plumbing
    # ------------------------------------------------------------------
    def settle(self, corunner: WorkloadProfile) -> float:
        """Place critical + co-runner and settle in overclocking mode.

        The critical workload takes core 0 of socket 0; the co-runner fills
        the remaining seven cores (the paper's Sec. 5.2.2 setup).  Returns
        the critical core's settled frequency (Hz).
        """
        server = self.server
        server.clear()
        n_cores = server.config.chip.n_cores
        profiles = [self.critical] + [corunner] * (n_cores - 1)
        server.place_per_core(0, profiles)
        point = server.operate(GuardbandMode.OVERCLOCK)
        return point.socket_point(0).solution.frequencies[0]

    def mix_mips(self, corunner: WorkloadProfile) -> float:
        """Predicted chip MIPS of critical + 7 co-runner threads.

        Uses nominal-frequency per-thread MIPS from the profiles — the
        hardware-counter proxy the real scheduler would accumulate.
        """
        f_nom = self.server.config.chip.f_nominal
        n_cores = self.server.config.chip.n_cores
        return self.critical.mips_per_thread(f_nom) + (
            n_cores - 1
        ) * corunner.mips_per_thread(f_nom)

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def step(self, corunner_name: str) -> MappingDecision:
        """Run one scheduling quantum with ``corunner_name`` in place."""
        corunner = self._candidate(corunner_name)
        frequency = self.settle(corunner)
        self._quantum += 1
        p90s = self.latency_model.sample_p90s(
            frequency, self.windows_per_quantum, seed=self._seed + self._quantum
        )
        self.monitor.reset()
        self.monitor.record_many(p90s)
        violation_rate = self.monitor.violation_rate()
        self.qos_model.observe(frequency, violation_rate)

        next_corunner = corunner_name
        required = None
        if self.monitor.violated() and self.spec.frequency_sensitive:
            required = self.qos_model.required_frequency(
                self.spec.violation_threshold
            )
            next_corunner = self._select_corunner(required, corunner_name)
        return MappingDecision(
            corunner=corunner_name,
            violation_rate=violation_rate,
            frequency=frequency,
            mean_tail_latency=float(np.mean(p90s)),
            next_corunner=next_corunner,
            required_frequency=required,
        )

    def run(self, initial_corunner: str, quanta: int = 4) -> List[MappingDecision]:
        """Run the loop for several quanta, applying each swap decision."""
        if quanta < 1:
            raise SchedulingError(f"quanta must be >= 1, got {quanta}")
        decisions = []
        current = initial_corunner
        for _ in range(quanta):
            decision = self.step(current)
            decisions.append(decision)
            current = decision.next_corunner
        return decisions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select_corunner(self, required_frequency: float, current: str) -> str:
        """Pick the best candidate predicted to hold ``required_frequency``.

        Highest-MIPS predicted-safe candidate (maximum throughput within
        the QoS budget); when nothing is predicted safe, the lightest
        candidate (the paper's fallback: "the one that has lowest MIPS").
        """
        safe = []
        for name, profile in self.candidates.items():
            predicted = self.predictor.predict(self.mix_mips(profile))
            if predicted >= required_frequency:
                safe.append((self.mix_mips(profile), name))
        if safe:
            return max(safe)[1]
        lightest = min(
            self.candidates.items(), key=lambda item: self.mix_mips(item[1])
        )
        return lightest[0]

    def _candidate(self, name: str) -> WorkloadProfile:
        try:
            return self.candidates[name]
        except KeyError:
            raise SchedulingError(
                f"unknown co-runner {name!r}; candidates: "
                f"{sorted(self.candidates)}"
            ) from None
