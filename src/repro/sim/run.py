"""High-level measurement helpers used by examples and benchmarks.

These functions reproduce the paper's experimental procedures:

* :func:`measure_consolidated` — one workload consolidated on socket 0 with
  socket 1 idle (the Sec. 3 characterization setup), settled under the
  static guardband and one adaptive mode.
* :func:`core_scaling_sweep` — the 1→8 active-core sweep behind
  Figs. 3, 4, 5 and 7.
* :func:`measure_placement` — an arbitrary two-socket placement (used by
  the AGS schedulers and the loadline-borrowing figures).

Single-socket experiments report the focal socket's power (the paper
measures one processor's Vdd rail); two-socket scheduling experiments
report the sum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ServerConfig
from ..guardband import GuardbandMode
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import RuntimeModel, SocketShare
from .results import RunResult, SteadyState
from .server import Power720Server, ServerOperatingPoint


def build_server(config: Optional[ServerConfig] = None, seed: int = 7) -> Power720Server:
    """A fresh default server (two POWER7+ sockets behind one VRM)."""
    return Power720Server(config=config, seed=seed)


def active_mean_frequency(point: ServerOperatingPoint) -> float:
    """Mean clock over the cores that ran threads when ``point`` settled.

    Contract
    --------
    * At least one active core: the mean clock of exactly those cores, as
      recorded in each solution's ``active_core_ids`` at solve time.
    * Fully idle server: there is no active core to average, so the
      explicit idle frequency is returned — the mean clock of every parked
      core across *all* sockets.  (Earlier versions silently substituted
      the socket-0 mean, which mislabelled idle-placement results whenever
      the sockets parked at different clocks.)

    The operating point is self-contained: no live server state is
    consulted, so the function is valid for cached or deserialized points
    whose server has since been re-placed.
    """
    active: List[float] = []
    everything: List[float] = []
    for socket_point in point.sockets:
        solution = socket_point.solution
        everything.extend(solution.frequencies)
        active.extend(
            solution.frequencies[i] for i in solution.active_core_ids
        )
    if not active:
        return sum(everything) / len(everything)
    return sum(active) / len(active)


def _active_mean_frequency(
    server: Power720Server, point: ServerOperatingPoint
) -> float:
    """Back-compat shim: ``server`` is no longer consulted (see above)."""
    return active_mean_frequency(point)


def measure_consolidated(
    server: Power720Server,
    profile: WorkloadProfile,
    n_threads: int,
    mode: GuardbandMode,
    threads_per_core: int = 1,
    runtime_model: Optional[RuntimeModel] = None,
    f_target: Optional[float] = None,
) -> RunResult:
    """Static-vs-adaptive pair for a consolidated single-socket placement.

    All threads go to socket 0 (cores activated in succession from core 0,
    as in the paper's Sec. 4.2 procedure); socket 1 idles.  The server is
    cleared first.

    Thin wrapper over :func:`repro.api.measure` (the canonical
    implementation); kept for backwards compatibility.
    """
    from ..api import measure

    return measure(
        profile,
        mode=mode,
        n_threads=n_threads,
        threads_per_core=threads_per_core,
        server=server,
        runtime_model=runtime_model,
        f_target=f_target,
    )


def core_scaling_sweep(
    server: Power720Server,
    profile: WorkloadProfile,
    mode: GuardbandMode,
    core_counts: Sequence[int] = range(1, 9),
    runtime_model: Optional[RuntimeModel] = None,
) -> List[RunResult]:
    """The 1→8 active-core characterization sweep (Figs. 3–5)."""
    return [
        measure_consolidated(
            server, profile, n, mode, runtime_model=runtime_model
        )
        for n in core_counts
    ]


def measure_placement(
    server: Power720Server,
    profile: WorkloadProfile,
    share: SocketShare,
    mode: GuardbandMode,
    keep_on: Optional[Sequence[int]] = None,
    threads_per_core: int = 1,
    runtime_model: Optional[RuntimeModel] = None,
    f_target: Optional[float] = None,
) -> RunResult:
    """Static-vs-adaptive pair for an arbitrary two-socket placement.

    Parameters
    ----------
    share:
        How many threads land on each socket.
    keep_on:
        Per-socket count of cores to keep powered (others are gated); when
        omitted no core is gated — the Sec. 3 configuration.

    Thin wrapper over :func:`repro.api.measure` (the canonical
    implementation); kept for backwards compatibility.
    """
    from ..api import measure

    return measure(
        profile,
        mode=mode,
        placement=share,
        keep_on=keep_on,
        threads_per_core=threads_per_core,
        server=server,
        runtime_model=runtime_model,
        f_target=f_target,
    )


def _steady_state(
    server: Power720Server,
    profile: WorkloadProfile,
    share: SocketShare,
    mode: GuardbandMode,
    n_active: int,
    point: ServerOperatingPoint,
    runtime: RuntimeModel,
) -> SteadyState:
    """Wrap an operating point with runtime estimate and active frequency."""
    frequency = active_mean_frequency(point)
    execution_time = runtime.execution_time(
        profile,
        share,
        frequency=frequency,
        reference_frequency=server.config.chip.f_nominal,
    )
    return SteadyState(
        workload=profile.name,
        mode=mode,
        n_active_cores=n_active,
        point=point,
        execution_time=execution_time,
        active_frequency=frequency,
    )
