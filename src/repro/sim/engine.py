"""Transient simulation engine: the platform tick by 32 ms tick.

The steady-state solvers in :mod:`repro.guardband` jump straight to the
converged operating point; :class:`TransientEngine` instead walks real
firmware time.  Each tick:

1. the socket's electrical state settles at the current VRM setpoint (the
   electrical time constants are far below 32 ms);
2. the di/dt process draws the window's droop events; the DPLL dips
   through them, and the deepest dip is what the firmware observes;
3. the firmware reacts: in undervolting mode it raises the setpoint
   immediately on a frequency violation and creeps downward only after a
   clean streak — the cautious asymmetry of a real AVS loop;
4. telemetry records the tick.

The engine exists for studying *dynamics* — convergence time after a mode
switch, response to a workload phase change, undershoot after droop bursts
— which the figures' steady-state procedures deliberately average away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ReproError
from ..guardband import GuardbandMode
from ..guardband.calibration import calibrated_margin
from ..guardband.overclock import DROOP_RESERVE_FRACTION
from ..pdn import DidtNoiseModel
from ..telemetry.amester import Amester, TelemetryTrace
from ..workloads.phases import PhasedWorkload
from .socket import ProcessorSocket, SocketSolution

#: Clean ticks required before the undervolt loop creeps one step down.
LOWER_STREAK = 3


@dataclass(frozen=True)
class TickResult:
    """State of one socket after one engine tick."""

    time: float
    setpoint: float
    solution: SocketSolution

    #: Deepest droop drawn in this tick's window (V).
    observed_droop: float

    #: Lowest instantaneous core frequency during the window (Hz).
    min_dip_frequency: float

    #: Whether the firmware saw a frequency-target violation this tick.
    violation: bool


class TransientEngine:
    """Tick-level driver for one socket under one guardband mode."""

    def __init__(
        self,
        socket: ProcessorSocket,
        mode: GuardbandMode,
        f_target: Optional[float] = None,
        seed: int = 51,
        phased_workload: Optional[PhasedWorkload] = None,
        n_threads: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        phased_workload, n_threads:
            When given, the engine re-places ``n_threads`` single threads
            of the phase-modulated profile at the start of every tick, so
            the firmware chases a moving activity target (see
            :mod:`repro.workloads.phases`).  Without them the engine uses
            whatever occupancy the caller placed.
        """
        if phased_workload is not None and n_threads < 1:
            raise ReproError("phased_workload requires n_threads >= 1")
        self.socket = socket
        self.mode = mode
        self._phased = phased_workload
        self._n_threads = n_threads
        config = socket.config
        self.config = config
        self.f_target = f_target or config.chip.f_nominal
        self.margin = calibrated_margin(config.chip, config.guardband)
        self.interval = config.guardband.control_interval
        self._rng = np.random.default_rng(seed)
        self._time = 0.0
        self._clean_streak = 0
        # Latched floor: once a droop event forces a backoff at setpoint S,
        # the loop never creeps below S again — it has learned where the
        # events bite.  Starts at the physical wall plus the margin.
        self._floor = config.chip.vmin(self.f_target) + self.margin
        self.amester = Amester(socket, interval=self.interval, seed=seed + 1)
        socket.chip.cpm_bank.calibrate(
            margin=self.margin,
            frequency=config.chip.f_nominal,
            target_code=config.guardband.calibration_code,
        )
        # Mode entry: both adaptive modes start from the static rail.
        socket.path.set_voltage(config.static_vdd)
        socket.chip.set_all_frequencies(self.f_target)

    @property
    def time(self) -> float:
        """Simulated time (s)."""
        return self._time

    @property
    def trace(self) -> TelemetryTrace:
        """The telemetry recorded so far."""
        return self.amester.trace

    def set_occupancy(self, profile, n_threads: int) -> None:
        """Replace the socket's threads with ``n_threads`` of ``profile``.

        Also re-scales the di/dt model to the new workload (what the
        server-level placement path does via
        :meth:`repro.sim.server.Power720Server.place`).
        """
        chip = self.socket.chip
        chip.clear_threads()
        for core_id in range(min(n_threads, chip.n_cores)):
            chip.place_thread(core_id, profile.thread())
        self.socket.path.set_noise(
            DidtNoiseModel(
                self.config.pdn.didt,
                ripple_scale=profile.ripple_scale,
                droop_scale=profile.droop_scale,
            )
        )

    def tick(self) -> TickResult:
        """Advance the platform by one 32 ms firmware interval."""
        socket = self.socket
        chip = socket.chip
        if self._phased is not None:
            self.set_occupancy(self._phased.profile_at(self._time), self._n_threads)
        if self.mode is GuardbandMode.STATIC:
            solution = socket.solve(
                frequencies=[self.f_target] * chip.n_cores, settle_thermal=False
            )
        elif self.mode is GuardbandMode.UNDERVOLT:
            solution = socket.solve(
                servo_margin=self.margin,
                frequency_cap=self.f_target,
                settle_thermal=False,
            )
        elif self.mode is GuardbandMode.OVERCLOCK:
            n_active = chip.n_active_cores()
            reserve = self.margin + DROOP_RESERVE_FRACTION * socket.path.noise.worst_droop(
                n_active
            )
            solution = socket.solve(
                servo_margin=reserve,
                frequency_cap=chip.config.f_ceiling,
                settle_thermal=False,
            )
        else:  # pragma: no cover - enum is exhaustive
            raise ReproError(f"unsupported mode {self.mode!r}")

        n_active = chip.n_active_cores()
        droop = socket.path.noise.worst_in_window(
            n_active, self.interval, self._rng
        )
        dips = [
            chip.timing.clamp_frequency(
                chip.timing.frequency_for_margin(v - droop, self.margin)
            )
            for v in solution.core_voltages
        ]
        min_dip = min(min(dips), min(solution.frequencies))
        violation = min_dip < self.f_target * (
            1.0 - self.config.guardband.frequency_tolerance
        )

        if self.mode is GuardbandMode.UNDERVOLT:
            self._undervolt_firmware(violation)

        self.amester.poll(solution)
        result = TickResult(
            time=self._time,
            setpoint=socket.path.setpoint,
            solution=solution,
            observed_droop=droop,
            min_dip_frequency=min_dip,
            violation=violation,
        )
        self._time += self.interval
        return result

    def run(self, n_ticks: int) -> List[TickResult]:
        """Advance ``n_ticks`` intervals and return every tick's state."""
        if n_ticks < 1:
            raise ReproError(f"n_ticks must be >= 1, got {n_ticks}")
        return [self.tick() for _ in range(n_ticks)]

    def _undervolt_firmware(self, violation: bool) -> None:
        """One firmware decision: back off fast, creep down slowly.

        Violations raise both the setpoint and the latched floor, so the
        loop converges onto the deepest event level it has witnessed
        instead of re-probing voltage it already knows is unsafe.
        """
        path = self.socket.path
        step = path.vrm.step
        ceiling = path.vrm.quantize(self.config.static_vdd)
        if violation:
            backed_off = min(path.setpoint + 2 * step, ceiling)
            self._floor = max(self._floor, backed_off)
            path.set_voltage(backed_off)
            self._clean_streak = 0
            return
        self._clean_streak += 1
        if self._clean_streak >= LOWER_STREAK:
            new_setpoint = max(path.setpoint - step, self._floor)
            path.set_voltage(new_setpoint)
            self._clean_streak = 0
