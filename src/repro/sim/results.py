"""Result containers with the derived metrics the figures report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..guardband import GuardbandMode
from ..workloads.profile import WorkloadProfile
from .server import ServerOperatingPoint


@dataclass(frozen=True)
class SteadyState:
    """One settled measurement: a workload, a placement, a mode."""

    workload: str
    mode: GuardbandMode
    n_active_cores: int
    point: ServerOperatingPoint

    #: Execution time (s) of the workload at this operating point, when a
    #: runtime estimate applies (None for open-ended runs).
    execution_time: Optional[float] = None

    #: Mean clock (Hz) of the cores actually running the workload, captured
    #: at measurement time (idle-socket cores are excluded).
    active_frequency: Optional[float] = None

    @property
    def chip_power(self) -> float:
        """Total chip Vdd power across sockets (W)."""
        return self.point.chip_power

    @property
    def energy(self) -> Optional[float]:
        """Chip energy (J) over the execution, when a runtime applies."""
        if self.execution_time is None:
            return None
        return self.chip_power * self.execution_time

    @property
    def edp(self) -> Optional[float]:
        """Energy-delay product (J·s), when a runtime applies."""
        if self.execution_time is None:
            return None
        return self.energy * self.execution_time


@dataclass(frozen=True)
class RunResult:
    """A static-vs-adaptive measurement pair at one placement.

    This is the unit every improvement figure is built from: the same
    occupancy settled under the static guardband and under one adaptive
    mode, with runtime estimates for the energy metrics.
    """

    profile: WorkloadProfile
    n_active_cores: int
    static: SteadyState
    adaptive: SteadyState

    @property
    def power_saving_fraction(self) -> float:
        """Relative chip-power reduction of the adaptive mode."""
        return 1.0 - self.adaptive.chip_power / self.static.chip_power

    @property
    def frequency_boost_fraction(self) -> float:
        """Relative clock gain of the adaptive mode over the static target."""
        static_freq = self.static.active_frequency or _active_mean_frequency(
            self.static.point
        )
        adaptive_freq = self.adaptive.active_frequency or _active_mean_frequency(
            self.adaptive.point
        )
        return adaptive_freq / static_freq - 1.0

    @property
    def speedup_fraction(self) -> float:
        """Relative execution-time reduction of the adaptive mode."""
        if self.static.execution_time is None or self.adaptive.execution_time is None:
            raise ValueError("speedup requires runtime estimates on both states")
        return 1.0 - self.adaptive.execution_time / self.static.execution_time

    @property
    def energy_saving_fraction(self) -> float:
        """Relative chip-energy reduction of the adaptive mode."""
        if self.static.energy is None or self.adaptive.energy is None:
            raise ValueError("energy saving requires runtime estimates")
        return 1.0 - self.adaptive.energy / self.static.energy

    @property
    def edp_improvement_fraction(self) -> float:
        """Relative EDP reduction of the adaptive mode."""
        if self.static.edp is None or self.adaptive.edp is None:
            raise ValueError("EDP requires runtime estimates")
        return 1.0 - self.adaptive.edp / self.static.edp


def _active_mean_frequency(point: ServerOperatingPoint) -> float:
    """Mean clock of cores actually running threads (falls back to all)."""
    freqs = []
    for socket_point in point.sockets:
        freqs.extend(socket_point.solution.frequencies)
    return sum(freqs) / len(freqs)
