"""The two-socket Power 720-class server model.

:class:`Power720Server` wires together the full platform: one VRM chip with
a rail per socket, one die and delivery path per socket, and a guardband
controller per socket.  It owns thread placement — the interface the AGS
schedulers in :mod:`repro.core` drive — and exposes whole-server operating
points (sum of both sockets plus the constant peripheral power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..chip import Power7Chip
from ..config import ServerConfig
from ..errors import SchedulingError
from ..guardband import GuardbandController, GuardbandMode
from ..guardband.controller import OperatingPoint
from ..pdn import DidtNoiseModel
from ..pdn.backends import get_backend
from ..workloads.profile import WorkloadProfile
from .socket import ProcessorSocket


@dataclass(frozen=True)
class ServerOperatingPoint:
    """Settled state of the whole server in one guardband mode."""

    mode: GuardbandMode
    sockets: tuple

    #: Constant peripheral power (W) included in :attr:`server_power`.
    peripheral_power: float

    @property
    def chip_power(self) -> float:
        """Total Vdd power of all sockets (W) — the paper's primary metric."""
        return sum(p.chip_power for p in self.sockets)

    @property
    def server_power(self) -> float:
        """Chip power plus peripherals (W)."""
        return self.chip_power + self.peripheral_power

    @property
    def min_frequency(self) -> float:
        """Slowest active-core clock across sockets (Hz).

        Only cores that were running threads when the point settled count:
        idle and power-gated cores may sit at unrelated clocks (an idle
        socket's DPLLs park at whatever the last mode programmed) and must
        not drag the reported pace of the running workload down.  When the
        whole server is idle there is no active core, so the minimum is
        taken over every core instead.
        """
        active = []
        everything = []
        for point in self.sockets:
            solution = point.solution
            everything.extend(solution.frequencies)
            active.extend(
                solution.frequencies[i] for i in solution.active_core_ids
            )
        return min(active) if active else min(everything)

    def socket_point(self, socket_id: int) -> OperatingPoint:
        """The operating point of one socket."""
        return self.sockets[socket_id]


class Power720Server:
    """Two POWER7+ sockets behind one multi-rail VRM."""

    def __init__(self, config: Optional[ServerConfig] = None, seed: int = 7) -> None:
        self.config = config or ServerConfig()
        #: Die seed the sockets were built with.  Recorded so measurement
        #: layers (e.g. the batch sweep runner) can rebuild an electrically
        #: identical server and return bit-identical operating points.
        self.seed = seed
        backend = get_backend(self.config.pdn_backend)
        self.vrm = backend.build_vrm(
            self.config.pdn, n_rails=self.config.n_sockets
        )
        self.sockets: List[ProcessorSocket] = []
        self.controllers: List[GuardbandController] = []
        self._thread_profiles: Dict[int, List[WorkloadProfile]] = {}
        for sid in range(self.config.n_sockets):
            chip = Power7Chip(self.config.chip, seed=seed + sid)
            path = backend.build_path(
                self.config.pdn, chip.floorplan, self.vrm, rail=sid
            )
            socket = ProcessorSocket(chip, path, self.config, socket_id=sid)
            self.sockets.append(socket)
            self.controllers.append(GuardbandController(socket, self.config))
            self._thread_profiles[sid] = []

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def n_sockets(self) -> int:
        """Number of processor sockets."""
        return self.config.n_sockets

    def clear(self) -> None:
        """Evict every thread, wake every gated core, reset noise scaling."""
        for socket in self.sockets:
            socket.chip.ungate_all()
            socket.chip.clear_threads()
        for sid in self._thread_profiles:
            self._thread_profiles[sid] = []
            self._refresh_noise(sid)

    def place(
        self,
        socket_id: int,
        profile: WorkloadProfile,
        n_threads: int,
        threads_per_core: int = 1,
    ) -> None:
        """Place ``n_threads`` of ``profile`` on one socket.

        Threads fill cores in floorplan order (core 0 upward), stacking up
        to ``threads_per_core`` SMT threads on a core before moving on —
        the same successive-activation order the paper uses (Sec. 4.2).
        """
        self._check_socket(socket_id)
        if n_threads < 0:
            raise SchedulingError(f"n_threads must be >= 0, got {n_threads}")
        if n_threads == 0:
            return
        chip = self.sockets[socket_id].chip
        if threads_per_core < 1 or threads_per_core > chip.config.smt_ways:
            raise SchedulingError(
                f"threads_per_core must be in [1, {chip.config.smt_ways}], "
                f"got {threads_per_core}"
            )
        placed = 0
        for core in chip.cores:
            while (
                placed < n_threads
                and not core.gated
                and core.n_threads < threads_per_core
                and core.free_slots > 0
            ):
                core.place(profile.thread())
                self._thread_profiles[socket_id].append(profile)
                placed += 1
            if placed == n_threads:
                break
        if placed < n_threads:
            raise SchedulingError(
                f"socket {socket_id} cannot host {n_threads} thread(s) at "
                f"{threads_per_core} per core ({placed} placed)"
            )
        self._refresh_noise(socket_id)

    def place_per_core(
        self, socket_id: int, profiles: Sequence[WorkloadProfile]
    ) -> None:
        """Place one thread of each profile on consecutive cores.

        Used by the colocation experiments (Fig. 15): ``profiles[i]`` lands
        on core ``i`` of the socket.

        Enforces the same invariants as :meth:`place`: a power-gated core
        cannot host a thread and a core without a free SMT slot cannot take
        another.  Violations raise :class:`SchedulingError` before any
        thread is placed, so a rejected call leaves the server untouched.
        """
        self._check_socket(socket_id)
        chip = self.sockets[socket_id].chip
        if len(profiles) > chip.n_cores:
            raise SchedulingError(
                f"{len(profiles)} profiles exceed {chip.n_cores} cores"
            )
        for core_id in range(len(profiles)):
            core = chip.cores[core_id]
            if core.gated:
                raise SchedulingError(
                    f"cannot place on power-gated core {core_id} of "
                    f"socket {socket_id}"
                )
            if core.free_slots < 1:
                raise SchedulingError(
                    f"core {core_id} of socket {socket_id} has no free "
                    f"SMT slot ({core.n_threads}/{chip.config.smt_ways} "
                    f"occupied)"
                )
        for core_id, profile in enumerate(profiles):
            chip.cores[core_id].place(profile.thread())
            self._thread_profiles[socket_id].append(profile)
        self._refresh_noise(socket_id)

    def gate_unused(self, keep_on: Sequence[int]) -> None:
        """Gate empty cores, keeping ``keep_on[s]`` powered on per socket."""
        if len(keep_on) != self.n_sockets:
            raise SchedulingError(
                f"keep_on needs {self.n_sockets} entries, got {len(keep_on)}"
            )
        for socket, count in zip(self.sockets, keep_on):
            socket.chip.gate_unused(count)

    def placed_profiles(self, socket_id: int) -> List[WorkloadProfile]:
        """Profiles of the threads currently placed on one socket."""
        self._check_socket(socket_id)
        return list(self._thread_profiles[socket_id])

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def operate(
        self, mode: GuardbandMode, f_target: Optional[float] = None
    ) -> ServerOperatingPoint:
        """Settle every socket in ``mode`` and aggregate the result."""
        points = tuple(
            controller.operate(mode, f_target) for controller in self.controllers
        )
        return ServerOperatingPoint(
            mode=mode,
            sockets=points,
            peripheral_power=self.config.peripheral_power,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_noise(self, socket_id: int) -> None:
        """Re-scale the socket's di/dt model to its thread mix.

        Ripple/droop scales are thread-weighted means of the placed
        workloads' traits; an empty socket reverts to the platform default.
        """
        profiles = self._thread_profiles[socket_id]
        path = self.sockets[socket_id].path
        if not profiles:
            path.set_noise(DidtNoiseModel(self.config.pdn.didt))
            return
        ripple = sum(p.ripple_scale for p in profiles) / len(profiles)
        droop = sum(p.droop_scale for p in profiles) / len(profiles)
        path.set_noise(
            DidtNoiseModel(self.config.pdn.didt, ripple_scale=ripple, droop_scale=droop)
        )

    def _check_socket(self, socket_id: int) -> None:
        if not 0 <= socket_id < self.n_sockets:
            raise SchedulingError(
                f"socket_id must be in [0, {self.n_sockets}), got {socket_id}"
            )
