"""Batch execution of independent sweep measurements.

Every figure and benchmark replays the paper's measurement procedures as
grids of *independent* settled points: core-scaling sweeps, two-socket
placements, scheduler comparisons.  :class:`SweepRunner` is the substrate
that executes such grids

* **in parallel** over a :class:`concurrent.futures.ProcessPoolExecutor`
  (with a deterministic in-process fallback when ``max_workers == 1`` or
  the platform cannot fork a pool), and
* **memoized** through a keyed :class:`~repro.sim.cache.OperatingPointCache`
  — the figure grids overlap heavily, so most points are settled once and
  replayed from cache everywhere else.

Determinism
-----------
A task is a pure function of ``(server config, task coordinates, mode,
seed)``: the executor always builds a *fresh* server (same die seed for
every task — the paper measures one physical machine) and settles the
requested mode on it, so results are bit-identical whether tasks run
serially, in any parallel interleaving, or from cache.  Tasks that need
their own random stream (e.g. the Fig. 9 droop-window sampling) derive it
with :func:`derive_seed` — ``seed_root`` plus a stable task hash — so the
stream no longer depends on execution order.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..config import ServerConfig
from ..errors import SweepError
from ..faults.injector import fault_injector
from ..guardband import GuardbandMode
from ..obs import observability
from ..workloads.profile import WorkloadProfile
from ..workloads.scaling import RuntimeModel, SocketShare
from .cache import CacheStats, OperatingPointCache, fingerprint
from .results import RunResult, SteadyState
from .run import active_mean_frequency, build_server

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..core.placement import Placement

#: Default die seed, matching :func:`repro.sim.run.build_server`.
DEFAULT_SEED_ROOT = 7

#: Environment knob for the default runner's worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment knob for the default runner's disk-cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"


#: Config-object → fingerprint memo.  :class:`~repro.config.ServerConfig`
#: is a frozen dataclass, so the same object (or an equal one) always maps
#: to the same fingerprint; hashing it is orders of magnitude cheaper than
#: re-canonicalizing the whole nested config on every batch.  Only a
#: handful of distinct configs ever exist per process, so the memo stays
#: tiny and is never evicted.
_cfg_fp_memo: Dict[Any, str] = {}


def config_fingerprint(cfg: ServerConfig) -> str:
    """Memoized :func:`~repro.sim.cache.fingerprint` of a server config."""
    try:
        cached = _cfg_fp_memo.get(cfg)
    except TypeError:  # unhashable subclass — compute every time
        return fingerprint(cfg)
    if cached is None:
        cached = fingerprint(cfg)
        _cfg_fp_memo[cfg] = cached
    return cached


def derive_seed(seed_root: int, token: Any) -> int:
    """``seed_root`` plus a stable hash of ``token`` (order-independent).

    Use this wherever a batch task needs its own random stream: the
    derived seed depends only on the task's identity, never on how many
    tasks ran before it, so parallel and serial schedules consume
    identical streams.
    """
    return seed_root + int(fingerprint(token), 16) % (2**31)


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepTask:
    """One independent static-vs-adaptive measurement.

    Construct through :meth:`consolidated`, :meth:`placement` or
    :meth:`scheduled` — the three measurement procedures the figures use.
    """

    #: ``"consolidated"`` | ``"placement"`` | ``"scheduled"``.
    kind: str

    #: Workload whose runtime/energy metrics the result carries.
    profile: WorkloadProfile

    #: Adaptive mode paired against the static guardband.
    mode: GuardbandMode

    n_threads: int = 0
    threads_per_core: int = 1

    #: Per-socket thread counts (``placement`` kind).
    share: Optional[Tuple[int, ...]] = None

    #: Per-socket powered-core counts (``placement`` kind; ``None`` = no gating).
    keep_on: Optional[Tuple[int, ...]] = None

    #: Full scheduling decision (``scheduled`` kind).  Named to avoid
    #: colliding with the :meth:`placement` constructor.
    placement_plan: Optional["Placement"] = None

    #: Frequency target handed to the guardband policies.
    f_target: Optional[float] = None

    #: ``(socket_bandwidth, cross_socket_penalty)`` of the runtime model;
    #: ``None`` uses the calibrated defaults.
    runtime_params: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def consolidated(
        cls,
        profile: WorkloadProfile,
        n_threads: int,
        mode: GuardbandMode,
        threads_per_core: int = 1,
        f_target: Optional[float] = None,
        runtime_params: Optional[Tuple[float, float]] = None,
    ) -> "SweepTask":
        """All threads on socket 0 (the Sec. 3 characterization setup)."""
        return cls(
            kind="consolidated",
            profile=profile,
            mode=mode,
            n_threads=n_threads,
            threads_per_core=threads_per_core,
            f_target=f_target,
            runtime_params=runtime_params,
        )

    @classmethod
    def placement(
        cls,
        profile: WorkloadProfile,
        share: Sequence[int],
        mode: GuardbandMode,
        keep_on: Optional[Sequence[int]] = None,
        threads_per_core: int = 1,
        f_target: Optional[float] = None,
        runtime_params: Optional[Tuple[float, float]] = None,
    ) -> "SweepTask":
        """An arbitrary two-socket placement (loadline-borrowing figures)."""
        return cls(
            kind="placement",
            profile=profile,
            mode=mode,
            n_threads=sum(share),
            threads_per_core=threads_per_core,
            share=tuple(share),
            keep_on=None if keep_on is None else tuple(keep_on),
            f_target=f_target,
            runtime_params=runtime_params,
        )

    @classmethod
    def scheduled(
        cls,
        placement: "Placement",
        profile: WorkloadProfile,
        mode: GuardbandMode,
        f_target: Optional[float] = None,
        runtime_params: Optional[Tuple[float, float]] = None,
    ) -> "SweepTask":
        """A scheduler decision with contention-adjusted activity."""
        return cls(
            kind="scheduled",
            profile=profile,
            mode=mode,
            n_threads=placement.total_threads,
            threads_per_core=placement.threads_per_core,
            placement_plan=placement,
            f_target=f_target,
            runtime_params=runtime_params,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def coordinates(self) -> Dict[str, Any]:
        """The placement coordinates of the task — everything *except* the
        adaptive mode, so the shared static half keys identically across
        tasks that differ only in the mode they pair against it."""
        return {
            "kind": self.kind,
            "profile": self.profile,
            "n_threads": self.n_threads,
            "threads_per_core": self.threads_per_core,
            "share": None if self.share is None else list(self.share),
            "keep_on": None if self.keep_on is None else list(self.keep_on),
            "placement": self.placement_plan,
            "f_target": self.f_target,
            "runtime_params": (
                None if self.runtime_params is None else list(self.runtime_params)
            ),
        }

    def task_hash(self) -> str:
        """Stable identity of the task, including its adaptive mode."""
        return fingerprint({"coords": self.coordinates(), "mode": self.mode.value})

    def derived_seed(self, seed_root: int = DEFAULT_SEED_ROOT) -> int:
        """Per-task seed for stochastic post-processing (see module docs)."""
        return derive_seed(seed_root, {"coords": self.coordinates()})

    def label(self) -> str:
        """Short display label for timing tables."""
        if self.kind == "consolidated":
            where = f"n{self.n_threads}"
        elif self.kind == "placement":
            where = "+".join(str(t) for t in (self.share or ()))
        else:
            where = f"sched{self.n_threads}"
        return f"{self.profile.name}:{where}:{self.mode.value}"


def core_scaling_tasks(
    profile: WorkloadProfile,
    mode: GuardbandMode,
    core_counts: Sequence[int] = range(1, 9),
    threads_per_core: int = 1,
    f_target: Optional[float] = None,
    runtime_params: Optional[Tuple[float, float]] = None,
) -> List[SweepTask]:
    """The 1→8 active-core sweep (Figs. 3–5) as independent tasks."""
    return [
        SweepTask.consolidated(
            profile,
            n,
            mode,
            threads_per_core=threads_per_core,
            f_target=f_target,
            runtime_params=runtime_params,
        )
        for n in core_counts
    ]


# ----------------------------------------------------------------------
# Pure task execution (runs in worker processes)
# ----------------------------------------------------------------------
def _runtime_model(params: Optional[Tuple[float, float]]) -> RuntimeModel:
    if params is None:
        return RuntimeModel()
    return RuntimeModel(socket_bandwidth=params[0], cross_socket_penalty=params[1])


def _settle_mode(
    config: ServerConfig, seed: int, task: SweepTask, mode: GuardbandMode
) -> SteadyState:
    """Settle one mode of one task on a fresh server.

    Always starting from a fresh server makes the result a pure function
    of the arguments — the property the cache and the parallel schedule
    both rely on.
    """
    server = build_server(config, seed=seed)
    runtime = _runtime_model(task.runtime_params)
    threads_per_core_for_runtime = 1

    if task.kind == "consolidated":
        server.clear()
        server.place(
            0, task.profile, task.n_threads, threads_per_core=task.threads_per_core
        )
        share = SocketShare.consolidated(task.n_threads, server.n_sockets)
    elif task.kind == "placement":
        server.clear()
        for sid, n_threads in enumerate(task.share):
            if n_threads:
                server.place(
                    sid,
                    task.profile,
                    n_threads,
                    threads_per_core=task.threads_per_core,
                )
        if task.keep_on is not None:
            server.gate_unused(list(task.keep_on))
        share = SocketShare(task.share)
    elif task.kind == "scheduled":
        from ..core.evaluate import apply_with_contention

        apply_with_contention(server, task.placement_plan, runtime)
        share = task.placement_plan.share_of(task.profile.name)
        threads_per_core_for_runtime = task.placement_plan.threads_per_core
    else:
        raise ValueError(f"unknown task kind {task.kind!r}")

    n_active = sum(s.chip.n_active_cores() for s in server.sockets)
    point = server.operate(mode, task.f_target)
    frequency = active_mean_frequency(point)
    execution_time = runtime.execution_time(
        task.profile,
        share,
        frequency=frequency,
        reference_frequency=server.config.chip.f_nominal,
        threads_per_core=threads_per_core_for_runtime,
    )
    return SteadyState(
        workload=task.profile.name,
        mode=mode,
        n_active_cores=n_active,
        point=point,
        execution_time=execution_time,
        active_frequency=frequency,
    )


def _execute_task(
    payload: Tuple[ServerConfig, int, SweepTask, Tuple[GuardbandMode, ...]],
) -> Tuple[Dict[str, SteadyState], float]:
    """Worker entry point: settle the missing modes of one task.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; also the in-process fallback path, which guarantees the
    two schedules produce bit-identical results.
    """
    config, seed, task, modes = payload
    start = time.perf_counter()
    states = {mode.value: _settle_mode(config, seed, task, mode) for mode in modes}
    return states, time.perf_counter() - start


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskTiming:
    """Wall time of one task within a sweep."""

    label: str
    wall_time: float
    from_cache: bool

    #: Whether the task ultimately failed (its result slot holds ``None``).
    failed: bool = False


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its attempts — the failure manifest entry.

    The batch never aborts on a poisoned task: the exception is captured
    per key, successful siblings are still settled and cached, and the
    failure surfaces here (and as ``error: ...`` strings in strict-mode
    :class:`~repro.errors.SweepError`)."""

    #: Position of the task in the input batch.
    index: int

    #: ``SweepTask.label()`` of the failed task.
    label: str

    #: Exception class name (e.g. ``"ConvergenceError"``).
    error_type: str

    #: Stringified exception message.
    error: str

    #: Total attempts made (1 + retries).
    attempts: int

    def describe(self) -> str:
        """One-line rendering for summaries and error messages."""
        suffix = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"{self.label}: {self.error_type}: {self.error}{suffix}"


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call."""

    #: Results in input-task order.
    results: Tuple[RunResult, ...]

    #: Per-task wall time (cache replays report ~0).
    timings: Tuple[TaskTiming, ...]

    #: End-to-end wall time of the batch (s).
    wall_time: float

    #: Whether a process pool actually executed tasks (``False`` for the
    #: in-process fallback, all-cache batches, and pool bring-up failures).
    used_processes: bool

    #: Snapshot of the cache counters *after* the batch.
    cache_stats: CacheStats

    #: Failure manifest: tasks whose result slot is ``None`` (non-strict
    #: runners) or that a strict runner's :class:`SweepError` carries.
    failures: Tuple[TaskFailure, ...] = ()

    @property
    def n_tasks(self) -> int:
        """Number of tasks in the batch."""
        return len(self.results)

    @property
    def n_from_cache(self) -> int:
        """Tasks fully replayed from the operating-point cache."""
        return sum(1 for t in self.timings if t.from_cache)

    @property
    def n_failed(self) -> int:
        """Tasks that exhausted their attempts (see :attr:`failures`)."""
        return len(self.failures)

    @property
    def n_executed(self) -> int:
        """Tasks that settled at least one fresh operating point."""
        return self.n_tasks - self.n_from_cache - self.n_failed

    def summary(self) -> str:
        """Multi-line human-readable timing summary (CLI ``--timings``)."""
        lines = [
            f"sweep: {self.n_tasks} task(s) in {self.wall_time:.2f}s "
            f"({self.n_executed} executed, {self.n_from_cache} from cache, "
            f"{self.n_failed} failed, "
            f"{'process pool' if self.used_processes else 'in-process'})",
            f"cache: {self.cache_stats.summary()}",
        ]
        for failure in self.failures:
            lines.append(f"  FAILED {failure.describe()}")
        executed = sorted(
            (t for t in self.timings if not t.from_cache and not t.failed),
            key=lambda t: t.wall_time,
            reverse=True,
        )
        for timing in executed[:10]:
            lines.append(f"  {timing.wall_time:7.3f}s  {timing.label}")
        if len(executed) > 10:
            lines.append(f"  ... {len(executed) - 10} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Fan independent sweep tasks out over workers, through the cache.

    Parameters
    ----------
    max_workers:
        Process-pool width.  ``1`` (the default) runs tasks in-process —
        deterministically identical to the parallel schedule, without the
        pool overhead.  ``None`` uses ``os.cpu_count()``.
    cache:
        The operating-point cache; one is created when omitted.  Pass a
        shared instance to reuse settled points across figure builders.
    seed_root:
        Die seed every task's server is built with (one simulated machine
        for the whole campaign, like the paper's test box).  Per-task
        random streams derive from it via :func:`derive_seed`.
    task_timeout:
        Per-task wall-clock budget in seconds on the process-pool path
        (``None`` = unlimited).  A task that overruns counts as one failed
        attempt.  The in-process path cannot preempt a running task, so
        the timeout applies only when a pool executes.
    max_retries:
        Bounded retry count per failing task (default 0: one attempt).
        Retries matter under fault injection, where a failure can clear
        with time; deterministic failures simply fail ``max_retries + 1``
        times.
    strict:
        ``True`` (default) raises :class:`~repro.errors.SweepError` after
        the batch completes when any task failed — successful siblings
        are still settled and cached first, and the error carries the
        failure manifest.  ``False`` returns the report with ``None``
        placeholders in ``results`` and the manifest on
        ``report.failures``.
    """

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        cache: Optional[OperatingPointCache] = None,
        seed_root: int = DEFAULT_SEED_ROOT,
        task_timeout: Optional[float] = None,
        max_retries: int = 0,
        strict: bool = True,
    ) -> None:
        self.max_workers = os.cpu_count() if max_workers is None else max_workers
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.cache = cache if cache is not None else OperatingPointCache()
        self.seed_root = seed_root
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.strict = strict
        #: Reports of every batch this runner executed (observability).
        self.reports: List[SweepReport] = []

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[SweepTask],
        config: Optional[ServerConfig] = None,
        seed_root: Optional[int] = None,
    ) -> SweepReport:
        """Execute a batch of tasks; results come back in input order.

        ``seed_root`` overrides the runner's die seed for this batch only
        (cache keys include the effective seed, so differently-seeded
        batches never alias).  Callers measuring a specific server should
        pass that server's seed so results stay bit-identical to settling
        on the server directly.
        """
        with observability().span("sweep.batch", n_tasks=len(tasks)) as span:
            report = self._run_batch(tasks, config, seed_root)
            span.annotate(
                executed=report.n_executed,
                cached=report.n_from_cache,
                used_processes=report.used_processes,
            )
        return report

    def _run_batch(
        self,
        tasks: Sequence[SweepTask],
        config: Optional[ServerConfig],
        seed_root: Optional[int],
    ) -> SweepReport:
        start = time.perf_counter()
        cfg = config or ServerConfig()
        cfg_fp = config_fingerprint(cfg)
        seed = self.seed_root if seed_root is None else seed_root

        # Resolve from cache; collect the modes each task still needs.
        states: List[Dict[str, SteadyState]] = []
        pending: List[Tuple[int, Tuple[GuardbandMode, ...]]] = []
        for index, task in enumerate(tasks):
            have: Dict[str, SteadyState] = {}
            missing: List[GuardbandMode] = []
            for mode in self._modes_of(task):
                cached = self.cache.get(self._point_key(cfg_fp, task, mode, seed))
                if cached is not None:
                    have[mode.value] = cached
                else:
                    missing.append(mode)
            states.append(have)
            if missing:
                pending.append((index, tuple(missing)))

        # Settle what the cache could not answer.  Worker exceptions are
        # captured per task: one poisoned point never aborts the batch.
        used_processes = False
        fresh_wall: Dict[int, float] = {}
        failures: List[TaskFailure] = []
        if pending:
            payloads = [
                (cfg, seed, tasks[index], modes)
                for index, modes in pending
            ]
            outcomes, used_processes = self._execute(payloads)
            for (index, _), (fresh, wall, error) in zip(pending, outcomes):
                if error is not None:
                    error_type, message, attempts = error
                    failures.append(
                        TaskFailure(
                            index=index,
                            label=tasks[index].label(),
                            error_type=error_type,
                            error=message,
                            attempts=attempts,
                        )
                    )
                    continue
                fresh_wall[index] = wall
                for mode_value, state in fresh.items():
                    mode = GuardbandMode(mode_value)
                    self.cache.put(
                        self._point_key(cfg_fp, tasks[index], mode, seed), state
                    )
                    states[index][mode_value] = state

        # Assemble results and the report, in input order.  Failed tasks
        # hold a ``None`` placeholder so sibling indices stay aligned.
        failed_indices = {failure.index for failure in failures}
        results: List[Optional[RunResult]] = []
        timings = []
        for index, task in enumerate(tasks):
            if index in failed_indices:
                results.append(None)
                timings.append(
                    TaskTiming(
                        label=task.label(),
                        wall_time=0.0,
                        from_cache=False,
                        failed=True,
                    )
                )
                continue
            static = states[index][GuardbandMode.STATIC.value]
            adaptive = states[index][task.mode.value]
            results.append(
                RunResult(
                    profile=task.profile,
                    n_active_cores=static.n_active_cores,
                    static=static,
                    adaptive=adaptive,
                )
            )
            timings.append(
                TaskTiming(
                    label=task.label(),
                    wall_time=fresh_wall.get(index, 0.0),
                    from_cache=index not in fresh_wall,
                )
            )
        report = SweepReport(
            results=tuple(results),
            timings=tuple(timings),
            wall_time=time.perf_counter() - start,
            used_processes=used_processes,
            cache_stats=dataclasses.replace(self.cache.stats),
            failures=tuple(failures),
        )
        self.reports.append(report)
        self._record_report(report)
        if failures and self.strict:
            first = failures[0]
            raise SweepError(
                f"{len(failures)} of {len(tasks)} sweep task(s) failed "
                f"(first: {first.describe()}); successful tasks were "
                "cached — rerun with strict=False for partial results",
                failures=failures,
            )
        return report

    def _record_report(self, report: SweepReport) -> None:
        """Mirror one batch's outcome into the observability layer.

        Pure observation after the fact: nothing here feeds back into
        task scheduling, caching, or results.
        """
        obs = observability()
        if not obs.enabled:
            return
        obs.count(
            "sweep_batches_total", help_text="Sweep batches executed."
        )
        obs.count(
            "sweep_tasks_total",
            amount=report.n_from_cache,
            help_text="Sweep tasks by outcome.",
            outcome="cached",
        )
        obs.count(
            "sweep_tasks_total",
            amount=report.n_executed,
            help_text="Sweep tasks by outcome.",
            outcome="executed",
        )
        if report.n_failed:
            obs.count(
                "sweep_tasks_total",
                amount=report.n_failed,
                help_text="Sweep tasks by outcome.",
                outcome="failed",
            )
        obs.observe(
            "sweep_batch_seconds",
            report.wall_time,
            help_text="End-to-end wall time per batch.",
        )
        executed_wall = 0.0
        for timing in report.timings:
            if not timing.from_cache:
                executed_wall += timing.wall_time
                obs.observe(
                    "sweep_task_seconds",
                    timing.wall_time,
                    help_text="Per-task settle wall time (fresh points).",
                )
        if report.n_executed and report.wall_time > 0:
            obs.gauge(
                "sweep_worker_utilization",
                executed_wall / (report.wall_time * self.max_workers),
                help_text=(
                    "Busy fraction of the worker pool over the last "
                    "executing batch (task wall time / batch wall time "
                    "/ workers)."
                ),
            )

    def run_results(
        self,
        tasks: Sequence[SweepTask],
        config: Optional[ServerConfig] = None,
        seed_root: Optional[int] = None,
    ) -> List[RunResult]:
        """:meth:`run`, returning just the results."""
        return list(self.run(tasks, config, seed_root=seed_root).results)

    # ------------------------------------------------------------------
    # Convenience wrappers mirroring the serial helpers in sim.run
    # ------------------------------------------------------------------
    def core_scaling_sweep(
        self,
        profile: WorkloadProfile,
        mode: GuardbandMode,
        core_counts: Sequence[int] = range(1, 9),
        config: Optional[ServerConfig] = None,
        threads_per_core: int = 1,
    ) -> List[RunResult]:
        """Batched equivalent of :func:`repro.sim.run.core_scaling_sweep`."""
        return self.run_results(
            core_scaling_tasks(
                profile, mode, core_counts, threads_per_core=threads_per_core
            ),
            config,
        )

    def timings_summary(self) -> str:
        """Cumulative summary across every batch this runner executed."""
        total = sum(r.wall_time for r in self.reports)
        tasks = sum(r.n_tasks for r in self.reports)
        executed = sum(r.n_executed for r in self.reports)
        lines = [
            f"runner: {len(self.reports)} batch(es), {tasks} task(s), "
            f"{executed} executed, {total:.2f}s total",
            f"cache: {self.cache.stats.summary()}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _modes_of(task: SweepTask) -> Tuple[GuardbandMode, ...]:
        if task.mode is GuardbandMode.STATIC:
            return (GuardbandMode.STATIC,)
        return (GuardbandMode.STATIC, task.mode)

    def _point_key(
        self,
        cfg_fp: str,
        task: SweepTask,
        mode: GuardbandMode,
        seed: Optional[int] = None,
    ) -> str:
        return fingerprint(
            {
                "config": cfg_fp,
                "coords": task.coordinates(),
                "mode": mode.value,
                "seed": self.seed_root if seed is None else seed,
            }
        )

    def _execute(
        self, payloads: List[tuple]
    ) -> Tuple[List[tuple], bool]:
        """Run payloads through the pool, or in-process when unavailable.

        Returns ``(outcomes, used_processes)`` where each outcome is
        ``(states, wall, None)`` on success or ``(None, 0.0,
        (error_type, message, attempts))`` after the task exhausted its
        attempts.  Worker exceptions never propagate — they land in the
        failure manifest.

        Pool workers are separate processes and cannot see this process's
        installed fault injector, so batches running under injection are
        forced in-process to keep the faults (and the results) coherent.
        """
        use_pool = (
            self.max_workers > 1
            and len(payloads) > 1
            and not fault_injector().enabled
        )
        if use_pool:
            try:
                return self._execute_pool(payloads), True
            except (OSError, PermissionError, NotImplementedError):
                # Sandboxes and exotic platforms may refuse process pools;
                # the in-process path produces bit-identical results.
                pass
        return [self._execute_inline(p) for p in payloads], False

    def _execute_pool(self, payloads: List[tuple]) -> List[tuple]:
        """Pool path: per-future timeout, capped resubmission on failure."""
        outcomes: List[Optional[tuple]] = [None] * len(payloads)
        attempts = {i: 0 for i in range(len(payloads))}
        remaining = list(range(len(payloads)))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            while remaining:
                futures = {
                    i: pool.submit(_execute_task, payloads[i])
                    for i in remaining
                }
                retry: List[int] = []
                for i, future in futures.items():
                    attempts[i] += 1
                    try:
                        states, wall = future.result(timeout=self.task_timeout)
                        outcomes[i] = (states, wall, None)
                    except FuturesTimeoutError:
                        future.cancel()
                        self._handle_attempt_failure(
                            i,
                            "TimeoutError",
                            f"task exceeded {self.task_timeout}s",
                            attempts,
                            retry,
                            outcomes,
                        )
                    except Exception as exc:  # noqa: BLE001 - manifest capture
                        self._handle_attempt_failure(
                            i,
                            type(exc).__name__,
                            str(exc),
                            attempts,
                            retry,
                            outcomes,
                        )
                remaining = retry
        return outcomes

    def _execute_inline(self, payload: tuple) -> tuple:
        """In-process path: bounded retries, exception capture."""
        attempts = 0
        while True:
            attempts += 1
            try:
                states, wall = _execute_task(payload)
                return (states, wall, None)
            except Exception as exc:  # noqa: BLE001 - manifest capture
                if attempts <= self.max_retries:
                    self._count_retry()
                    continue
                return (None, 0.0, (type(exc).__name__, str(exc), attempts))

    def _handle_attempt_failure(
        self,
        index: int,
        error_type: str,
        message: str,
        attempts: Dict[int, int],
        retry: List[int],
        outcomes: List[Optional[tuple]],
    ) -> None:
        if attempts[index] <= self.max_retries:
            self._count_retry()
            retry.append(index)
        else:
            outcomes[index] = (
                None,
                0.0,
                (error_type, message, attempts[index]),
            )

    @staticmethod
    def _count_retry() -> None:
        observability().count(
            "tasks_retried_total",
            help_text="Task retry attempts by layer.",
            layer="sweep",
        )


# ----------------------------------------------------------------------
# Process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """The process-wide runner the figure builders share.

    Created lazily from the environment: ``REPRO_SWEEP_WORKERS`` sets the
    pool width (default 1 — in-process), ``REPRO_SWEEP_CACHE_DIR`` enables
    the JSON disk cache.  Sharing one runner means one shared cache, so a
    figure's points settle once per process no matter how many builders
    need them.
    """
    global _default_runner
    if _default_runner is None:
        workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
        disk_dir = os.environ.get(CACHE_DIR_ENV) or None
        _default_runner = SweepRunner(
            max_workers=workers,
            cache=OperatingPointCache(disk_dir=disk_dir),
        )
    return _default_runner


def set_default_runner(runner: Optional[SweepRunner]) -> Optional[SweepRunner]:
    """Swap the process-wide runner; returns the previous one.

    Pass ``None`` to reset to lazy re-creation from the environment.
    """
    global _default_runner
    previous, _default_runner = _default_runner, runner
    return previous
