"""Keyed operating-point cache backing the batch sweep runner.

Every settled measurement in this codebase is a pure function of
``(server config, workload profile, placement, guardband mode, f_target,
runtime-model parameters, die seed)``.  The figure builders and benchmarks
replay large grids over exactly those coordinates — and many grids overlap
(Fig. 3 is a slice of Fig. 5; Fig. 7 re-settles Fig. 5's static points;
both Fig. 5 passes share all their static halves).  This module caches the
settled :class:`~repro.sim.results.SteadyState` per coordinate so each
point is solved once per process — or once per machine, with the optional
JSON disk layer under ``.repro_cache/``.

Components
----------
:func:`fingerprint`
    Stable short hash of any JSON-able structure (configs, task
    descriptors).  Process- and platform-independent: canonical JSON with
    sorted keys through SHA-256.
:func:`encode_steady_state` / :func:`decode_steady_state`
    Loss-free JSON codec for the nested result dataclasses (floats
    round-trip exactly through ``repr``-based JSON serialization, so a
    disk hit is bit-identical to the original measurement).
:class:`OperatingPointCache`
    In-memory LRU with hit/miss counters plus the optional disk layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..chip.power import PowerBreakdown
from ..guardband import GuardbandMode
from ..guardband.controller import OperatingPoint
from ..obs import observability
from ..pdn.delivery import DropBreakdown
from ..workloads.profile import WorkloadProfile
from .results import RunResult, SteadyState
from .server import ServerOperatingPoint
from .socket import SocketSolution

#: Default directory of the disk layer, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Default in-memory entry cap.  One entry is a few kilobytes; the full
#: figure suite settles ~2000 distinct points, so the default holds it all.
DEFAULT_MAX_ENTRIES = 4096


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON of a plain structure."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def fingerprint(value: Any) -> str:
    """Stable 16-hex-digit digest of any JSON-able structure.

    Dataclasses (e.g. :class:`~repro.config.ServerConfig`) are flattened
    with their type name mixed in, so two configs that happen to share
    field values but differ in type still key apart.
    """
    return hashlib.sha256(
        canonical_json(_plain(value)).encode("utf-8")
    ).hexdigest()[:16]


def _plain(value: Any) -> Any:
    """Recursively reduce a value to JSON-able plain structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__type__": type(value).__name__, **body}
    if isinstance(value, GuardbandMode):
        return value.value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


# ----------------------------------------------------------------------
# JSON codec for the result dataclasses
# ----------------------------------------------------------------------
#: Dataclasses the codec round-trips.  Keyed by class name in the JSON.
_CODEC_TYPES = {
    cls.__name__: cls
    for cls in (
        RunResult,
        SteadyState,
        ServerOperatingPoint,
        OperatingPoint,
        SocketSolution,
        DropBreakdown,
        PowerBreakdown,
        WorkloadProfile,
    )
}

#: Fields that are tuples in the dataclasses but lists in JSON.
_TUPLE_SENTINEL = "__tuple__"


def _encode(value: Any) -> Any:
    if isinstance(value, GuardbandMode):
        return {"__mode__": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _CODEC_TYPES:
            raise TypeError(f"no JSON codec for dataclass {name}")
        return {
            "__dc__": name,
            "fields": {
                field.name: _encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TUPLE_SENTINEL: [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise TypeError(f"no JSON codec for {type(value).__name__}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__mode__" in value:
            return GuardbandMode(value["__mode__"])
        if _TUPLE_SENTINEL in value:
            return tuple(_decode(v) for v in value[_TUPLE_SENTINEL])
        if "__dc__" in value:
            cls = _CODEC_TYPES[value["__dc__"]]
            fields = {k: _decode(v) for k, v in value["fields"].items()}
            return cls(**fields)
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def encode_steady_state(state: SteadyState) -> Dict[str, Any]:
    """JSON-able dict of one settled measurement."""
    return _encode(state)


def decode_steady_state(payload: Dict[str, Any]) -> SteadyState:
    """Rebuild a :class:`SteadyState` from :func:`encode_steady_state`."""
    state = _decode(payload)
    if not isinstance(state, SteadyState):
        raise TypeError(
            f"payload decodes to {type(state).__name__}, expected SteadyState"
        )
    return state


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_errors: int = 0
    #: Disk entries that failed validation (torn/garbage) and were
    #: quarantined — a subset of ``disk_errors``.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def summary(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.hits}/{self.lookups} hits ({self.hit_rate:.0%}), "
            f"{self.stores} stores, {self.disk_hits} from disk, "
            f"{self.evictions} evictions"
        )
        if self.disk_errors:
            line += f", {self.disk_errors} disk errors"
        if self.corrupt:
            line += f" ({self.corrupt} quarantined)"
        return line


class OperatingPointCache:
    """LRU cache of settled operating points, with optional JSON disk layer.

    Parameters
    ----------
    max_entries:
        In-memory entry cap; least recently used entries are evicted.
    disk_dir:
        When given, every store is also persisted as one JSON file
        ``<key>.json`` under this directory, and in-memory misses fall
        through to disk.  Corrupt or unreadable files count as misses
        (and ``disk_errors``), never as failures.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk_dir: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, SteadyState]" = OrderedDict()
        self._disk_dir = disk_dir
        self.stats = CacheStats()

    @property
    def disk_dir(self) -> Optional[str]:
        """Directory of the disk layer (``None`` = memory only)."""
        return self._disk_dir

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[SteadyState]:
        """The cached state for ``key``, or ``None`` on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._record_lookup("hit")
            return self._entries[key]
        state = self._disk_get(key)
        if state is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._record_lookup("disk_hit")
            self._remember(key, state)
            return state
        self.stats.misses += 1
        self._record_lookup("miss")
        return None

    def put(self, key: str, state: SteadyState) -> None:
        """Store one settled state under ``key`` (memory, then disk)."""
        self._remember(key, state)
        self.stats.stores += 1
        observability().count(
            "opcache_stores_total",
            help_text="Operating points stored into the cache.",
        )
        self._disk_put(key, state)

    @staticmethod
    def _record_disk_error(op: str) -> None:
        observability().count(
            "opcache_disk_errors_total",
            help_text="Disk-layer faults absorbed as misses.",
            op=op,
        )

    @staticmethod
    def _record_lookup(result: str) -> None:
        observability().count(
            "opcache_lookups_total",
            help_text="Operating-point cache lookups by outcome.",
            result=result,
        )

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left in place)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remember(self, key: str, state: SteadyState) -> None:
        self._entries[key] = state
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            observability().count(
                "opcache_evictions_total",
                help_text="LRU evictions from the in-memory layer.",
            )

    def _disk_path(self, key: str) -> str:
        return os.path.join(self._disk_dir, f"{key}.json")

    def _disk_get(self, key: str) -> Optional[SteadyState]:
        if self._disk_dir is None:
            return None
        path = self._disk_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return decode_steady_state(payload["state"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.disk_errors += 1
            self._record_disk_error("read")
            return None

    def _disk_put(self, key: str, state: SteadyState) -> None:
        if self._disk_dir is None:
            return
        # The temp name carries the pid so shard/sweep workers sharing one
        # cache directory never clobber each other's in-flight writes.
        tmp = self._disk_path(key) + f".{os.getpid()}.tmp"
        try:
            os.makedirs(self._disk_dir, exist_ok=True)
            payload = {"key": key, "state": encode_steady_state(state)}
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, self._disk_path(key))
            finally:
                # A dump that died mid-write (encoder TypeError, ENOSPC,
                # kill between write and replace) must not strand the temp
                # file forever; the rename already removed it on success.
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
        except (OSError, TypeError, ValueError):
            self.stats.disk_errors += 1
            self._record_disk_error("write")
