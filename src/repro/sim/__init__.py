"""Simulation layer: sockets, the two-socket server, engine and results.

``socket``  – one chip + its delivery path; solves the electrical fixed point.
``server``  – the Power 720-class box: two sockets sharing one VRM chip.
``engine``  – 32 ms tick-level transient driver (firmware dynamics).
``results`` – result containers with derived metrics.
``run``     – high-level measurement helpers used by examples and benchmarks.
``cache``   – keyed operating-point cache (memory LRU + JSON disk layer).
``batch``   – parallel sweep runner executing grids of independent tasks.
"""

from .engine import TickResult, TransientEngine
from .results import RunResult, SteadyState
from .run import (
    active_mean_frequency,
    build_server,
    core_scaling_sweep,
    measure_consolidated,
    measure_placement,
)
from .server import Power720Server, ServerOperatingPoint
from .socket import ProcessorSocket, SocketSolution
from .cache import CacheStats, OperatingPointCache, fingerprint
from .batch import (
    SweepReport,
    SweepRunner,
    SweepTask,
    core_scaling_tasks,
    default_runner,
    derive_seed,
    set_default_runner,
)

__all__ = [
    "CacheStats",
    "OperatingPointCache",
    "Power720Server",
    "ProcessorSocket",
    "RunResult",
    "ServerOperatingPoint",
    "SocketSolution",
    "SteadyState",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "TickResult",
    "TransientEngine",
    "active_mean_frequency",
    "build_server",
    "core_scaling_sweep",
    "core_scaling_tasks",
    "default_runner",
    "derive_seed",
    "fingerprint",
    "measure_consolidated",
    "measure_placement",
    "set_default_runner",
]
