"""Simulation layer: sockets, the two-socket server, engine and results.

``socket``  – one chip + its delivery path; solves the electrical fixed point.
``server``  – the Power 720-class box: two sockets sharing one VRM chip.
``engine``  – 32 ms tick-level transient driver (firmware dynamics).
``results`` – result containers with derived metrics.
``run``     – high-level measurement helpers used by examples and benchmarks.
"""

from .engine import TickResult, TransientEngine
from .results import RunResult, SteadyState
from .run import (
    build_server,
    core_scaling_sweep,
    measure_consolidated,
    measure_placement,
)
from .server import Power720Server, ServerOperatingPoint
from .socket import ProcessorSocket, SocketSolution

__all__ = [
    "Power720Server",
    "ProcessorSocket",
    "RunResult",
    "ServerOperatingPoint",
    "SocketSolution",
    "SteadyState",
    "TickResult",
    "TransientEngine",
    "build_server",
    "core_scaling_sweep",
    "measure_consolidated",
    "measure_placement",
]
