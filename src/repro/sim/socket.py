"""One processor socket: chip + delivery path + the electrical fixed point.

Voltage, current and power on a socket are mutually dependent:

* chip power depends on the on-die voltage (CV²f and leakage);
* current is power over voltage;
* the delivery path drops voltage proportionally to current.

:meth:`ProcessorSocket.solve` resolves the cycle by damped fixed-point
iteration, optionally with the CPM→DPLL frequency servo in the loop (the
overclocking mode, where frequency itself depends on the settled voltage).
The servo iterates on continuous frequencies and quantizes to the DPLL's
28 MHz grid only once at the end (re-settling voltage afterwards) — putting
the quantizer inside the loop would invite limit cycles.  Convergence is
asserted: a silently non-converged state would poison every figure
downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..chip import Power7Chip
from ..chip.power import PowerBreakdown, power_backend_for
from ..config import ServerConfig
from ..errors import ConvergenceError
from ..pdn import DropBreakdown, PowerDeliveryPath

#: Damping factor of the voltage fixed-point iteration.
DAMPING = 0.6

#: Convergence threshold on per-core voltage (V).
TOLERANCE = 1e-6

#: Iteration cap; the damped loop converges in <40 for every valid config.
MAX_ITERATIONS = 300


@dataclass(frozen=True)
class SocketSolution:
    """Settled electrical state of one socket."""

    #: Per-core on-die voltages under typical conditions (V).
    core_voltages: tuple

    #: Per-core clock frequencies (Hz).
    frequencies: tuple

    #: Voltage-drop decomposition at the settled operating point.
    drops: DropBreakdown

    #: Power breakdown at the settled operating point.
    power: PowerBreakdown

    #: Die temperature at the settled operating point (C).
    temperature: float

    #: Number of fixed-point iterations used (last inner loop).
    iterations: int

    #: Total current drawn from the VRM rail (A).
    total_current: float

    #: Ids of cores that were running at least one thread (and not gated)
    #: when the point was settled.  Empty for an idle socket.  Captured at
    #: solve time so a solution describes its own occupancy — downstream
    #: aggregations (active-core frequency, server minimum clock) must not
    #: re-query live chip state, which may have changed since.
    active_core_ids: tuple = ()

    @property
    def die_power(self) -> float:
        """Power consumed by the transistors at the delivered voltages (W)."""
        return self.power.total

    @property
    def chip_power(self) -> float:
        """Vdd rail power as the platform sensors report it (W).

        The power sensor sits at the VRM output: it measures setpoint ×
        current, which includes the resistive loss in the delivery path.
        This is the quantity the paper plots as "chip power" (Sec. 3.2).
        """
        return self.drops.setpoint * self.total_current

    @property
    def chip_current(self) -> float:
        """Total rail current (A)."""
        return self.total_current

    @property
    def min_frequency(self) -> float:
        """Slowest core clock (Hz) — the multithreaded workload's pace."""
        return min(self.frequencies)

    @property
    def mean_frequency(self) -> float:
        """Mean core clock (Hz)."""
        return float(np.mean(self.frequencies))


class ProcessorSocket:
    """One chip behind one VRM rail."""

    def __init__(
        self,
        chip: Power7Chip,
        path: PowerDeliveryPath,
        config: ServerConfig,
        socket_id: int = 0,
    ) -> None:
        self.chip = chip
        self.path = path
        self.config = config
        self.socket_id = socket_id

    def solve(
        self,
        frequencies: Optional[Sequence[float]] = None,
        servo_margin: Optional[float] = None,
        frequency_cap: Optional[float] = None,
        settle_thermal: bool = True,
    ) -> SocketSolution:
        """Solve the electrical fixed point at the current occupancy.

        Parameters
        ----------
        frequencies:
            Per-core clocks (Hz) to hold fixed.  Mutually exclusive with
            ``servo_margin``.  When both are omitted the DPLLs' current
            outputs are held.
        servo_margin:
            When given, each core's DPLL servoes its frequency so the core's
            timing margin equals this value (V) at the settled voltage — the
            CPM→DPLL closed loop of the overclocking mode.
        frequency_cap:
            Upper bound on servoed frequencies (the undervolting mode caps
            the DPLL at the target clock).
        settle_thermal:
            Settle die temperature to the steady state of the settled power
            (outer loop); when ``False`` the current temperature is held.
        """
        chip = self.chip
        n = chip.n_cores
        if frequencies is not None and servo_margin is not None:
            raise ValueError("pass either frequencies or servo_margin, not both")
        if frequencies is not None:
            if len(frequencies) != n:
                raise ValueError(f"expected {n} frequencies, got {len(frequencies)}")
            for dpll, f in zip(chip.dplls, frequencies):
                dpll.set_frequency(f)

        states = chip.core_states()
        occupancy = _Occupancy(
            activities=[s.activity for s in states],
            gated=[s.gated for s in states],
            n_active=sum(1 for s in states if s.active),
        )
        active_ids = tuple(i for i, s in enumerate(states) if s.active)

        temperature = chip.thermal.temperature
        solution = None
        for _ in range(3 if settle_thermal else 1):
            if servo_margin is not None:
                voltages, freqs, iters = self._iterate(
                    occupancy, temperature, servo=True,
                    servo_margin=servo_margin, frequency_cap=frequency_cap,
                )
                # Quantize the converged servo frequencies down to the DPLL
                # grid, then re-settle voltage at the fixed clocks.
                for dpll, f in zip(chip.dplls, freqs):
                    dpll.set_frequency(f)
                voltages, _, extra = self._iterate(
                    occupancy, temperature, servo=False,
                )
                iters += extra
            else:
                voltages, _, iters = self._iterate(
                    occupancy, temperature, servo=False,
                )
            drops, power, current = self._evaluate(occupancy, voltages, temperature)
            solution = SocketSolution(
                core_voltages=tuple(float(v) for v in voltages),
                frequencies=tuple(chip.frequencies()),
                drops=drops,
                power=power,
                temperature=temperature,
                iterations=iters,
                total_current=current,
                active_core_ids=active_ids,
            )
            if not settle_thermal:
                break
            new_temp = chip.thermal.steady_state(solution.die_power)
            converged = abs(new_temp - temperature) < 0.05
            temperature = new_temp
            chip.thermal.settle(solution.die_power)
            if converged:
                solution = SocketSolution(
                    core_voltages=solution.core_voltages,
                    frequencies=solution.frequencies,
                    drops=solution.drops,
                    power=solution.power,
                    temperature=temperature,
                    iterations=solution.iterations,
                    total_current=solution.total_current,
                    active_core_ids=solution.active_core_ids,
                )
                break
        return solution

    def worst_cpm_codes(self, solution: SocketSolution) -> List[int]:
        """Per-core worst CPM code at a settled operating point."""
        return self.chip.worst_cpm_codes(solution.core_voltages)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _iterate(
        self,
        occupancy: "_Occupancy",
        temperature: float,
        servo: bool,
        servo_margin: float = 0.0,
        frequency_cap: Optional[float] = None,
    ) -> tuple:
        """Damped fixed point on voltage (and, when ``servo``, frequency).

        Returns ``(voltages, frequencies, iterations)`` where frequencies
        are continuous (not grid-quantized) in servo mode.
        """
        chip = self.chip
        n = chip.n_cores
        setpoint = self.path.setpoint
        voltages = np.full(n, setpoint - 0.02)
        freqs = list(chip.frequencies())
        delta = float("inf")
        vectorized = power_backend_for(n) == "array"
        for iteration in range(1, MAX_ITERATIONS + 1):
            if servo:
                freqs = []
                for v in voltages:
                    target = chip.timing.frequency_for_margin(float(v), servo_margin)
                    target = chip.timing.clamp_frequency(target)
                    if frequency_cap is not None:
                        target = min(target, frequency_cap)
                    freqs.append(target)
            power = chip.power_model.chip_power(
                activities=occupancy.activities,
                voltages=list(voltages),
                frequencies=freqs,
                gated=occupancy.gated,
                temperature=temperature,
            )
            core_currents = _core_currents(power, voltages, n, vectorized)
            uncore_power = power.uncore_dynamic + power.uncore_leakage
            uncore_current = uncore_power / max(float(np.mean(voltages)), 0.3)
            drops = self.path.deliver(
                core_currents, uncore_current, occupancy.n_active
            )
            new_voltages = np.asarray(drops.core_voltages)
            delta = float(np.max(np.abs(new_voltages - voltages)))
            voltages = voltages + DAMPING * (new_voltages - voltages)
            # A diverging iterate (pathological delivery resistance) must
            # stay inside the power model's physical domain so the loop
            # reaches the iteration cap and raises ConvergenceError instead
            # of feeding negative voltages into the leakage model.
            voltages = np.clip(voltages, 0.2, None)
            if delta < TOLERANCE:
                return voltages, freqs, iteration
        raise ConvergenceError(
            f"socket {self.socket_id}: electrical fixed point did not converge "
            f"in {MAX_ITERATIONS} iterations "
            f"(setpoint={setpoint:.3f} V, last delta={delta:.2e} V)"
        )

    def _evaluate(
        self, occupancy: "_Occupancy", voltages: np.ndarray, temperature: float
    ) -> tuple:
        """One forward evaluation of (drops, power, current) at settled voltages."""
        chip = self.chip
        n = chip.n_cores
        power = chip.power_model.chip_power(
            activities=occupancy.activities,
            voltages=list(voltages),
            frequencies=chip.frequencies(),
            gated=occupancy.gated,
            temperature=temperature,
        )
        vectorized = power_backend_for(n) == "array"
        core_currents = _core_currents(power, voltages, n, vectorized)
        uncore_power = power.uncore_dynamic + power.uncore_leakage
        uncore_current = uncore_power / max(float(np.mean(voltages)), 0.3)
        drops = self.path.deliver(core_currents, uncore_current, occupancy.n_active)
        if vectorized:
            # Sequential sum (not np.sum's pairwise reduction) to stay
            # bit-identical with the scalar path.
            total_current = float(sum(core_currents.tolist())) + uncore_current
        else:
            total_current = float(sum(core_currents)) + uncore_current
        return drops, power, total_current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessorSocket(id={self.socket_id}, chip={self.chip!r})"


def _core_currents(
    power: PowerBreakdown, voltages: np.ndarray, n: int, vectorized: bool
):
    """Per-core current draw at the present iterate.

    The array form computes ``(dyn + leak) / max(V, 0.3)`` elementwise —
    the same IEEE operations in the same order as the scalar
    comprehension, so the two are bit-identical (enforced by test).
    """
    if vectorized:
        return (
            np.asarray(power.core_dynamic) + np.asarray(power.core_leakage)
        ) / np.maximum(voltages, 0.3)
    return [
        power.core_power(i) / max(float(voltages[i]), 0.3) for i in range(n)
    ]


@dataclass(frozen=True)
class _Occupancy:
    """Frozen occupancy snapshot used across solver iterations."""

    activities: list
    gated: list
    n_active: int
