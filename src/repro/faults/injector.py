"""The process-wide fault injector: seeded, zero-perturbation when off.

Mirrors the observability layer's handle pattern
(:func:`repro.obs.observability` / :func:`repro.obs.install`): the hooks
in the CPM reader, the delivery path and the calibration procedure ask
:func:`fault_injector` for the current handle and bail out on the very
first ``enabled`` check while injection is disabled — the disabled path
executes no extra arithmetic, draws no randomness and caches nothing, so
results stay **bit-identical** to a build without the hooks (enforced by
test).

Determinism while enabled: the jitter stream is seeded from the plan, and
every hook transformation is a pure function of ``(plan, simulated time,
target, draw order)`` — two identical runs corrupt identically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..obs import observability
from .plan import FaultPlan
from .spec import (
    CalibrationFault,
    CpmDropFault,
    CpmNoiseFault,
    CpmStuckFault,
    FaultSpec,
    LoadlineExcursionFault,
    StaleTelemetryFault,
    VrmDroopFault,
)

#: Sentinel code of a dropped CPM read (real detectors cannot go below 0,
#: so downstream plausibility gates recognise it unambiguously).
DROPPED_CODE = -1

#: Seed offset separating the injector's stream from model seeds.
_SEED_STREAM = 0x5EED


def _record_injection(kind: str) -> None:
    observability().count(
        "faults_injected_total",
        help_text="Fault injections applied, by fault kind.",
        kind=kind,
    )


class FaultInjector:
    """Applies a plan's standalone specs to the measure-path hooks.

    The injector holds a simulated-time clock (seconds, default 0.0 —
    which makes every ``start_seconds=0`` spec live immediately, the
    natural setting for standalone ``measure()`` calls).  Long-running
    callers advance it with :meth:`set_time`.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.now_seconds = 0.0
        #: Deterministic injection tally by fault kind (test-friendly
        #: mirror of the ``faults_injected_total`` metric).
        self.counts: Dict[str, int] = {}
        self._rng = np.random.default_rng(plan.seed + _SEED_STREAM)
        standalone = plan.standalone_specs()
        self._cpm = [
            s
            for s in standalone
            if isinstance(s, (CpmStuckFault, CpmNoiseFault, CpmDropFault))
        ]
        self._stale = [
            s for s in standalone if isinstance(s, StaleTelemetryFault)
        ]
        self._droop = [s for s in standalone if isinstance(s, VrmDroopFault)]
        self._loadline = [
            s for s in standalone if isinstance(s, LoadlineExcursionFault)
        ]
        self._calibration = [
            s for s in standalone if isinstance(s, CalibrationFault)
        ]

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def set_time(self, now_seconds: float) -> None:
        """Advance the injector's notion of simulated time."""
        self.now_seconds = now_seconds

    def _active(self, spec: FaultSpec) -> bool:
        return spec.active_at(self.now_seconds)

    def _record(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        _record_injection(kind)

    # ------------------------------------------------------------------
    # Telemetry hooks (CpmReader)
    # ------------------------------------------------------------------
    def transform_codes(
        self, socket_id: int, core_id: int, codes: Sequence[int]
    ) -> List[int]:
        """Corrupt one core's CPM codes per the live telemetry specs."""
        out = list(codes)
        for spec in self._cpm:
            if spec.socket_id != socket_id or not self._active(spec):
                continue
            if spec.core_id is not None and spec.core_id != core_id:
                continue
            if isinstance(spec, CpmStuckFault):
                out = [spec.code] * len(out)
            elif isinstance(spec, CpmDropFault):
                out = [DROPPED_CODE] * len(out)
            else:  # CpmNoiseFault
                jitter = self._rng.integers(
                    -spec.amplitude_bits, spec.amplitude_bits + 1, size=len(out)
                )
                out = [int(c + j) for c, j in zip(out, jitter)]
            self._record(spec.kind)
        return out

    def stale_active(self, socket_id: int) -> bool:
        """Whether a stale-telemetry window is live on ``socket_id``."""
        return any(
            s.socket_id == socket_id and self._active(s) for s in self._stale
        )

    def record_stale(self) -> None:
        """Tally one stale-window replay (the reader served cached codes)."""
        self._record(StaleTelemetryFault.kind)

    # ------------------------------------------------------------------
    # Power-delivery hooks (PowerDeliveryPath)
    # ------------------------------------------------------------------
    def rail_droop(self, rail: int) -> float:
        """Additional sustained droop (V) injected on ``rail`` right now."""
        depth = 0.0
        for spec in self._droop:
            if spec.socket_id == rail and self._active(spec):
                depth += spec.depth_volts
                self._record(spec.kind)
        return depth

    def loadline_scale(self, rail: int) -> float:
        """Multiplier on the loadline drop of ``rail`` right now."""
        factor = 1.0
        for spec in self._loadline:
            if spec.socket_id == rail and self._active(spec):
                factor *= spec.factor
                self._record(spec.kind)
        return factor

    # ------------------------------------------------------------------
    # Firmware hooks (calibration)
    # ------------------------------------------------------------------
    def calibration_should_fail(self, socket_id: int) -> bool:
        """Whether CPM calibration on ``socket_id`` must fail right now."""
        for spec in self._calibration:
            if spec.socket_id == socket_id and self._active(spec):
                self._record(spec.kind)
                return True
        return False


class _DisabledInjector:
    """The do-nothing handle installed while injection is off.

    Every hook's fast path is one attribute check on :attr:`enabled`;
    the methods exist only so type-agnostic callers never branch."""

    enabled = False
    plan = None
    counts: Dict[str, int] = {}

    def set_time(self, now_seconds: float) -> None:
        pass

    def transform_codes(
        self, socket_id: int, core_id: int, codes: Sequence[int]
    ) -> List[int]:
        return list(codes)

    def stale_active(self, socket_id: int) -> bool:
        return False

    def record_stale(self) -> None:
        pass

    def rail_droop(self, rail: int) -> float:
        return 0.0

    def loadline_scale(self, rail: int) -> float:
        return 1.0

    def calibration_should_fail(self, socket_id: int) -> bool:
        return False


#: The disabled singleton — installed by default, forever zero-cost.
NULL_INJECTOR = _DisabledInjector()

_current: Union[FaultInjector, _DisabledInjector] = NULL_INJECTOR


def fault_injector() -> Union[FaultInjector, _DisabledInjector]:
    """The process-wide injector handle (disabled unless installed)."""
    return _current


def install_injector(
    injector: Optional[Union[FaultInjector, _DisabledInjector]],
) -> Union[FaultInjector, _DisabledInjector]:
    """Swap the process-wide injector; returns the previous handle.

    Pass ``None`` (or :data:`NULL_INJECTOR`) to disable injection.
    """
    global _current
    previous = _current
    _current = injector if injector is not None else NULL_INJECTOR
    return previous


@contextmanager
def injected(
    plan_or_injector: Union[FaultPlan, FaultInjector],
) -> Iterator[Union[FaultInjector, _DisabledInjector]]:
    """Scoped injection: install for the block, always restore after.

    Accepts a plan (a fresh injector is built around it) or a prepared
    injector (callers that need to advance its clock or read counts).
    """
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    previous = install_injector(injector)
    try:
        yield injector
    finally:
        install_injector(previous)
