"""Degradation reports: what did the faults cost us?

:func:`run_chaos` drives the same trace twice through the fleet engine —
fault-free baseline, then with the plan injected — sharing one sweep
runner (and thus one operating-point cache) so the pair costs little
more than a single run.  The resulting :class:`DegradationReport`
carries no wall-clock state, which is what makes two chaos runs with the
same seed and plan byte-identical (the determinism acceptance test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..fleet.metrics import FleetResult
    from ..fleet.scheduler import FleetPolicy
    from ..sim.batch import SweepRunner


@dataclass(frozen=True)
class DegradationReport:
    """Fault-free vs degraded outcome of one fleet scenario."""

    plan: FaultPlan
    baseline: "FleetResult"
    degraded: "FleetResult"

    @property
    def energy_delta_joules(self) -> float:
        """Extra energy the degraded run burned (J; negative = saved)."""
        return (
            self.degraded.adaptive_energy_joules
            - self.baseline.adaptive_energy_joules
        )

    @property
    def energy_delta_fraction(self) -> float:
        """Energy delta relative to the fault-free baseline."""
        if self.baseline.adaptive_energy_joules == 0:
            return 0.0
        return self.energy_delta_joules / self.baseline.adaptive_energy_joules

    @property
    def qos_delta(self) -> int:
        """Additional QoS violations caused by the faults."""
        return self.degraded.qos_violations - self.baseline.qos_violations

    @property
    def fallback_seconds(self) -> float:
        """Total socket-time spent in static-guardband fallback (s)."""
        return self.degraded.total_fallback_seconds

    @property
    def zero_job_loss(self) -> bool:
        """Conservation: the degraded run accounts for every arrival."""
        return (
            self.degraded.conserved
            and self.degraded.n_arrivals == self.baseline.n_arrivals
        )

    def render(self) -> str:
        """Human-readable multi-line report (what ``repro chaos`` prints)."""
        base, deg = self.baseline, self.degraded
        lines = [
            f"chaos: {len(self.plan.specs)} fault spec(s), "
            f"seed {self.plan.seed}",
        ]
        for line in self.plan.describe().splitlines():
            lines.append(f"  {line}")
        lines += [
            (
                f"baseline: {base.adaptive_energy_kwh:.3f} kWh, "
                f"{base.qos_violations} qos violation(s), "
                f"{base.n_completions}/{base.n_arrivals} jobs completed"
            ),
            (
                f"degraded: {deg.adaptive_energy_kwh:.3f} kWh "
                f"({self.energy_delta_fraction:+.1%}), "
                f"{deg.qos_violations} qos violation(s) "
                f"({self.qos_delta:+d}), "
                f"{deg.n_completions}/{deg.n_arrivals} jobs completed"
            ),
            (
                f"degradation: {deg.n_server_crashes} crash(es), "
                f"{deg.n_job_kills} job kill(s), "
                f"{deg.n_requeues} requeue(s), "
                f"{self.fallback_seconds:.0f} s in static fallback"
            ),
            (
                "jobs: "
                + ("conserved" if self.zero_job_loss else "LOST JOBS")
                + f" ({deg.n_arrivals} arrived = {deg.n_completions} "
                f"completed + {deg.n_running} running + "
                f"{deg.n_queued} queued)"
            ),
            f"event log: baseline {base.event_log_hash}",
            f"event log: degraded {deg.event_log_hash}",
        ]
        return "\n".join(lines)


def run_chaos(
    config,
    plan: FaultPlan,
    runner: Optional["SweepRunner"] = None,
    policy: Optional["FleetPolicy"] = None,
) -> DegradationReport:
    """Run one fleet scenario fault-free and degraded; report the delta.

    ``config`` is a :class:`~repro.fleet.engine.FleetConfig`.  Both runs
    share the trace and the sweep runner, so the baseline's settled
    points replay from cache wherever the degraded run revisits them.
    """
    from ..fleet.engine import FleetSimulation
    from ..fleet.scheduler import AGS_POLICY
    from ..fleet.traffic import generate_trace

    fleet_policy = policy if policy is not None else AGS_POLICY
    trace = generate_trace(config.traffic, config.seed)
    baseline = FleetSimulation(
        config, fleet_policy, runner=runner, trace=trace
    ).run()
    degraded = FleetSimulation(
        config, fleet_policy, runner=runner, trace=trace, fault_plan=plan
    ).run()
    return DegradationReport(plan=plan, baseline=baseline, degraded=degraded)
