"""Deterministic fault injection and graceful degradation.

The subsystem has two halves:

* **Injection** — :class:`FaultPlan` composes seeded
  :class:`~repro.faults.spec.FaultSpec` objects;
  :class:`FaultInjector` applies the standalone ones through hooks in
  the CPM reader, the power-delivery path and the calibration
  procedure, while the fleet engine consumes server-scoped specs as
  discrete events (crashes, job kills, per-socket telemetry windows).
  With no injector installed every hook is a single attribute check —
  the no-faults path stays bit-identical (event-log SHA-256 unchanged),
  enforced by test.
* **Degradation** — :class:`~repro.faults.gate.CpmPlausibilityGate`
  lets the guardband controller detect untrustworthy telemetry and fall
  back per-socket to the static guardband with hysteresis; the fleet
  scheduler requeues jobs off failed servers with capped exponential
  backoff; the sweep runner isolates poisoned tasks behind a failure
  manifest.  :func:`run_chaos` quantifies the cost in a
  :class:`~repro.faults.report.DegradationReport`.

A third leg watches the watchers: the invariant watchdog
(:mod:`~repro.faults.watchdog`) adjudicates conservation, cap-sum,
energy-ledger and heap-generation invariants inside every fleet run —
counting violations by default, raising :class:`~repro.errors.WatchdogError`
in strict mode — and :func:`run_campaign` drives the whole scenario
catalog under seeded randomized fault plans with the strict watchdog
armed (``repro chaos campaign``).

See ``docs/RESILIENCE.md`` for the fault taxonomy and the fallback
state machine.
"""

from .gate import CpmPlausibilityGate, GateVerdict
from .injector import (
    DROPPED_CODE,
    NULL_INJECTOR,
    FaultInjector,
    fault_injector,
    injected,
    install_injector,
)
from .plan import FaultPlan, chaos_plan
from .spec import (
    CPM_CORRUPTION_KINDS,
    CacheCorruptionFault,
    CalibrationFault,
    CpmDropFault,
    CpmNoiseFault,
    CpmStuckFault,
    FaultSpec,
    JobKillFault,
    LoadlineExcursionFault,
    ServerCrashFault,
    StaleTelemetryFault,
    VrmDroopFault,
)
from .report import DegradationReport, run_chaos
from .campaign import CampaignReport, CampaignRow, run_campaign
from .watchdog import (
    NULL_WATCHDOG,
    InvariantWatchdog,
    install_watchdog,
    watchdog,
    watched,
)

__all__ = [
    "CampaignReport",
    "CampaignRow",
    "InvariantWatchdog",
    "NULL_WATCHDOG",
    "CPM_CORRUPTION_KINDS",
    "CacheCorruptionFault",
    "CalibrationFault",
    "CpmDropFault",
    "CpmNoiseFault",
    "CpmPlausibilityGate",
    "CpmStuckFault",
    "DROPPED_CODE",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GateVerdict",
    "JobKillFault",
    "LoadlineExcursionFault",
    "NULL_INJECTOR",
    "ServerCrashFault",
    "StaleTelemetryFault",
    "VrmDroopFault",
    "chaos_plan",
    "fault_injector",
    "injected",
    "install_injector",
    "install_watchdog",
    "run_campaign",
    "run_chaos",
    "watchdog",
    "watched",
]
