"""CPM plausibility gate: is this telemetry trustworthy?

The real firmware cross-checks CPM outputs before acting on them — a
sensor stream that pins to an extreme, leaves the detector range, or
disagrees wildly with what the electrical state predicts must not drive
the adaptive guardband (the consequence of trusting a low-reading CPM is
an unnecessary throttle; of trusting a high-reading one, a timing
failure).  :class:`CpmPlausibilityGate` renders that judgement from a
pair of per-core worst-code vectors:

* ``observed`` — what the telemetry path actually returned (possibly
  corrupted by an injected fault);
* ``expected`` — what the model predicts at the settled operating point
  (the controller computes this directly from the chip's CPM bank, which
  the injector never touches).

Verdict reasons are stable strings used by metrics labels and the
fallback state machine in :class:`~repro.guardband.GuardbandController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class GateVerdict:
    """Outcome of one plausibility check."""

    healthy: bool

    #: ``"ok"`` | ``"dropped"`` | ``"out_of_range"`` | ``"pinned_low"``
    #: | ``"pinned_high"`` | ``"implausible"`` | ``"missing"``.
    reason: str = "ok"


class CpmPlausibilityGate:
    """Judges observed CPM codes against model-predicted ones.

    Parameters
    ----------
    code_max:
        Upper end of the detector range (codes are valid in
        ``[0, code_max]``).
    tolerance_bits:
        Largest per-core ``|observed - expected|`` still considered
        plausible.  Process variation and read jitter are within ±1 bit
        on the real machine; the default of 2 leaves headroom without
        masking genuine corruption.
    """

    def __init__(self, code_max: int, tolerance_bits: int = 2) -> None:
        if code_max < 1:
            raise ValueError(f"code_max must be >= 1, got {code_max}")
        if tolerance_bits < 0:
            raise ValueError(
                f"tolerance_bits must be >= 0, got {tolerance_bits}"
            )
        self.code_max = code_max
        self.tolerance_bits = tolerance_bits

    def judge(
        self, observed: Sequence[int], expected: Sequence[int]
    ) -> GateVerdict:
        """Render a verdict for one socket's per-core worst codes."""
        if not observed or len(observed) != len(expected):
            return GateVerdict(healthy=False, reason="missing")
        if any(code < 0 for code in observed):
            return GateVerdict(healthy=False, reason="dropped")
        if any(code > self.code_max for code in observed):
            return GateVerdict(healthy=False, reason="out_of_range")
        if all(code == 0 for code in observed) and any(
            code > self.tolerance_bits for code in expected
        ):
            return GateVerdict(healthy=False, reason="pinned_low")
        if all(code == self.code_max for code in observed) and any(
            code < self.code_max - self.tolerance_bits for code in expected
        ):
            return GateVerdict(healthy=False, reason="pinned_high")
        worst = max(
            abs(obs - exp) for obs, exp in zip(observed, expected)
        )
        if worst > self.tolerance_bits:
            return GateVerdict(healthy=False, reason="implausible")
        return GateVerdict(healthy=True)
