"""Deterministic fault schedules: a seed plus composed specs.

A :class:`FaultPlan` is pure data — freezing it keeps two chaos runs with
the same plan byte-identical, which is what the determinism acceptance
test asserts.  The seed feeds the injector's noise stream; schedules
carry no wall-clock state at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Type

from .spec import (
    CacheCorruptionFault,
    CpmStuckFault,
    FaultSpec,
    JobKillFault,
    ServerCrashFault,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded composition of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()

    #: Seed of the injector's jitter stream (noise faults); two runs of
    #: the same plan consume identical streams.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not self.specs

    def of_type(self, *types: Type[FaultSpec]) -> Tuple[FaultSpec, ...]:
        """Specs that are instances of any of ``types``, in plan order."""
        return tuple(s for s in self.specs if isinstance(s, types))

    def standalone_specs(self) -> Tuple[FaultSpec, ...]:
        """Specs the process-wide injector applies on the measure path
        (socket-targeted specs without a ``server_id`` scope)."""
        return tuple(
            s
            for s in self.specs
            if getattr(s, "server_id", 0) is None
        )

    def cache_specs(self) -> Tuple[CacheCorruptionFault, ...]:
        """Settle-cache corruption specs (armed process-wide per run)."""
        return tuple(
            s for s in self.specs if isinstance(s, CacheCorruptionFault)
        )

    def server_scoped_specs(self) -> Tuple[FaultSpec, ...]:
        """Specs the fleet engine consumes as discrete events."""
        return tuple(
            s
            for s in self.specs
            if isinstance(s, (ServerCrashFault, JobKillFault))
            or getattr(s, "server_id", None) is not None
        )

    def describe(self) -> str:
        """One line per spec, in plan order (for reports and the CLI)."""
        lines = []
        for spec in self.specs:
            window = f"t={spec.start_seconds:g}s"
            if spec.duration_seconds is not None:
                window += f"+{spec.duration_seconds:g}s"
            target = []
            server_id = getattr(spec, "server_id", None)
            if server_id is not None:
                target.append(f"server {server_id}")
            if hasattr(spec, "socket_id"):
                target.append(f"socket {spec.socket_id}")
            if isinstance(spec, JobKillFault):
                target.append(f"job {spec.job_id}")
            where = ", ".join(target) or "fleet"
            lines.append(f"{spec.kind} @ {window} ({where})")
        return "\n".join(lines)


def chaos_plan(
    duration_seconds: float,
    crash_server: Optional[int] = 1,
    crash_at_seconds: Optional[float] = None,
    repair_after_seconds: Optional[float] = None,
    corrupt_server: Optional[int] = 0,
    corrupt_socket: int = 0,
    corrupt_at_seconds: Optional[float] = None,
    corrupt_for_seconds: Optional[float] = None,
    kill_jobs: Sequence[int] = (),
    kill_at_seconds: Optional[float] = None,
    seed: int = 0,
) -> FaultPlan:
    """The canonical chaos scenario the ``repro chaos`` CLI runs.

    Kills one server a quarter into the horizon (repairing it another
    quarter later) and pins one socket's CPM stream to code 0 for a fifth
    of the horizon — pass ``None`` for ``crash_server`` / ``corrupt_server``
    to drop either ingredient.
    """
    specs: list = []
    if crash_server is not None:
        crash_at = (
            0.25 * duration_seconds
            if crash_at_seconds is None
            else crash_at_seconds
        )
        repair = (
            0.25 * duration_seconds
            if repair_after_seconds is None
            else repair_after_seconds
        )
        specs.append(
            ServerCrashFault(
                start_seconds=crash_at,
                server_id=crash_server,
                repair_seconds=repair,
            )
        )
    if corrupt_server is not None:
        corrupt_at = (
            0.3 * duration_seconds
            if corrupt_at_seconds is None
            else corrupt_at_seconds
        )
        corrupt_for = (
            0.2 * duration_seconds
            if corrupt_for_seconds is None
            else corrupt_for_seconds
        )
        specs.append(
            CpmStuckFault(
                start_seconds=corrupt_at,
                duration_seconds=corrupt_for,
                socket_id=corrupt_socket,
                server_id=corrupt_server,
                code=0,
            )
        )
    kill_at = (
        0.5 * duration_seconds if kill_at_seconds is None else kill_at_seconds
    )
    for job_id in kill_jobs:
        specs.append(JobKillFault(start_seconds=kill_at, job_id=job_id))
    return FaultPlan(specs=tuple(specs), seed=seed)
