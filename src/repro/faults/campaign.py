"""Deterministic chaos campaigns over the scenario catalog.

``repro chaos campaign`` drives *every* catalog scenario twice — once
fault-free and once under a seeded, randomized fault plan — with the
strict invariant watchdog armed, and prints the per-scenario
degradation matrix.  The randomized plan is a pure function of
``(scenario name, campaign seed)``: the name is hashed with CRC-32
(stable across processes, unlike ``hash()`` under seed randomization),
so two campaigns with the same seed inject byte-identical faults and
CI can diff campaign output across runs.

The campaign's job is breadth, not depth: one crash (with repair), one
job kill and one CPM corruption window per scenario, placed at
randomized times and targets, checking that whatever the catalog
describes — aged groups, power budgets, flash crowds — degrades
gracefully: jobs stay conserved, invariants hold, the run completes.
Scenario-specific depth lives in the catalog's own fault plans.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple

#: Smoke mode shrinks every scenario's traffic to at most this horizon
#: (seconds) and arrival rate (jobs/hour) so the whole catalog runs in
#: CI time.  Degradation percentages are noisier at this scale; the
#: campaign's pass criteria (conservation, watchdog silence) are not.
SMOKE_DURATION_SECONDS = 3600.0
SMOKE_JOBS_PER_HOUR = 40.0


def campaign_seed(name: str, seed: int) -> int:
    """Stable per-scenario RNG seed (CRC-32 of the name, xor campaign)."""
    return zlib.crc32(name.encode("utf-8")) ^ (seed & 0xFFFFFFFF)


@dataclass(frozen=True)
class CampaignRow:
    """One scenario's baseline-vs-degraded outcome."""

    scenario: str
    n_windows: int
    baseline_energy_kwh: float
    degraded_energy_kwh: float
    qos_delta: int
    n_server_crashes: int
    n_job_kills: int
    n_requeues: int
    conserved: bool
    watchdog_violations: int

    @property
    def energy_delta_fraction(self) -> float:
        if self.baseline_energy_kwh == 0:
            return 0.0
        return (
            self.degraded_energy_kwh - self.baseline_energy_kwh
        ) / self.baseline_energy_kwh

    @property
    def passed(self) -> bool:
        return self.conserved and self.watchdog_violations == 0


@dataclass(frozen=True)
class CampaignReport:
    """The degradation matrix one campaign produced."""

    rows: Tuple[CampaignRow, ...]
    seed: int
    smoke: bool

    @property
    def passed(self) -> bool:
        return all(row.passed for row in self.rows)

    def render(self) -> str:
        mode = ", smoke" if self.smoke else ""
        lines = [
            f"chaos campaign: {len(self.rows)} scenario(s), "
            f"seed {self.seed}{mode}",
            (
                f"{'scenario':>28} {'faults':>6} {'base kWh':>9} "
                f"{'degr kWh':>9} {'dE':>7} {'dqos':>5} {'crash':>5} "
                f"{'kill':>4} {'requeue':>7}  jobs"
            ),
        ]
        for row in self.rows:
            lines.append(
                f"{row.scenario:>28} {row.n_windows:>6} "
                f"{row.baseline_energy_kwh:>9.3f} "
                f"{row.degraded_energy_kwh:>9.3f} "
                f"{row.energy_delta_fraction:>+7.1%} {row.qos_delta:>+5d} "
                f"{row.n_server_crashes:>5} {row.n_job_kills:>4} "
                f"{row.n_requeues:>7}  "
                + ("conserved" if row.conserved else "LOST JOBS")
            )
        violations = sum(row.watchdog_violations for row in self.rows)
        conserved = sum(1 for row in self.rows if row.conserved)
        lines.append(
            f"campaign: {conserved}/{len(self.rows)} conserved, "
            f"{violations} watchdog violation(s)"
        )
        return "\n".join(lines)


def _shrink_for_smoke(scenario):
    """Clamp a scenario's traffic to smoke scale (pure, validated)."""
    traffic = scenario.traffic
    duration = min(traffic.duration_seconds, SMOKE_DURATION_SECONDS)
    surges = tuple(
        surge for surge in traffic.surges if surge[0] < duration
    )
    traffic = replace(
        traffic,
        duration_seconds=duration,
        jobs_per_hour=min(traffic.jobs_per_hour, SMOKE_JOBS_PER_HOUR),
        surges=surges,
    )
    return replace(scenario, traffic=traffic)


def _randomized_windows(scenario, rng: random.Random):
    """One crash (with repair), one CPM corruption, one job kill."""
    from ..scenarios import FaultWindowSpec

    duration = scenario.traffic.duration_seconds
    groups = scenario.topology.groups
    crash_group = groups[rng.randrange(len(groups))]
    corrupt_group = groups[rng.randrange(len(groups))]
    expected_jobs = max(
        2, int(scenario.traffic.jobs_per_hour * duration / 3600.0)
    )
    return (
        FaultWindowSpec(
            kind="server_crash",
            start_seconds=(0.15 + 0.25 * rng.random()) * duration,
            group=crash_group.name,
            server=rng.randrange(crash_group.servers),
            repair_seconds=(0.15 + 0.10 * rng.random()) * duration,
        ),
        FaultWindowSpec(
            kind="cpm_stuck",
            start_seconds=(0.30 + 0.20 * rng.random()) * duration,
            duration_seconds=max(60.0, 0.10 * duration),
            group=corrupt_group.name,
            server=rng.randrange(corrupt_group.servers),
            code=rng.randrange(16, 64),
        ),
        FaultWindowSpec(
            kind="job_kill",
            start_seconds=(0.40 + 0.20 * rng.random()) * duration,
            job_id=rng.randrange(expected_jobs),
        ),
    )


def run_campaign(
    scenarios=None,
    seed: int = 0,
    smoke: bool = False,
    strict: bool = True,
    n_shards: int = 1,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Drive every scenario fault-free and randomly degraded.

    ``scenarios`` defaults to the shipped catalog.  ``strict`` arms the
    invariant watchdog in raising mode for both runs of every scenario
    (a violation surfaces as :class:`~repro.errors.WatchdogError`,
    CLI exit code 13); ``strict=False`` counts violations into the
    report instead.  Deterministic for a fixed ``(scenarios, seed,
    smoke)`` triple.
    """
    from ..scenarios import (
        FaultPlanSpec,
        GoldenSpec,
        load_catalog,
        run_scenario,
    )
    from .watchdog import InvariantWatchdog, install_watchdog

    if scenarios is None:
        scenarios = load_catalog()
    rows = []
    for scenario in scenarios:
        if progress is not None:
            progress(scenario.name)
        rng = random.Random(campaign_seed(scenario.name, seed))
        # Strip the catalog's own fault plan (the campaign substitutes
        # its randomized one) and golden block *before* any smoke
        # shrink: a scenario's shipped fault windows may open beyond
        # the clamped horizon, and cross-validation would reject the
        # shrunk scenario for faults the campaign never runs.
        stripped = replace(
            scenario, faults=FaultPlanSpec(seed=seed), golden=GoldenSpec()
        )
        effective = _shrink_for_smoke(stripped) if smoke else stripped
        windows = _randomized_windows(effective, rng)
        baseline_scenario = effective
        degraded_scenario = replace(
            effective, faults=FaultPlanSpec(windows=windows, seed=seed)
        )
        handle = InvariantWatchdog(strict=strict)
        previous = install_watchdog(handle)
        try:
            baseline = run_scenario(
                baseline_scenario,
                n_shards=n_shards,
                workers=workers,
                keep_events=False,
            )
            degraded = run_scenario(
                degraded_scenario,
                n_shards=n_shards,
                workers=workers,
                keep_events=False,
            )
        finally:
            install_watchdog(previous)
        rows.append(
            CampaignRow(
                scenario=scenario.name,
                n_windows=len(windows),
                baseline_energy_kwh=baseline.fleet.adaptive_energy_kwh,
                degraded_energy_kwh=degraded.fleet.adaptive_energy_kwh,
                qos_delta=(
                    degraded.fleet.qos_violations
                    - baseline.fleet.qos_violations
                ),
                n_server_crashes=degraded.fleet.n_server_crashes,
                n_job_kills=degraded.fleet.n_job_kills,
                n_requeues=degraded.fleet.n_requeues,
                conserved=(
                    degraded.fleet.conserved
                    and degraded.fleet.n_arrivals
                    == baseline.fleet.n_arrivals
                ),
                watchdog_violations=sum(handle.violations.values()),
            )
        )
    return CampaignReport(rows=tuple(rows), seed=seed, smoke=smoke)
