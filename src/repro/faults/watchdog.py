"""The runtime invariant watchdog: cheap checks, loud failures.

Fault-hardened execution (worker re-execution, cache quarantine, budget
re-decomposition) buys resilience but widens the surface where a subtle
bug could silently corrupt results instead of crashing.  The watchdog
closes that gap: the fleet engine asks the process-wide handle to
adjudicate a small set of invariants that must hold in *every* run,
faulted or not:

``conservation``
    Every arrival is accounted for at the horizon:
    ``arrivals == completions + running + queued`` (queued includes
    jobs waiting out a retry backoff).
``cap_sum``
    The coordinator never hands drawing servers more wattage than its
    integral state plus the floor/quantization allowance, idle servers
    more than the uniform share, or dead servers anything at all — and
    the integral state respects the anti-windup ceiling.
``energy_ledger``
    Accumulated fleet energy is monotone non-decreasing and finite —
    a ledger that runs backwards means an accounting edge was applied
    twice or with a negative power.
``heap_generation``
    A completion event's generation never exceeds its job's current
    generation (generations only count up; an event "from the future"
    means the requeue bookkeeping broke).

Mirrors the injector's handle pattern (:mod:`repro.faults.injector`):
hooks bail on one ``enabled`` attribute check, so a disabled watchdog
costs nothing and perturbs nothing.  The default handle *counts*:
violations increment ``watchdog_violations_total{check=...}`` through
the observability layer and the run continues — a production-style run
degrades to telemetry rather than an abort.  Tests and chaos runs
install a *strict* watchdog, which raises :class:`WatchdogError`
(CLI exit code 13) on the first violation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Union

from ..errors import WatchdogError
from ..obs import observability

#: Slack for float comparisons (energy sums, cap totals): generous
#: enough that legitimate rounding never trips, tiny next to any real
#: double-count.
_EPSILON = 1e-6


class InvariantWatchdog:
    """Adjudicates runtime invariants; counts or raises per ``strict``."""

    enabled = True

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        #: Violation tally by check name (test-friendly mirror of the
        #: ``watchdog_violations_total`` metric).
        self.violations: Dict[str, int] = {}

    def _trip(self, check: str, message: str) -> None:
        self.violations[check] = self.violations.get(check, 0) + 1
        observability().count(
            "watchdog_violations_total",
            help_text="Runtime invariant violations by check.",
            check=check,
        )
        if self.strict:
            raise WatchdogError(f"{check}: {message}")

    # ------------------------------------------------------------------
    # Checks (called by the fleet engine behind an ``enabled`` guard)
    # ------------------------------------------------------------------
    def conservation(
        self,
        n_arrivals: int,
        n_completions: int,
        n_running: int,
        n_queued: int,
    ) -> None:
        """Job conservation at the horizon."""
        accounted = n_completions + n_running + n_queued
        if n_arrivals != accounted:
            self._trip(
                "conservation",
                f"{n_arrivals} arrival(s) != {n_completions} completed + "
                f"{n_running} running + {n_queued} queued "
                f"(= {accounted})",
            )

    def cap_sum(
        self,
        caps: Sequence[float],
        measured_w: Sequence[float],
        live: Sequence[bool],
        fleet_cap_w: float,
        ceiling_w: float,
        floor_w: float,
        quantum_w: float,
    ) -> None:
        """The coordinator's handed-out caps respect its own state.

        The distribution contract (:class:`~repro.fleet.powercap
        .PowerCapCoordinator`): *drawing* live servers share the
        integral state proportionally to demand, *idle* live servers
        each get the uniform ``C / n_live`` share (so a mid-interval
        power-on starts capped), and dead servers get exactly 0 W.
        Quantization adds at most a quantum per cap and the floor at
        most ``floor_w`` per capped server; the integral state itself
        must sit inside ``[0, ceiling]``.
        """
        if not 0.0 <= fleet_cap_w <= ceiling_w + _EPSILON:
            self._trip(
                "cap_sum",
                f"fleet cap {fleet_cap_w:.3f} W outside "
                f"[0, {ceiling_w:.3f}] W ceiling",
            )
            return
        if any(cap < 0.0 for cap in caps):
            self._trip("cap_sum", f"negative server cap in {tuple(caps)}")
            return
        n_live = sum(1 for alive in live if alive)
        uniform_limit = (
            max(floor_w, fleet_cap_w / n_live) + quantum_w
            if n_live
            else 0.0
        )
        drawing = []
        for server_id, (cap, watts, alive) in enumerate(
            zip(caps, measured_w, live)
        ):
            if not alive:
                if cap != 0.0:
                    self._trip(
                        "cap_sum",
                        f"dead server {server_id} handed a "
                        f"{cap:.3f} W cap",
                    )
                    return
            elif watts > 0.0:
                drawing.append(cap)
            elif cap > uniform_limit + _EPSILON:
                self._trip(
                    "cap_sum",
                    f"idle server {server_id} handed {cap:.3f} W > "
                    f"{uniform_limit:.3f} W uniform share",
                )
                return
        allowance = len(drawing) * (floor_w + quantum_w)
        if drawing and sum(drawing) > fleet_cap_w + allowance + _EPSILON:
            self._trip(
                "cap_sum",
                f"handed out {sum(drawing):.3f} W > fleet cap "
                f"{fleet_cap_w:.3f} W + {allowance:.3f} W "
                "floor/quantization allowance",
            )

    def energy_ledger(
        self, previous_joules: float, current_joules: float
    ) -> None:
        """Accumulated energy is finite and monotone non-decreasing."""
        if current_joules != current_joules or current_joules == float("inf"):
            self._trip(
                "energy_ledger", f"energy total is {current_joules!r}"
            )
            return
        if current_joules < previous_joules - _EPSILON:
            self._trip(
                "energy_ledger",
                f"energy ran backwards: {previous_joules:.6f} J -> "
                f"{current_joules:.6f} J",
            )

    def heap_generation(
        self, job_id: int, event_generation: int, job_generation: int
    ) -> None:
        """A scheduled completion never outruns its job's generation."""
        if event_generation > job_generation:
            self._trip(
                "heap_generation",
                f"job {job_id}: completion event generation "
                f"{event_generation} > job generation {job_generation}",
            )


class _DisabledWatchdog:
    """The do-nothing handle: one attribute check and out."""

    enabled = False
    strict = False
    violations: Dict[str, int] = {}

    def conservation(self, *args: int) -> None:
        pass

    def cap_sum(self, *args, **kwargs) -> None:
        pass

    def energy_ledger(self, *args: float) -> None:
        pass

    def heap_generation(self, *args: int) -> None:
        pass


#: The disabled singleton (never installed by default, but available to
#: callers that need to switch checking off entirely).
NULL_WATCHDOG = _DisabledWatchdog()

#: Default handle: counting mode — invariants are always adjudicated,
#: violations degrade to telemetry.
_current: Union[InvariantWatchdog, _DisabledWatchdog] = InvariantWatchdog(
    strict=False
)


def watchdog() -> Union[InvariantWatchdog, _DisabledWatchdog]:
    """The process-wide watchdog handle (counting mode by default)."""
    return _current


def install_watchdog(
    handle: Optional[Union[InvariantWatchdog, _DisabledWatchdog]],
) -> Union[InvariantWatchdog, _DisabledWatchdog]:
    """Swap the process-wide watchdog; returns the previous handle.

    Pass ``None`` to restore the default counting watchdog.
    """
    global _current
    previous = _current
    _current = handle if handle is not None else InvariantWatchdog(strict=False)
    return previous


@contextmanager
def watched(
    strict: bool = True,
) -> Iterator[InvariantWatchdog]:
    """Scoped watchdog: install for the block, always restore after.

    ``strict=True`` (the default, what tests and chaos runs want) makes
    the first violation raise :class:`WatchdogError`.
    """
    handle = InvariantWatchdog(strict=strict)
    previous = install_watchdog(handle)
    try:
        yield handle
    finally:
        install_watchdog(previous)
