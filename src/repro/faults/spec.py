"""Composable fault specifications.

Each spec is a small frozen dataclass describing *one* failure mode, a
*target* (socket, rail, server or job) and an *activity window* in
simulated seconds.  A :class:`~repro.faults.plan.FaultPlan` composes any
number of them; the :class:`~repro.faults.injector.FaultInjector` applies
the standalone ones (``server_id is None``) to the measure-path hooks,
while the fleet engine consumes the server-scoped ones directly as
discrete events.

The taxonomy mirrors what field reports of sub-nominal-margin operation
identify as first-order risks (see ``docs/RESILIENCE.md``):

* **telemetry** — stuck / noisy / dropped CPM codes, stale windows;
* **power delivery** — VRM droop steps and loadline excursions;
* **firmware** — calibration failures;
* **infrastructure** — server crashes and job kills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from ..errors import FaultError


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode over one activity window.

    ``start_seconds`` is when the fault begins; ``duration_seconds`` is
    how long it persists (``None`` = until the end of the run).  Subclass
    fields name the target; all fields are defaulted so subclasses can
    extend the frozen base without ordering constraints.
    """

    #: Stable kind tag (used by metrics labels and event-log entries).
    kind: ClassVar[str] = "fault"

    start_seconds: float = 0.0
    duration_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_seconds < 0:
            raise FaultError(
                f"{type(self).__name__}: start_seconds must be >= 0, "
                f"got {self.start_seconds}"
            )
        if self.duration_seconds is not None and self.duration_seconds <= 0:
            raise FaultError(
                f"{type(self).__name__}: duration_seconds must be positive, "
                f"got {self.duration_seconds}"
            )

    def active_at(self, now_seconds: float) -> bool:
        """Whether the fault is live at ``now_seconds``."""
        if now_seconds < self.start_seconds:
            return False
        if self.duration_seconds is None:
            return True
        return now_seconds < self.start_seconds + self.duration_seconds


@dataclass(frozen=True)
class _SocketFault(FaultSpec):
    """A fault targeting one socket (optionally scoped to one server).

    ``server_id is None`` means the standalone measure path (the
    process-wide injector applies it); a concrete ``server_id`` scopes
    the fault to one server of a fleet run, where the engine turns it
    into degradation events.
    """

    socket_id: int = 0
    server_id: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.socket_id < 0:
            raise FaultError(
                f"{type(self).__name__}: socket_id must be >= 0, "
                f"got {self.socket_id}"
            )
        if self.server_id is not None and self.server_id < 0:
            raise FaultError(
                f"{type(self).__name__}: server_id must be >= 0, "
                f"got {self.server_id}"
            )


@dataclass(frozen=True)
class CpmStuckFault(_SocketFault):
    """CPM codes of a socket pin to one value (detector latch-up)."""

    kind: ClassVar[str] = "cpm_stuck"

    #: The code every read returns while the fault is live.
    code: int = 0

    #: Restrict to one core (``None`` = every core of the socket).
    core_id: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.code < 0:
            raise FaultError(f"cpm_stuck: code must be >= 0, got {self.code}")


@dataclass(frozen=True)
class CpmNoiseFault(_SocketFault):
    """Uniform integer jitter of ±``amplitude_bits`` on every CPM read."""

    kind: ClassVar[str] = "cpm_noise"

    amplitude_bits: int = 4

    #: Restrict to one core (``None`` = every core of the socket).
    core_id: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.amplitude_bits < 1:
            raise FaultError(
                f"cpm_noise: amplitude_bits must be >= 1, "
                f"got {self.amplitude_bits}"
            )


@dataclass(frozen=True)
class CpmDropFault(_SocketFault):
    """CPM reads return the dropped-read sentinel (bus timeout)."""

    kind: ClassVar[str] = "cpm_drop"

    #: Restrict to one core (``None`` = every core of the socket).
    core_id: Optional[int] = None


@dataclass(frozen=True)
class StaleTelemetryFault(_SocketFault):
    """The telemetry window freezes: reads replay the last good values."""

    kind: ClassVar[str] = "cpm_stale"


@dataclass(frozen=True)
class VrmDroopFault(_SocketFault):
    """A sustained rail droop: delivered voltage sags by ``depth_volts``."""

    kind: ClassVar[str] = "vrm_droop"

    depth_volts: float = 0.030

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.depth_volts <= 0:
            raise FaultError(
                f"vrm_droop: depth_volts must be positive, "
                f"got {self.depth_volts}"
            )


@dataclass(frozen=True)
class LoadlineExcursionFault(_SocketFault):
    """The effective loadline resistance scales by ``factor`` (aging,
    connector degradation)."""

    kind: ClassVar[str] = "loadline_excursion"

    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise FaultError(
                f"loadline_excursion: factor must be positive, "
                f"got {self.factor}"
            )


@dataclass(frozen=True)
class CalibrationFault(_SocketFault):
    """CPM calibration fails on this socket (readback mismatch)."""

    kind: ClassVar[str] = "calibration"


@dataclass(frozen=True)
class ServerCrashFault(FaultSpec):
    """A fleet server fails at ``start_seconds``; its jobs are lost and
    must requeue.  ``repair_seconds`` (after the crash) brings it back as
    placeable capacity; ``None`` keeps it dead for the rest of the run."""

    kind: ClassVar[str] = "server_crash"

    server_id: int = 0
    repair_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server_id < 0:
            raise FaultError(
                f"server_crash: server_id must be >= 0, got {self.server_id}"
            )
        if self.repair_seconds is not None and self.repair_seconds <= 0:
            raise FaultError(
                f"server_crash: repair_seconds must be positive, "
                f"got {self.repair_seconds}"
            )


@dataclass(frozen=True)
class JobKillFault(FaultSpec):
    """One running job dies at ``start_seconds`` (OOM, segfault) and is
    requeued with backoff.  A no-op if the job is not running then."""

    kind: ClassVar[str] = "job_kill"

    job_id: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.job_id < 0:
            raise FaultError(
                f"job_kill: job_id must be >= 0, got {self.job_id}"
            )


@dataclass(frozen=True)
class CacheCorruptionFault(FaultSpec):
    """The shared settle-cache disk layer starts tearing writes: every
    ``every_n``-th entry written while the fault is armed is truncated
    mid-payload (a torn write — power loss, full disk, NFS hiccup).  The
    cache must detect the damage on read, quarantine the file and
    recompute; the run outcome is provably unchanged."""

    kind: ClassVar[str] = "cache_fault"

    #: Tear every Nth disk write (1 = every write).
    every_n: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.every_n < 1:
            raise FaultError(
                f"cache_fault: every_n must be >= 1, got {self.every_n}"
            )


#: Spec kinds the fleet engine maps to per-socket static fallback.
CPM_CORRUPTION_KINDS = (
    CpmStuckFault,
    CpmNoiseFault,
    CpmDropFault,
    StaleTelemetryFault,
)
