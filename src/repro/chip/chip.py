"""The eight-core POWER7+ die: cores + CPM bank + DPLLs + power model.

:class:`Power7Chip` is the structural container.  It owns the occupancy
state (which threads run where, which cores are gated), the sensors and the
actuators.  It deliberately does *not* solve the electrical fixed point —
voltage depends on the delivery path, which belongs to the socket model in
:mod:`repro.sim.socket`.  The chip answers the questions the socket model
asks:

* "given per-core voltages and frequencies, how much power do you draw?"
* "given per-core timing margins, what do your CPMs read?"
* "slew core i's DPLL toward this frequency."
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ChipConfig
from ..floorplan import Floorplan
from .core import CoreState, HardwareThread, Power7Core
from .cpm import CpmBank
from .dpll import DigitalPll
from .power import PowerBreakdown, PowerModel
from .thermal import ThermalModel
from .timing import TimingModel
from .vcs import VcsDomain


class Power7Chip:
    """Structural model of one POWER7+ die."""

    def __init__(
        self,
        config: Optional[ChipConfig] = None,
        seed: int = 7,
    ) -> None:
        self.config = config or ChipConfig()
        self.floorplan = Floorplan(self.config.n_cores)
        self.timing = TimingModel(self.config)
        self.power_model = PowerModel(self.config)
        self.thermal = ThermalModel()
        self.cpm_bank = CpmBank(self.config, self.floorplan, seed=seed)
        self.vcs = VcsDomain(self.config.vcs)
        self.cores = [Power7Core(self.config, i) for i in range(self.config.n_cores)]
        self.dplls = [DigitalPll(self.config) for _ in range(self.config.n_cores)]

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Number of physical cores."""
        return self.config.n_cores

    def core_states(self) -> List[CoreState]:
        """Occupancy snapshot of every core."""
        return [core.state() for core in self.cores]

    def active_core_ids(self) -> List[int]:
        """Ids of cores running at least one thread."""
        return [c.core_id for c in self.cores if c.state().active]

    def n_active_cores(self) -> int:
        """Number of cores running at least one thread."""
        return len(self.active_core_ids())

    def place_thread(self, core_id: int, thread: HardwareThread) -> None:
        """Pin ``thread`` on ``core_id``."""
        self.cores[core_id].place(thread)

    def clear_threads(self) -> None:
        """Evict every thread from every core."""
        for core in self.cores:
            core.evict()

    def gate_core(self, core_id: int) -> None:
        """Power gate one (empty) core."""
        self.cores[core_id].gate()

    def ungate_core(self, core_id: int) -> None:
        """Wake one core from the gated state."""
        self.cores[core_id].ungate()

    def gate_unused(self, keep_on: int) -> None:
        """Gate all empty cores beyond the first ``keep_on`` powered-on ones.

        Mirrors the enterprise policy in Sec. 5.1.1 where a number of cores
        is kept clocked for instant responsiveness and the remainder is put
        into deep sleep.
        """
        if keep_on < 0:
            raise ValueError(f"keep_on must be >= 0, got {keep_on}")
        powered = 0
        for core in self.cores:
            state = core.state()
            if state.gated:
                continue
            if core.n_threads > 0 or powered < keep_on:
                powered += 1
            else:
                core.gate()

    def ungate_all(self) -> None:
        """Wake every gated core."""
        for core in self.cores:
            if core.gated:
                core.ungate()

    # ------------------------------------------------------------------
    # Sensors and actuators
    # ------------------------------------------------------------------
    def frequencies(self) -> List[float]:
        """Per-core DPLL output frequencies (Hz)."""
        return [dpll.frequency for dpll in self.dplls]

    def set_all_frequencies(self, frequency: float) -> None:
        """Force every DPLL output (mode switches, experiment setup)."""
        for dpll in self.dplls:
            dpll.set_frequency(frequency)

    def power(
        self,
        voltages: Sequence[float],
        temperature: Optional[float] = None,
    ) -> PowerBreakdown:
        """Power drawn at per-core ``voltages`` and current DPLL frequencies."""
        states = self.core_states()
        temp = self.thermal.temperature if temperature is None else temperature
        return self.power_model.chip_power(
            activities=[s.activity for s in states],
            voltages=list(voltages),
            frequencies=self.frequencies(),
            gated=[s.gated for s in states],
            temperature=temp,
        )

    def margins(self, voltages: Sequence[float]) -> List[float]:
        """Per-core timing margin (V) at the given on-chip voltages."""
        if len(voltages) != self.n_cores:
            raise ValueError(
                f"expected {self.n_cores} voltages, got {len(voltages)}"
            )
        return [
            self.timing.margin(v, dpll.frequency)
            for v, dpll in zip(voltages, self.dplls)
        ]

    def cpm_codes(self, voltages: Sequence[float]) -> List[List[int]]:
        """Per-core CPM codes at the given on-chip voltages."""
        codes = []
        for core_id, (v, dpll) in enumerate(zip(voltages, self.dplls)):
            margin = self.timing.margin(v, dpll.frequency)
            codes.append(self.cpm_bank.read_core(core_id, margin, dpll.frequency))
        return codes

    def worst_cpm_codes(self, voltages: Sequence[float]) -> List[int]:
        """Per-core worst (minimum) CPM code — the DPLL loop's input."""
        return [min(core_codes) for core_codes in self.cpm_codes(voltages)]

    def vcs_power(self, temperature: Optional[float] = None) -> float:
        """Vcs (storage) rail power at the current occupancy (W).

        Not part of the paper's "chip power" metric (the Vdd rail), but
        needed for total-processor-power accounting.
        """
        states = self.core_states()
        active = [s for s in states if s.active]
        mean_activity = (
            sum(s.activity for s in active) / len(active) if active else 0.0
        )
        temp = self.thermal.temperature if temperature is None else temperature
        return self.vcs.power(len(active), temp, mean_activity)

    def chip_mips(self) -> float:
        """Aggregate chip MIPS at current occupancy and frequencies.

        MIPS per core = IPC × frequency / 1e6, summed over cores — the
        quantity the paper's Fig. 16 predictor takes as input, accumulated
        from per-core hardware counters.
        """
        total = 0.0
        for core, dpll in zip(self.cores, self.dplls):
            state = core.state()
            total += state.ipc * dpll.frequency / 1e6
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Power7Chip(cores={self.n_cores}, "
            f"active={self.n_active_cores()})"
        )
