"""Behavioural model of the POWER7+ die.

Submodules
----------
``timing``   – the Vmin(f) timing wall and margin arithmetic.
``power``    – dynamic CV²f plus leakage power model.
``cpm``      – critical path monitor sensors (margin → 0..11 code).
``dpll``     – per-core slew-limited digital PLL.
``thermal``  – first-order thermal RC model.
``core``     – one core: SMT thread slots, activity, gating state.
``chip``     – the eight-core die tying everything together.
"""

from .chip import Power7Chip
from .core import CoreState, Power7Core
from .cpm import CriticalPathMonitor, CpmBank
from .dpll import DigitalPll
from .dvfs import DvfsTable
from .power import PowerBreakdown, PowerModel
from .thermal import ThermalModel
from .timing import TimingModel
from .vcs import VcsDomain

__all__ = [
    "CoreState",
    "CpmBank",
    "CriticalPathMonitor",
    "DigitalPll",
    "DvfsTable",
    "Power7Chip",
    "Power7Core",
    "PowerBreakdown",
    "PowerModel",
    "ThermalModel",
    "TimingModel",
    "VcsDomain",
]
