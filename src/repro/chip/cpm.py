"""Critical path monitor (CPM) sensors.

A CPM launches a signal through synthetic paths into a 12-position edge
detector every cycle; the detector position where the edge lands is the CPM
output code (0–11).  Codes below the calibration point mean the timing
margin has shrunk; codes above mean it has grown (Sec. 2.2 of the paper).

This module models the *transfer function* of that circuit: physical timing
margin (in volts of equivalent supply headroom) → integer code, with

* a sensitivity of about 21 mV per code step at nominal frequency (the
  paper's measured value, Fig. 6a), scaling with cycle time — at lower
  frequency each detector element spans more voltage headroom;
* per-CPM multiplicative sensitivity variation and additive calibration
  offset (process variation, Fig. 6b), drawn deterministically from a seed;
* saturation at both detector ends.

Forty CPMs (5 per core × 8 cores) form a :class:`CpmBank`.  The bank is
what the guardband controller and the AMESTER-style telemetry read.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import ChipConfig
from ..errors import CalibrationError
from ..floorplan import Floorplan


class CriticalPathMonitor:
    """One CPM: converts timing margin (V) to a detector code.

    Parameters
    ----------
    config:
        Chip configuration (code range, nominal sensitivity).
    sensitivity_scale:
        Multiplicative process-variation factor on mV/bit for this CPM.
    code_offset:
        Additive calibration error in code units for this CPM.
    calibration_code:
        Code this CPM is calibrated to output at the calibrated margin.
    calibrated_margin:
        Timing margin (V) at which the CPM outputs ``calibration_code``.
    unit:
        Name of the core unit hosting this CPM (informational).
    """

    def __init__(
        self,
        config: ChipConfig,
        sensitivity_scale: float = 1.0,
        code_offset: float = 0.0,
        calibration_code: int = 2,
        calibrated_margin: float = 0.042,
        unit: str = "fxu",
    ) -> None:
        if sensitivity_scale <= 0:
            raise ValueError("sensitivity_scale must be positive")
        self._config = config
        self._sensitivity_scale = sensitivity_scale
        self._code_offset = code_offset
        self._calibration_code = calibration_code
        self._calibrated_margin = calibrated_margin
        self.unit = unit

    @property
    def calibration_code(self) -> int:
        """Code this CPM outputs at the calibrated margin."""
        return self._calibration_code

    @property
    def calibrated_margin(self) -> float:
        """Timing margin (V) corresponding to the calibration code."""
        return self._calibrated_margin

    def volts_per_bit(self, frequency: float) -> float:
        """Voltage headroom represented by one code step at ``frequency``.

        The detector elements have fixed *time* granularity, so the voltage
        equivalent of one step scales with cycle time: at lower frequency one
        bit spans more millivolts.  At ``f_nominal`` this equals the
        configured ~21 mV (times this CPM's process-variation factor).
        """
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        base = self._config.cpm_mv_per_bit * (self._config.f_nominal / frequency) ** 0.5
        return base * self._sensitivity_scale

    def read(self, margin: float, frequency: float) -> int:
        """Detector code for a physical timing margin of ``margin`` volts."""
        step = self.volts_per_bit(frequency)
        raw = (
            self._calibration_code
            + (margin - self._calibrated_margin) / step
            + self._code_offset
        )
        return int(np.clip(round(raw), 0, self._config.cpm_code_max))

    def margin_for_code(self, code: int, frequency: float) -> float:
        """Inverse transfer: margin (V) at which this CPM outputs ``code``.

        Used by the calibration procedure and by the analysis code that
        converts CPM traces back into on-chip voltage (Sec. 4.1).
        """
        step = self.volts_per_bit(frequency)
        return self._calibrated_margin + (code - self._code_offset - self._calibration_code) * step

    def recalibrate(self, margin: float, code: int, frequency: float) -> None:
        """Re-anchor the CPM so that ``margin`` maps exactly to ``code``.

        Mirrors the hardware calibration step: the chip is put at a known
        operating point (``margin`` volts of slack at ``frequency``) and each
        CPM's reference is adjusted until it outputs the target code.  The
        adjustment absorbs this CPM's additive offset at the calibration
        point; sensitivity differences remain away from it, as in silicon.
        """
        if not 0 <= code <= self._config.cpm_code_max:
            raise CalibrationError(
                f"target code {code} outside detector range "
                f"0..{self._config.cpm_code_max}"
            )
        self._calibration_code = code
        self._calibrated_margin = margin + self._code_offset * self.volts_per_bit(frequency)


class CpmBank:
    """All CPMs of one die, organized per core.

    Process variation (per-CPM sensitivity scale and code offset) is drawn
    from a seeded :class:`numpy.random.Generator`, making every die instance
    reproducible while still exhibiting the spread of Fig. 6b.
    """

    def __init__(
        self,
        config: ChipConfig,
        floorplan: Optional[Floorplan] = None,
        calibration_code: int = 2,
        calibrated_margin: float = 0.042,
        seed: int = 7,
    ) -> None:
        self._config = config
        floorplan = floorplan or Floorplan(config.n_cores)
        rng = np.random.default_rng(seed)
        locations = floorplan.cpm_locations(config.cpms_per_core)
        self._cpms: List[List[CriticalPathMonitor]] = []
        for core in range(config.n_cores):
            # Core-level component of the variation (cores differ from each
            # other more than CPMs within a core do — Fig. 6b).
            core_scale = float(rng.normal(1.0, config.cpm_sensitivity_sigma * 0.6))
            core_cpms = []
            for unit in locations[core]:
                scale = core_scale * float(
                    rng.normal(1.0, config.cpm_sensitivity_sigma * 0.5)
                )
                offset = float(rng.normal(0.0, config.cpm_offset_sigma))
                core_cpms.append(
                    CriticalPathMonitor(
                        config,
                        sensitivity_scale=max(scale, 0.5),
                        code_offset=offset,
                        calibration_code=calibration_code,
                        calibrated_margin=calibrated_margin,
                        unit=unit,
                    )
                )
            self._cpms.append(core_cpms)

    @property
    def n_cores(self) -> int:
        """Number of cores covered by the bank."""
        return len(self._cpms)

    def core_cpms(self, core_id: int) -> Sequence[CriticalPathMonitor]:
        """The CPMs inside one core."""
        return tuple(self._cpms[core_id])

    def all_cpms(self) -> Sequence[CriticalPathMonitor]:
        """Every CPM on the die, core-major order."""
        return tuple(cpm for core in self._cpms for cpm in core)

    def read_core(self, core_id: int, margin: float, frequency: float) -> List[int]:
        """Codes of all CPMs in ``core_id`` at the given margin/frequency."""
        return [cpm.read(margin, frequency) for cpm in self._cpms[core_id]]

    def worst_code(self, core_id: int, margin: float, frequency: float) -> int:
        """Minimum (worst) CPM code in a core — what the DPLL loop compares.

        The paper (Sec. 2.2): "Every cycle, the lowest-value CPM in each
        core is compared against the calibration position."
        """
        return min(self.read_core(core_id, margin, frequency))

    def calibrate(self, margin: float, frequency: float, target_code: int) -> None:
        """Calibrate every CPM to output ``target_code`` at ``margin``.

        After calibration the *offsets are preserved in hardware* — the
        procedure zeroes out systematic error at the calibration point but
        per-CPM sensitivity differences remain away from it, as in silicon.
        """
        for core in self._cpms:
            for cpm in core:
                cpm.recalibrate(margin, target_code, frequency)
                if cpm.read(margin, frequency) != target_code:
                    raise CalibrationError(
                        "CPM failed to read back its calibration code"
                    )
