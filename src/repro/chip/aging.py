"""Transistor aging: the guardband component adaptive systems absorb.

The paper's intro lists aging among the effects the static guardband must
cover ("the static margin guarantees that the loadline, aging effects,
fast noise processes and calibration error are all safely considered").
A static system provisions the *end-of-life* aging shift on day one; an
adaptive system measures the real margin through its CPMs every cycle, so
it only ever pays for the aging that has actually happened — its benefit
therefore *shrinks over the machine's lifetime* as the silicon slows, but
its reliability never depends on a worst-case projection.

:class:`AgingModel` captures the standard NBTI/HCI-style power-law drift
of the timing wall, and :func:`aged_chip_config` produces the chip
configuration of a machine at a given service age — both used by the
lifetime study in ``benchmarks/test_ext_aging_lifetime.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import ChipConfig, ServerConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class AgingModel:
    """Power-law drift of the Vmin wall with service time.

    ``shift(t) = end_of_life_shift * (t / lifetime) ** exponent`` — fast
    early drift that saturates toward the provisioned end-of-life value,
    the canonical NBTI recovery-inclusive shape.
    """

    #: Vmin increase the static guardband provisions for (V).
    end_of_life_shift: float = 0.025

    #: Service lifetime the provisioning assumes (years).
    lifetime_years: float = 10.0

    #: Power-law exponent (NBTI-like sublinear drift).
    exponent: float = 0.25

    def __post_init__(self) -> None:
        if self.end_of_life_shift < 0:
            raise ConfigError("end_of_life_shift must be >= 0")
        if self.lifetime_years <= 0:
            raise ConfigError("lifetime_years must be positive")
        if not 0 < self.exponent <= 1:
            raise ConfigError("exponent must be in (0, 1]")

    def shift(self, years: float) -> float:
        """Vmin increase (V) after ``years`` of service."""
        if years < 0:
            raise ConfigError(f"years must be >= 0, got {years}")
        fraction = min(years / self.lifetime_years, 1.0)
        return self.end_of_life_shift * fraction**self.exponent

    def remaining_headroom(self, years: float) -> float:
        """Provisioned aging margin not yet consumed (V).

        This is what an adaptive system harvests on top of its other
        savings: the static design holds the full ``end_of_life_shift``
        from day one, the adaptive design only loses ``shift(years)``.
        """
        return self.end_of_life_shift - self.shift(years)


def aged_chip_config(base: ChipConfig, model: AgingModel, years: float) -> ChipConfig:
    """The chip configuration of a machine ``years`` into service.

    Aging raises the timing wall uniformly: the returned config's
    ``vmin_intercept`` grows by the model's shift.  Everything that reads
    the wall — CPM margins, DPLL servo targets, the undervolt floor —
    automatically sees the slower silicon, which is exactly how the
    hardware experiences it.
    """
    return dataclasses.replace(
        base, vmin_intercept=base.vmin_intercept + model.shift(years)
    )


def aged_server_config(
    base: ServerConfig, model: AgingModel, years: float
) -> ServerConfig:
    """The server configuration of a machine ``years`` into service.

    The static rail was provisioned on day 0 for end-of-life silicon, so
    it must *not* move as the machine ages.  Since the configuration
    derives the rail as ``vmin(f_nominal) + static_guardband``, raising
    the wall by the aging shift requires shrinking the configured
    guardband by the same amount — the physical reality: aged silicon has
    consumed that slice of its margin.

    Raises
    ------
    ConfigError
        If the shift exceeds the configured guardband (a mis-provisioned
        design: the machine would not be reliable at this age).
    """
    shift = model.shift(years)
    remaining = base.guardband.static_guardband - shift
    if remaining <= 0:
        raise ConfigError(
            f"aging shift of {shift*1000:.1f} mV exceeds the "
            f"{base.guardband.static_guardband*1000:.0f} mV guardband — "
            "the static design is mis-provisioned for this lifetime"
        )
    return dataclasses.replace(
        base,
        chip=aged_chip_config(base.chip, model, years),
        guardband=dataclasses.replace(
            base.guardband, static_guardband=remaining
        ),
    )
