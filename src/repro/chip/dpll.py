"""Per-core digital phase-locked loop (DPLL).

Each POWER7+ core has its own DPLL that can slew the clock while it is
running — the paper quotes 7% of the current frequency in under 10 ns —
which is what lets adaptive guardbanding ride through transient voltage
droops by momentarily slowing the clock instead of failing timing.

:class:`DigitalPll` models the slew-rate-limited frequency actuator.  The
control *decision* (what frequency to ask for) lives in
:mod:`repro.guardband`; the DPLL only enforces physical limits:

* frequency clamped to ``[f_min, f_ceiling]``;
* requests snapped down to the 28 MHz step grid;
* slewing toward the request at the configured rate.

Because the simulator's smallest external step (32 ms, the AMESTER and
firmware interval) is about six orders of magnitude longer than the slew
interval, :meth:`step` also reports whether the request was reached within
the step — in every realistic scenario it is, and the loop behaves as
instantaneously settled at the telemetry timescale.
"""

from __future__ import annotations

import math

from ..config import ChipConfig
from .timing import TimingModel


class DigitalPll:
    """Slew-limited per-core frequency actuator."""

    def __init__(self, config: ChipConfig, initial_frequency: float = None) -> None:
        self._config = config
        self._timing = TimingModel(config)
        f0 = config.f_nominal if initial_frequency is None else initial_frequency
        self._frequency = self._timing.clamp_frequency(f0)

    @property
    def frequency(self) -> float:
        """Current output frequency (Hz)."""
        return self._frequency

    def max_slew(self, duration: float) -> float:
        """Largest relative frequency change achievable in ``duration`` seconds.

        The DPLL changes frequency by at most ``dpll_slew_fraction`` per
        ``dpll_slew_interval``; over longer windows the moves compound.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        intervals = duration / self._config.dpll_slew_interval
        # Compute in log space: at the telemetry timescale (ms) the
        # compounded slew is astronomically large and would overflow pow.
        exponent = intervals * math.log1p(self._config.dpll_slew_fraction)
        if exponent > 700.0:
            return math.inf
        return math.expm1(exponent)

    def step(self, target: float, duration: float) -> bool:
        """Slew toward ``target`` for ``duration`` seconds.

        Returns ``True`` when the (clamped, quantized) target was reached
        within the step, ``False`` when the slew limit truncated the move.
        """
        goal = self._timing.quantize_frequency(self._timing.clamp_frequency(target))
        limit = 1.0 + self.max_slew(duration)
        low = self._frequency / limit
        high = self._frequency * limit
        reached = low <= goal <= high
        self._frequency = min(max(goal, low), high)
        if not reached:
            # A truncated move still lands on the step grid.
            self._frequency = self._timing.quantize_frequency(
                self._timing.clamp_frequency(self._frequency)
            )
        return reached

    def set_frequency(self, frequency: float) -> None:
        """Directly set the output (used for mode changes and test setup)."""
        self._frequency = self._timing.quantize_frequency(
            self._timing.clamp_frequency(frequency)
        )
