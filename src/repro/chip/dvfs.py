"""DVFS operating-point table.

Fig. 6a marks the system's default voltage levels at the DVFS operating
points: one (frequency, voltage) pair per 28 MHz step from 2.8 GHz to the
4.2 GHz nominal, with the static guardband applied on top of the timing
wall at each step.  :class:`DvfsTable` generates and queries that table —
the platform's menu of safe static operating points, used by parking, by
power-capping policies, and by the energy-vs-performance sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import ChipConfig, GuardbandConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS table entry."""

    #: Clock frequency of the point (Hz).
    frequency: float

    #: Static-guardband supply voltage of the point (V).
    voltage: float

    #: Index in the table (0 = lowest frequency).
    index: int


class DvfsTable:
    """The chip's static DVFS menu, derived from the timing wall.

    Each point's voltage is ``vmin(f) + static_guardband`` — the
    conservative supply that tolerates worst-case conditions at that
    clock, exactly how the marked line in Fig. 6a is constructed.
    """

    def __init__(
        self,
        chip: ChipConfig,
        guardband: GuardbandConfig,
        step_multiple: int = 1,
    ) -> None:
        """
        Parameters
        ----------
        step_multiple:
            Table granularity in DPLL steps (1 = every 28 MHz point; the
            paper's Fig. 6a draws every tenth).
        """
        if step_multiple < 1:
            raise ConfigError(f"step_multiple must be >= 1, got {step_multiple}")
        self._chip = chip
        self._guardband = guardband
        step = chip.f_step * step_multiple
        points: List[OperatingPoint] = []
        frequency = chip.f_min
        index = 0
        while frequency <= chip.f_nominal + 1e-3:
            points.append(
                OperatingPoint(
                    frequency=frequency,
                    voltage=chip.vmin(frequency) + guardband.static_guardband,
                    index=index,
                )
            )
            frequency += step
            index += 1
        self._points = tuple(points)

    @property
    def points(self) -> tuple:
        """All operating points, lowest frequency first."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self._points[index]

    @property
    def pmin(self) -> OperatingPoint:
        """The lowest operating point (parking state)."""
        return self._points[0]

    @property
    def pmax(self) -> OperatingPoint:
        """The nominal (highest static) operating point."""
        return self._points[-1]

    def point_for_frequency(self, frequency: float) -> OperatingPoint:
        """The lowest table point whose frequency is >= ``frequency``.

        Raises
        ------
        ConfigError
            If ``frequency`` exceeds the table's top point.
        """
        for point in self._points:
            if point.frequency >= frequency - 1e-3:
                return point
        raise ConfigError(
            f"{frequency/1e6:.0f} MHz exceeds the DVFS table's top point "
            f"({self.pmax.frequency/1e6:.0f} MHz)"
        )

    def point_for_voltage_budget(self, voltage: float) -> OperatingPoint:
        """The fastest point whose supply fits inside ``voltage``.

        This is the power-capping query: given a rail budget, how fast may
        the chip legally run under the static guardband?
        """
        best = None
        for point in self._points:
            if point.voltage <= voltage + 1e-9:
                best = point
        if best is None:
            raise ConfigError(
                f"no DVFS point fits a {voltage*1000:.0f} mV budget "
                f"(Pmin needs {self.pmin.voltage*1000:.0f} mV)"
            )
        return best
