"""First-order thermal model of the die.

The paper reports die temperature between 27 C (lowest frequency, idle-ish)
and 38 C (peak frequency) during the CPM characterization, and notes the
variation does not significantly influence CPM readings (Sec. 4.1).  We
model temperature anyway because leakage power depends on it and because a
production-quality platform model should expose a temperature sensor.

The model is a single thermal RC: ``T = T_ambient + R_th * P`` in steady
state, approached exponentially with time constant ``tau``.
"""

from __future__ import annotations

import math


class ThermalModel:
    """Lumped thermal RC model for one die."""

    def __init__(
        self,
        ambient: float = 24.0,
        resistance: float = 0.10,
        tau: float = 4.0,
        initial: float = None,
    ) -> None:
        """
        Parameters
        ----------
        ambient:
            Inlet/ambient temperature (C).
        resistance:
            Junction-to-ambient thermal resistance (C per W).  The default
            puts a 140 W chip at ambient + 14 C ≈ 38 C, matching Sec. 4.1.
        tau:
            Thermal time constant (s).
        initial:
            Starting temperature (C); defaults to ambient.
        """
        if resistance < 0:
            raise ValueError("thermal resistance must be >= 0")
        if tau <= 0:
            raise ValueError("thermal time constant must be positive")
        self._ambient = ambient
        self._resistance = resistance
        self._tau = tau
        self._temperature = ambient if initial is None else initial

    @property
    def temperature(self) -> float:
        """Current die temperature (C)."""
        return self._temperature

    def steady_state(self, power: float) -> float:
        """Temperature (C) the die settles at under constant ``power`` watts."""
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        return self._ambient + self._resistance * power

    def step(self, power: float, dt: float) -> float:
        """Advance the RC by ``dt`` seconds under ``power`` watts.

        Returns the new temperature.  Uses the exact exponential solution so
        arbitrarily long steps remain stable.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        target = self.steady_state(power)
        alpha = 1.0 - math.exp(-dt / self._tau)
        self._temperature += (target - self._temperature) * alpha
        return self._temperature

    def settle(self, power: float) -> float:
        """Jump straight to the steady-state temperature for ``power``."""
        self._temperature = self.steady_state(power)
        return self._temperature
