"""Circuit timing model: the Vmin(f) wall and timing-margin arithmetic.

The POWER7+ circuit meets timing at frequency ``f`` only when the on-chip
voltage exceeds ``Vmin(f)``.  The paper's Fig. 6a shows this relation is
close to linear over the 2.8–4.2 GHz DVFS window, which is what
:class:`repro.config.ChipConfig` encodes.  :class:`TimingModel` wraps the
config with the derived quantities the rest of the simulator needs:

* ``margin(v, f)`` — timing slack in volts at operating point ``(v, f)``.
  Positive margin means the circuit is faster than the clock requires.
* ``frequency_for_margin(v, m)`` — the frequency at which the slack would
  be exactly ``m`` volts: the quantity the CPM→DPLL closed loop servoes on.
"""

from __future__ import annotations

from ..config import ChipConfig


class TimingModel:
    """Linear Vmin(f) timing wall derived from a :class:`ChipConfig`."""

    def __init__(self, config: ChipConfig) -> None:
        self._config = config

    @property
    def config(self) -> ChipConfig:
        """The chip configuration this model was built from."""
        return self._config

    def vmin(self, frequency: float) -> float:
        """Minimum voltage (V) required to meet timing at ``frequency`` (Hz)."""
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        return self._config.vmin(frequency)

    def margin(self, voltage: float, frequency: float) -> float:
        """Timing margin (V) at operating point ``(voltage, frequency)``.

        Positive values mean slack (circuit faster than required); negative
        values mean a timing violation would occur at this point.
        """
        return voltage - self.vmin(frequency)

    def frequency_for_margin(self, voltage: float, margin: float) -> float:
        """Frequency (Hz) at which the timing margin equals ``margin`` volts.

        This is the servo target of the CPM→DPLL loop: given the observed
        on-chip voltage, run as fast as possible while preserving the
        calibrated margin.
        """
        return (voltage - margin - self._config.vmin_intercept) / self._config.vmin_slope

    def meets_timing(self, voltage: float, frequency: float) -> bool:
        """Whether the circuit meets timing (non-negative margin)."""
        return self.margin(voltage, frequency) >= 0.0

    def quantize_frequency(self, frequency: float) -> float:
        """Snap ``frequency`` down to the DPLL's 28 MHz step grid.

        Rounding *down* is the safe direction: the quantized frequency never
        requires more voltage than the requested one.
        """
        steps = int(frequency / self._config.f_step)
        return steps * self._config.f_step

    def clamp_frequency(self, frequency: float) -> float:
        """Clamp ``frequency`` into the DPLL's operating range."""
        return min(max(frequency, self._config.f_min), self._config.f_ceiling)
