"""The Vcs power domain: on-chip storage structures.

POWER7+ powers its eDRAM L3 and other arrays from a separate Vcs rail
(Sec. 2.1).  Vcs stays at a fixed retention-safe voltage — the guardband
machinery never touches it — so its power is a simple function of access
activity and temperature.  The paper's "chip power" sensor is the Vdd
rail ("which represents most of the total processor power"); Vcs is
modelled so the platform can also report total processor power, and so
the loadline-borrowing analysis can be honest about what the second
socket's storage keeps burning.
"""

from __future__ import annotations

from ..config import VcsConfig

#: Temperature anchor for the Vcs leakage model (C).
VCS_TEMP_REF = 35.0


class VcsDomain:
    """Fixed-voltage storage rail power model."""

    def __init__(self, config: VcsConfig) -> None:
        self._config = config

    @property
    def config(self) -> VcsConfig:
        """The Vcs parameters."""
        return self._config

    @property
    def voltage(self) -> float:
        """The fixed rail voltage (V)."""
        return self._config.voltage

    def leakage(self, temperature: float) -> float:
        """Array leakage (W) at ``temperature``."""
        scale = 1.0 + self._config.temp_coeff * (temperature - VCS_TEMP_REF)
        return self._config.leakage_nominal * max(scale, 0.1)

    def dynamic(self, n_active_cores: int, mean_activity: float = 1.0) -> float:
        """Access-driven dynamic power (W).

        Scales with the number of active cores and their mean activity —
        more running threads mean more cache and directory traffic.
        """
        if n_active_cores < 0:
            raise ValueError(f"n_active_cores must be >= 0, got {n_active_cores}")
        if mean_activity < 0:
            raise ValueError(f"mean_activity must be >= 0, got {mean_activity}")
        return (
            self._config.dynamic_idle
            + self._config.dynamic_per_core * n_active_cores * mean_activity
        )

    def power(
        self,
        n_active_cores: int,
        temperature: float,
        mean_activity: float = 1.0,
    ) -> float:
        """Total Vcs rail power (W)."""
        return self.leakage(temperature) + self.dynamic(n_active_cores, mean_activity)

    def current(
        self,
        n_active_cores: int,
        temperature: float,
        mean_activity: float = 1.0,
    ) -> float:
        """Rail current (A) at the fixed voltage."""
        return self.power(n_active_cores, temperature, mean_activity) / self.voltage
