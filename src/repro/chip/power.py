"""Chip power model: dynamic CV²f plus voltage/temperature-dependent leakage.

The model is deliberately first-order — exactly the fidelity the paper's
system-level analysis needs.  Total Vdd-rail power decomposes as:

* per-core dynamic power ``Ceff · activity · V² · f`` for powered-on cores;
* per-core leakage ``L0 · (V/Vref)^k · (1 + c·(T−Tref))``, reduced to a
  small residual when the core is power gated;
* uncore dynamic power driven by an activity floor plus a per-active-core
  contribution (caches and fabric work harder when more cores are busy);
* uncore leakage (never gated — the L3 and fabric stay on).

The defaults in :class:`repro.config.ChipConfig` are calibrated so an
eight-core raytrace-class load lands near the 140 W the paper's Fig. 3a
measures, with an idle-but-clocked chip near 55 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import ChipConfig

#: Reference voltage for the leakage power normalization (V).
LEAKAGE_VREF = 1.2


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one die at one operating point (all watts)."""

    core_dynamic: tuple
    core_leakage: tuple
    uncore_dynamic: float
    uncore_leakage: float

    @property
    def core_total(self) -> float:
        """Sum of all per-core dynamic and leakage power."""
        return sum(self.core_dynamic) + sum(self.core_leakage)

    @property
    def total(self) -> float:
        """Total Vdd-rail chip power."""
        return self.core_total + self.uncore_dynamic + self.uncore_leakage

    def core_power(self, core_id: int) -> float:
        """Dynamic + leakage power of one core."""
        return self.core_dynamic[core_id] + self.core_leakage[core_id]


class PowerModel:
    """Computes a :class:`PowerBreakdown` from per-core operating state."""

    def __init__(self, config: ChipConfig) -> None:
        self._config = config

    @property
    def config(self) -> ChipConfig:
        """The chip configuration this model was built from."""
        return self._config

    def core_dynamic(self, activity: float, voltage: float, frequency: float) -> float:
        """Dynamic power (W) of one core at the given operating point."""
        if activity < 0:
            raise ValueError(f"activity must be >= 0, got {activity}")
        return self._config.core_ceff * activity * voltage * voltage * frequency

    def core_leakage(self, voltage: float, temperature: float, gated: bool) -> float:
        """Leakage power (W) of one core; small residual when gated."""
        leak = self._leakage(self._config.core_leakage_nominal, voltage, temperature)
        if gated:
            return leak * self._config.power_gate_residual
        return leak

    def uncore_power(
        self,
        n_active_cores: int,
        voltage: float,
        frequency: float,
        temperature: float,
    ) -> tuple:
        """(dynamic, leakage) power of the uncore in watts.

        ``frequency`` is the nest clock; we drive it with the mean core
        frequency, a reasonable stand-in for the POWER7+ nest domain.
        """
        cfg = self._config
        activity = cfg.uncore_activity_idle + cfg.uncore_activity_per_core * n_active_cores
        dynamic = cfg.uncore_ceff * activity * voltage * voltage * frequency
        leakage = self._leakage(cfg.uncore_leakage_nominal, voltage, temperature)
        return dynamic, leakage

    def chip_power(
        self,
        activities: Sequence[float],
        voltages: Sequence[float],
        frequencies: Sequence[float],
        gated: Sequence[bool],
        temperature: float,
    ) -> PowerBreakdown:
        """Full-die power breakdown.

        Parameters
        ----------
        activities:
            Per-core switching activity factor (0 for idle-clocked cores the
            caller may still use :attr:`ChipConfig.idle_activity` for).
        voltages:
            Per-core on-die voltage (V) — the *drooped* voltage, not the VRM
            setpoint, because CV²f switches at the local rail.
        frequencies:
            Per-core clock frequency (Hz).
        gated:
            Per-core power-gate state.  A gated core contributes no dynamic
            power and only residual leakage.
        temperature:
            Die temperature (C) for the leakage model.
        """
        n = self._config.n_cores
        if not (len(activities) == len(voltages) == len(frequencies) == len(gated) == n):
            raise ValueError(
                f"per-core sequences must all have length {n}; got "
                f"{len(activities)}/{len(voltages)}/{len(frequencies)}/{len(gated)}"
            )
        core_dyn = []
        core_leak = []
        active = 0
        for act, v, f, g in zip(activities, voltages, frequencies, gated):
            if g:
                core_dyn.append(0.0)
            else:
                core_dyn.append(self.core_dynamic(act, v, f))
                if act > self._config.idle_activity:
                    active += 1
            core_leak.append(self.core_leakage(v, temperature, g))
        ungated = [v for v, g in zip(voltages, gated) if not g]
        v_uncore = sum(ungated) / len(ungated) if ungated else max(voltages)
        ungated_f = [f for f, g in zip(frequencies, gated) if not g]
        f_uncore = sum(ungated_f) / len(ungated_f) if ungated_f else self._config.f_min
        unc_dyn, unc_leak = self.uncore_power(active, v_uncore, f_uncore, temperature)
        return PowerBreakdown(
            core_dynamic=tuple(core_dyn),
            core_leakage=tuple(core_leak),
            uncore_dynamic=unc_dyn,
            uncore_leakage=unc_leak,
        )

    def _leakage(self, nominal: float, voltage: float, temperature: float) -> float:
        cfg = self._config
        v_scale = (voltage / LEAKAGE_VREF) ** cfg.leakage_voltage_exponent
        t_scale = 1.0 + cfg.leakage_temp_coeff * (temperature - cfg.leakage_temp_ref)
        return nominal * v_scale * max(t_scale, 0.1)
