"""Chip power model: dynamic CV²f plus voltage/temperature-dependent leakage.

The model is deliberately first-order — exactly the fidelity the paper's
system-level analysis needs.  Total Vdd-rail power decomposes as:

* per-core dynamic power ``Ceff · activity · V² · f`` for powered-on cores;
* per-core leakage ``L0 · (V/Vref)^k · (1 + c·(T−Tref))``, reduced to a
  small residual when the core is power gated;
* uncore dynamic power driven by an activity floor plus a per-active-core
  contribution (caches and fabric work harder when more cores are busy);
* uncore leakage (never gated — the L3 and fabric stay on).

The defaults in :class:`repro.config.ChipConfig` are calibrated so an
eight-core raytrace-class load lands near the 140 W the paper's Fig. 3a
measures, with an idle-but-clocked chip near 55 W.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import ChipConfig

#: Reference voltage for the leakage power normalization (V).
LEAKAGE_VREF = 1.2

#: Socket width at or above which :meth:`PowerModel.chip_power` switches
#: from the per-core Python loop to the numpy array backend.  Profiling
#: shows numpy's per-call overhead dominates at the POWER7+'s width of
#: eight; the array path wins from roughly this width up.
ARRAY_BACKEND_MIN_CORES = 16

#: Process-wide backend override (see :func:`set_power_backend`).
_BACKEND_OVERRIDE: Optional[str] = None

#: Environment override, read when no programmatic override is set.
BACKEND_ENV_VAR = "REPRO_POWER_BACKEND"

_BACKENDS = ("scalar", "array")


def set_power_backend(backend: Optional[str]) -> Optional[str]:
    """Force the per-core evaluation backend process-wide.

    ``"scalar"`` / ``"array"`` pin a backend regardless of socket width;
    ``None`` restores width-based auto selection.  Returns the previous
    override so tests can restore it.  Both backends are bit-identical
    (enforced by test) — the switch only trades constant factors.
    """
    global _BACKEND_OVERRIDE
    if backend is not None and backend not in _BACKENDS:
        raise ValueError(
            f"backend must be one of {_BACKENDS} or None, got {backend!r}"
        )
    previous = _BACKEND_OVERRIDE
    _BACKEND_OVERRIDE = backend
    return previous


def power_backend_for(n_cores: int) -> str:
    """The backend :meth:`PowerModel.chip_power` will use at this width."""
    override = _BACKEND_OVERRIDE or os.environ.get(BACKEND_ENV_VAR)
    if override in _BACKENDS:
        return override
    return "array" if n_cores >= ARRAY_BACKEND_MIN_CORES else "scalar"


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one die at one operating point (all watts)."""

    core_dynamic: tuple
    core_leakage: tuple
    uncore_dynamic: float
    uncore_leakage: float

    @property
    def core_total(self) -> float:
        """Sum of all per-core dynamic and leakage power."""
        return sum(self.core_dynamic) + sum(self.core_leakage)

    @property
    def total(self) -> float:
        """Total Vdd-rail chip power."""
        return self.core_total + self.uncore_dynamic + self.uncore_leakage

    def core_power(self, core_id: int) -> float:
        """Dynamic + leakage power of one core."""
        return self.core_dynamic[core_id] + self.core_leakage[core_id]


class PowerModel:
    """Computes a :class:`PowerBreakdown` from per-core operating state."""

    def __init__(self, config: ChipConfig) -> None:
        self._config = config

    @property
    def config(self) -> ChipConfig:
        """The chip configuration this model was built from."""
        return self._config

    def core_dynamic(self, activity: float, voltage: float, frequency: float) -> float:
        """Dynamic power (W) of one core at the given operating point."""
        if activity < 0:
            raise ValueError(f"activity must be >= 0, got {activity}")
        return self._config.core_ceff * activity * voltage * voltage * frequency

    def core_leakage(self, voltage: float, temperature: float, gated: bool) -> float:
        """Leakage power (W) of one core; small residual when gated."""
        leak = self._leakage(self._config.core_leakage_nominal, voltage, temperature)
        if gated:
            return leak * self._config.power_gate_residual
        return leak

    def uncore_power(
        self,
        n_active_cores: int,
        voltage: float,
        frequency: float,
        temperature: float,
    ) -> tuple:
        """(dynamic, leakage) power of the uncore in watts.

        ``frequency`` is the nest clock; we drive it with the mean core
        frequency, a reasonable stand-in for the POWER7+ nest domain.
        """
        cfg = self._config
        activity = cfg.uncore_activity_idle + cfg.uncore_activity_per_core * n_active_cores
        dynamic = cfg.uncore_ceff * activity * voltage * voltage * frequency
        leakage = self._leakage(cfg.uncore_leakage_nominal, voltage, temperature)
        return dynamic, leakage

    def chip_power(
        self,
        activities: Sequence[float],
        voltages: Sequence[float],
        frequencies: Sequence[float],
        gated: Sequence[bool],
        temperature: float,
    ) -> PowerBreakdown:
        """Full-die power breakdown.

        Parameters
        ----------
        activities:
            Per-core switching activity factor (0 for idle-clocked cores the
            caller may still use :attr:`ChipConfig.idle_activity` for).
        voltages:
            Per-core on-die voltage (V) — the *drooped* voltage, not the VRM
            setpoint, because CV²f switches at the local rail.
        frequencies:
            Per-core clock frequency (Hz).
        gated:
            Per-core power-gate state.  A gated core contributes no dynamic
            power and only residual leakage.
        temperature:
            Die temperature (C) for the leakage model.
        """
        n = self._config.n_cores
        if not (len(activities) == len(voltages) == len(frequencies) == len(gated) == n):
            raise ValueError(
                f"per-core sequences must all have length {n}; got "
                f"{len(activities)}/{len(voltages)}/{len(frequencies)}/{len(gated)}"
            )
        if power_backend_for(n) == "array":
            return self._chip_power_array(
                activities, voltages, frequencies, gated, temperature
            )
        core_dyn = []
        core_leak = []
        active = 0
        for act, v, f, g in zip(activities, voltages, frequencies, gated):
            if g:
                core_dyn.append(0.0)
            else:
                core_dyn.append(self.core_dynamic(act, v, f))
                if act > self._config.idle_activity:
                    active += 1
            core_leak.append(self.core_leakage(v, temperature, g))
        ungated = [v for v, g in zip(voltages, gated) if not g]
        v_uncore = sum(ungated) / len(ungated) if ungated else max(voltages)
        ungated_f = [f for f, g in zip(frequencies, gated) if not g]
        f_uncore = sum(ungated_f) / len(ungated_f) if ungated_f else self._config.f_min
        unc_dyn, unc_leak = self.uncore_power(active, v_uncore, f_uncore, temperature)
        return PowerBreakdown(
            core_dynamic=tuple(core_dyn),
            core_leakage=tuple(core_leak),
            uncore_dynamic=unc_dyn,
            uncore_leakage=unc_leak,
        )

    def _chip_power_array(
        self,
        activities: Sequence[float],
        voltages: Sequence[float],
        frequencies: Sequence[float],
        gated: Sequence[bool],
        temperature: float,
    ) -> PowerBreakdown:
        """Vectorized :meth:`chip_power`, bit-identical to the loop.

        Every elementwise float64 add/sub/mul/div is IEEE-identical to
        its scalar counterpart, so those vectorize freely as long as the
        operand order is preserved.  Two places need care:

        * the leakage ``(V/Vref)**k`` stays a per-element libm ``pow`` —
          numpy's SIMD ``power`` differs from CPython's in the last ulp
          on ~5% of inputs, which would split the operating-point cache
          and the event-log digest between backends;
        * the uncore voltage/frequency means keep Python's sequential
          ``sum`` — ``np.sum`` is pairwise and rounds differently.
        """
        cfg = self._config
        act = np.asarray(activities, dtype=np.float64)
        volt = np.asarray(voltages, dtype=np.float64)
        freq = np.asarray(frequencies, dtype=np.float64)
        gate = np.asarray(gated, dtype=bool)
        ungated = ~gate
        if bool(np.any(act[ungated] < 0)):
            bad = float(act[ungated][act[ungated] < 0][0])
            raise ValueError(f"activity must be >= 0, got {bad}")
        dyn = cfg.core_ceff * act * volt * volt * freq
        core_dyn = np.where(ungated, dyn, 0.0)
        k = cfg.leakage_voltage_exponent
        ratio = volt / LEAKAGE_VREF
        v_scale = np.array([r ** k for r in ratio.tolist()], dtype=np.float64)
        t_scale = max(
            1.0 + cfg.leakage_temp_coeff * (temperature - cfg.leakage_temp_ref),
            0.1,
        )
        leak = cfg.core_leakage_nominal * v_scale * t_scale
        core_leak = np.where(ungated, leak, leak * cfg.power_gate_residual)
        active = int(np.count_nonzero(ungated & (act > cfg.idle_activity)))
        ungated_v = volt[ungated].tolist()
        v_uncore = (
            sum(ungated_v) / len(ungated_v) if ungated_v else max(voltages)
        )
        ungated_f = freq[ungated].tolist()
        f_uncore = (
            sum(ungated_f) / len(ungated_f) if ungated_f else cfg.f_min
        )
        unc_dyn, unc_leak = self.uncore_power(
            active, v_uncore, f_uncore, temperature
        )
        return PowerBreakdown(
            core_dynamic=tuple(core_dyn.tolist()),
            core_leakage=tuple(core_leak.tolist()),
            uncore_dynamic=unc_dyn,
            uncore_leakage=unc_leak,
        )

    def _leakage(self, nominal: float, voltage: float, temperature: float) -> float:
        cfg = self._config
        v_scale = (voltage / LEAKAGE_VREF) ** cfg.leakage_voltage_exponent
        t_scale = 1.0 + cfg.leakage_temp_coeff * (temperature - cfg.leakage_temp_ref)
        return nominal * v_scale * max(t_scale, 0.1)
