"""One POWER7+ core: SMT thread slots, activity aggregation, gating state.

A core hosts up to four hardware threads (SMT4).  The simulator represents
each software thread placed on the core as a :class:`HardwareThread` with
two workload-derived traits:

``activity``
    switching-activity contribution of the thread when it runs alone on the
    core (drives dynamic power);
``ipc``
    instructions per cycle the thread retires when it runs alone.

When several threads share a core, throughput and activity grow
sub-linearly (pipeline sharing), each as ``n`` to a small exponent.
Throughput uses 0.45 — the ~1.4x/1.9x gains at SMT2/SMT4 reported for
POWER7-class cores; activity uses a smaller 0.18, because extra SMT
threads mostly fill existing issue slots rather than switching new logic
(core power rises far less than throughput under SMT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import ChipConfig

#: Exponent of the SMT throughput (IPC) yield model.
SMT_YIELD_EXPONENT = 0.45

#: Exponent of the SMT switching-activity growth model.
SMT_ACTIVITY_EXPONENT = 0.18


@dataclass(frozen=True)
class HardwareThread:
    """A software thread pinned to one hardware thread slot."""

    #: Benchmark name the thread belongs to (catalog key).
    workload: str

    #: Switching-activity contribution when running alone on the core.
    activity: float

    #: Instructions per cycle when running alone on the core.
    ipc: float

    def __post_init__(self) -> None:
        if self.activity < 0:
            raise ValueError(f"activity must be >= 0, got {self.activity}")
        if self.ipc < 0:
            raise ValueError(f"ipc must be >= 0, got {self.ipc}")


@dataclass(frozen=True)
class CoreState:
    """Snapshot of one core's occupancy-derived operating state."""

    #: Whether the core is power gated (deep sleep).
    gated: bool

    #: Number of occupied hardware thread slots.
    n_threads: int

    #: Aggregate switching activity factor (includes idle clocking floor).
    activity: float

    #: Aggregate instructions per cycle across the core's threads.
    ipc: float

    @property
    def active(self) -> bool:
        """Whether the core is running at least one thread (and not gated)."""
        return not self.gated and self.n_threads > 0


class Power7Core:
    """Occupancy model of a single core."""

    def __init__(self, config: ChipConfig, core_id: int) -> None:
        self._config = config
        self.core_id = core_id
        self._threads: List[HardwareThread] = []
        self._gated = False

    @property
    def threads(self) -> Sequence[HardwareThread]:
        """Threads currently placed on this core."""
        return tuple(self._threads)

    @property
    def n_threads(self) -> int:
        """Number of occupied SMT slots."""
        return len(self._threads)

    @property
    def gated(self) -> bool:
        """Whether the core is power gated."""
        return self._gated

    @property
    def free_slots(self) -> int:
        """Unoccupied SMT slots (0 when gated)."""
        if self._gated:
            return 0
        return self._config.smt_ways - len(self._threads)

    def place(self, thread: HardwareThread) -> None:
        """Pin ``thread`` onto a free SMT slot."""
        if self._gated:
            raise ValueError(f"core {self.core_id} is power gated")
        if len(self._threads) >= self._config.smt_ways:
            raise ValueError(
                f"core {self.core_id} already has {self._config.smt_ways} threads"
            )
        self._threads.append(thread)

    def evict(self, workload: Optional[str] = None) -> List[HardwareThread]:
        """Remove and return threads; all of them, or only one workload's."""
        if workload is None:
            removed, self._threads = self._threads, []
            return removed
        removed = [t for t in self._threads if t.workload == workload]
        self._threads = [t for t in self._threads if t.workload != workload]
        return removed

    def gate(self) -> None:
        """Power gate the core.  Requires the core to be empty."""
        if self._threads:
            raise ValueError(
                f"cannot gate core {self.core_id} while it runs "
                f"{len(self._threads)} thread(s)"
            )
        self._gated = True

    def ungate(self) -> None:
        """Wake the core from the power-gated state."""
        self._gated = False

    def state(self) -> CoreState:
        """Aggregate the occupancy into a :class:`CoreState` snapshot.

        With ``n`` threads, aggregate activity and IPC equal the per-thread
        mean scaled by the SMT yield ``n**SMT_YIELD_EXPONENT``.  An idle but
        clocked core still burns the configured idle activity.
        """
        if self._gated:
            return CoreState(gated=True, n_threads=0, activity=0.0, ipc=0.0)
        n = len(self._threads)
        if n == 0:
            return CoreState(
                gated=False,
                n_threads=0,
                activity=self._config.idle_activity,
                ipc=0.0,
            )
        ipc_factor = n**SMT_YIELD_EXPONENT
        activity_factor = n**SMT_ACTIVITY_EXPONENT
        mean_activity = sum(t.activity for t in self._threads) / n
        mean_ipc = sum(t.ipc for t in self._threads) / n
        activity = max(mean_activity * activity_factor, self._config.idle_activity)
        return CoreState(
            gated=False,
            n_threads=n,
            activity=activity,
            ipc=mean_ipc * ipc_factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "gated" if self._gated else f"{len(self._threads)} thread(s)"
        return f"Power7Core(id={self.core_id}, {status})"
