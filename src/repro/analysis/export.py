"""Machine-readable export of the figure data.

``python -m repro export fig3`` (or :func:`export_figure`) emits one
figure's regenerated series as JSON — the bridge to whatever plotting
stack a user prefers.  The JSON mirrors the builder dataclasses: keys are
field names, series are lists, nothing is pre-formatted.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from ..config import ServerConfig
from ..errors import ReproError
from ..guardband import GuardbandMode
from . import figures

#: Figures the exporter understands.
EXPORTABLE = ("fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
              "fig12", "fig13", "fig14", "fig15", "fig16", "fig17")


def _jsonable(value: Any) -> Any:
    """Recursively convert builder outputs into JSON-safe structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, GuardbandMode):
        return value.value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    # Objects with no natural JSON shape (fitted models, raw predictors)
    # export their public floats.
    public = {
        name: getattr(value, name)
        for name in dir(value)
        if not name.startswith("_")
        and isinstance(getattr(type(value), name, None), property)
    }
    if public:
        return {k: _jsonable(v) for k, v in public.items()}
    return str(value)


def figure_data(name: str, config: Optional[ServerConfig] = None) -> Dict[str, Any]:
    """Regenerate one figure and return its data as plain structures."""
    if name not in EXPORTABLE:
        raise ReproError(
            f"unknown figure {name!r}; exportable: {', '.join(EXPORTABLE)}"
        )
    builders = {
        "fig3": lambda: figures.fig3_core_scaling_power(config),
        "fig4": lambda: figures.fig4_core_scaling_frequency(config),
        "fig5": lambda: {
            "undervolt": figures.fig5_workload_heterogeneity(
                GuardbandMode.UNDERVOLT, config
            ),
            "overclock": figures.fig5_workload_heterogeneity(
                GuardbandMode.OVERCLOCK, config
            ),
        },
        "fig6": lambda: figures.fig6_cpm_voltage_mapping(config),
        "fig7": lambda: figures.fig7_voltage_drop_scaling(config),
        "fig9": lambda: figures.fig9_drop_decomposition(config),
        "fig10": lambda: figures.fig10_passive_drop_correlation(config),
        "fig12": lambda: figures.fig12_borrowing_scaling(config),
        "fig13": lambda: figures.fig13_borrowing_all_workloads(config),
        "fig14": lambda: figures.fig14_borrowing_energy(config),
        "fig15": lambda: figures.fig15_colocation_frequency(config),
        "fig16": lambda: figures.fig16_mips_predictor(config),
        "fig17": lambda: figures.fig17_websearch_qos(config),
    }
    return {"figure": name, "data": _jsonable(builders[name]())}


def export_figure(
    name: str, config: Optional[ServerConfig] = None, indent: int = 2
) -> str:
    """One figure's regenerated data as a JSON string."""
    return json.dumps(figure_data(name, config), indent=indent)
