"""Series builders for the AGS evaluation figures (Sec. 5).

Figs. 12–14 compare the consolidation baseline against loadline borrowing;
Figs. 15–17 drive the adaptive-mapping machinery (colocation frequency
effects, the MIPS predictor, and the WebSearch QoS study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ServerConfig
from ..core.consolidation import ConsolidationScheduler
from ..core.loadline_borrowing import LoadlineBorrowingScheduler
from ..core.predictor import MipsFrequencyPredictor, PredictorSample
from ..core.qos import QosSpec
from ..core.adaptive_mapping import AdaptiveMappingScheduler
from ..guardband import GuardbandMode
from ..sim.batch import SweepRunner, SweepTask, default_runner
from ..sim.run import build_server
from ..workloads import get_profile, profile_names
from ..workloads.scaling import RuntimeModel, SocketShare
from ..workloads.synthetic import coremark_profile, throttled_corunner
from ..workloads.websearch import WebSearchModel


# ----------------------------------------------------------------------
# Fig. 12 — loadline borrowing's undervolt and power scaling (raytrace)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BorrowingScalingSeries:
    """Consolidation vs borrowing across active-core counts, one workload."""

    workload: str
    core_counts: tuple
    static_power: tuple
    baseline_power: tuple
    borrowing_power: tuple
    baseline_undervolt_mv: tuple
    borrowing_undervolt_mv: tuple

    def borrowing_gain_percent(self, index: int) -> float:
        """Power reduction (%) of borrowing over the consolidated baseline."""
        return (
            1.0 - self.borrowing_power[index] / self.baseline_power[index]
        ) * 100.0

    def improvement_percent(self, index: int, scheduler: str) -> float:
        """Improvement (%) of one scheduler over the static baseline."""
        power = {
            "baseline": self.baseline_power,
            "borrowing": self.borrowing_power,
        }[scheduler]
        return (1.0 - power[index] / self.static_power[index]) * 100.0


def fig12_borrowing_scaling(
    config: Optional[ServerConfig] = None,
    workload: str = "raytrace",
    core_counts: Sequence[int] = range(1, 9),
    total_cores_on: int = 8,
    runner: Optional[SweepRunner] = None,
) -> BorrowingScalingSeries:
    """Fig. 12: undervolt depth and total chip power vs active cores.

    Both schedules keep the same ``total_cores_on`` responsiveness reserve
    (eight of the sixteen cores, per Sec. 5.1.1); the baseline parks them
    all on socket 0, borrowing splits them four and four.
    """
    runner = runner or default_runner()
    cfg = config or ServerConfig()
    consolidation = ConsolidationScheduler(cfg)
    borrowing = LoadlineBorrowingScheduler(cfg)
    profile = get_profile(workload)

    placements = []
    tasks = []
    for n in core_counts:
        base_placement = consolidation.schedule(profile, n, total_cores_on)
        borrow_placement = borrowing.schedule(profile, n, total_cores_on)
        placements.append((base_placement, borrow_placement))
        tasks.append(
            SweepTask.scheduled(base_placement, profile, GuardbandMode.UNDERVOLT)
        )
        tasks.append(
            SweepTask.scheduled(borrow_placement, profile, GuardbandMode.UNDERVOLT)
        )
    results = runner.run_results(tasks, cfg)

    rows = {k: [] for k in ("static", "baseline", "borrow", "uv_base", "uv_borrow")}
    for slot, (base_placement, borrow_placement) in enumerate(placements):
        base, borrow = results[2 * slot], results[2 * slot + 1]
        rows["static"].append(base.static.chip_power)
        rows["baseline"].append(base.adaptive.chip_power)
        rows["borrow"].append(borrow.adaptive.chip_power)
        rows["uv_base"].append(
            base.adaptive.point.socket_point(0).undervolt * 1000
        )
        # Borrowing undervolt: mean depth of the sockets hosting threads.
        depths = [
            sp.undervolt * 1000
            for sid, sp in enumerate(borrow.adaptive.point.sockets)
            if borrow_placement.threads_on(sid) > 0
        ]
        rows["uv_borrow"].append(float(np.mean(depths)))
    return BorrowingScalingSeries(
        workload=workload,
        core_counts=tuple(core_counts),
        static_power=tuple(rows["static"]),
        baseline_power=tuple(rows["baseline"]),
        borrowing_power=tuple(rows["borrow"]),
        baseline_undervolt_mv=tuple(rows["uv_base"]),
        borrowing_undervolt_mv=tuple(rows["uv_borrow"]),
    )


# ----------------------------------------------------------------------
# Fig. 13 — borrowing vs baseline across all scalable workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BorrowingComparisonSeries:
    """Improvement (%) vs static for both schedulers, all workloads."""

    core_counts: tuple
    #: workload -> improvements per core count under consolidation.
    baseline: Dict[str, tuple]
    #: workload -> improvements per core count under borrowing.
    borrowing: Dict[str, tuple]

    def average(self, index: int, scheduler: str) -> float:
        """Mean improvement (%) across workloads at one core count."""
        table = self.baseline if scheduler == "baseline" else self.borrowing
        return float(np.mean([series[index] for series in table.values()]))


def fig13_borrowing_all_workloads(
    config: Optional[ServerConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    core_counts: Sequence[int] = range(1, 9),
    total_cores_on: int = 8,
    runner: Optional[SweepRunner] = None,
) -> BorrowingComparisonSeries:
    """Fig. 13: scaling power improvement for every PARSEC/SPLASH-2 load."""
    from ..workloads import SCALABLE_BENCHMARKS

    runner = runner or default_runner()
    cfg = config or ServerConfig()
    consolidation = ConsolidationScheduler(cfg)
    borrowing = LoadlineBorrowingScheduler(cfg)
    names = list(workloads) if workloads is not None else list(SCALABLE_BENCHMARKS)

    # One batch across every workload and count: 2 tasks per grid point.
    tasks = []
    for name in names:
        profile = get_profile(name)
        for n in core_counts:
            for scheduler in (consolidation, borrowing):
                tasks.append(
                    SweepTask.scheduled(
                        scheduler.schedule(profile, n, total_cores_on),
                        profile,
                        GuardbandMode.UNDERVOLT,
                    )
                )
    results = runner.run_results(tasks, cfg)

    baseline: Dict[str, tuple] = {}
    borrowed: Dict[str, tuple] = {}
    width = 2 * len(tuple(core_counts))
    for slot, name in enumerate(names):
        base_vals, borrow_vals = [], []
        row = results[slot * width : (slot + 1) * width]
        for base, borrow in zip(row[0::2], row[1::2]):
            static_power = base.static.chip_power
            base_vals.append((1 - base.adaptive.chip_power / static_power) * 100)
            borrow_vals.append((1 - borrow.adaptive.chip_power / static_power) * 100)
        baseline[name] = tuple(base_vals)
        borrowed[name] = tuple(borrow_vals)
    return BorrowingComparisonSeries(
        core_counts=tuple(core_counts), baseline=baseline, borrowing=borrowed
    )


# ----------------------------------------------------------------------
# Fig. 14 — full-catalog power & energy improvement at eight busy cores
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BorrowingEnergyRow:
    """One workload's Fig. 14 bar pair."""

    workload: str
    baseline_power: float
    borrowing_power: float
    baseline_time: float
    borrowing_time: float

    @property
    def power_improvement_percent(self) -> float:
        """Power reduction (%) of borrowing over the consolidated baseline."""
        return (1.0 - self.borrowing_power / self.baseline_power) * 100.0

    @property
    def energy_improvement_percent(self) -> float:
        """Energy improvement (%), the paper's right axis:
        ``E_baseline / E_borrowing − 1``."""
        e_base = self.baseline_power * self.baseline_time
        e_borrow = self.borrowing_power * self.borrowing_time
        return (e_base / e_borrow - 1.0) * 100.0

    @property
    def performance_change_percent(self) -> float:
        """Execution-time change (%; negative = borrowing is slower)."""
        return (1.0 - self.borrowing_time / self.baseline_time) * 100.0


@dataclass(frozen=True)
class Fig14Result:
    """All Fig. 14 rows, ordered by energy improvement (the paper's x-axis)."""

    rows: tuple

    @property
    def mean_power_improvement(self) -> float:
        """Average power reduction (%) across the catalog."""
        return float(np.mean([r.power_improvement_percent for r in self.rows]))

    @property
    def mean_energy_improvement(self) -> float:
        """Average energy improvement (%) across the catalog."""
        return float(np.mean([r.energy_improvement_percent for r in self.rows]))

    def row(self, workload: str) -> BorrowingEnergyRow:
        """Find one workload's row."""
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)


def fig14_borrowing_energy(
    config: Optional[ServerConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> Fig14Result:
    """Fig. 14: eight busy cores per the paper's full-utilization setup.

    Scalable suites run 32 threads (SMT4); SPEC CPU2006 runs eight SPECrate
    copies.  The baseline consolidates onto socket 0; borrowing splits the
    load four cores per socket.
    """
    runner = runner or default_runner()
    cfg = config or ServerConfig()
    consolidation = ConsolidationScheduler(cfg)
    borrowing = LoadlineBorrowingScheduler(cfg)
    names = list(workloads) if workloads is not None else profile_names()

    tasks = []
    for name in names:
        profile = get_profile(name)
        if profile.scalable:
            n_threads, tpc = 32, 4
        else:
            n_threads, tpc = 8, 1
        for scheduler in (consolidation, borrowing):
            tasks.append(
                SweepTask.scheduled(
                    scheduler.schedule(profile, n_threads, 8, threads_per_core=tpc),
                    profile,
                    GuardbandMode.UNDERVOLT,
                )
            )
    results = runner.run_results(tasks, cfg)

    rows = []
    for slot, name in enumerate(names):
        base, borrow = results[2 * slot], results[2 * slot + 1]
        rows.append(
            BorrowingEnergyRow(
                workload=name,
                baseline_power=base.adaptive.chip_power,
                borrowing_power=borrow.adaptive.chip_power,
                baseline_time=base.adaptive.execution_time,
                borrowing_time=borrow.adaptive.execution_time,
            )
        )
    rows.sort(key=lambda r: r.energy_improvement_percent)
    return Fig14Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Fig. 15 — colocation's effect on the critical workload's frequency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColocationPoint:
    """One <n_critical, n_other> mix and its settled frequency."""

    n_coremark: int
    n_other: int
    other: str
    coremark_frequency: float


def fig15_colocation_frequency(
    config: Optional[ServerConfig] = None,
    others: Sequence[str] = ("lu_cb", "mcf"),
) -> List[ColocationPoint]:
    """Fig. 15: coremark's frequency across colocation mixes.

    Sweeps ``<n, 8−n>`` mixes of coremark with each co-runner in
    overclocking mode and reports the mean clock of the coremark cores.
    """
    server = build_server(config)
    coremark = coremark_profile()
    points: List[ColocationPoint] = []
    n_cores = server.config.chip.n_cores
    for other_name in others:
        other = get_profile(other_name)
        for n_coremark in range(1, n_cores + 1):
            n_other = n_cores - n_coremark
            profiles = [coremark] * n_coremark + [other] * n_other
            server.clear()
            server.place_per_core(0, profiles)
            point = server.operate(GuardbandMode.OVERCLOCK)
            freqs = point.socket_point(0).solution.frequencies[:n_coremark]
            points.append(
                ColocationPoint(
                    n_coremark=n_coremark,
                    n_other=n_other,
                    other=other_name,
                    coremark_frequency=float(np.mean(freqs)),
                )
            )
    return points


# ----------------------------------------------------------------------
# Fig. 16 — the MIPS-based frequency predictor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictorTrainingResult:
    """Training samples plus the fitted model and its accuracy."""

    samples: tuple
    predictor: MipsFrequencyPredictor
    relative_rmse: float


def fig16_mips_predictor(
    config: Optional[ServerConfig] = None,
    workloads: Optional[Sequence[str]] = None,
) -> PredictorTrainingResult:
    """Fig. 16: stress all cores per workload, fit frequency on chip MIPS."""
    server = build_server(config)
    runtime = RuntimeModel()
    names = list(workloads) if workloads is not None else profile_names()
    samples = []
    for name in names:
        profile = get_profile(name)
        server.clear()
        server.place(0, profile, server.config.chip.n_cores)
        point = server.operate(GuardbandMode.OVERCLOCK)
        solution = point.socket_point(0).solution
        share = SocketShare.consolidated(
            server.config.chip.n_cores, server.n_sockets
        )
        mips = runtime.effective_mips(
            profile, share, [solution.mean_frequency] * server.n_sockets
        )
        samples.append(
            PredictorSample(
                chip_mips=mips,
                frequency=solution.mean_frequency,
                workload=name,
            )
        )
    predictor = MipsFrequencyPredictor().fit(samples)
    return PredictorTrainingResult(
        samples=tuple(samples),
        predictor=predictor,
        relative_rmse=predictor.rmse(),
    )


# ----------------------------------------------------------------------
# Fig. 17 — WebSearch QoS under light/medium/heavy co-runners
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WebSearchQosResult:
    """Violation rates and latency CDFs of the three co-runner classes."""

    #: class name -> settled WebSearch-core frequency (Hz).
    frequencies: Dict[str, float]

    #: class name -> QoS violation rate over the sampled windows.
    violation_rates: Dict[str, float]

    #: class name -> (sorted p90 latencies, cumulative %).
    cdfs: Dict[str, tuple]

    #: The adaptive-mapping run's decisions, starting from the heavy mix.
    decisions: tuple

    @property
    def tail_improvement_percent(self) -> float:
        """Mean-p90 improvement (%) of the final mapping vs the initial one."""
        first = self.decisions[0].mean_tail_latency
        last = self.decisions[-1].mean_tail_latency
        return (1.0 - last / first) * 100.0


def fig17_websearch_qos(
    config: Optional[ServerConfig] = None,
    n_windows: int = 400,
    quanta: int = 3,
) -> WebSearchQosResult:
    """Fig. 17 and Sec. 5.2.2: the co-runner swapping study.

    WebSearch holds core 0; light/medium/heavy issue-throttled coremark
    co-runners fill the other seven cores.  The adaptive-mapping scheduler
    starts blindly colocated with the heavy class and swaps guided by the
    MIPS predictor.
    """
    server = build_server(config)
    websearch = WebSearchModel()
    critical = websearch.profile()
    candidates = [throttled_corunner(level) for level in ("light", "medium", "heavy")]
    predictor = fig16_mips_predictor(config).predictor
    spec = QosSpec(
        latency_target=websearch.config.p90_target,
        violation_threshold=0.10,
    )
    scheduler = AdaptiveMappingScheduler(
        server=server,
        critical=critical,
        spec=spec,
        candidates=candidates,
        predictor=predictor,
        latency_model=websearch,
        windows_per_quantum=n_windows // 4,
    )

    frequencies: Dict[str, float] = {}
    violation_rates: Dict[str, float] = {}
    cdfs: Dict[str, tuple] = {}
    for candidate in candidates:
        level = candidate.name.replace("corunner_", "")
        frequency = scheduler.settle(candidate)
        frequencies[level] = frequency
        violation_rates[level] = websearch.violation_rate(frequency, n_windows)
        cdfs[level] = websearch.latency_cdf(frequency, n_windows)

    decisions = scheduler.run("corunner_heavy", quanta=quanta)
    return WebSearchQosResult(
        frequencies=frequencies,
        violation_rates=violation_rates,
        cdfs=cdfs,
        decisions=tuple(decisions),
    )
