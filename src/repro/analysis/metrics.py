"""Shared metric arithmetic for the evaluation figures."""

from __future__ import annotations


def energy(power: float, time: float) -> float:
    """Energy (J) of a run at ``power`` watts for ``time`` seconds."""
    if power < 0 or time < 0:
        raise ValueError("power and time must be >= 0")
    return power * time


def edp(power: float, time: float) -> float:
    """Energy-delay product (J·s)."""
    return energy(power, time) * time


def improvement_fraction(baseline: float, improved: float) -> float:
    """Relative reduction of ``improved`` versus ``baseline``.

    Positive when ``improved`` is smaller (better for power/energy/time).
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 1.0 - improved / baseline


def percent(fraction: float) -> float:
    """Fraction → percentage."""
    return fraction * 100.0
