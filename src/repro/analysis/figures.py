"""One import point for every figure builder.

``from repro.analysis import figures`` gives the benchmarks and examples a
single namespace covering the whole evaluation:

=========  ===========================================================
Builder    Paper figure
=========  ===========================================================
fig3_...   Fig. 3 — power & EDP vs active cores (raytrace)
fig4_...   Fig. 4 — frequency & execution time vs cores (lu_cb)
fig5_...   Fig. 5 — workload heterogeneity of the improvements
fig6_...   Fig. 6 — CPM ↔ voltage mapping and sensitivity
fig7_...   Fig. 7 — per-core voltage drop vs active cores
fig9_...   Fig. 9 — voltage drop decomposition
fig10_...  Fig. 10 — passive drop vs undervolt/boost correlations
fig12_...  Fig. 12 — loadline borrowing scaling (raytrace)
fig13_...  Fig. 13 — borrowing vs baseline, all scalable workloads
fig14_...  Fig. 14 — borrowing power & energy, full catalog
fig15_...  Fig. 15 — colocation frequency effects (coremark mixes)
fig16_...  Fig. 16 — MIPS-based frequency predictor
fig17_...  Fig. 17 — WebSearch QoS and adaptive mapping
=========  ===========================================================
"""

from .figures_characterization import (
    FIG5_WORKLOADS,
    FIG9_WORKLOADS,
    CoreScalingSeries,
    CpmMappingResult,
    DecompositionSeries,
    Fig10Result,
    HeterogeneitySeries,
    PassiveDropCorrelation,
    VoltageDropSeries,
    fig3_core_scaling_power,
    fig4_core_scaling_frequency,
    fig5_workload_heterogeneity,
    fig6_cpm_voltage_mapping,
    fig7_voltage_drop_scaling,
    fig9_drop_decomposition,
    fig10_passive_drop_correlation,
)
from .figures_scheduling import (
    BorrowingComparisonSeries,
    BorrowingEnergyRow,
    BorrowingScalingSeries,
    ColocationPoint,
    Fig14Result,
    PredictorTrainingResult,
    WebSearchQosResult,
    fig12_borrowing_scaling,
    fig13_borrowing_all_workloads,
    fig14_borrowing_energy,
    fig15_colocation_frequency,
    fig16_mips_predictor,
    fig17_websearch_qos,
)

__all__ = [
    "FIG5_WORKLOADS",
    "FIG9_WORKLOADS",
    "BorrowingComparisonSeries",
    "BorrowingEnergyRow",
    "BorrowingScalingSeries",
    "ColocationPoint",
    "CoreScalingSeries",
    "CpmMappingResult",
    "DecompositionSeries",
    "Fig10Result",
    "Fig14Result",
    "HeterogeneitySeries",
    "PassiveDropCorrelation",
    "PredictorTrainingResult",
    "VoltageDropSeries",
    "WebSearchQosResult",
    "fig3_core_scaling_power",
    "fig4_core_scaling_frequency",
    "fig5_workload_heterogeneity",
    "fig6_cpm_voltage_mapping",
    "fig7_voltage_drop_scaling",
    "fig9_drop_decomposition",
    "fig10_passive_drop_correlation",
    "fig12_borrowing_scaling",
    "fig13_borrowing_all_workloads",
    "fig14_borrowing_energy",
    "fig15_colocation_frequency",
    "fig16_mips_predictor",
    "fig17_websearch_qos",
]
