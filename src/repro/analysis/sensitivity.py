"""One-at-a-time parameter sensitivity of the headline metrics.

Which model parameters actually drive the reproduced results?  The
sensitivity sweep perturbs each calibrated parameter by a relative factor
(default ±25%), re-measures a headline metric, and reports the swing — a
tornado analysis.  Useful both as documentation (what the calibration in
DESIGN.md §4 really pins down) and as a regression tripwire: a parameter
whose influence collapses usually means a code path stopped consuming it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..config import DidtConfig, PdnConfig, ServerConfig
from ..errors import ReproError
from ..guardband import GuardbandMode
from ..sim.run import build_server, measure_consolidated
from ..workloads import get_profile

#: The PDN/noise parameters the tornado sweeps, with access paths.
SWEPT_PARAMETERS = (
    "r_loadline",
    "r_ir_shared",
    "r_ir_local",
    "ripple_single_core",
    "droop_single_core",
    "droop_alignment_gain",
)


@dataclass(frozen=True)
class SensitivityRow:
    """One parameter's tornado entry."""

    parameter: str

    #: Metric value with the parameter scaled down.
    low: float

    #: Metric value at the calibrated default.
    nominal: float

    #: Metric value with the parameter scaled up.
    high: float

    @property
    def swing(self) -> float:
        """Total metric range across the perturbation."""
        return abs(self.high - self.low)


def _perturbed_config(parameter: str, scale: float) -> ServerConfig:
    """A default server config with one parameter scaled."""
    pdn = PdnConfig()
    didt_fields = {f.name for f in dataclasses.fields(DidtConfig)}
    if parameter in didt_fields:
        value = getattr(pdn.didt, parameter) * scale
        return ServerConfig(
            pdn=dataclasses.replace(
                pdn, didt=dataclasses.replace(pdn.didt, **{parameter: value})
            )
        )
    pdn_fields = {f.name for f in dataclasses.fields(PdnConfig)}
    if parameter in pdn_fields:
        value = getattr(pdn, parameter) * scale
        return ServerConfig(pdn=dataclasses.replace(pdn, **{parameter: value}))
    raise ReproError(f"unknown swept parameter {parameter!r}")


def saving_metric(n_threads: int) -> Callable[[ServerConfig], float]:
    """Metric factory: raytrace undervolt saving (%) at ``n_threads``."""

    def metric(config: ServerConfig) -> float:
        server = build_server(config)
        result = measure_consolidated(
            server, get_profile("raytrace"), n_threads, GuardbandMode.UNDERVOLT
        )
        s0s = result.static.point.socket_point(0)
        s0a = result.adaptive.point.socket_point(0)
        return (1 - s0a.chip_power / s0s.chip_power) * 100

    return metric


def tornado(
    metric: Optional[Callable[[ServerConfig], float]] = None,
    parameters: tuple = SWEPT_PARAMETERS,
    scale: float = 0.25,
) -> List[SensitivityRow]:
    """Run the one-at-a-time sweep, largest swing first.

    Parameters
    ----------
    metric:
        Callable from a :class:`ServerConfig` to the metric value; defaults
        to the eight-core raytrace undervolt saving.
    scale:
        Relative perturbation (0.25 = ±25%).
    """
    if not 0 < scale < 1:
        raise ReproError(f"scale must be in (0, 1), got {scale}")
    metric = metric or saving_metric(8)
    nominal = metric(ServerConfig())
    rows = []
    for parameter in parameters:
        low = metric(_perturbed_config(parameter, 1.0 - scale))
        high = metric(_perturbed_config(parameter, 1.0 + scale))
        rows.append(
            SensitivityRow(parameter=parameter, low=low, nominal=nominal, high=high)
        )
    rows.sort(key=lambda r: r.swing, reverse=True)
    return rows


def tornado_table(rows: List[SensitivityRow]) -> str:
    """Render tornado rows as a fixed-width text table."""
    lines = [f"{'parameter':>22} {'-25%':>8} {'nominal':>8} {'+25%':>8} {'swing':>7}"]
    for row in rows:
        lines.append(
            f"{row.parameter:>22} {row.low:>8.2f} {row.nominal:>8.2f} "
            f"{row.high:>8.2f} {row.swing:>7.2f}"
        )
    return "\n".join(lines)
