"""Analysis layer: metrics, fits, and per-figure series builders.

Every table/figure of the paper's evaluation has a builder here that
returns plain data (dataclasses of lists) — the benchmarks print them, the
examples plot or tabulate them, and EXPERIMENTS.md quotes them.
"""

from .fitting import LinearFit, fit_linear
from .metrics import (
    edp,
    energy,
    improvement_fraction,
    percent,
)

__all__ = [
    "LinearFit",
    "edp",
    "energy",
    "fit_linear",
    "improvement_fraction",
    "percent",
]
