"""Series builders for the characterization figures (Sec. 3 and 4).

Each ``figNN_*`` function reproduces one figure's measurement procedure on
the simulated platform and returns plain data.  Benchmarks print these
series next to the paper's values; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ServerConfig
from ..guardband import GuardbandMode
from ..pdn import DidtNoiseModel, DropDecomposer
from ..sim.batch import (
    SweepRunner,
    SweepTask,
    core_scaling_tasks,
    default_runner,
    derive_seed,
)
from ..sim.run import build_server
from ..workloads import get_profile
from .fitting import LinearFit, fit_linear

#: The five workloads the paper highlights in Figs. 5 and 7.
FIG5_WORKLOADS = ("lu_cb", "raytrace", "swaptions", "radix", "ocean_cp")

#: The ten benchmarks decomposed in Fig. 9.
FIG9_WORKLOADS = (
    "raytrace",
    "barnes",
    "blackscholes",
    "bodytrack",
    "ferret",
    "lu_ncb",
    "ocean_cp",
    "swaptions",
    "vips",
    "water_nsquared",
)


# ----------------------------------------------------------------------
# Fig. 3 — power and EDP vs active cores (raytrace, undervolting mode)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoreScalingSeries:
    """One workload's static-vs-adaptive sweep over active core counts."""

    workload: str
    mode: GuardbandMode
    core_counts: tuple
    static_power: tuple
    adaptive_power: tuple
    static_edp: tuple
    adaptive_edp: tuple
    static_time: tuple
    adaptive_time: tuple
    static_frequency: tuple
    adaptive_frequency: tuple

    def power_saving_percent(self, index: int) -> float:
        """Power saving (%) of the adaptive mode at one sweep point."""
        return (1.0 - self.adaptive_power[index] / self.static_power[index]) * 100.0

    def frequency_boost_percent(self, index: int) -> float:
        """Frequency gain (%) of the adaptive mode at one sweep point."""
        return (
            self.adaptive_frequency[index] / self.static_frequency[index] - 1.0
        ) * 100.0

    def speedup_percent(self, index: int) -> float:
        """Execution-time reduction (%) of the adaptive mode."""
        return (1.0 - self.adaptive_time[index] / self.static_time[index]) * 100.0


def _sweep(
    runner: SweepRunner,
    workload: str,
    mode: GuardbandMode,
    core_counts: Sequence[int],
    config: Optional[ServerConfig] = None,
) -> CoreScalingSeries:
    """Run the consolidated core-scaling sweep and package the series.

    Powers are the focal (socket 0) chip's Vdd rail power, matching the
    paper's single-processor measurements in Sec. 3.
    """
    profile = get_profile(workload)
    results = runner.core_scaling_sweep(profile, mode, core_counts, config)
    return _series_from_results(workload, mode, core_counts, results)


def _series_from_results(
    workload: str,
    mode: GuardbandMode,
    core_counts: Sequence[int],
    results: Sequence,
) -> CoreScalingSeries:
    """Package one workload's sweep results into a series."""
    return CoreScalingSeries(
        workload=workload,
        mode=mode,
        core_counts=tuple(core_counts),
        static_power=tuple(
            r.static.point.socket_point(0).chip_power for r in results
        ),
        adaptive_power=tuple(
            r.adaptive.point.socket_point(0).chip_power for r in results
        ),
        static_edp=tuple(
            r.static.point.socket_point(0).chip_power * r.static.execution_time**2
            for r in results
        ),
        adaptive_edp=tuple(
            r.adaptive.point.socket_point(0).chip_power
            * r.adaptive.execution_time**2
            for r in results
        ),
        static_time=tuple(r.static.execution_time for r in results),
        adaptive_time=tuple(r.adaptive.execution_time for r in results),
        static_frequency=tuple(r.static.active_frequency for r in results),
        adaptive_frequency=tuple(r.adaptive.active_frequency for r in results),
    )


def fig3_core_scaling_power(
    config: Optional[ServerConfig] = None,
    workload: str = "raytrace",
    core_counts: Sequence[int] = range(1, 9),
    runner: Optional[SweepRunner] = None,
) -> CoreScalingSeries:
    """Fig. 3: chip power and EDP vs active cores under undervolting."""
    runner = runner or default_runner()
    return _sweep(runner, workload, GuardbandMode.UNDERVOLT, core_counts, config)


def fig4_core_scaling_frequency(
    config: Optional[ServerConfig] = None,
    workload: str = "lu_cb",
    core_counts: Sequence[int] = range(1, 9),
    runner: Optional[SweepRunner] = None,
) -> CoreScalingSeries:
    """Fig. 4: frequency and execution time vs cores under overclocking."""
    runner = runner or default_runner()
    return _sweep(runner, workload, GuardbandMode.OVERCLOCK, core_counts, config)


# ----------------------------------------------------------------------
# Fig. 5 — workload heterogeneity of the improvements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeterogeneitySeries:
    """Per-workload improvement (%) versus active core count."""

    mode: GuardbandMode
    core_counts: tuple
    #: workload name -> tuple of improvement percentages per core count.
    improvements: Dict[str, tuple]

    def average(self, index: int) -> float:
        """Mean improvement (%) across workloads at one core count."""
        return float(
            np.mean([series[index] for series in self.improvements.values()])
        )

    def spread(self, index: int) -> float:
        """Max-min improvement spread (%) at one core count."""
        values = [series[index] for series in self.improvements.values()]
        return max(values) - min(values)


def fig5_workload_heterogeneity(
    mode: GuardbandMode,
    config: Optional[ServerConfig] = None,
    workloads: Sequence[str] = FIG5_WORKLOADS,
    core_counts: Sequence[int] = range(1, 9),
    runner: Optional[SweepRunner] = None,
) -> HeterogeneitySeries:
    """Fig. 5: improvement vs cores for several workloads, one mode."""
    runner = runner or default_runner()
    # One batch covering every workload, so the tasks fan out together.
    tasks = [
        task
        for workload in workloads
        for task in core_scaling_tasks(get_profile(workload), mode, core_counts)
    ]
    results = runner.run_results(tasks, config)
    width = len(tuple(core_counts))
    improvements: Dict[str, tuple] = {}
    for slot, workload in enumerate(workloads):
        series = _series_from_results(
            workload, mode, core_counts, results[slot * width : (slot + 1) * width]
        )
        if mode is GuardbandMode.UNDERVOLT:
            values = tuple(
                series.power_saving_percent(i) for i in range(len(core_counts))
            )
        else:
            values = tuple(
                series.frequency_boost_percent(i) for i in range(len(core_counts))
            )
        improvements[workload] = values
    return HeterogeneitySeries(
        mode=mode, core_counts=tuple(core_counts), improvements=improvements
    )


# ----------------------------------------------------------------------
# Fig. 6 — CPM-to-voltage mapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CpmMappingResult:
    """The Fig. 6a sweep plus its linear calibration."""

    #: Frequency of each sweep line (Hz).
    frequencies: tuple

    #: frequency -> (voltages tuple, mean CPM codes tuple).
    lines: Dict[float, tuple]

    #: Linear fit of voltage vs mean code at the nominal frequency.
    nominal_fit: LinearFit

    #: Millivolts of supply represented by one CPM step at peak frequency.
    mv_per_bit: float

    #: Per-core mV/bit at peak frequency (Fig. 6b's sensitivity spread).
    core_sensitivity_mv: tuple


def fig6_cpm_voltage_mapping(
    config: Optional[ServerConfig] = None,
    n_frequencies: int = 6,
    n_voltages: int = 12,
    seed: int = 7,
) -> CpmMappingResult:
    """Fig. 6: sweep voltage under each frequency and read the CPMs.

    Mirrors Sec. 4.1's procedure: adaptive guardbanding disabled (fixed
    frequency, fixed setpoint), cores throttled to near-idle activity, CPM
    codes averaged over the die per operating point.  ``seed`` picks the
    die instance (process variation draw).
    """
    server = build_server(config, seed=seed)
    socket = server.sockets[0]
    chip = socket.chip
    cfg = server.config.chip
    frequencies = np.linspace(cfg.f_min, cfg.f_nominal, n_frequencies)
    lines: Dict[float, tuple] = {}
    for frequency in frequencies:
        v_low = cfg.vmin(frequency) + 0.02
        v_high = min(server.config.static_vdd, v_low + 0.28)
        voltages = np.linspace(v_low, v_high, n_voltages)
        codes = []
        for setpoint in voltages:
            socket.path.set_voltage(float(setpoint))
            solution = socket.solve(
                frequencies=[float(frequency)] * chip.n_cores,
                settle_thermal=False,
            )
            per_core = chip.cpm_codes(solution.core_voltages)
            codes.append(float(np.mean([c for core in per_core for c in core])))
        lines[float(frequency)] = (tuple(float(v) for v in voltages), tuple(codes))

    nominal = float(frequencies[-1])
    voltages, codes = lines[nominal]
    # Fit only the unsaturated detector range.
    pairs = [(v, c) for v, c in zip(voltages, codes) if 0.5 < c < 10.5]
    fit = fit_linear([c for _, c in pairs], [v for v, _ in pairs])
    core_sensitivity = tuple(
        float(
            np.mean(
                [cpm.volts_per_bit(nominal) * 1000 for cpm in chip.cpm_bank.core_cpms(i)]
            )
        )
        for i in range(chip.n_cores)
    )
    return CpmMappingResult(
        frequencies=tuple(float(f) for f in frequencies),
        lines=lines,
        nominal_fit=fit,
        mv_per_bit=fit.slope * 1000.0,
        core_sensitivity_mv=core_sensitivity,
    )


# ----------------------------------------------------------------------
# Fig. 7 — per-core voltage drop vs active cores
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VoltageDropSeries:
    """Per-core drop (%) for one workload as cores activate in order."""

    workload: str
    core_counts: tuple
    #: core id -> tuple of drop percentages per active-core count.
    drops_percent: Dict[int, tuple]


def fig7_voltage_drop_scaling(
    config: Optional[ServerConfig] = None,
    workloads: Sequence[str] = FIG5_WORKLOADS,
    core_counts: Sequence[int] = range(1, 9),
    runner: Optional[SweepRunner] = None,
) -> Dict[str, VoltageDropSeries]:
    """Fig. 7: on-chip voltage drop per core, AG disabled (static mode).

    Cores are activated in succession from core 0; the drop at *every*
    core (active or not) is recorded relative to the static setpoint —
    reproducing the paper's observation of global plus localized behavior.
    Only the static halves are consumed here, so the batch shares all its
    operating points with the Fig. 5 undervolt sweep.
    """
    runner = runner or default_runner()
    cfg = config or ServerConfig()
    tasks = [
        task
        for workload in workloads
        for task in core_scaling_tasks(
            get_profile(workload), GuardbandMode.UNDERVOLT, core_counts
        )
    ]
    results = runner.run_results(tasks, cfg)
    width = len(tuple(core_counts))
    out: Dict[str, VoltageDropSeries] = {}
    for slot, workload in enumerate(workloads):
        per_core: Dict[int, List[float]] = {
            c: [] for c in range(cfg.chip.n_cores)
        }
        for result in results[slot * width : (slot + 1) * width]:
            solution = result.static.point.socket_point(0).solution
            setpoint = solution.drops.setpoint
            for core_id, voltage in enumerate(solution.core_voltages):
                per_core[core_id].append((1.0 - voltage / setpoint) * 100.0)
        out[workload] = VoltageDropSeries(
            workload=workload,
            core_counts=tuple(core_counts),
            drops_percent={c: tuple(v) for c, v in per_core.items()},
        )
    return out


# ----------------------------------------------------------------------
# Fig. 9 — voltage drop decomposition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecompositionSeries:
    """Stacked drop components (% of nominal) vs active cores, core 0."""

    workload: str
    core_counts: tuple
    loadline: tuple
    ir_drop: tuple
    typical_didt: tuple
    worst_didt: tuple

    def total(self, index: int) -> float:
        """Total decomposed drop (%) at one core count."""
        return (
            self.loadline[index]
            + self.ir_drop[index]
            + self.typical_didt[index]
            + self.worst_didt[index]
        )


def fig9_drop_decomposition(
    config: Optional[ServerConfig] = None,
    workloads: Sequence[str] = FIG9_WORKLOADS,
    core_counts: Sequence[int] = range(1, 9),
    n_windows: int = 60,
    seed: int = 41,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, DecompositionSeries]:
    """Fig. 9: decompose core 0's drop using the Sec. 4.3 measurement path.

    Loadline and IR come from the VRM current sensor through the heuristic
    equation; typical di/dt from sample-mode CPM drop minus the passive
    part; worst-case di/dt from the sticky-vs-sample difference, averaged
    over ``n_windows`` 32 ms sticky windows (deep aligned droops are rare,
    so many windows record none — exactly why the paper's measured
    worst-case slice stays small even though the firmware must reserve the
    full depth).

    Each workload samples its droop windows from its own random stream,
    derived from ``seed`` and the workload's identity — so a workload's
    series does not depend on which other workloads (or how many) were
    decomposed before it.
    """
    runner = runner or default_runner()
    cfg = config or ServerConfig()
    decomposer = DropDecomposer(cfg.pdn)
    tasks = [
        task
        for workload in workloads
        for task in core_scaling_tasks(
            get_profile(workload), GuardbandMode.UNDERVOLT, core_counts
        )
    ]
    results = runner.run_results(tasks, cfg)
    width = len(tuple(core_counts))
    out: Dict[str, DecompositionSeries] = {}
    for slot, workload in enumerate(workloads):
        profile = get_profile(workload)
        # The settled points carry no live server, so rebuild the socket's
        # di/dt model the same way placement does: a uniform single-workload
        # occupancy scales ripple and droop by the profile's own traits.
        noise = DidtNoiseModel(
            cfg.pdn.didt,
            ripple_scale=profile.ripple_scale,
            droop_scale=profile.droop_scale,
        )
        rng = np.random.default_rng(derive_seed(seed, {"fig9": workload}))
        rows = {"loadline": [], "ir_drop": [], "typical_didt": [], "worst_didt": []}
        for offset, n in enumerate(core_counts):
            result = results[slot * width + offset]
            solution = result.static.point.socket_point(0).solution
            setpoint = solution.drops.setpoint
            sample_drop = setpoint - solution.core_voltages[0]
            window = cfg.guardband.control_interval
            observed = [
                noise.worst_in_window(n, window, rng) for _ in range(n_windows)
            ]
            sticky_drop = sample_drop + float(np.mean(observed))
            decomposed = decomposer.decompose(
                chip_current=solution.total_current,
                sample_mode_drop=sample_drop,
                sticky_mode_drop=sticky_drop,
                local_ir=solution.drops.ir_local[0],
            ).as_percent_of(setpoint)
            rows["loadline"].append(decomposed.loadline)
            rows["ir_drop"].append(decomposed.ir_drop)
            rows["typical_didt"].append(decomposed.typical_didt)
            rows["worst_didt"].append(decomposed.worst_didt)
        out[workload] = DecompositionSeries(
            workload=workload,
            core_counts=tuple(core_counts),
            loadline=tuple(rows["loadline"]),
            ir_drop=tuple(rows["ir_drop"]),
            typical_didt=tuple(rows["typical_didt"]),
            worst_didt=tuple(rows["worst_didt"]),
        )
    return out


# ----------------------------------------------------------------------
# Fig. 10 — passive drop vs the two optimization modes, full catalog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PassiveDropCorrelation:
    """One workload's row in the Fig. 10 scatter plots."""

    workload: str
    chip_power: float
    passive_drop_mv: float
    undervolt_mv: float
    vdd_selected_mv: float
    energy_saving_percent: float
    frequency_increase_percent: float


@dataclass(frozen=True)
class Fig10Result:
    """All workloads' rows plus the headline correlations."""

    rows: tuple
    power_vs_drop: LinearFit
    drop_vs_undervolt: LinearFit

    def column(self, name: str) -> List[float]:
        """Extract one column across workloads."""
        return [getattr(row, name) for row in self.rows]


def fig10_passive_drop_correlation(
    config: Optional[ServerConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> Fig10Result:
    """Fig. 10: power → passive drop → undervolt/boost, at eight cores."""
    from ..workloads import profile_names

    runner = runner or default_runner()
    names = list(workloads) if workloads is not None else profile_names()
    tasks = []
    for workload in names:
        profile = get_profile(workload)
        tasks.append(SweepTask.consolidated(profile, 8, GuardbandMode.UNDERVOLT))
        tasks.append(SweepTask.consolidated(profile, 8, GuardbandMode.OVERCLOCK))
    results = runner.run_results(tasks, config)
    rows = []
    for slot, workload in enumerate(names):
        uv, oc = results[2 * slot], results[2 * slot + 1]
        static_solution = uv.static.point.socket_point(0).solution
        adaptive_point = uv.adaptive.point.socket_point(0)
        worst = static_solution.drops.worst_core
        rows.append(
            PassiveDropCorrelation(
                workload=workload,
                chip_power=static_solution.chip_power,
                passive_drop_mv=static_solution.drops.passive_at(worst) * 1000,
                undervolt_mv=adaptive_point.undervolt * 1000,
                vdd_selected_mv=adaptive_point.setpoint * 1000,
                energy_saving_percent=uv.energy_saving_fraction * 100,
                frequency_increase_percent=oc.frequency_boost_fraction * 100,
            )
        )
    result_rows = tuple(rows)
    power = [r.chip_power for r in result_rows]
    drop = [r.passive_drop_mv for r in result_rows]
    undervolt = [r.undervolt_mv for r in result_rows]
    return Fig10Result(
        rows=result_rows,
        power_vs_drop=fit_linear(power, drop),
        drop_vs_undervolt=fit_linear(drop, undervolt),
    )
