"""Linear fitting helpers (CPM↔voltage mapping, MIPS→frequency model)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line with fit-quality diagnostics."""

    slope: float
    intercept: float

    #: Root-mean-square error of the residuals (absolute units).
    rmse: float

    #: Coefficient of determination.
    r_squared: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.slope * x + self.intercept

    def relative_rmse(self, mean_y: float) -> float:
        """RMSE relative to a reference magnitude."""
        if mean_y == 0:
            raise ValueError("mean_y must be non-zero")
        return self.rmse / abs(mean_y)


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares line through ``(x, y)`` with diagnostics."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError(f"shape mismatch: {x_arr.shape} vs {y_arr.shape}")
    if x_arr.size < 2:
        raise ValueError(f"need at least 2 points, got {x_arr.size}")
    if float(np.ptp(x_arr)) == 0.0:
        raise ValueError("x values are all identical; the fit is degenerate")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    predicted = slope * x_arr + intercept
    residuals = y_arr - predicted
    rmse = float(np.sqrt(np.mean(residuals**2)))
    total = float(np.sum((y_arr - y_arr.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - float(np.sum(residuals**2)) / total
    return LinearFit(
        slope=float(slope), intercept=float(intercept), rmse=rmse, r_squared=r_squared
    )
